examples/quickstart.ml: Certifier Cluster Engine Format List Mvcc Printf Proxy Replica Sim Tashkent Time Types

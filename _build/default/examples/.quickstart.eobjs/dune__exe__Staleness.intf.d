examples/staleness.mli:

examples/staleness.ml: Cluster Engine Mvcc Printf Proxy Replica Sim Tashkent Time Types

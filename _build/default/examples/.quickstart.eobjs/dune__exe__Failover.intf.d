examples/failover.mli:

examples/bank_transfers.ml: Cluster Engine Fun List Mvcc Printf Proxy Replica Rng Sim Tashkent Time Types

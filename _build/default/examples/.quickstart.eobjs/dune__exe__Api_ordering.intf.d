examples/api_ordering.mli:

examples/failover.ml: Certifier Cluster Engine List Mvcc Printf Proxy Replica Rng Sim Tashkent Time Types

examples/quickstart.mli:

examples/api_ordering.ml: Engine Format Ivar List Mvcc Printf Rng Sim Storage Time

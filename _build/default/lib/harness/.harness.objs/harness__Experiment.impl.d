lib/harness/experiment.ml: Engine List Mvcc Resource Rng Sim Storage Tashkent Time Workload

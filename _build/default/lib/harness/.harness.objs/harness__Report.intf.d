lib/harness/report.mli:

lib/harness/recovery_exp.mli: Sim

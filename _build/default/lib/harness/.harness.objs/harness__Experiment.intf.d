lib/harness/experiment.mli: Sim Tashkent Workload

lib/harness/recovery_exp.ml: Engine List Rng Sim Tashkent Time Workload

(** Plain-text reporting for the experiment harness: aligned tables and
    paper-vs-measured comparison lines. *)

val section : string -> unit
(** Print a banner. *)

val subsection : string -> unit

type table

val table : columns:string list -> table
val row : table -> string list -> unit
val print : table -> unit

val kv : string -> string -> unit
(** An indented [key: value] line. *)

val paper_vs : what:string -> paper:string -> measured:string -> unit

val f1 : float -> string
(** One decimal. *)

val f2 : float -> string
val pct : float -> string
(** A [0,1] fraction rendered as a percentage. *)

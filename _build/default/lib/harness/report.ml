let section title =
  let bar = String.make (String.length title + 4) '=' in
  Printf.printf "\n%s\n= %s =\n%s\n%!" bar title bar

let subsection title = Printf.printf "\n-- %s --\n" title

type table = { columns : string list; mutable rows : string list list }

let table ~columns = { columns; rows = [] }
let row t cells = t.rows <- cells :: t.rows

let print t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let n = List.length t.columns in
  let widths = Array.make n 0 in
  List.iter
    (fun cells ->
      List.iteri
        (fun i cell -> if i < n then widths.(i) <- max widths.(i) (String.length cell))
        cells)
    all;
  let print_cells cells =
    List.iteri
      (fun i cell ->
        if i < n then Printf.printf "%s%s  " cell (String.make (widths.(i) - String.length cell) ' '))
      cells;
    print_newline ()
  in
  print_cells t.columns;
  Printf.printf "%s\n" (String.make (Array.fold_left ( + ) (2 * n) widths) '-');
  List.iter print_cells rows;
  flush stdout

let kv key value = Printf.printf "  %-46s %s\n" (key ^ ":") value

let paper_vs ~what ~paper ~measured =
  Printf.printf "  %-46s paper %-14s measured %s\n" what paper measured

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let pct x = Printf.sprintf "%.0f%%" (100. *. x)

open Sim

type config = {
  mode : Types.mode;
  n_replicas : int;
  n_certifiers : int;
  certifier : Certifier.config;
  replica : Replica.config;
  seed : int;
}

let default_config mode =
  {
    mode;
    n_replicas = 3;
    n_certifiers = 3;
    certifier = Certifier.default_config;
    replica = Replica.default_config mode;
    seed = 42;
  }

type t = {
  engine : Engine.t;
  cfg : config;
  net : Types.message Net.Network.t;
  certifier_nodes : Certifier.t list;
  replica_nodes : Replica.t list;
  mutable initial_rows : (Mvcc.Key.t * Mvcc.Value.t) list;
}

let certifier_name i = Printf.sprintf "cert%d" i
let replica_name i = Printf.sprintf "replica%d" i

let create ?engine cfg =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let rng = Rng.create cfg.seed in
  let net = Net.Network.create engine ~rng:(Rng.split rng) () in
  let cert_ids = List.init cfg.n_certifiers certifier_name in
  let certifier_nodes =
    List.map
      (fun id ->
        Certifier.create engine ~rng:(Rng.split rng) ~net ~id
          ~peers:(List.filter (fun p -> p <> id) cert_ids)
          ~config:cfg.certifier ())
      cert_ids
  in
  let replica_nodes =
    List.init cfg.n_replicas (fun i ->
        Replica.create engine ~rng:(Rng.split rng) ~net ~name:(replica_name i)
          ~certifiers:cert_ids
          ~req_id_base:((i + 1) * 100_000_000)
          ~config:{ cfg.replica with mode = cfg.mode }
          ())
  in
  { engine; cfg; net; certifier_nodes; replica_nodes; initial_rows = [] }

let engine t = t.engine
let network t = t.net
let config t = t.cfg
let replicas t = t.replica_nodes
let replica t i = List.nth t.replica_nodes i
let certifiers t = t.certifier_nodes
let certifier_ids t = List.map Certifier.id t.certifier_nodes

let leader t = List.find_opt (fun c -> Certifier.is_up c && Certifier.is_leader c) t.certifier_nodes

let settle t =
  let deadline = Time.add (Engine.now t.engine) (Time.sec 10) in
  let rec wait () =
    if leader t = None && Time.(Engine.now t.engine < deadline) then begin
      Engine.run ~until:(Time.add (Engine.now t.engine) (Time.of_ms 50.)) t.engine;
      wait ()
    end
  in
  wait ();
  if leader t = None then failwith "Cluster.settle: no certifier leader elected"

let load_all t rows =
  t.initial_rows <- rows;
  List.iter (fun r -> Replica.load r rows) t.replica_nodes

let check_consistency t =
  match leader t with
  | None -> Error "no certifier leader to check against"
  | Some cert ->
      let clog = Certifier.log cert in
      let problems = ref [] in
      List.iter
        (fun r ->
          if Replica.is_up r then begin
            let store = Mvcc.Db.store (Replica.db r) in
            let v = Mvcc.Store.current_version store in
            if v > Cert_log.version clog then
              problems :=
                Printf.sprintf "%s at version %d beyond certifier log %d" (Replica.name r)
                  v (Cert_log.version clog)
                :: !problems
            else begin
              (* Rebuild the reference state for version v and compare every
                 key ever touched. *)
              let reference = Mvcc.Store.create () in
              List.iter
                (fun (key, value) -> Mvcc.Store.preload reference key value)
                t.initial_rows;
              List.iter
                (fun (entry : Types.entry) ->
                  Mvcc.Store.install reference ~version:entry.version entry.ws)
                (Cert_log.entries_between clog ~lo:0 ~hi:v);
              Mvcc.Store.force_version reference v;
              let check key =
                let expected = Mvcc.Store.read_latest reference key in
                let actual = Mvcc.Store.read store ~at:v key in
                let same =
                  match (expected, actual) with
                  | None, None -> true
                  | Some a, Some b -> Mvcc.Value.equal a b
                  | None, Some _ | Some _, None -> false
                in
                if not same then
                  problems :=
                    Printf.sprintf "%s: key %s diverges at version %d" (Replica.name r)
                      (Mvcc.Key.to_string key) v
                    :: !problems
              in
              List.iter (fun (key, _) -> check key) t.initial_rows;
              List.iter
                (fun (entry : Types.entry) ->
                  List.iter check (Mvcc.Writeset.keys entry.ws))
                (Cert_log.entries_between clog ~lo:0 ~hi:v)
            end
          end)
        t.replica_nodes;
      if !problems = [] then Ok () else Error (String.concat "; " !problems)

let total_commits t =
  List.fold_left
    (fun acc r -> acc + (Proxy.stats (Replica.proxy r)).commits)
    0 t.replica_nodes

let total_aborts t =
  List.fold_left
    (fun acc r ->
      let s = Proxy.stats (Replica.proxy r) in
      acc + s.cert_aborts + s.local_aborts)
    0 t.replica_nodes

let reset_stats t =
  List.iter (fun r -> Proxy.reset_stats (Replica.proxy r)) t.replica_nodes;
  List.iter Certifier.reset_stats t.certifier_nodes;
  List.iter
    (fun r ->
      Mvcc.Db.reset_stats (Replica.db r);
      Storage.Disk.reset_stats (Replica.log_disk r))
    t.replica_nodes

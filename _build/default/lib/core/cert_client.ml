open Sim

type outcome = Reply of Types.cert_reply | Redirect of string option | Timed_out

type t = {
  engine : Engine.t;
  net : Types.message Net.Network.t;
  my_addr : string;
  certifiers : string array;
  mutable target : int; (* index into certifiers *)
  timeout : Time.t;
  pending : (int, outcome Ivar.t) Hashtbl.t;
  mutable fetch_waiter : Types.fetch_reply option Ivar.t option;
  mutable next_req : int;
  sent : Stats.Counter.t;
  retry_count : Stats.Counter.t;
}

let create engine ~net ~my_addr ~certifiers ?(timeout = Time.of_ms 500.) ~req_id_base () =
  if certifiers = [] then invalid_arg "Cert_client.create: no certifiers";
  {
    engine;
    net;
    my_addr;
    certifiers = Array.of_list certifiers;
    target = 0;
    timeout;
    pending = Hashtbl.create 16;
    fetch_waiter = None;
    next_req = req_id_base;
    sent = Stats.Counter.create ();
    retry_count = Stats.Counter.create ();
  }

let send t ~dst msg =
  Net.Network.send t.net ~src:t.my_addr ~dst ~size:(Types.message_bytes msg) msg

let rotate_target t hint =
  match hint with
  | Some leader ->
      Array.iteri (fun i c -> if String.equal c leader then t.target <- i) t.certifiers
  | None -> t.target <- (t.target + 1) mod Array.length t.certifiers

let certify t ~start_version ~replica_version ws =
  t.next_req <- t.next_req + 1;
  let req_id = t.next_req in
  let request =
    Types.Cert_request
      { req_id; replica = t.my_addr; start_version; replica_version; writeset = ws }
  in
  let rec attempt n =
    if n > 0 then Stats.Counter.incr t.retry_count;
    let ivar = Ivar.create t.engine () in
    Hashtbl.replace t.pending req_id ivar;
    Stats.Counter.incr t.sent;
    send t ~dst:t.certifiers.(t.target) request;
    Engine.schedule_after t.engine t.timeout (fun () ->
        ignore (Ivar.try_fill ivar Timed_out));
    match Ivar.read ivar with
    | Reply reply ->
        Hashtbl.remove t.pending req_id;
        reply
    | Redirect hint ->
        rotate_target t hint;
        Engine.sleep t.engine (Time.of_ms 1.);
        attempt (n + 1)
    | Timed_out ->
        rotate_target t None;
        attempt (n + 1)
  in
  attempt 0

let fetch t ~replica ~from_version =
  let ivar = Ivar.create t.engine () in
  t.fetch_waiter <- Some ivar;
  send t
    ~dst:t.certifiers.(t.target)
    (Types.Fetch_request { fetch_replica = replica; from_version });
  Engine.schedule_after t.engine t.timeout (fun () -> ignore (Ivar.try_fill ivar None));
  let result = Ivar.read ivar in
  t.fetch_waiter <- None;
  if result = None then rotate_target t None;
  result

let handle t msg =
  match msg with
  | Types.Cert_reply reply -> (
      match Hashtbl.find_opt t.pending reply.req_id with
      | Some ivar -> ignore (Ivar.try_fill ivar (Reply reply))
      | None -> ())
  | Types.Cert_redirect { req_id; leader } -> (
      match Hashtbl.find_opt t.pending req_id with
      | Some ivar -> ignore (Ivar.try_fill ivar (Redirect leader))
      | None -> ())
  | Types.Fetch_reply reply -> (
      match t.fetch_waiter with
      | Some ivar -> ignore (Ivar.try_fill ivar (Some reply))
      | None -> ())
  | Types.Cert_request _ | Types.Fetch_request _ | Types.Paxos _ -> ()

let requests_sent t = Stats.Counter.value t.sent
let retries t = Stats.Counter.value t.retry_count

(** Proxy-side client for the certifier group: leader discovery, retries
    with timeouts (surviving certifier crashes and elections), and routing
    of replies back to waiting fibers. *)

type t

val create :
  Sim.Engine.t ->
  net:Types.message Net.Network.t ->
  my_addr:string ->
  certifiers:string list ->
  ?timeout:Sim.Time.t ->
  req_id_base:int ->
  unit ->
  t
(** [req_id_base] makes request ids globally unique across replicas (ids
    are [req_id_base + n]). Does not register any endpoint: the owner must
    route {!Types.Cert_reply}, {!Types.Cert_redirect} and
    {!Types.Fetch_reply} messages arriving at [my_addr] to {!handle}. *)

val certify :
  t -> start_version:int -> replica_version:int -> Mvcc.Writeset.t -> Types.cert_reply
(** Blocking: sends the certification request to the presumed leader and
    keeps retrying (same request id, so retries are idempotent) across
    redirects, timeouts and certifier failovers until a reply arrives. *)

val fetch : t -> replica:string -> from_version:int -> Types.fetch_reply option
(** Blocking, single timeout: used by the bounded-staleness refresher;
    [None] on timeout. *)

val handle : t -> Types.message -> unit

val requests_sent : t -> int
val retries : t -> int

lib/core/types.mli: Format Mvcc Paxos

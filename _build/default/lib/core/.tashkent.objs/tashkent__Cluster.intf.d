lib/core/cluster.mli: Certifier Mvcc Net Replica Sim Types

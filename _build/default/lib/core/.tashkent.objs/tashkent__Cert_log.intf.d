lib/core/cert_log.mli: Mvcc Types

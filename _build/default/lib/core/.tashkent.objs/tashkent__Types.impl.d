lib/core/types.ml: Format List Mvcc Paxos

lib/core/certifier.ml: Cert_log Engine Hashtbl Lazy List Mailbox Mvcc Net Paxos Resource Rng Sim Stats Storage String Time Types

lib/core/cluster.ml: Cert_log Certifier Engine List Mvcc Net Printf Proxy Replica Rng Sim Storage String Time Types

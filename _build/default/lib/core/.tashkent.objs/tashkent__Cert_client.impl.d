lib/core/cert_client.ml: Array Engine Hashtbl Ivar Net Sim Stats String Time Types

lib/core/replica.mli: Mvcc Net Proxy Sim Storage Types

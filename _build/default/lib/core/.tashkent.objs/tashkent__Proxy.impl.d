lib/core/proxy.ml: Cert_client Engine Format Hashtbl Ivar List Mailbox Mvcc Net Option Resource Sim Stats Time Types

lib/core/cert_log.ml: Array Key List Mvcc Printf Types Writeset

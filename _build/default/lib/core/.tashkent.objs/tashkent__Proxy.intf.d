lib/core/proxy.mli: Format Mvcc Net Sim Types

lib/core/replica.ml: Engine List Mvcc Proxy Resource Rng Sim Storage Time Types

lib/core/certifier.mli: Cert_log Net Paxos Sim Types

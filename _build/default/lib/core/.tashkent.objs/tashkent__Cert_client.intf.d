lib/core/cert_client.mli: Mvcc Net Sim Types

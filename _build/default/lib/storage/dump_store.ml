type 'state copy = { version : int; bytes : int; state : 'state; mutable intact : bool }

type 'state t = { keep : int; mutable copies : 'state copy list (* newest first *) }

let create ?(keep = 2) () =
  if keep < 1 then invalid_arg "Dump_store.create: keep must be >= 1";
  { keep; copies = [] }

let take n xs =
  let rec loop n xs acc =
    match (n, xs) with
    | 0, _ | _, [] -> List.rev acc
    | n, x :: rest -> loop (n - 1) rest (x :: acc)
  in
  loop n xs []

let put t ~version ~bytes state =
  t.copies <- take t.keep ({ version; bytes; state; intact = true } :: t.copies)

let invalidate_latest t =
  match t.copies with [] -> () | newest :: _ -> newest.intact <- false

let latest t =
  let rec first_intact = function
    | [] -> None
    | c :: rest -> if c.intact then Some (c.version, c.bytes, c.state) else first_intact rest
  in
  first_intact t.copies

let count t = List.length t.copies

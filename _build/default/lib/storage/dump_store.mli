(** Backup copies of a database for middleware-driven recovery.

    Tashkent-MW (paper §7.1 case 1) periodically asks the replica database
    for a complete dump and keeps the last two copies: if the database
    crashes while writing the newest dump, the previous one is still intact.
    Each dump records the replica version it reflects so that recovery knows
    which remote writesets to replay afterwards. *)

type 'state t

val create : ?keep:int -> unit -> 'state t
(** [keep] is the number of retained copies, default 2 (the paper's
    scheme). *)

val put : 'state t -> version:int -> bytes:int -> 'state -> unit
(** Store a completed dump. Older copies beyond [keep] are discarded. *)

val invalidate_latest : 'state t -> unit
(** Mark the newest copy corrupt — models a crash in the middle of taking a
    dump; recovery then falls back to the previous copy. *)

val latest : 'state t -> (int * int * 'state) option
(** [(version, bytes, state)] of the newest intact copy. *)

val count : 'state t -> int

open Sim

type config = {
  fsync_lo : Time.t;
  fsync_hi : Time.t;
  position_lo : Time.t;
  position_hi : Time.t;
  bandwidth_bytes_per_sec : float;
}

let default_hdd =
  {
    fsync_lo = Time.of_ms 6.;
    fsync_hi = Time.of_ms 12.;
    position_lo = Time.of_ms 4.;
    position_hi = Time.of_ms 9.;
    bandwidth_bytes_per_sec = 55_000_000.;
  }

let ram_config =
  {
    fsync_lo = Time.us 3;
    fsync_hi = Time.us 6;
    position_lo = Time.us 1;
    position_hi = Time.us 2;
    bandwidth_bytes_per_sec = 2_000_000_000.;
  }

type t = {
  rng : Rng.t;
  config : config;
  channel : Resource.t;
  engine : Engine.t;
  label : string;
  ram : bool;
  fsync_count : Stats.Counter.t;
  read_count : Stats.Counter.t;
  write_count : Stats.Counter.t;
  synced_bytes : Stats.Counter.t;
}

let create engine ~rng ?(config = default_hdd) ?(name = "disk") () =
  {
    rng;
    config;
    channel = Resource.create engine ~name ~capacity:1 ();
    engine;
    label = name;
    ram = false;
    fsync_count = Stats.Counter.create ();
    read_count = Stats.Counter.create ();
    write_count = Stats.Counter.create ();
    synced_bytes = Stats.Counter.create ();
  }

let create_ram engine ~rng ?(name = "ramdisk") () =
  { (create engine ~rng ~config:ram_config ~name ()) with ram = true }

let name t = t.label
let is_ram t = t.ram

let transfer_time t bytes =
  Time.of_sec (float_of_int bytes /. t.config.bandwidth_bytes_per_sec)

let occupy t duration = Resource.use t.channel duration

let fsync t ~bytes =
  let latency = Rng.time_uniform t.rng ~lo:t.config.fsync_lo ~hi:t.config.fsync_hi in
  occupy t (Time.add latency (transfer_time t bytes));
  Stats.Counter.incr t.fsync_count;
  Stats.Counter.add t.synced_bytes bytes

let page_io t counter ~bytes =
  let latency =
    Rng.time_uniform t.rng ~lo:t.config.position_lo ~hi:t.config.position_hi
  in
  occupy t (Time.add latency (transfer_time t bytes));
  Stats.Counter.incr counter

let read t ~bytes = page_io t t.read_count ~bytes
let write t ~bytes = page_io t t.write_count ~bytes

let fsyncs t = Stats.Counter.value t.fsync_count
let reads t = Stats.Counter.value t.read_count
let writes t = Stats.Counter.value t.write_count
let bytes_synced t = Stats.Counter.value t.synced_bytes
let utilization t = Resource.utilization t.channel
let queue_length t = Resource.queue_length t.channel

let reset_stats t =
  Stats.Counter.reset t.fsync_count;
  Stats.Counter.reset t.read_count;
  Stats.Counter.reset t.write_count;
  Stats.Counter.reset t.synced_bytes

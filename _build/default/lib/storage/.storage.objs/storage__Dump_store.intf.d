lib/storage/dump_store.mli:

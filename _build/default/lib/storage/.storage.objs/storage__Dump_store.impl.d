lib/storage/dump_store.ml: List

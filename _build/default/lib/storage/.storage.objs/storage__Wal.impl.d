lib/storage/wal.ml: Array Disk Engine List Obj Sim Stats Time

lib/storage/disk.ml: Engine Resource Rng Sim Stats Time

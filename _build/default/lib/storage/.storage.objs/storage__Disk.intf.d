lib/storage/disk.mli: Sim

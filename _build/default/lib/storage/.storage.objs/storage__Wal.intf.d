lib/storage/wal.mli: Disk Sim

(** Durable acceptor state records. *)

type 'v entry_value = Noop | Value of 'v
(** What a consensus slot can hold: a client value, or a no-op used by a
    new leader to fill gaps. *)

type 'v t =
  | Promised of Ballot.t
  | Accepted of { slot : int; ballot : Ballot.t; value : 'v entry_value }

val bytes : ('v -> int) -> 'v t -> int

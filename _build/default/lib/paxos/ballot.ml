type t = { round : int; node : string }

let initial = { round = 0; node = "" }
let make ~round ~node = { round; node }
let next t ~node = { round = t.round + 1; node }

let compare a b =
  match Int.compare a.round b.round with
  | 0 -> String.compare a.node b.node
  | c -> c

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let pp fmt t = Format.fprintf fmt "%d.%s" t.round t.node

(** Paxos ballot numbers: a round counter with the proposing node's id as a
    tie-breaker, totally ordered. *)

type t = { round : int; node : string }

val initial : t
(** Smaller than any ballot a node can propose. *)

val make : round:int -> node:string -> t
val next : t -> node:string -> t
(** A ballot strictly greater than [t], owned by [node]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val pp : Format.formatter -> t -> unit

lib/paxos/node.mli: Ballot Format Sim Storage Wal_record

lib/paxos/ballot.ml: Format Int String

lib/paxos/ballot.mli: Format

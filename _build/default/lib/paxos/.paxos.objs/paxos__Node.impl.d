lib/paxos/node.ml: Ballot Engine Format Hashtbl List Rng Sim Storage Time Wal_record

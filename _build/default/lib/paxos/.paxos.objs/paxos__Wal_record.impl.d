lib/paxos/wal_record.ml: Ballot

lib/paxos/wal_record.mli: Ballot

type 'v entry_value = Noop | Value of 'v

type 'v t =
  | Promised of Ballot.t
  | Accepted of { slot : int; ballot : Ballot.t; value : 'v entry_value }

let bytes value_bytes = function
  | Promised _ -> 16
  | Accepted { value = Noop; _ } -> 24
  | Accepted { value = Value v; _ } -> 24 + value_bytes v

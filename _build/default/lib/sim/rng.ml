type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let int_in_range t ~lo ~hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t =
  (* 53 random bits mapped to [0, 1). *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.

let uniform t ~lo ~hi = lo +. (float t *. (hi -. lo))
let bool t = Int64.logand (bits64 t) 1L = 1L
let chance t p = float t < p

let exponential t ~mean =
  let u = 1. -. float t in
  -.mean *. log u

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let time_uniform t ~lo ~hi =
  Time.of_us (int_in_range t ~lo:(Time.to_us lo) ~hi:(Time.to_us hi))

let time_exponential t ~mean =
  Time.of_us (int_of_float (exponential t ~mean:(float_of_int (Time.to_us mean))))

open Effect
open Effect.Deep

exception Cancelled
exception Stalled of string

type fiber = {
  fid : int;
  name : string;
  mutable cancelled : bool;
  mutable finished : bool;
  mutable join_waiters : (unit -> unit) list;
}

type event = { time : Time.t; seq : int; run : unit -> unit }

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable next_fid : int;
  mutable processed : int;
  mutable blocked_fibers : int;
  queue : event Heap.t;
}

(* The effect performed by all blocking operations: [register] receives the
   current fiber and a one-shot resume function. *)
type _ Effect.t += Suspend : (fiber -> ('a -> unit) -> unit) -> 'a Effect.t

let event_leq a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)
let create () =
  {
    clock = Time.zero;
    seq = 0;
    next_fid = 0;
    processed = 0;
    blocked_fibers = 0;
    queue = Heap.create ~leq:event_leq ();
  }

let now t = t.clock
let events_processed t = t.processed
let pending_events t = Heap.length t.queue

let schedule t ~at run =
  if Time.( < ) at t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule: at=%s is before now=%s" (Time.to_string at)
         (Time.to_string t.clock));
  t.seq <- t.seq + 1;
  Heap.push t.queue { time = at; seq = t.seq; run }

let schedule_after t span run = schedule t ~at:(Time.add t.clock span) run

let finish_fiber t fiber =
  fiber.finished <- true;
  let waiters = List.rev fiber.join_waiters in
  fiber.join_waiters <- [];
  List.iter (fun w -> schedule t ~at:t.clock w) waiters

let spawn t ?(name = "fiber") body =
  t.next_fid <- t.next_fid + 1;
  let fiber =
    { fid = t.next_fid; name; cancelled = false; finished = false; join_waiters = [] }
  in
  let handler : (unit, unit) handler =
    {
      retc = (fun () -> finish_fiber t fiber);
      exnc =
        (fun e ->
          match e with
          | Cancelled -> finish_fiber t fiber
          | e ->
              finish_fiber t fiber;
              raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Suspend register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  let resumed = ref false in
                  t.blocked_fibers <- t.blocked_fibers + 1;
                  let resume (v : a) =
                    if not !resumed then begin
                      resumed := true;
                      t.blocked_fibers <- t.blocked_fibers - 1;
                      if fiber.cancelled then discontinue k Cancelled else continue k v
                    end
                  in
                  register fiber resume)
          | _ -> None);
    }
  in
  let start () = if not fiber.cancelled then match_with body () handler in
  schedule t ~at:t.clock start;
  fiber

let cancel _t fiber = if not fiber.finished then fiber.cancelled <- true
let fiber_alive fiber = not (fiber.finished || fiber.cancelled)
let fiber_name fiber = Printf.sprintf "%s#%d" fiber.name fiber.fid
let suspend2 (_ : t) register = perform (Suspend register)
let suspend t register = suspend2 t (fun _fiber resume -> register resume)

let sleep t span =
  if Time.is_zero span then ()
  else suspend t (fun resume -> schedule_after t span (fun () -> resume ()))

let yield t = suspend t (fun resume -> schedule t ~at:t.clock (fun () -> resume ()))

let join t fiber =
  if not fiber.finished then
    suspend t (fun resume -> fiber.join_waiters <- (fun () -> resume ()) :: fiber.join_waiters)

let run ?until ?(stop_when_idle = true) t =
  let within_limit time =
    match until with None -> true | Some limit -> Time.( <= ) time limit
  in
  let rec loop () =
    match Heap.peek t.queue with
    | None ->
        if (not stop_when_idle) && t.blocked_fibers > 0 then
          raise
            (Stalled
               (Printf.sprintf "event queue empty with %d fiber(s) still blocked"
                  t.blocked_fibers))
    | Some ev when not (within_limit ev.time) -> (
        (* Leave future events queued; advance the clock to the limit. *)
        match until with None -> () | Some limit -> t.clock <- Time.max t.clock limit)
    | Some _ ->
        let ev = Heap.pop_exn t.queue in
        t.clock <- ev.time;
        t.processed <- t.processed + 1;
        ev.run ();
        loop ()
  in
  loop ()

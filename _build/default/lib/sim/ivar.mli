(** Write-once synchronisation variable (future/promise).

    The canonical request/reply device: a client embeds a fresh ivar in a
    request message and blocks on {!read}; the server {!fill}s it. *)

type 'a t

val create : Engine.t -> unit -> 'a t

val fill : 'a t -> 'a -> unit
(** @raise Invalid_argument if already filled. *)

val try_fill : 'a t -> 'a -> bool
(** Like {!fill} but returns [false] instead of raising. *)

val is_filled : 'a t -> bool
val peek : 'a t -> 'a option

val read : 'a t -> 'a
(** Block until filled (immediate if already filled). *)

type 'a t = {
  engine : Engine.t;
  label : string;
  msgs : 'a Queue.t;
  waiters : (Engine.fiber * ('a -> unit)) Queue.t;
}

let create engine ?(name = "mailbox") () =
  { engine; label = name; msgs = Queue.create (); waiters = Queue.create () }

let name t = t.label

(* Pop the first waiter whose fiber is still alive and not cancelled. *)
let rec pop_live_waiter t =
  match Queue.take_opt t.waiters with
  | None -> None
  | Some (fiber, resume) ->
      if Engine.fiber_alive fiber then Some resume else pop_live_waiter t

let send t msg =
  match pop_live_waiter t with
  | Some resume -> Engine.schedule_after t.engine Time.zero (fun () -> resume msg)
  | None -> Queue.add msg t.msgs

let recv t =
  match Queue.take_opt t.msgs with
  | Some msg -> msg
  | None ->
      Engine.suspend2 t.engine (fun fiber resume -> Queue.add (fiber, resume) t.waiters)

let try_recv t = Queue.take_opt t.msgs

let recv_batch t =
  let first = recv t in
  let rec drain acc =
    match Queue.take_opt t.msgs with None -> List.rev acc | Some m -> drain (m :: acc)
  in
  drain [ first ]

let length t = Queue.length t.msgs
let is_empty t = Queue.is_empty t.msgs
let clear t = Queue.clear t.msgs

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
  let reset t = t.n <- 0
end

module Summary = struct
  type t = {
    mutable n : int;
    mutable total : float;
    mutable mean_acc : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () =
    { n = 0; total = 0.; mean_acc = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

  let observe t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    let delta = x -. t.mean_acc in
    t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
    if x < t.lo then t.lo <- x;
    if x > t.hi then t.hi <- x

  let count t = t.n
  let sum t = t.total
  let mean t = if t.n = 0 then 0. else t.mean_acc
  let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
  let min t = if t.n = 0 then 0. else t.lo
  let max t = if t.n = 0 then 0. else t.hi

  let reset t =
    t.n <- 0;
    t.total <- 0.;
    t.mean_acc <- 0.;
    t.m2 <- 0.;
    t.lo <- infinity;
    t.hi <- neg_infinity
end

module Histogram = struct
  (* Bucket i covers [base^i, base^(i+1)); values below 1.0 land in a
     dedicated underflow bucket. *)
  type t = {
    base : float;
    log_base : float;
    mutable buckets : int array;
    mutable underflow : int;
    mutable n : int;
    mutable total : float;
  }

  let create ?(precision = 0.05) () =
    let base = 1. +. (2. *. precision) in
    { base; log_base = log base; buckets = Array.make 64 0; underflow = 0; n = 0; total = 0. }

  let bucket_of t x = int_of_float (log x /. t.log_base)

  let ensure t i =
    if i >= Array.length t.buckets then begin
      let bigger = Array.make (max (i + 1) (2 * Array.length t.buckets)) 0 in
      Array.blit t.buckets 0 bigger 0 (Array.length t.buckets);
      t.buckets <- bigger
    end

  let observe t x =
    t.n <- t.n + 1;
    t.total <- t.total +. x;
    if x < 1. then t.underflow <- t.underflow + 1
    else begin
      let i = bucket_of t x in
      ensure t i;
      t.buckets.(i) <- t.buckets.(i) + 1
    end

  let observe_time t span = observe t (float_of_int (Time.to_us span))
  let count t = t.n
  let mean t = if t.n = 0 then 0. else t.total /. float_of_int t.n

  let percentile t p =
    if t.n = 0 then 0.
    else begin
      let target = Float.max 1. (Float.round (p *. float_of_int t.n)) in
      let target = int_of_float target in
      if t.underflow >= target then 0.5
      else begin
        let seen = ref t.underflow in
        let result = ref 0. in
        (try
           Array.iteri
             (fun i c ->
               seen := !seen + c;
               if !seen >= target then begin
                 (* Midpoint of bucket i. *)
                 result := (t.base ** float_of_int i) *. (1. +. t.base) /. 2.;
                 raise Exit
               end)
             t.buckets
         with Exit -> ());
        !result
      end
    end

  let median t = percentile t 0.5

  let reset t =
    Array.fill t.buckets 0 (Array.length t.buckets) 0;
    t.underflow <- 0;
    t.n <- 0;
    t.total <- 0.
end

module Rate = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let tick t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let count t = t.n

  let per_sec t ~window =
    let secs = Time.to_sec window in
    if secs <= 0. then 0. else float_of_int t.n /. secs

  let reset t = t.n <- 0
end

(** Simulated time.

    A single abstract type represents both instants (time since the start of
    the simulation) and durations. The unit is the microsecond, carried in a
    native [int]; on 64-bit platforms this covers ~292k years of simulated
    time, far beyond any experiment. *)

type t

val zero : t
val is_zero : t -> bool

(** {1 Construction} *)

val of_us : int -> t
val of_ms : float -> t
val of_sec : float -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

(** {1 Deconstruction} *)

val to_us : t -> int
val to_ms : t -> float
val to_sec : t -> float

(** {1 Arithmetic} *)

val add : t -> t -> t
val sub : t -> t -> t

val diff : t -> t -> t
(** [diff later earlier] is [later - earlier]. *)

val scale : t -> float -> t
val mul : t -> int -> t
val div : t -> int -> t

val ratio : t -> t -> float
(** [ratio a b] is [a /. b] as a float; [b] must be non-zero. *)

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (µs, ms, s). *)

val to_string : t -> string

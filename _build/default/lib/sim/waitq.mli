(** Condition-variable-style wait queue.

    Fibers park with {!wait}; other code wakes one or all of them. Unlike a
    mailbox there is no value transfer and no memory: a signal with no waiter
    is lost, so callers must re-check their predicate after waking. *)

type t

val create : Engine.t -> ?name:string -> unit -> t
val name : t -> string
val wait : t -> unit
val signal : t -> unit

val broadcast : t -> unit
val waiters : t -> int

(** FIFO resource with a fixed number of servers.

    Models CPUs, disk channels and other contended devices. Requests are
    served strictly in arrival order. Utilisation is tracked as the
    time-integral of busy servers. *)

type t

val create : Engine.t -> ?name:string -> capacity:int -> unit -> t
val name : t -> string
val capacity : t -> int

val acquire : t -> unit
(** Block until a server is free, then hold it. *)

val release : t -> unit
(** @raise Invalid_argument if nothing is held. *)

val use : t -> Time.t -> unit
(** [use t d] acquires a server, holds it for [d] of simulated time, and
    releases it: the basic "occupy this device for a service time" step. *)

val with_held : t -> (unit -> 'a) -> 'a
(** Acquire, run the thunk (which may itself block), release — even if the
    thunk raises. *)

val in_use : t -> int
val queue_length : t -> int

val utilization : t -> float
(** Mean fraction of servers busy from creation until now. *)

val busy_time : t -> Time.t
(** Total busy server-time accumulated so far. *)

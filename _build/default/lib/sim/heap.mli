(** Array-backed binary min-heap.

    The ordering function is supplied at creation time. Used by the event
    queue; kept generic so other components (e.g. timer wheels in tests) can
    reuse it. *)

type 'a t

val create : ?initial_capacity:int -> leq:('a -> 'a -> bool) -> unit -> 'a t
(** [leq a b] must hold when [a] sorts no later than [b]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
val pop : 'a t -> 'a option

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in arbitrary order. *)

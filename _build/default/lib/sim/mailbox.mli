(** Unbounded FIFO message queue between fibers.

    [send] never blocks; [recv] blocks until a message is available. Messages
    are delivered in send order; competing receivers are served in arrival
    order. Cancelled receivers are skipped without consuming a message. *)

type 'a t

val create : Engine.t -> ?name:string -> unit -> 'a t
val name : 'a t -> string

val send : 'a t -> 'a -> unit

val recv : 'a t -> 'a
(** Blocking; must run inside a fiber. *)

val try_recv : 'a t -> 'a option

val recv_batch : 'a t -> 'a list
(** Blocks until at least one message is available, then drains the queue.
    Used to model batching servers (group commit, certifier). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Drop all queued messages (crash modelling). Parked receivers stay
    parked. *)

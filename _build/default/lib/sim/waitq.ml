type t = {
  engine : Engine.t;
  label : string;
  queue : (Engine.fiber * (unit -> unit)) Queue.t;
}

let create engine ?(name = "waitq") () = { engine; label = name; queue = Queue.create () }
let name t = t.label

let wait t =
  Engine.suspend2 t.engine (fun fiber resume -> Queue.add (fiber, resume) t.queue)

let rec signal t =
  match Queue.take_opt t.queue with
  | None -> ()
  | Some (fiber, resume) ->
      if Engine.fiber_alive fiber then
        Engine.schedule_after t.engine Time.zero (fun () -> resume ())
      else signal t

let broadcast t =
  let pending = Queue.length t.queue in
  for _ = 1 to pending do
    signal t
  done

let waiters t = Queue.length t.queue

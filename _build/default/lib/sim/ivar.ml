type 'a state = Empty of ('a -> unit) list | Full of 'a

type 'a t = { engine : Engine.t; mutable state : 'a state }

let create engine () = { engine; state = Empty [] }

let try_fill t v =
  match t.state with
  | Full _ -> false
  | Empty waiters ->
      t.state <- Full v;
      List.iter
        (fun resume -> Engine.schedule_after t.engine Time.zero (fun () -> resume v))
        (List.rev waiters);
      true

let fill t v = if not (try_fill t v) then invalid_arg "Ivar.fill: already filled"
let is_filled t = match t.state with Full _ -> true | Empty _ -> false
let peek t = match t.state with Full v -> Some v | Empty _ -> None

let read t =
  match t.state with
  | Full v -> v
  | Empty _ ->
      Engine.suspend t.engine (fun resume ->
          match t.state with
          | Full v -> resume v
          | Empty waiters -> t.state <- Empty (resume :: waiters))

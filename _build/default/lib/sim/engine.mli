(** Deterministic discrete-event simulation engine.

    The engine maintains a virtual clock and a priority queue of events.
    Concurrent activities are written as {e fibers}: ordinary OCaml functions
    that may block on simulated operations (sleeping, waiting for a message,
    acquiring a resource). Blocking is implemented with OCaml 5 effects, so
    fiber code reads like straight-line systems code.

    Determinism: events scheduled for the same instant run in FIFO order of
    scheduling (a monotonically increasing sequence number breaks ties), and
    all randomness comes from explicit {!Rng.t} values. Two runs with the same
    seeds produce identical traces. *)

type t

type fiber
(** Handle on a spawned fiber. *)

exception Cancelled
(** Raised inside a fiber when it is resumed after {!cancel}. Fiber code
    normally does not observe it: the engine swallows it at the fiber's
    top level, but [Fun.protect] finalisers do run. *)

exception Stalled of string
(** Raised by {!run} when [stop_when_idle] is false and the event queue
    drains while fibers are still blocked (a lost-wakeup bug in the model). *)

val create : unit -> t

(** {1 Clock and events} *)

val now : t -> Time.t
val events_processed : t -> int

val schedule : t -> at:Time.t -> (unit -> unit) -> unit
(** Run a callback at an absolute instant (must not be in the past). *)

val schedule_after : t -> Time.t -> (unit -> unit) -> unit

(** {1 Fibers} *)

val spawn : t -> ?name:string -> (unit -> unit) -> fiber
(** Create a fiber; it starts when the engine next reaches the current
    instant in its event loop. *)

val cancel : t -> fiber -> unit
(** Request cancellation. A running fiber is unaffected until it next
    blocks; a blocked fiber is discarded at its next (attempted) resume.
    Cancelling a finished fiber is a no-op. *)

(** [fiber_alive f] is false once the fiber has finished or has been asked
    to cancel. *)
val fiber_alive : fiber -> bool
val fiber_name : fiber -> string

(** {1 Blocking operations (must be called from inside a fiber)} *)

val sleep : t -> Time.t -> unit
val yield : t -> unit

val suspend : t -> (('a -> unit) -> unit) -> 'a
(** [suspend t register] parks the current fiber and calls
    [register resume]. The fiber continues, with the value passed, when
    [resume] is invoked (from an event callback or another fiber). [resume]
    must be called at most once; later calls are ignored. If the fiber was
    cancelled while parked, [resume] discards the fiber instead. *)

val suspend2 : t -> (fiber -> ('a -> unit) -> unit) -> 'a
(** Like {!suspend} but also hands the current fiber to [register], letting
    synchronisation structures skip waiters that have been cancelled. *)

val join : t -> fiber -> unit
(** Block until the fiber finishes (normally or by cancellation). *)

(** {1 Running} *)

val run : ?until:Time.t -> ?stop_when_idle:bool -> t -> unit
(** Process events in order. Stops when the clock would pass [until]
    (default: never), or when the queue is empty. With
    [stop_when_idle:false] (the default is [true]) an empty queue while
    fibers are still blocked raises {!Stalled} — useful to catch lost
    wakeups in tests. Exceptions escaping a fiber or callback propagate out
    of [run]. *)

val pending_events : t -> int

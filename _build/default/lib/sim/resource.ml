type t = {
  engine : Engine.t;
  label : string;
  cap : int;
  mutable busy : int;
  waiters : (Engine.fiber * (unit -> unit)) Queue.t;
  created_at : Time.t;
  mutable last_change : Time.t;
  mutable busy_integral : Time.t; (* sum of busy * dt *)
}

let create engine ?(name = "resource") ~capacity () =
  if capacity <= 0 then invalid_arg "Resource.create: capacity must be positive";
  {
    engine;
    label = name;
    cap = capacity;
    busy = 0;
    waiters = Queue.create ();
    created_at = Engine.now engine;
    last_change = Engine.now engine;
    busy_integral = Time.zero;
  }

let name t = t.label
let capacity t = t.cap

let account t =
  let now = Engine.now t.engine in
  let dt = Time.diff now t.last_change in
  t.busy_integral <- Time.add t.busy_integral (Time.mul dt t.busy);
  t.last_change <- now

let grant t =
  account t;
  t.busy <- t.busy + 1

let acquire t =
  if t.busy < t.cap && Queue.is_empty t.waiters then grant t
  else
    Engine.suspend2 t.engine (fun fiber resume -> Queue.add (fiber, resume) t.waiters)

let rec wake_next t =
  match Queue.take_opt t.waiters with
  | None -> ()
  | Some (fiber, resume) ->
      if Engine.fiber_alive fiber then begin
        grant t;
        Engine.schedule_after t.engine Time.zero (fun () -> resume ())
      end
      else wake_next t

let release t =
  if t.busy <= 0 then invalid_arg "Resource.release: not held";
  account t;
  t.busy <- t.busy - 1;
  wake_next t

let use t duration =
  (* The holder can be cancelled mid-service (e.g. a crashed replica's
     client); the server must still be released. *)
  acquire t;
  Fun.protect
    ~finally:(fun () -> release t)
    (fun () -> Engine.sleep t.engine duration)

let with_held t f =
  acquire t;
  Fun.protect ~finally:(fun () -> release t) f

let in_use t = t.busy
let queue_length t = Queue.length t.waiters

let busy_time t =
  account t;
  t.busy_integral

let utilization t =
  let elapsed = Time.diff (Engine.now t.engine) t.created_at in
  if Time.is_zero elapsed then 0.
  else Time.ratio (busy_time t) (Time.mul elapsed t.cap)

lib/sim/engine.ml: Effect Heap List Printf Time

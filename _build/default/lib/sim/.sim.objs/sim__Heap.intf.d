lib/sim/heap.mli:

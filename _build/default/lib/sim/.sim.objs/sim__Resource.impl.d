lib/sim/resource.ml: Engine Fun Queue Time

(** Deterministic pseudo-random number generator (splitmix64).

    Each simulation component draws from its own generator so that runs are
    reproducible regardless of event interleaving, and so that adding a new
    random consumer does not perturb the streams of existing ones. *)

type t

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val split : t -> t
(** Derive an independent generator; deterministic given the parent state. *)

val copy : t -> t

(** {1 Draws} *)

val bits64 : t -> int64

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); [bound] must be > 0. *)

val int_in_range : t -> lo:int -> hi:int -> int
(** Inclusive range. *)

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed positive float with the given mean. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit

val time_uniform : t -> lo:Time.t -> hi:Time.t -> Time.t
(** Uniform duration in the inclusive range. *)

val time_exponential : t -> mean:Time.t -> Time.t

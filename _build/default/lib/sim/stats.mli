(** Measurement primitives: counters, summaries, latency histograms.

    All are cheap enough to keep on hot paths of the simulation. *)

module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val reset : t -> unit
end

module Summary : sig
  (** Online mean/min/max/variance (Welford). *)

  type t

  val create : unit -> t
  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val reset : t -> unit
end

module Histogram : sig
  (** Exponentially-bucketed histogram of positive values (e.g. response
      times in µs). Relative bucket error is bounded by [precision]. *)

  type t

  val create : ?precision:float -> unit -> t
  (** [precision] is the per-decade growth control; default gives ~5%
      relative error. *)

  val observe : t -> float -> unit
  val observe_time : t -> Time.t -> unit
  val count : t -> int
  val mean : t -> float

  val percentile : t -> float -> float
  (** [percentile t 0.99]; 0 when empty. *)

  val median : t -> float
  val reset : t -> unit
end

module Rate : sig
  (** Events per second over an explicit observation window. *)

  type t

  val create : unit -> t
  val tick : t -> unit
  val add : t -> int -> unit
  val count : t -> int

  val per_sec : t -> window:Time.t -> float
  val reset : t -> unit
end

type t = int

let zero = 0
let is_zero t = t = 0
let of_us us = us
let of_ms msec = int_of_float (msec *. 1_000.)
let of_sec s = int_of_float (s *. 1_000_000.)
let us n = n
let ms n = n * 1_000
let sec n = n * 1_000_000
let to_us t = t
let to_ms t = float_of_int t /. 1_000.
let to_sec t = float_of_int t /. 1_000_000.
let add = ( + )
let sub = ( - )
let diff later earlier = later - earlier
let scale t f = int_of_float (float_of_int t *. f)
let mul t n = t * n
let div t n = t / n

let ratio a b =
  assert (b <> 0);
  float_of_int a /. float_of_int b

let compare = Int.compare
let equal = Int.equal
let ( < ) (a : t) b = Stdlib.( < ) a b
let ( <= ) (a : t) b = Stdlib.( <= ) a b
let ( > ) (a : t) b = Stdlib.( > ) a b
let ( >= ) (a : t) b = Stdlib.( >= ) a b
let min (a : t) b = Stdlib.min a b
let max (a : t) b = Stdlib.max a b

let pp fmt t =
  if t >= 1_000_000 then Format.fprintf fmt "%.3fs" (to_sec t)
  else if t >= 1_000 then Format.fprintf fmt "%.3fms" (to_ms t)
  else Format.fprintf fmt "%dus" t

let to_string t = Format.asprintf "%a" pp t

type 'a t = {
  leq : 'a -> 'a -> bool;
  mutable items : 'a array;
  mutable size : int;
}

(* Empty slots hold an inert dummy ([Obj.magic 0]) so the array can exist
   before any element is pushed; slots beyond [size] are never read. The
   dummy is an immediate, so the array is never specialised as a float
   array. *)
let create ?(initial_capacity = 64) ~leq () =
  { leq; items = Array.make (max 1 initial_capacity) (Obj.magic 0); size = 0 }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let items = Array.make (2 * Array.length t.items) t.items.(0) in
  Array.blit t.items 0 items 0 t.size;
  t.items <- items

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if not (t.leq t.items.(parent) t.items.(i)) then begin
      let tmp = t.items.(parent) in
      t.items.(parent) <- t.items.(i);
      t.items.(i) <- tmp;
      sift_up t parent
    end
  end

let push t x =
  if t.size = Array.length t.items then grow t;
  t.items.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < t.size && not (t.leq t.items.(i) t.items.(l)) then l else i in
  let smallest =
    if r < t.size && not (t.leq t.items.(smallest) t.items.(r)) then r else smallest
  in
  if smallest <> i then begin
    let tmp = t.items.(smallest) in
    t.items.(smallest) <- t.items.(i);
    t.items.(i) <- tmp;
    sift_down t smallest
  end

let peek t = if t.size = 0 then None else Some t.items.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.items.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.items.(0) <- t.items.(t.size);
      sift_down t 0
    end;
    t.items.(t.size) <- Obj.magic 0;
    Some top
  end

let pop_exn t =
  match pop t with
  | Some x -> x
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear t =
  for i = 0 to t.size - 1 do
    t.items.(i) <- Obj.magic 0
  done;
  t.size <- 0

let to_list t =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (t.items.(i) :: acc) in
  loop (t.size - 1) []

lib/net/network.ml: Engine Hashtbl Mailbox Printf Rng Sim Stats Time

lib/workload/allupdates.mli: Spec

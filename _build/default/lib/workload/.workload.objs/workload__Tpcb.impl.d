lib/workload/tpcb.ml: Hashtbl List Mvcc Option Printf Rng Sim Spec String Time

lib/workload/tpcw.mli: Spec

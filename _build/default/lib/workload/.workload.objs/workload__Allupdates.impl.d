lib/workload/allupdates.ml: List Mvcc Printf Rng Sim Spec Time

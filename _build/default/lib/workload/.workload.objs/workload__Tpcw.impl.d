lib/workload/tpcw.ml: Hashtbl List Mvcc Option Printf Rng Sim Spec String Time

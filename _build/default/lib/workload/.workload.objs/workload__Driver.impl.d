lib/workload/driver.ml: Engine Mvcc Printf Resource Rng Sim Spec Stats Tashkent Time

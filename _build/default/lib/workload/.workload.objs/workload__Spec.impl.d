lib/workload/spec.ml: Mvcc Sim

lib/workload/driver.mli: Mvcc Sim Spec Tashkent

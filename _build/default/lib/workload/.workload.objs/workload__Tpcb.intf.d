lib/workload/tpcb.mli: Spec

lib/workload/spec.mli: Mvcc Sim

(** The paper's AllUpdates micro-benchmark (§9.1): clients issue
    back-to-back short update transactions that never conflict (each client
    writes rows in its own partition). Average writeset ≈ 54 bytes. The
    worst case for a replicated system: every transaction needs
    certification and every remote writeset must be applied everywhere. *)

val profile : ?clients_per_replica:int -> unit -> Spec.t

val rows_per_client : int
(** Size of each client's private partition. *)

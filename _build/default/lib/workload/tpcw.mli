(** TPC-W shopping mix (§9.4): an online bookstore at 20% updates.
    Transactions are CPU-heavy (the paper's bottleneck for this benchmark)
    and the database is large, so with a shared IO channel the data-page
    reads and write-backs congest the same disk as the commit log. Average
    update writeset ≈ 275 bytes.

    Browsing interactions are read-only (searches, product detail);
    updates are cart modifications and buy-confirmations that decrement the
    stock of a few items — occasionally best-sellers, giving a low real
    conflict rate. *)

val profile : ?clients_per_replica:int -> ?items:int -> unit -> Spec.t

val update_fraction : float

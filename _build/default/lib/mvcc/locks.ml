type txid = int

type lock = { mutable owner : txid; mutable queue : txid list (* oldest first *) }

type t = {
  locks : lock Key.Tbl.t;
  held : (txid, Key.Set.t) Hashtbl.t;
  (* wait-for edge: waiter -> (key it waits on). The holder is looked up
     through the lock so the edge stays correct as ownership changes. *)
  waits : (txid, Key.t) Hashtbl.t;
}

let create () = { locks = Key.Tbl.create 256; held = Hashtbl.create 64; waits = Hashtbl.create 16 }

let holder t key =
  match Key.Tbl.find_opt t.locks key with Some l -> Some l.owner | None -> None

type acquire_result = Granted | Would_block of txid | Deadlock of txid list

let note_held t txid key =
  let set = Option.value ~default:Key.Set.empty (Hashtbl.find_opt t.held txid) in
  Hashtbl.replace t.held txid (Key.Set.add key set)

let waiting_for t txid =
  match Hashtbl.find_opt t.waits txid with
  | None -> None
  | Some key -> holder t key

(* Walk holder-of(wait-of(...)) chains from [start]; a return to [me] is a
   cycle. Chains are short (bounded by active transactions). *)
let find_cycle t ~me ~start =
  let rec walk tx acc steps =
    if steps > 10_000 then None
    else if tx = me then Some (List.rev acc)
    else
      match waiting_for t tx with
      | None -> None
      | Some next -> walk next (next :: acc) (steps + 1)
  in
  walk start [ start ] 0

let acquire t txid key =
  match Key.Tbl.find_opt t.locks key with
  | None ->
      Key.Tbl.replace t.locks key { owner = txid; queue = [] };
      note_held t txid key;
      Granted
  | Some lock when lock.owner = txid -> Granted
  | Some lock -> (
      match find_cycle t ~me:txid ~start:lock.owner with
      | Some cycle -> Deadlock (txid :: cycle)
      | None -> Would_block lock.owner)

let enqueue t txid key =
  match Key.Tbl.find_opt t.locks key with
  | None -> invalid_arg "Locks.enqueue: lock not held by anyone"
  | Some lock ->
      lock.queue <- lock.queue @ [ txid ];
      Hashtbl.replace t.waits txid key

let cancel_wait t txid key =
  Hashtbl.remove t.waits txid;
  match Key.Tbl.find_opt t.locks key with
  | None -> ()
  | Some lock -> lock.queue <- List.filter (fun w -> w <> txid) lock.queue

let release_all t txid =
  let keys = Option.value ~default:Key.Set.empty (Hashtbl.find_opt t.held txid) in
  Hashtbl.remove t.held txid;
  Key.Set.fold
    (fun key grants ->
      match Key.Tbl.find_opt t.locks key with
      | None -> grants
      | Some lock when lock.owner <> txid -> grants
      | Some lock -> (
          match lock.queue with
          | [] ->
              Key.Tbl.remove t.locks key;
              grants
          | next :: rest ->
              lock.owner <- next;
              lock.queue <- rest;
              Hashtbl.remove t.waits next;
              note_held t next key;
              (key, next) :: grants))
    keys []

let held_by t txid =
  Key.Set.elements (Option.value ~default:Key.Set.empty (Hashtbl.find_opt t.held txid))

let lock_count t = Key.Tbl.length t.locks

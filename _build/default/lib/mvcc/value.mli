(** Row payloads. A single typed column is enough for the paper's
    workloads (balances are integers, history/cart rows are opaque text). *)

type t = Int of int | Text of string

val int : int -> t
val text : string -> t

val as_int : t -> int
(** @raise Invalid_argument on a non-integer value. *)

val as_text : t -> string
val equal : t -> t -> bool
val encoded_bytes : t -> int
val pp : Format.formatter -> t -> unit

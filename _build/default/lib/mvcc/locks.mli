(** Row write-lock table with wait-for-graph deadlock detection.

    PostgreSQL-style eager write locking (paper §8.2): the first active
    transaction to write a row holds its lock until commit/abort;
    competitors queue. A cycle in the wait-for graph is a deadlock; the
    requester that would close the cycle is told so and becomes the victim.

    This module is purely logical (no blocking): the database layer parks
    fibers and calls back in here as locks are granted/released. *)

type txid = int

type t

val create : unit -> t

val holder : t -> Key.t -> txid option

type acquire_result =
  | Granted
  | Would_block of txid  (** current holder *)
  | Deadlock of txid list  (** the cycle that granting the wait would close *)

val acquire : t -> txid -> Key.t -> acquire_result
(** Grant the lock if free or already held by [txid]. Otherwise report the
    holder, or a deadlock if queueing behind that holder closes a cycle.
    [Would_block] does {e not} enqueue — call {!enqueue} to commit to
    waiting. *)

val enqueue : t -> txid -> Key.t -> unit
(** Register [txid] as waiting for the lock on [key] (FIFO). *)

val cancel_wait : t -> txid -> Key.t -> unit

val release_all : t -> txid -> (Key.t * txid) list
(** Release every lock held by [txid], granting each freed lock to its
    longest-waiting live waiter. Returns the (key, new holder) grants so
    the caller can wake the corresponding fibers. Waiters cancelled via
    {!cancel_wait} are skipped. *)

val held_by : t -> txid -> Key.t list
val waiting_for : t -> txid -> txid option
(** Which transaction [txid] is currently queued behind, if any. *)

val lock_count : t -> int

(** Identity of a row: table name plus primary key. *)

type t = { table : string; row : string }

val make : table:string -> row:string -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val encoded_bytes : t -> int
(** Size of the identity when serialised into a writeset. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Tbl : Hashtbl.S with type key = t
module Set : Set.S with type elt = t

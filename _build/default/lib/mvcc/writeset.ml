type op = Insert of Value.t | Update of Value.t | Delete

type entry = { key : Key.t; op : op }

(* Entries kept in reverse insertion order; a Key.Set mirrors them for O(1)
   membership. Writesets are small (a handful of rows), so list operations
   are fine, but intersection over two writesets uses the set. *)
type t = { rev_entries : entry list; keyset : Key.Set.t }

let empty = { rev_entries = []; keyset = Key.Set.empty }
let is_empty t = t.rev_entries = []

let add t key op =
  if Key.Set.mem key t.keyset then
    (* Supersede: replace the op in place, keeping original position. *)
    let rev_entries =
      List.map (fun e -> if Key.equal e.key key then { e with op } else e) t.rev_entries
    in
    { t with rev_entries }
  else { rev_entries = { key; op } :: t.rev_entries; keyset = Key.Set.add key t.keyset }

let singleton key op = add empty key op
let of_list l = List.fold_left (fun t (key, op) -> add t key op) empty l
let entries t = List.rev t.rev_entries
let cardinal t = List.length t.rev_entries
let keys t = List.rev_map (fun e -> e.key) t.rev_entries
let mem t key = Key.Set.mem key t.keyset

let intersects a b =
  (* Iterate the smaller writeset against the other's set. *)
  let small, large =
    if Key.Set.cardinal a.keyset <= Key.Set.cardinal b.keyset then (a, b) else (b, a)
  in
  List.exists (fun e -> Key.Set.mem e.key large.keyset) small.rev_entries

let inter_keys a b = Key.Set.elements (Key.Set.inter a.keyset b.keyset)

let union earlier later =
  List.fold_left (fun acc e -> add acc e.key e.op) earlier (entries later)

let op_bytes = function
  | Insert v | Update v -> 1 + Value.encoded_bytes v
  | Delete -> 1

let encoded_bytes t =
  List.fold_left
    (fun acc e -> acc + Key.encoded_bytes e.key + op_bytes e.op)
    8 (* header: version + count *)
    t.rev_entries

let pp_op fmt = function
  | Insert v -> Format.fprintf fmt "ins %a" Value.pp v
  | Update v -> Format.fprintf fmt "upd %a" Value.pp v
  | Delete -> Format.pp_print_string fmt "del"

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt e -> Format.fprintf fmt "%a:%a" Key.pp e.key pp_op e.op))
    (entries t)

open Sim

type t = {
  engine : Engine.t;
  mutable allocated : int;
  mutable announced_upto : int;
  mutable turnstile : Waitq.t;
}

let create engine () =
  { engine; allocated = 0; announced_upto = 0; turnstile = Waitq.create engine () }

let next_seq t =
  t.allocated <- t.allocated + 1;
  t.allocated

let rec wait_turn t n =
  if n <= 0 then invalid_arg "Commit_order.wait_turn: sequence numbers are 1-based";
  if t.announced_upto < n - 1 then begin
    Waitq.wait t.turnstile;
    wait_turn t n
  end

let announce t n =
  if n <> t.announced_upto + 1 then
    invalid_arg
      (Printf.sprintf "Commit_order.announce: got %d, expected %d" n
         (t.announced_upto + 1));
  t.announced_upto <- n;
  Waitq.broadcast t.turnstile

let announced t = t.announced_upto
let waiting t = Waitq.waiters t.turnstile

let reset t =
  t.allocated <- 0;
  t.announced_upto <- 0;
  t.turnstile <- Waitq.create t.engine ()

type t = { table : string; row : string }

let make ~table ~row = { table; row }
let equal a b = String.equal a.table b.table && String.equal a.row b.row

let compare a b =
  match String.compare a.table b.table with
  | 0 -> String.compare a.row b.row
  | c -> c

let hash t = Hashtbl.hash (t.table, t.row)
let encoded_bytes t = String.length t.table + String.length t.row + 2
let pp fmt t = Format.fprintf fmt "%s/%s" t.table t.row
let to_string t = t.table ^ "/" ^ t.row

module Key_ops = struct
  type nonrec t = t

  let equal = equal
  let compare = compare
  let hash = hash
end

module Tbl = Hashtbl.Make (Key_ops)
module Set = Set.Make (Key_ops)

type t = Int of int | Text of string

let int n = Int n
let text s = Text s

let as_int = function
  | Int n -> n
  | Text s -> invalid_arg (Printf.sprintf "Value.as_int: %S is text" s)

let as_text = function Text s -> s | Int n -> string_of_int n

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Text x, Text y -> String.equal x y
  | Int _, Text _ | Text _, Int _ -> false

let encoded_bytes = function Int _ -> 8 | Text s -> String.length s

let pp fmt = function
  | Int n -> Format.pp_print_int fmt n
  | Text s -> Format.fprintf fmt "%S" s

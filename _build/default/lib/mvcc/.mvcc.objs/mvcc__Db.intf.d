lib/mvcc/db.mli: Format Key Sim Storage Store Value Writeset

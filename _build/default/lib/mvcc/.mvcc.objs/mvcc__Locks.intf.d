lib/mvcc/locks.mli: Key

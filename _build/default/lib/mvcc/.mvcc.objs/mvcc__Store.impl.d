lib/mvcc/store.ml: Format Key List Option Printf Value Writeset

lib/mvcc/writeset.mli: Format Key Value

lib/mvcc/commit_order.mli: Sim

lib/mvcc/locks.ml: Hashtbl Key List Option

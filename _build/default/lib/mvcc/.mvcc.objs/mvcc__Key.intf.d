lib/mvcc/key.mli: Format Hashtbl Set

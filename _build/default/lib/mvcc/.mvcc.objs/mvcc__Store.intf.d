lib/mvcc/store.mli: Format Key Value Writeset

lib/mvcc/writeset.ml: Format Key List Value

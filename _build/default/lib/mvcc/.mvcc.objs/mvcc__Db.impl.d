lib/mvcc/db.ml: Commit_order Engine Format Hashtbl Int Key List Locks Option Resource Rng Sim Stats Storage Store Time Value Writeset

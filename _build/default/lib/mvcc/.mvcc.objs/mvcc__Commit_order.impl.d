lib/mvcc/commit_order.ml: Engine Printf Sim Waitq

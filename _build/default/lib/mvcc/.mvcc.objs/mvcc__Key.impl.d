lib/mvcc/key.ml: Format Hashtbl Set String

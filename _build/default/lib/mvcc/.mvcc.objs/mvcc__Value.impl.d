lib/mvcc/value.ml: Format Printf String

lib/mvcc/value.mli: Format

(* Tests for the benchmark workloads: writeset sizes and mixes match the
   paper's description, and the closed-loop driver measures correctly. *)

open Sim

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Generate n update-transaction writesets from a spec by running its
   bodies against a recording context. *)
let sample_writesets ?(n = 500) ?(n_replicas = 4) (spec : Workload.Spec.t) =
  let rng = Rng.create 99 in
  let store = Hashtbl.create 1024 in
  List.iter
    (fun (k, v) -> Hashtbl.replace store (Mvcc.Key.to_string k) v)
    (spec.initial_rows ~n_replicas);
  let out = ref [] in
  let tries = ref 0 in
  while List.length !out < n && !tries < n * 20 do
    incr tries;
    let client = Rng.int rng spec.clients_per_replica in
    let replica_ix = Rng.int rng n_replicas in
    let body = spec.new_tx ~rng ~client ~replica_ix ~n_replicas in
    let ws = ref Mvcc.Writeset.empty in
    let ctx =
      {
        Workload.Spec.read =
          (fun k -> Hashtbl.find_opt store (Mvcc.Key.to_string k));
        write = (fun k op -> ws := Mvcc.Writeset.add !ws k op);
        client_rng = rng;
      }
    in
    body.run ctx;
    match body.kind with
    | Workload.Spec.Update -> out := !ws :: !out
    | Workload.Spec.Read_only ->
        if not (Mvcc.Writeset.is_empty !ws) then
          Alcotest.fail "read-only transaction produced writes"
  done;
  !out

let mean_bytes wss =
  let total = List.fold_left (fun a ws -> a + Mvcc.Writeset.encoded_bytes ws) 0 wss in
  float_of_int total /. float_of_int (List.length wss)

let test_allupdates_writeset_size () =
  let wss = sample_writesets (Workload.Allupdates.profile ()) in
  let mean = mean_bytes wss in
  (* paper: 54 bytes average *)
  check_bool
    (Printf.sprintf "mean %.0fB within [35, 80]" mean)
    true
    (mean >= 35. && mean <= 80.);
  List.iter
    (fun ws -> check_int "two rows per transaction" 2 (Mvcc.Writeset.cardinal ws))
    wss

let test_allupdates_no_conflicts () =
  (* Writesets of different clients never intersect (private partitions). *)
  let spec = Workload.Allupdates.profile () in
  let rng = Rng.create 4 in
  let ws_for client replica_ix =
    let body = spec.new_tx ~rng ~client ~replica_ix ~n_replicas:4 in
    let ws = ref Mvcc.Writeset.empty in
    body.run
      {
        Workload.Spec.read = (fun _ -> None);
        write = (fun k op -> ws := Mvcc.Writeset.add !ws k op);
        client_rng = rng;
      };
    !ws
  in
  for _ = 1 to 100 do
    let a = ws_for 0 0 and b = ws_for 1 0 and c = ws_for 0 1 in
    check_bool "different clients disjoint" false (Mvcc.Writeset.intersects a b);
    check_bool "different replicas disjoint" false (Mvcc.Writeset.intersects a c)
  done

let test_tpcb_writeset_size_and_shape () =
  let wss = sample_writesets (Workload.Tpcb.profile ()) in
  let mean = mean_bytes wss in
  (* paper: 158 bytes average *)
  check_bool
    (Printf.sprintf "mean %.0fB within [110, 210]" mean)
    true
    (mean >= 110. && mean <= 210.);
  List.iter
    (fun ws ->
      check_int "account+teller+branch+history" 4 (Mvcc.Writeset.cardinal ws);
      let tables =
        List.map (fun (k : Mvcc.Key.t) -> k.table) (Mvcc.Writeset.keys ws)
        |> List.sort_uniq compare
      in
      Alcotest.(check (list string)) "tables" [ "account"; "branch"; "history"; "teller" ] tables)
    wss

let test_tpcb_remote_branch_fraction () =
  let spec = Workload.Tpcb.profile ~branches_per_replica:1 () in
  let rng = Rng.create 11 in
  let remote = ref 0 and n = 2_000 in
  for _ = 1 to n do
    let body = spec.new_tx ~rng ~client:0 ~replica_ix:0 ~n_replicas:8 in
    let ws = ref Mvcc.Writeset.empty in
    body.run
      {
        Workload.Spec.read = (fun _ -> Some (Mvcc.Value.int 0));
        write = (fun k op -> ws := Mvcc.Writeset.add !ws k op);
        client_rng = rng;
      };
    let branch_key =
      List.find (fun (k : Mvcc.Key.t) -> k.table = "branch") (Mvcc.Writeset.keys !ws)
    in
    if branch_key.row <> "0" then incr remote
  done;
  let fraction = float_of_int !remote /. float_of_int n in
  (* 15% pick a random branch; with 8 branches, 7/8 of those are non-home *)
  check_bool
    (Printf.sprintf "remote fraction %.3f near 0.13" fraction)
    true
    (fraction > 0.09 && fraction < 0.18)

let test_tpcb_history_keys_unique () =
  let spec = Workload.Tpcb.profile () in
  let rng = Rng.create 3 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 200 do
    let body = spec.new_tx ~rng ~client:1 ~replica_ix:2 ~n_replicas:4 in
    let ws = ref Mvcc.Writeset.empty in
    body.run
      {
        Workload.Spec.read = (fun _ -> Some (Mvcc.Value.int 0));
        write = (fun k op -> ws := Mvcc.Writeset.add !ws k op);
        client_rng = rng;
      };
    List.iter
      (fun (k : Mvcc.Key.t) ->
        if k.table = "history" then begin
          check_bool "history key fresh" false (Hashtbl.mem seen k.row);
          Hashtbl.replace seen k.row ()
        end)
      (Mvcc.Writeset.keys !ws)
  done

let test_tpcw_update_fraction () =
  let spec = Workload.Tpcw.profile () in
  let rng = Rng.create 17 in
  let updates = ref 0 and n = 5_000 in
  for _ = 1 to n do
    let body = spec.new_tx ~rng ~client:0 ~replica_ix:0 ~n_replicas:4 in
    match body.kind with
    | Workload.Spec.Update -> incr updates
    | Workload.Spec.Read_only -> ()
  done;
  let fraction = float_of_int !updates /. float_of_int n in
  check_bool
    (Printf.sprintf "update fraction %.3f near 0.20" fraction)
    true
    (fraction > 0.17 && fraction < 0.23)

let test_tpcw_writeset_size () =
  let wss = sample_writesets ~n:300 (Workload.Tpcw.profile ()) in
  let mean = mean_bytes wss in
  (* paper: 275 bytes average (our mix of cart updates and buys) *)
  check_bool
    (Printf.sprintf "mean %.0fB within [120, 350]" mean)
    true
    (mean >= 120. && mean <= 350.)

(* ------------------------------------------------------------------ *)
(* Driver *)

let test_collector_gating_and_rates () =
  let c = Workload.Driver.Collector.create () in
  (* disabled: nothing recorded *)
  Workload.Driver.Collector.record_abort c;
  check_int "disabled ignores" 0 (Workload.Driver.Collector.aborted c);
  Workload.Driver.Collector.enable c;
  Workload.Driver.Collector.record_abort c;
  check_int "enabled counts" 1 (Workload.Driver.Collector.aborted c);
  Workload.Driver.Collector.record_commit c Workload.Spec.Update (Time.of_ms 30.);
  Workload.Driver.Collector.record_commit c Workload.Spec.Read_only (Time.of_ms 10.);
  check_int "committed" 2 (Workload.Driver.Collector.committed c);
  check_int "update committed" 1 (Workload.Driver.Collector.update_committed c);
  Alcotest.(check (float 0.5)) "update mean ms" 30.
    (Workload.Driver.Collector.mean_response_ms c);
  Alcotest.(check (float 0.5)) "ro mean ms" 10.
    (Workload.Driver.Collector.mean_ro_response_ms c);
  Alcotest.(check (float 1e-9)) "goodput" 0.2
    (Workload.Driver.Collector.goodput c ~window:(Time.sec 10));
  Alcotest.(check (float 1e-9)) "throughput incl aborts" 0.3
    (Workload.Driver.Collector.throughput_all c ~window:(Time.sec 10));
  Workload.Driver.Collector.reset c;
  check_int "reset" 0 (Workload.Driver.Collector.committed c)

let test_standalone_driver_runs () =
  let e = Engine.create () in
  let rng = Rng.create 5 in
  let disk = Storage.Disk.create e ~rng:(Rng.split rng) () in
  let cpu = Resource.create e ~capacity:1 () in
  let db = Mvcc.Db.create e ~rng:(Rng.split rng) ~log_disk:disk ~cpu () in
  let spec = Workload.Allupdates.profile ~clients_per_replica:4 () in
  Mvcc.Db.load db (spec.initial_rows ~n_replicas:1);
  let collector = Workload.Driver.Collector.create () in
  Workload.Driver.Collector.enable collector;
  Workload.Driver.spawn_standalone_clients e ~db ~cpu ~spec ~rng:(Rng.split rng)
    ~collector;
  Engine.run ~until:(Time.sec 2) e;
  check_bool "committed plenty" true (Workload.Driver.Collector.committed collector > 100);
  check_int "no aborts in allupdates" 0 (Workload.Driver.Collector.aborted collector);
  check_int "db agrees" (Workload.Driver.Collector.committed collector) (Mvcc.Db.commits db)

let suites =
  [
    ( "workload.allupdates",
      [
        Alcotest.test_case "writeset size ~54B" `Quick test_allupdates_writeset_size;
        Alcotest.test_case "clients never conflict" `Quick test_allupdates_no_conflicts;
      ] );
    ( "workload.tpcb",
      [
        Alcotest.test_case "writeset size ~158B and shape" `Quick
          test_tpcb_writeset_size_and_shape;
        Alcotest.test_case "remote branch fraction" `Quick test_tpcb_remote_branch_fraction;
        Alcotest.test_case "history keys unique" `Quick test_tpcb_history_keys_unique;
      ] );
    ( "workload.tpcw",
      [
        Alcotest.test_case "20% updates" `Quick test_tpcw_update_fraction;
        Alcotest.test_case "writeset size" `Quick test_tpcw_writeset_size;
      ] );
    ( "workload.driver",
      [
        Alcotest.test_case "collector gating and rates" `Quick
          test_collector_gating_and_rates;
        Alcotest.test_case "standalone driver runs" `Quick test_standalone_driver_runs;
      ] );
  ]

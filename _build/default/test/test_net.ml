(* Tests for the simulated network. *)

open Sim

let us = Time.us

let fast_config =
  {
    Net.Network.latency_lo = us 50;
    latency_hi = us 50;
    bandwidth_bytes_per_sec = 1_000_000_000.;
  }

let make () =
  let e = Engine.create () in
  let net = Net.Network.create e ~rng:(Rng.create 1) ~config:fast_config () in
  (e, net)

let test_delivery () =
  let e, net = make () in
  let a = Net.Network.register net "a" in
  ignore a;
  let b = Net.Network.register net "b" in
  let got = ref [] in
  let _ =
    Engine.spawn e (fun () ->
        for _ = 1 to 3 do
          got := Mailbox.recv b :: !got
        done)
  in
  let _ =
    Engine.spawn e (fun () ->
        Net.Network.send net ~src:"a" ~dst:"b" 1;
        Net.Network.send net ~src:"a" ~dst:"b" 2;
        Net.Network.send net ~src:"a" ~dst:"b" 3)
  in
  Engine.run e;
  Alcotest.(check (list int)) "in order" [ 1; 2; 3 ] (List.rev !got);
  Alcotest.(check int) "delivered" 3 (Net.Network.messages_delivered net);
  Alcotest.(check bool) "latency applied" true Time.(Engine.now e >= us 50)

let test_fifo_per_link_with_jitter () =
  let e = Engine.create () in
  let jittery =
    { Net.Network.latency_lo = us 10; latency_hi = us 500; bandwidth_bytes_per_sec = 1e9 }
  in
  let net = Net.Network.create e ~rng:(Rng.create 7) ~config:jittery () in
  let b = Net.Network.register net "b" in
  let got = ref [] in
  let n = 50 in
  let _ =
    Engine.spawn e (fun () ->
        for _ = 1 to n do
          got := Mailbox.recv b :: !got
        done)
  in
  let _ =
    Engine.spawn e (fun () ->
        for i = 1 to n do
          Net.Network.send net ~src:"a" ~dst:"b" i;
          Engine.sleep e (us 1)
        done)
  in
  Engine.run e;
  Alcotest.(check (list int)) "fifo despite jitter" (List.init n (fun i -> i + 1))
    (List.rev !got)

let test_unknown_destination_dropped () =
  let e, net = make () in
  Net.Network.send net ~src:"a" ~dst:"ghost" 1;
  Engine.run e;
  Alcotest.(check int) "dropped" 1 (Net.Network.messages_dropped net);
  Alcotest.(check int) "none delivered" 0 (Net.Network.messages_delivered net)

let test_partition_and_heal () =
  let e, net = make () in
  let b = Net.Network.register net "b" in
  let got = ref [] in
  let _ =
    Engine.spawn e (fun () ->
        got := Mailbox.recv b :: !got)
  in
  Net.Network.partition net "a" "b";
  Net.Network.send net ~src:"a" ~dst:"b" 1;
  Net.Network.send net ~src:"b" ~dst:"a" 2;
  Engine.schedule e ~at:(us 100) (fun () ->
      Net.Network.heal net "a" "b";
      Net.Network.send net ~src:"a" ~dst:"b" 3);
  Engine.run e;
  Alcotest.(check (list int)) "only post-heal message" [ 3 ] !got;
  Alcotest.(check int) "two dropped" 2 (Net.Network.messages_dropped net)

let test_unregister_drops () =
  let e, net = make () in
  let _b = Net.Network.register net "b" in
  Net.Network.send net ~src:"a" ~dst:"b" 1;
  Net.Network.unregister net "b";
  Engine.run e;
  Alcotest.(check int) "in-flight message dropped on arrival" 1
    (Net.Network.messages_dropped net)

let test_reregister_fresh_mailbox () =
  let e, net = make () in
  let _b = Net.Network.register net "b" in
  Net.Network.unregister net "b";
  let b2 = Net.Network.register net "b" in
  let got = ref 0 in
  let _ = Engine.spawn e (fun () -> got := Mailbox.recv b2) in
  Net.Network.send net ~src:"a" ~dst:"b" 9;
  Engine.run e;
  Alcotest.(check int) "new endpoint receives" 9 !got

let test_duplicate_register_rejected () =
  let _, net = make () in
  let _ = Net.Network.register net "a" in
  match Net.Network.register net "a" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

let test_drop_rate () =
  let e, net = make () in
  let b = Net.Network.register net "b" in
  Net.Network.set_drop_rate net 1.0;
  for i = 1 to 10 do
    Net.Network.send net ~src:"a" ~dst:"b" i
  done;
  Engine.run e;
  Alcotest.(check int) "all dropped" 10 (Net.Network.messages_dropped net);
  Alcotest.(check int) "mailbox empty" 0 (Mailbox.length b)

let test_transfer_time () =
  let e = Engine.create () in
  let slow =
    { Net.Network.latency_lo = us 0; latency_hi = us 0; bandwidth_bytes_per_sec = 1_000_000. }
  in
  let net = Net.Network.create e ~rng:(Rng.create 1) ~config:slow () in
  let b = Net.Network.register net "b" in
  let arrival = ref Time.zero in
  let _ =
    Engine.spawn e (fun () ->
        ignore (Mailbox.recv b);
        arrival := Engine.now e)
  in
  (* 1 MB over 1 MB/s should take ~1 s *)
  Net.Network.send net ~src:"a" ~dst:"b" ~size:1_000_000 0;
  Engine.run e;
  Alcotest.(check int) "1s transfer" 1_000_000 (Time.to_us !arrival)


(* Property: per-link delivery order always matches send order, for random
   message sizes, latencies and interleavings across several links. *)
let prop_fifo_per_link =
  QCheck.Test.make ~name:"network delivery is FIFO per link" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let e = Engine.create () in
      let rng = Rng.create seed in
      let jitter =
        { Net.Network.latency_lo = us 5; latency_hi = us 2_000; bandwidth_bytes_per_sec = 1e7 }
      in
      let net = Net.Network.create e ~rng:(Rng.split rng) ~config:jitter () in
      let dsts = [ "d0"; "d1" ] in
      let received = Hashtbl.create 8 in
      List.iter
        (fun d ->
          let mb = Net.Network.register net d in
          Hashtbl.replace received d (ref []);
          ignore
            (Engine.spawn e (fun () ->
                 let log = Hashtbl.find received d in
                 let rec loop () =
                   log := Mailbox.recv mb :: !log;
                   loop ()
                 in
                 loop ())))
        dsts;
      let sent = Hashtbl.create 8 in
      List.iter (fun s -> List.iter (fun d -> Hashtbl.replace sent (s, d) []) dsts) [ "s0"; "s1" ];
      ignore
        (Engine.spawn e (fun () ->
             for i = 1 to 60 do
               let src = if Rng.bool rng then "s0" else "s1" in
               let dst = Rng.pick rng [| "d0"; "d1" |] in
               let size = 1 + Rng.int rng 5_000 in
               Hashtbl.replace sent (src, dst) (Hashtbl.find sent (src, dst) @ [ (src, i) ]);
               Net.Network.send net ~src ~dst ~size (src, i);
               Engine.sleep e (us (Rng.int rng 300))
             done));
      Engine.run ~until:(Time.sec 10) e;
      (* for each (src, dst), the subsequence received from src preserves order *)
      List.for_all
        (fun d ->
          let got = List.rev !(Hashtbl.find received d) in
          List.for_all
            (fun s ->
              let from_s = List.filter (fun (src, _) -> src = s) got in
              from_s = Hashtbl.find sent (s, d))
            [ "s0"; "s1" ])
        dsts)

let suites =
  [
    ( "net.network",
      [
        Alcotest.test_case "basic delivery" `Quick test_delivery;
        Alcotest.test_case "fifo per link despite jitter" `Quick
          test_fifo_per_link_with_jitter;
        Alcotest.test_case "unknown destination dropped" `Quick
          test_unknown_destination_dropped;
        Alcotest.test_case "partition and heal" `Quick test_partition_and_heal;
        Alcotest.test_case "unregister drops in-flight" `Quick test_unregister_drops;
        Alcotest.test_case "re-register gets fresh mailbox" `Quick
          test_reregister_fresh_mailbox;
        Alcotest.test_case "duplicate register rejected" `Quick
          test_duplicate_register_rejected;
        Alcotest.test_case "drop rate" `Quick test_drop_rate;
        Alcotest.test_case "transfer time" `Quick test_transfer_time;
        QCheck_alcotest.to_alcotest prop_fifo_per_link;
      ] );
  ]

test/test_sim.ml: Alcotest Buffer Engine Fun Heap Ivar List Mailbox Printf QCheck QCheck_alcotest Resource Rng Sim Stats Time Waitq

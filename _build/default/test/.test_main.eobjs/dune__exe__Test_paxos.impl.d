test/test_paxos.ml: Alcotest Engine Hashtbl List Mailbox Net Paxos Printf QCheck QCheck_alcotest Rng Sim Storage String Time

test/test_workload.ml: Alcotest Engine Hashtbl List Mvcc Printf Resource Rng Sim Storage Time Workload

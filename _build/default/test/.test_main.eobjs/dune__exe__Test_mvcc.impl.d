test/test_mvcc.ml: Alcotest Commit_order Db Engine Fmt Format Gen Key List Locks Mvcc Option QCheck QCheck_alcotest Rng Sim Storage Store Time Value Writeset

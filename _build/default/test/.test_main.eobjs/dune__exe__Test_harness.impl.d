test/test_harness.ml: Alcotest Harness List Printf Sim Tashkent

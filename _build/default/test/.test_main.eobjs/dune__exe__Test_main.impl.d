test/test_main.ml: Alcotest Test_core Test_core_units Test_harness Test_mvcc Test_net Test_paxos Test_sim Test_storage Test_workload

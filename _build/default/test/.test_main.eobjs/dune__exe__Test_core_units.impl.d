test/test_core_units.ml: Alcotest Array Cert_client Certifier Engine Format Hashtbl List Mailbox Mvcc Net Printf Proxy QCheck QCheck_alcotest Rng Sim Tashkent Time Types

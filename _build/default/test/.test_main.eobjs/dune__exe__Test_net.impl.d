test/test_net.ml: Alcotest Engine Hashtbl List Mailbox Net QCheck QCheck_alcotest Rng Sim Time

test/test_core.ml: Alcotest Cert_log Certifier Cluster Engine Format List Mvcc Net Option Proxy QCheck QCheck_alcotest Replica Rng Sim Tashkent Time Types

test/test_storage.ml: Alcotest Engine List QCheck QCheck_alcotest Rng Sim Storage Time

(* Tests for the discrete-event simulation substrate. *)

open Sim

let us = Time.us
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let check_time msg expected actual =
  Alcotest.(check int) msg (Time.to_us expected) (Time.to_us actual)

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_arithmetic () =
  check_int "of_ms" 2_500 (Time.to_us (Time.of_ms 2.5));
  check_int "of_sec" 1_500_000 (Time.to_us (Time.of_sec 1.5));
  check_time "add" (us 30) (Time.add (us 10) (us 20));
  check_time "diff" (us 15) (Time.diff (us 40) (us 25));
  check_time "scale" (us 50) (Time.scale (us 100) 0.5);
  check_time "mul" (us 300) (Time.mul (us 100) 3);
  check_time "div" (us 33) (Time.div (us 100) 3);
  check_bool "lt" true Time.(us 1 < us 2);
  check_bool "ge" true Time.(us 2 >= us 2);
  Alcotest.(check (float 1e-9)) "ratio" 0.25 (Time.ratio (us 25) (us 100));
  Alcotest.(check string) "pp us" "999us" (Time.to_string (us 999));
  Alcotest.(check string) "pp ms" "1.500ms" (Time.to_string (us 1_500));
  Alcotest.(check string) "pp s" "2.000s" (Time.to_string (Time.sec 2))

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let xs = List.init 50 (fun _ -> Rng.int parent 1000) in
  let ys = List.init 50 (fun _ -> Rng.int child 1000) in
  check_bool "streams differ" true (xs <> ys)

let test_rng_ranges () =
  let rng = Rng.create 1 in
  for _ = 1 to 1_000 do
    let x = Rng.int rng 10 in
    check_bool "int in [0,10)" true (x >= 0 && x < 10);
    let y = Rng.int_in_range rng ~lo:5 ~hi:9 in
    check_bool "range inclusive" true (y >= 5 && y <= 9);
    let f = Rng.float rng in
    check_bool "float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_rng_uniform_mean () =
  let rng = Rng.create 99 in
  let n = 20_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.uniform rng ~lo:6. ~hi:12.
  done;
  let mean = !total /. float_of_int n in
  check_bool "mean near 9" true (abs_float (mean -. 9.) < 0.1)

let test_rng_exponential_mean () =
  let rng = Rng.create 5 in
  let n = 50_000 in
  let total = ref 0. in
  for _ = 1 to n do
    total := !total +. Rng.exponential rng ~mean:4.
  done;
  let mean = !total /. float_of_int n in
  check_bool "mean near 4" true (abs_float (mean -. 4.) < 0.1)

let test_rng_chance () =
  let rng = Rng.create 3 in
  let hits = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.chance rng 0.3 then incr hits
  done;
  check_bool "p=0.3" true (abs (!hits - 3_000) < 200)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_sorts () =
  let h = Heap.create ~leq:( <= ) () in
  let rng = Rng.create 11 in
  let input = List.init 500 (fun _ -> Rng.int rng 10_000) in
  List.iter (Heap.push h) input;
  check_int "length" 500 (Heap.length h);
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
  let out = drain [] in
  Alcotest.(check (list int)) "sorted" (List.sort compare input) out;
  check_bool "empty after drain" true (Heap.is_empty h)

let test_heap_pop_empty () =
  let h : int Heap.t = Heap.create ~leq:( <= ) () in
  check_bool "pop empty" true (Heap.pop h = None);
  Alcotest.check_raises "pop_exn empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

(* ------------------------------------------------------------------ *)
(* Engine basics *)

let test_engine_event_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:(us 30) (fun () -> log := 3 :: !log);
  Engine.schedule e ~at:(us 10) (fun () -> log := 1 :: !log);
  Engine.schedule e ~at:(us 20) (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_time "clock at last event" (us 30) (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 10 do
    Engine.schedule e ~at:(us 5) (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo among ties" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !log)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref [] in
  Engine.schedule e ~at:(us 10) (fun () -> fired := 10 :: !fired);
  Engine.schedule e ~at:(us 50) (fun () -> fired := 50 :: !fired);
  Engine.run ~until:(us 20) e;
  Alcotest.(check (list int)) "only first" [ 10 ] !fired;
  check_time "clock advanced to limit" (us 20) (Engine.now e);
  check_int "one pending" 1 (Engine.pending_events e);
  Engine.run e;
  Alcotest.(check (list int)) "second fires on resume" [ 50; 10 ] !fired

let test_engine_schedule_past_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~at:(us 10) (fun () ->
      match Engine.schedule e ~at:(us 5) (fun () -> ()) with
      | exception Invalid_argument _ -> ()
      | () -> Alcotest.fail "scheduling in the past must be rejected");
  Engine.run e

let test_fiber_sleep () =
  let e = Engine.create () in
  let log = ref [] in
  let _f =
    Engine.spawn e (fun () ->
        log := ("a", Engine.now e) :: !log;
        Engine.sleep e (us 100);
        log := ("b", Engine.now e) :: !log;
        Engine.sleep e (us 50);
        log := ("c", Engine.now e) :: !log)
  in
  Engine.run e;
  match List.rev !log with
  | [ ("a", t1); ("b", t2); ("c", t3) ] ->
      check_time "start" Time.zero t1;
      check_time "after first sleep" (us 100) t2;
      check_time "after second sleep" (us 150) t3
  | _ -> Alcotest.fail "unexpected log"

let test_fiber_join () =
  let e = Engine.create () in
  let done_child = ref false in
  let done_parent = ref false in
  let _p =
    Engine.spawn e (fun () ->
        let child =
          Engine.spawn e (fun () ->
              Engine.sleep e (us 500);
              done_child := true)
        in
        Engine.join e child;
        check_bool "child finished before join returns" true !done_child;
        check_time "joined at child's end" (us 500) (Engine.now e);
        done_parent := true)
  in
  Engine.run e;
  check_bool "parent ran to completion" true !done_parent

let test_fiber_join_finished () =
  let e = Engine.create () in
  let ok = ref false in
  let _ =
    Engine.spawn e (fun () ->
        let child = Engine.spawn e (fun () -> ()) in
        Engine.sleep e (us 10);
        (* child long finished; join must not block *)
        Engine.join e child;
        ok := true)
  in
  Engine.run e;
  check_bool "join on finished fiber returns" true !ok

let test_fiber_cancel () =
  let e = Engine.create () in
  let reached = ref false in
  let cleaned = ref false in
  let f =
    Engine.spawn e (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () ->
            Engine.sleep e (us 1000);
            reached := true))
  in
  Engine.schedule e ~at:(us 10) (fun () -> Engine.cancel e f);
  Engine.run e;
  check_bool "body after sleep not reached" false !reached;
  check_bool "finaliser ran" true !cleaned;
  check_bool "fiber reported dead" false (Engine.fiber_alive f)

let test_engine_stalled_detection () =
  let e = Engine.create () in
  let mb : int Mailbox.t = Mailbox.create e () in
  let _ = Engine.spawn e (fun () -> ignore (Mailbox.recv mb)) in
  (match Engine.run ~stop_when_idle:false e with
  | exception Engine.Stalled _ -> ()
  | () -> Alcotest.fail "expected Stalled");
  (* default tolerates blocked fibers *)
  let e2 = Engine.create () in
  let mb2 : int Mailbox.t = Mailbox.create e2 () in
  let _ = Engine.spawn e2 (fun () -> ignore (Mailbox.recv mb2)) in
  Engine.run e2

let test_fiber_exception_propagates () =
  let e = Engine.create () in
  let _ = Engine.spawn e (fun () -> failwith "boom") in
  match Engine.run e with
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
  | () -> Alcotest.fail "expected exception to escape run"

let test_determinism_trace () =
  (* Two identical engines with the same seed produce the same trace. *)
  let run_once () =
    let e = Engine.create () in
    let rng = Rng.create 2024 in
    let trace = Buffer.create 256 in
    let mb = Mailbox.create e () in
    for i = 1 to 3 do
      ignore
        (Engine.spawn e ~name:"producer" (fun () ->
             for j = 1 to 5 do
               Engine.sleep e (us (Rng.int_in_range rng ~lo:1 ~hi:50));
               Mailbox.send mb (i * 100 + j)
             done))
    done;
    ignore
      (Engine.spawn e ~name:"consumer" (fun () ->
           for _ = 1 to 15 do
             let v = Mailbox.recv mb in
             Buffer.add_string trace
               (Printf.sprintf "%d@%d;" v (Time.to_us (Engine.now e)))
           done));
    Engine.run e;
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run_once ()) (run_once ())

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Mailbox.create e () in
  let got = ref [] in
  let _ =
    Engine.spawn e (fun () ->
        for _ = 1 to 5 do
          got := Mailbox.recv mb :: !got
        done)
  in
  let _ =
    Engine.spawn e (fun () ->
        for i = 1 to 5 do
          Mailbox.send mb i;
          Engine.sleep e (us 1)
        done)
  in
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_mailbox_buffering () =
  let e = Engine.create () in
  let mb = Mailbox.create e () in
  Mailbox.send mb 1;
  Mailbox.send mb 2;
  check_int "buffered" 2 (Mailbox.length mb);
  check_bool "try_recv" true (Mailbox.try_recv mb = Some 1);
  let got = ref 0 in
  let _ = Engine.spawn e (fun () -> got := Mailbox.recv mb) in
  Engine.run e;
  check_int "drained in order" 2 !got;
  check_bool "empty" true (Mailbox.is_empty mb)

let test_mailbox_recv_batch () =
  let e = Engine.create () in
  let mb = Mailbox.create e () in
  let batches = ref [] in
  let _ =
    Engine.spawn e ~name:"batcher" (fun () ->
        for _ = 1 to 2 do
          batches := Mailbox.recv_batch mb :: !batches
        done)
  in
  let _ =
    Engine.spawn e ~name:"sender" (fun () ->
        Engine.sleep e (us 10);
        (* all three sent at the same instant: batch together *)
        Mailbox.send mb 1;
        Mailbox.send mb 2;
        Mailbox.send mb 3;
        Engine.sleep e (us 10);
        Mailbox.send mb 4)
  in
  Engine.run e;
  match List.rev !batches with
  | [ first; second ] ->
      (* The blocked receiver wakes with 1, then drains 2 and 3. *)
      Alcotest.(check (list int)) "first batch" [ 1; 2; 3 ] first;
      Alcotest.(check (list int)) "second batch" [ 4 ] second
  | _ -> Alcotest.fail "expected two batches"

let test_mailbox_cancelled_receiver_skipped () =
  let e = Engine.create () in
  let mb = Mailbox.create e () in
  let got = ref [] in
  let victim = Engine.spawn e ~name:"victim" (fun () -> got := Mailbox.recv mb :: !got) in
  let _ = Engine.spawn e ~name:"survivor" (fun () -> got := Mailbox.recv mb :: !got) in
  Engine.schedule e ~at:(us 5) (fun () -> Engine.cancel e victim);
  Engine.schedule e ~at:(us 10) (fun () -> Mailbox.send mb 42);
  Engine.run e;
  Alcotest.(check (list int)) "survivor got message" [ 42 ] !got

(* ------------------------------------------------------------------ *)
(* Ivar *)

let test_ivar_roundtrip () =
  let e = Engine.create () in
  let iv = Ivar.create e () in
  let got = ref 0 in
  let _ = Engine.spawn e (fun () -> got := Ivar.read iv) in
  Engine.schedule e ~at:(us 100) (fun () -> Ivar.fill iv 7);
  Engine.run e;
  check_int "value" 7 !got

let test_ivar_read_after_fill () =
  let e = Engine.create () in
  let iv = Ivar.create e () in
  Ivar.fill iv 3;
  check_bool "filled" true (Ivar.is_filled iv);
  check_bool "peek" true (Ivar.peek iv = Some 3);
  let got = ref 0 in
  let _ = Engine.spawn e (fun () -> got := Ivar.read iv) in
  Engine.run e;
  check_int "read returns immediately" 3 !got

let test_ivar_double_fill () =
  let e = Engine.create () in
  let iv = Ivar.create e () in
  Ivar.fill iv 1;
  check_bool "try_fill refused" false (Ivar.try_fill iv 2);
  Alcotest.check_raises "fill raises" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Ivar.fill iv 2)

let test_ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Ivar.create e () in
  let total = ref 0 in
  for _ = 1 to 4 do
    ignore (Engine.spawn e (fun () -> total := !total + Ivar.read iv))
  done;
  Engine.schedule e ~at:(us 10) (fun () -> Ivar.fill iv 5);
  Engine.run e;
  check_int "all readers woke" 20 !total

(* ------------------------------------------------------------------ *)
(* Waitq *)

let test_waitq_signal_broadcast () =
  let e = Engine.create () in
  let q = Waitq.create e () in
  let woke = ref 0 in
  for _ = 1 to 3 do
    ignore (Engine.spawn e (fun () -> Waitq.wait q; incr woke))
  done;
  Engine.schedule e ~at:(us 10) (fun () -> Waitq.signal q);
  Engine.schedule e ~at:(us 20) (fun () ->
      check_int "one woke" 1 !woke;
      Waitq.broadcast q);
  Engine.run e;
  check_int "all woke" 3 !woke;
  check_int "no waiters left" 0 (Waitq.waiters q)

let test_waitq_lost_signal () =
  let e = Engine.create () in
  let q = Waitq.create e () in
  Waitq.signal q;
  (* no memory: a later waiter stays blocked *)
  let woke = ref false in
  let _ = Engine.spawn e (fun () -> Waitq.wait q; woke := true) in
  Engine.run e;
  check_bool "signal before wait is lost" false !woke

(* ------------------------------------------------------------------ *)
(* Resource *)

let test_resource_serialises () =
  let e = Engine.create () in
  let r = Resource.create e ~capacity:1 () in
  let ends = ref [] in
  for i = 1 to 3 do
    ignore
      (Engine.spawn e (fun () ->
           Resource.use r (us 100);
           ends := (i, Engine.now e) :: !ends))
  done;
  Engine.run e;
  (match List.rev !ends with
  | [ (1, t1); (2, t2); (3, t3) ] ->
      check_time "first" (us 100) t1;
      check_time "second" (us 200) t2;
      check_time "third" (us 300) t3
  | _ -> Alcotest.fail "unexpected completion order");
  Alcotest.(check (float 0.02)) "fully utilised" 1.0 (Resource.utilization r)

let test_resource_parallel_servers () =
  let e = Engine.create () in
  let r = Resource.create e ~capacity:2 () in
  let finished = ref [] in
  for i = 1 to 4 do
    ignore
      (Engine.spawn e (fun () ->
           Resource.use r (us 100);
           finished := (i, Time.to_us (Engine.now e)) :: !finished))
  done;
  Engine.run e;
  let times = List.map snd (List.rev !finished) in
  Alcotest.(check (list int)) "two waves" [ 100; 100; 200; 200 ] times

let test_resource_with_held_releases_on_exn () =
  let e = Engine.create () in
  let r = Resource.create e ~capacity:1 () in
  let second_ran = ref false in
  let _ =
    Engine.spawn e (fun () ->
        match Resource.with_held r (fun () -> failwith "inner") with
        | exception Failure _ -> ()
        | () -> ())
  in
  let _ =
    Engine.spawn e (fun () ->
        Engine.sleep e (us 1);
        Resource.use r (us 10);
        second_ran := true)
  in
  Engine.run e;
  check_bool "resource released after exception" true !second_ran

let test_resource_utilization_accounting () =
  let e = Engine.create () in
  let r = Resource.create e ~capacity:1 () in
  let _ =
    Engine.spawn e (fun () ->
        Resource.use r (us 250);
        Engine.sleep e (us 750))
  in
  Engine.run e;
  check_time "busy time" (us 250) (Resource.busy_time r);
  Alcotest.(check (float 0.001)) "25% utilised" 0.25 (Resource.utilization r)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.observe s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_int "count" 8 (Stats.Summary.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Stats.Summary.mean s);
  Alcotest.(check (float 1e-6)) "stddev (sample)" 2.13809 (Stats.Summary.stddev s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Stats.Summary.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Stats.Summary.max s)

let test_histogram_percentiles () =
  let h = Stats.Histogram.create () in
  for i = 1 to 1_000 do
    Stats.Histogram.observe h (float_of_int i)
  done;
  check_int "count" 1_000 (Stats.Histogram.count h);
  let p50 = Stats.Histogram.percentile h 0.5 in
  let p99 = Stats.Histogram.percentile h 0.99 in
  check_bool "p50 within 10%" true (abs_float (p50 -. 500.) < 50.);
  check_bool "p99 within 10%" true (abs_float (p99 -. 990.) < 99.);
  check_bool "p50 < p99" true (p50 < p99);
  Alcotest.(check (float 0.5)) "mean" 500.5 (Stats.Histogram.mean h)

let test_histogram_empty_and_reset () =
  let h = Stats.Histogram.create () in
  Alcotest.(check (float 0.)) "empty percentile" 0. (Stats.Histogram.percentile h 0.99);
  Stats.Histogram.observe h 10.;
  Stats.Histogram.reset h;
  check_int "reset count" 0 (Stats.Histogram.count h)

let test_rate () =
  let r = Stats.Rate.create () in
  Stats.Rate.add r 500;
  Stats.Rate.tick r;
  Alcotest.(check (float 1e-9)) "per sec" 50.1 (Stats.Rate.per_sec r ~window:(Time.sec 10))


let test_engine_yield_interleaves () =
  let e = Engine.create () in
  let log = ref [] in
  let worker name =
    ignore
      (Engine.spawn e (fun () ->
           for i = 1 to 3 do
             log := Printf.sprintf "%s%d" name i :: !log;
             Engine.yield e
           done))
  in
  worker "a";
  worker "b";
  Engine.run e;
  Alcotest.(check (list string)) "round-robin interleaving"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (List.rev !log)

let test_suspend_manual_resume () =
  let e = Engine.create () in
  let resume_cell = ref None in
  let got = ref 0 in
  let _ =
    Engine.spawn e (fun () -> got := Engine.suspend e (fun r -> resume_cell := Some r))
  in
  Engine.schedule e ~at:(us 10) (fun () ->
      match !resume_cell with Some r -> r 42 | None -> Alcotest.fail "not registered");
  Engine.run e;
  check_int "value passed through suspend" 42 !got

let test_suspend_double_resume_ignored () =
  let e = Engine.create () in
  let resume_cell = ref None in
  let wakeups = ref 0 in
  let _ =
    Engine.spawn e (fun () ->
        ignore (Engine.suspend e (fun r -> resume_cell := Some r) : int);
        incr wakeups)
  in
  Engine.schedule e ~at:(us 10) (fun () ->
      match !resume_cell with
      | Some r ->
          r 1;
          r 2
      | None -> ());
  Engine.run e;
  check_int "resumed exactly once" 1 !wakeups

let test_rng_copy_same_stream () =
  let a = Rng.create 5 in
  ignore (Rng.int a 100);
  let b = Rng.copy a in
  for _ = 1 to 20 do
    check_int "copies advance identically" (Rng.int a 1_000) (Rng.int b 1_000)
  done

let prop_heap_matches_sorted_list =
  QCheck.Test.make ~name:"heap pops in sorted order for any input" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~leq:( <= ) () in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

let suites =
  [
    ( "sim.time",
      [
        Alcotest.test_case "arithmetic and formatting" `Quick test_time_arithmetic;
      ] );
    ( "sim.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "split independence" `Quick test_rng_split_independent;
        Alcotest.test_case "ranges" `Quick test_rng_ranges;
        Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "chance" `Quick test_rng_chance;
        Alcotest.test_case "copy preserves stream" `Quick test_rng_copy_same_stream;
      ] );
    ( "sim.heap",
      [
        Alcotest.test_case "heap sort" `Quick test_heap_sorts;
        Alcotest.test_case "pop empty" `Quick test_heap_pop_empty;
        QCheck_alcotest.to_alcotest prop_heap_matches_sorted_list;
      ] );
    ( "sim.engine",
      [
        Alcotest.test_case "event order" `Quick test_engine_event_order;
        Alcotest.test_case "fifo among ties" `Quick test_engine_fifo_ties;
        Alcotest.test_case "run until" `Quick test_engine_until;
        Alcotest.test_case "no scheduling in the past" `Quick
          test_engine_schedule_past_rejected;
        Alcotest.test_case "fiber sleep" `Quick test_fiber_sleep;
        Alcotest.test_case "fiber join" `Quick test_fiber_join;
        Alcotest.test_case "join finished fiber" `Quick test_fiber_join_finished;
        Alcotest.test_case "fiber cancel runs finalisers" `Quick test_fiber_cancel;
        Alcotest.test_case "stall detection" `Quick test_engine_stalled_detection;
        Alcotest.test_case "fiber exception propagates" `Quick
          test_fiber_exception_propagates;
        Alcotest.test_case "deterministic trace" `Quick test_determinism_trace;
        Alcotest.test_case "yield interleaves fairly" `Quick test_engine_yield_interleaves;
        Alcotest.test_case "suspend/manual resume" `Quick test_suspend_manual_resume;
        Alcotest.test_case "double resume ignored" `Quick test_suspend_double_resume_ignored;
      ] );
    ( "sim.mailbox",
      [
        Alcotest.test_case "fifo delivery" `Quick test_mailbox_fifo;
        Alcotest.test_case "buffering and try_recv" `Quick test_mailbox_buffering;
        Alcotest.test_case "recv_batch groups" `Quick test_mailbox_recv_batch;
        Alcotest.test_case "cancelled receiver skipped" `Quick
          test_mailbox_cancelled_receiver_skipped;
      ] );
    ( "sim.ivar",
      [
        Alcotest.test_case "roundtrip" `Quick test_ivar_roundtrip;
        Alcotest.test_case "read after fill" `Quick test_ivar_read_after_fill;
        Alcotest.test_case "double fill rejected" `Quick test_ivar_double_fill;
        Alcotest.test_case "multiple readers" `Quick test_ivar_multiple_readers;
      ] );
    ( "sim.waitq",
      [
        Alcotest.test_case "signal then broadcast" `Quick test_waitq_signal_broadcast;
        Alcotest.test_case "signals are not remembered" `Quick test_waitq_lost_signal;
      ] );
    ( "sim.resource",
      [
        Alcotest.test_case "capacity 1 serialises" `Quick test_resource_serialises;
        Alcotest.test_case "parallel servers" `Quick test_resource_parallel_servers;
        Alcotest.test_case "with_held releases on exception" `Quick
          test_resource_with_held_releases_on_exn;
        Alcotest.test_case "utilization accounting" `Quick
          test_resource_utilization_accounting;
      ] );
    ( "sim.stats",
      [
        Alcotest.test_case "summary" `Quick test_summary;
        Alcotest.test_case "histogram percentiles" `Quick test_histogram_percentiles;
        Alcotest.test_case "histogram empty/reset" `Quick test_histogram_empty_and_reset;
        Alcotest.test_case "rate" `Quick test_rate;
      ] );
  ]

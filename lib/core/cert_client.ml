open Sim

type outcome =
  | Reply of Types.cert_reply
  | Fetched of Types.fetch_reply
  | Redirect of string option
  | Timed_out

type t = {
  engine : Engine.t;
  net : Types.message Net.Network.t;
  my_addr : string;
  certifiers : string array;
  mutable target : int; (* index into certifiers *)
  timeout : Time.t;
  backoff_base : Time.t;
  backoff_cap : Time.t;
  rng : Rng.t;
  pending : (int, outcome Ivar.t) Hashtbl.t;
  mutable next_req : int;
  sent : Stats.Counter.t;
  retry_count : Stats.Counter.t;
  failover_count : Stats.Counter.t;
  refetch_count : Stats.Counter.t;
}

let create engine ~net ~my_addr ~certifiers ?(timeout = Time.of_ms 500.)
    ?(backoff_base = Time.of_ms 25.) ?(backoff_cap = Time.sec 2) ?rng ~req_id_base () =
  if certifiers = [] then invalid_arg "Cert_client.create: no certifiers";
  let rng =
    match rng with
    | Some rng -> rng
    | None ->
        (* Deterministic per-client stream: the jitter draws must not depend
           on event interleaving, and req_id_base is unique per replica. *)
        Rng.create (0x7a5 lxor (req_id_base + Hashtbl.hash my_addr))
  in
  {
    engine;
    net;
    my_addr;
    certifiers = Array.of_list certifiers;
    target = 0;
    timeout;
    backoff_base;
    backoff_cap;
    rng;
    pending = Hashtbl.create 16;
    next_req = req_id_base;
    sent = Stats.Counter.create ();
    retry_count = Stats.Counter.create ();
    failover_count = Stats.Counter.create ();
    refetch_count = Stats.Counter.create ();
  }

let send t ~dst msg =
  Net.Network.send t.net ~src:t.my_addr ~dst ~size:(Types.message_bytes msg) msg

let round_robin t = t.target <- (t.target + 1) mod Array.length t.certifiers

(* Follow a redirect hint when it names a known certifier; an unknown hint
   (a node we were not configured with, or a stale name) falls back to
   round-robin instead of silently keeping the dead target. Returns whether
   the hint was followed. *)
let rotate_target t hint =
  match hint with
  | Some leader ->
      let found = ref false in
      Array.iteri
        (fun i c ->
          if String.equal c leader then begin
            found := true;
            t.target <- i
          end)
        t.certifiers;
      if not !found then round_robin t;
      !found
  | None ->
      round_robin t;
      false

(* Capped exponential backoff with jitter: attempt [n] (0-based) waits
   min(cap, base * 2^n) scaled by a uniform factor in [0.5, 1.5). *)
let backoff_delay t n =
  let exp = min n 16 in
  let raw = Time.mul t.backoff_base (1 lsl exp) in
  let capped = Time.min t.backoff_cap raw in
  Time.scale capped (Rng.uniform t.rng ~lo:0.5 ~hi:1.5)

(* The certify retry loop, shared by the single-partition and the
   cross-partition paths: same request id across attempts (idempotent
   retries), redirect following, capped backoff, late-reply waiters. *)
let retry_certify t ~req_id request =
  let rec attempt n =
    if n > 0 then Stats.Counter.incr t.retry_count;
    let ivar = Ivar.create t.engine () in
    Hashtbl.replace t.pending req_id ivar;
    Stats.Counter.incr t.sent;
    send t ~dst:t.certifiers.(t.target) request;
    Engine.schedule_after t.engine t.timeout (fun () ->
        ignore (Ivar.try_fill ivar Timed_out));
    match Ivar.read ivar with
    | Reply reply ->
        Hashtbl.remove t.pending req_id;
        reply
    | Fetched _ ->
        (* Cannot happen: fetch ids are distinct requests. Treat as noise. *)
        attempt n
    | Redirect hint ->
        let known = rotate_target t hint in
        (* A redirect to the actual leader deserves an immediate retry; but
           if redirects keep bouncing us around (stale hints, an election in
           progress) fall back to backoff instead of a millisecond-interval
           hot loop against nodes that cannot answer. *)
        let delay = if known && n < 3 then Time.of_ms 1. else backoff_delay t n in
        Engine.sleep t.engine delay;
        attempt (n + 1)
    | Timed_out ->
        Stats.Counter.incr t.failover_count;
        round_robin t;
        (* Backoff sleeps are long; keep a waiter registered so a late reply
           from a slow (or just-healed) leader still lands — the request id
           is stable, so it remains valid across attempts. *)
        let late = Ivar.create t.engine () in
        Hashtbl.replace t.pending req_id late;
        Engine.sleep t.engine (backoff_delay t n);
        (match Ivar.peek late with
        | Some (Reply reply) ->
            Hashtbl.remove t.pending req_id;
            reply
        | Some (Redirect hint) ->
            ignore (rotate_target t hint);
            attempt (n + 1)
        | Some (Fetched _) | Some Timed_out | None -> attempt (n + 1))
  in
  attempt 0

let certify t ?(trace_id = 0) ~start_version ~replica_version ~oldest_snapshot ws =
  t.next_req <- t.next_req + 1;
  let req_id = t.next_req in
  retry_certify t ~req_id
    (Types.Cert_request
       {
         req_id;
         trace_id;
         replica = t.my_addr;
         start_version;
         replica_version;
         oldest_snapshot;
         writeset = ws;
       })

let certify_cross t ?(trace_id = 0) ~gtx ~part ~replica_version ~oldest_snapshot
    ~fragments () =
  t.next_req <- t.next_req + 1;
  let req_id = t.next_req in
  retry_certify t ~req_id
    (Types.Xcert_request
       {
         x_req_id = req_id;
         x_trace_id = trace_id;
         x_replica = t.my_addr;
         x_part = part;
         x_gtx = gtx;
         x_replica_version = replica_version;
         x_oldest_snapshot = oldest_snapshot;
         x_fragments = fragments;
       })

let fetch_attempts = 3

let fetch t ~replica ~from_version ~oldest_snapshot =
  (* Unlike certify, each attempt uses a fresh request id: a fetch is a
     read-only snapshot request, so a late reply to an abandoned attempt
     must be discarded rather than fill a newer fetch's waiter. *)
  let rec attempt n =
    if n > 0 then Stats.Counter.incr t.refetch_count;
    t.next_req <- t.next_req + 1;
    let req_id = t.next_req in
    let ivar = Ivar.create t.engine () in
    Hashtbl.replace t.pending req_id ivar;
    Stats.Counter.incr t.sent;
    send t
      ~dst:t.certifiers.(t.target)
      (Types.Fetch_request
         {
           fetch_req_id = req_id;
           fetch_replica = replica;
           from_version;
           fetch_oldest_snapshot = oldest_snapshot;
         });
    Engine.schedule_after t.engine t.timeout (fun () ->
        ignore (Ivar.try_fill ivar Timed_out));
    let outcome = Ivar.read ivar in
    Hashtbl.remove t.pending req_id;
    match outcome with
    | Fetched reply -> Some reply
    | Reply _ -> None
    | Redirect hint ->
        ignore (rotate_target t hint);
        if n + 1 < fetch_attempts then begin
          Engine.sleep t.engine (Time.of_ms 1.);
          attempt (n + 1)
        end
        else None
    | Timed_out ->
        Stats.Counter.incr t.failover_count;
        round_robin t;
        if n + 1 < fetch_attempts then attempt (n + 1) else None
  in
  attempt 0

let handle t msg =
  match msg with
  | Types.Cert_reply reply -> (
      match Hashtbl.find_opt t.pending reply.req_id with
      | Some ivar -> ignore (Ivar.try_fill ivar (Reply reply))
      | None -> ())
  | Types.Cert_redirect { req_id; leader } -> (
      match Hashtbl.find_opt t.pending req_id with
      | Some ivar -> ignore (Ivar.try_fill ivar (Redirect leader))
      | None -> ())
  | Types.Fetch_reply reply -> (
      match Hashtbl.find_opt t.pending reply.fetch_req_id with
      | Some ivar -> ignore (Ivar.try_fill ivar (Fetched reply))
      | None -> ())
  | Types.Cert_request _ | Types.Xcert_request _ | Types.Xvote _
  | Types.Fetch_request _ | Types.Paxos _ ->
      ()

let requests_sent t = Stats.Counter.value t.sent
let retries t = Stats.Counter.value t.retry_count
let failovers t = Stats.Counter.value t.failover_count
let refetches t = Stats.Counter.value t.refetch_count

(** The transparent replication proxy (§6.2).

    Sits in front of one database replica: clients open transactions through
    it, it tracks [replica_version], invokes certification on commit, and
    applies remote writesets — serially in Base and Tashkent-MW, or
    concurrently with commit-order sequence numbers in Tashkent-API, where
    it also detects artificial conflicts between remote writesets (§5.2.1)
    and serialises exactly the conflicting ones.

    Ordering discipline: commit replies from the certifier arrive in global
    version order (the certifier answers at log-apply time, links are FIFO);
    a single {e applier} fiber consumes them in that order, so versions are
    installed monotonically. Abort replies are handled directly by the
    client's fiber — they touch no versioned state and must not queue behind
    a blocked application (that is what lets a lock held by a
    doomed-to-abort local transaction drain, §8.2). *)

type config = {
  mode : Types.mode;
  apply_cpu_per_ws : Sim.Time.t;
      (** fixed CPU to re-apply one remote writeset — together with
          {!apply_cpu_per_op} roughly an order of magnitude below executing
          the original transaction (§10.3) *)
  apply_cpu_per_op : Sim.Time.t;  (** additional CPU per row operation *)
  staleness_bound : Sim.Time.t option;
      (** idle refresh interval (§6.2 "bounding staleness"); [None]
          disables the refresher *)
  soft_recovery : bool;
      (** resolve remote-vs-local deadlocks by aborting the local cycle
          members and retrying the writeset (only relevant when the
          database lacks priority writes) *)
  group_remote_batches : bool;
      (** merge a reply's remote writesets into one transaction (§3,
          "grouping remote writesets"). Disabling reproduces the paper's
          naive strawman: one commit per remote writeset. *)
  local_certification : bool;
      (** §6.2: raise a transaction's effective start version to the
          locally-verified point before asking the certifier, reducing its
          intersection work. Safe because the transaction's write locks
          guarantee no announced conflict exists. *)
  apply_workers : int;
      (** number of parallel applier fibers (default 1). With more than
          one, every certified commit — remote writesets and this
          replica's own — is dispatched to a dependency-tracked
          {!Apply_pool}: non-conflicting writesets apply concurrently
          (their WAL fsyncs group), conflicting ones wait for their
          predecessors, and version visibility advances only through the
          contiguous-order publish barrier, so GSI snapshots are
          unchanged. Overrides the per-mode serial/concurrent paths. *)
}

val default_config : Types.mode -> config

type t

val create :
  Env.t ->
  addr:string ->
  ?part:int ->
  db:Mvcc.Db.t ->
  cpu:Sim.Resource.t ->
  certifiers:string list ->
  req_id_base:int ->
  ?config:config ->
  unit ->
  t
(** Registers endpoint [addr] on [env]'s network and spawns the reply
    dispatcher, the applier (an {!Apply_pool} when
    [config.apply_workers > 1]), and (if configured) the staleness
    refresher.

    Observability: counters register under [proxy.<addr>.*] in
    [env.metrics], the cumulative [Cert_client] robustness counters are
    exported as [cert_client.<addr>.*] gauges, and a parallel applier adds
    [replica.<addr>.apply.*]. With a live [env.trace], every update
    transaction gets a trace id at {!begin_tx} and the proxy records
    [txn.commit], [certify], [durability], [apply] (or
    [apply.wait]/[apply.exec] under a parallel applier) and [backfill]
    spans on the sim clock (taxonomy in DESIGN.md §10). With a live
    [env.events], the proxy feeds the protocol-event stream —
    [Tx_submitted]/[Tx_resolved] around every certified commit,
    [Ws_install]/[Snapshot_advance] at each store-extending install,
    [Snapshot_load] when a refresh answers with a full state transfer,
    and [Actor_reset] on {!pause} — tagged with partition [part]
    (default 0, the single-partition layout).

    @raise Invalid_argument if [config.apply_workers < 1]. *)

val addr : t -> string
val mode : t -> Types.mode
val replica_version : t -> int
val db : t -> Mvcc.Db.t

val client : t -> Cert_client.t
(** The underlying certifier client, exposed for its fault/robustness
    counters (retries, failovers, re-fetches). *)

val enable_commit_journal : t -> unit
(** Start recording every commit acked durable to this proxy (at
    commit-reply arrival — i.e. after the certifier group reached majority
    durability). The journal is a harness-side oracle: it is never cleared
    by crash/pause paths, so a chaos experiment can assert each acked
    commit is still present in the certified log after recovery. *)

val journaled_commits : t -> (int * int) list
(** The journal, oldest first, as [(req_id, commit_version)] pairs. Empty
    unless {!enable_commit_journal} was called. *)

val journaled_cross_commits : t -> (Types.gtx_id * int) list
(** Cross-partition commits acked durable to this proxy, oldest first, as
    [(gtx, local fragment version)] pairs — the cross-partition half of
    {!journaled_commits}, verified against the certifier groups'
    {!Certifier.x_outcome} witnesses. Empty unless
    {!enable_commit_journal} was called. *)

(** {1 Client interface (the "JDBC" face)} *)

type tx

type failure =
  | Cert_abort of Types.abort_cause  (** certifier found a write–write conflict *)
  | Local_abort of Mvcc.Db.abort_reason  (** aborted at the replica before
                                             certification *)

val pp_failure : Format.formatter -> failure -> unit

val begin_tx : t -> tx
val read : t -> tx -> Mvcc.Key.t -> Mvcc.Value.t option
val write : t -> tx -> Mvcc.Key.t -> Mvcc.Writeset.op -> (unit, failure) result
val abort : t -> tx -> unit

val commit : t -> tx -> (unit, failure) result
(** Blocking. Read-only transactions commit immediately; update
    transactions go through certification, remote-writeset application and
    the local ordered commit. *)

val commit_cross :
  t -> tx -> gtx:Types.gtx_id -> fragments:Types.xfragment list ->
  (unit, failure) result
(** Blocking. Commit this proxy's fragment of a cross-partition
    transaction: [tx]'s writeset must be the fragment owned by this
    proxy's partition (the {!Session} routes writes by key, so this holds
    by construction), and [fragments] lists every fragment of [gtx] with
    this proxy's own among them (matched by origin address). Runs the
    same commit pipeline as {!commit} but certifies through
    {!Cert_client.certify_cross}; the reply's version and remotes are in
    this partition's version space. *)

val tx_writeset : tx -> Mvcc.Writeset.t
(** The transaction's accumulated writeset (used by the {!Session} to
    build cross-partition fragments before commit). *)

val tx_start_version : tx -> int
(** The snapshot version this transaction started on, in this proxy's
    partition version space. *)

val tx_trace_id : tx -> int

(** {1 Maintenance} *)

val refresh : t -> unit
(** Fetch and apply remote writesets the replica is missing (used by the
    staleness refresher and by recovery). Blocking; no-op if busy. *)

val pause : t -> unit
(** Stop issuing new work (replica crash). In-flight client transactions
    fail. *)

val disconnect : t -> unit
(** Drop the proxy's network endpoint and queued messages (crash): replies
    in flight to it vanish, and the network's FIFO floors for its links are
    purged so {!reconnect} starts clean. *)

val reconnect : t -> unit
(** Re-register the endpoint dropped by {!disconnect}, reusing the same
    mailbox (the dispatcher fiber stays parked across the outage). *)

val resume : t -> unit

(** {1 Statistics} *)

type stats = {
  commits : int;
  cert_aborts : int;
  local_aborts : int;
  read_only_commits : int;
  remote_ws_applied : int;
  apply_batches : int;
  artificial_serializations : int;
      (** remote-writeset chunks that had to wait for a conflicting
          predecessor (Tashkent-API) *)
  refreshes : int;
  local_cert_promotions : int;
      (** commits whose effective start version was raised by local
          certification (§6.2) *)
  preempted_commits : int;
      (** certified-commit transactions that were doomed locally (lock
          preemption by a remote writeset, §8.2) while their commit reply
          was delayed by a certifier failover; their writesets were
          installed from the buffer under the certifier's decision *)
  apply_stalls : int;
      (** parallel-applier items that had to wait for a conflicting
          predecessor before executing; always 0 with [apply_workers = 1] *)
}

val stats : t -> stats
(** Counts since creation or the last reset. Counters are plain counts (not
    rates); all are also readable through the registry passed to
    {!create}. *)

val apply_parallelism : t -> float
(** Time-weighted mean number of concurrently executing apply items (see
    {!Apply_pool.parallelism}); 1.0 when running without a parallel
    applier. *)

val snapshot_installs : t -> int
(** Refreshes whose asked-for log prefix had been truncated at the
    certifier and were answered with (and installed from) a full state
    transfer instead. Also exported as [proxy.<addr>.snapshot_installs]. *)

val floor_heals : t -> int
(** Times a certification abort revealed this replica's applied version had
    fallen below the certifier's truncation floor (its watermark report
    went stale — e.g. across a leader election — and the floor passed it),
    triggering an eager refresh from the commit path. Without the eager
    heal the replica livelocks: every request re-aborts as
    snapshot-too-old, the abort traffic keeps the idle refresher from ever
    firing, and its frozen report pins the cluster floor forever. Also
    exported as [proxy.<addr>.floor_heals]. *)

val bridge_heals : t -> int
(** Times a commit reply arrived whose composed remotes did not bridge
    every version between this replica's applied prefix and the commit
    version, forcing a fetch (usually answered with a state transfer)
    before the install. The schedule that produces such a reply: the
    certifier re-answers a retried, already-decided request after the GC
    floor passed the replica's stale watermark, so the bridging log
    entries are gone. Installing without the heal would advance the
    replica over a permanent hole — silent divergence. Also exported as
    [proxy.<addr>.bridge_heals]. *)

val reset_stats : t -> unit
(** Zero this proxy's counters only. When the proxy shares a registry with
    the rest of a cluster, prefer [Obs.Registry.reset] on that registry —
    it resets the same counter objects plus everyone else's. *)

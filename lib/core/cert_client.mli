(** Proxy-side client for the certifier group: leader discovery, retries
    with timeouts and capped exponential backoff (surviving certifier
    crashes, partitions and elections), and routing of replies back to
    waiting fibers by request id. *)

type t

val create :
  Sim.Engine.t ->
  net:Types.message Net.Network.t ->
  my_addr:string ->
  certifiers:string list ->
  ?timeout:Sim.Time.t ->
  ?backoff_base:Sim.Time.t ->
  ?backoff_cap:Sim.Time.t ->
  ?rng:Sim.Rng.t ->
  req_id_base:int ->
  unit ->
  t
(** [req_id_base] makes request ids globally unique across replicas (ids
    are [req_id_base + n]). Retry pacing: attempt [n] backs off
    [min (backoff_cap, backoff_base * 2^n)] scaled by a jitter factor in
    [0.5, 1.5) drawn from [rng] (deterministically derived from
    [req_id_base] when omitted). Does not register any endpoint: the owner
    must route {!Types.Cert_reply}, {!Types.Cert_redirect} and
    {!Types.Fetch_reply} messages arriving at [my_addr] to {!handle}. *)

val certify :
  t ->
  ?trace_id:int ->
  start_version:int ->
  replica_version:int ->
  oldest_snapshot:int ->
  Mvcc.Writeset.t ->
  Types.cert_reply
(** [oldest_snapshot] is the replica's GC-watermark report (oldest snapshot
    any of its live transactions still reads), piggybacked on the request.
    Blocking: sends the certification request to the presumed leader and
    keeps retrying (same request id, so retries are idempotent) across
    redirects, timeouts and certifier failovers until a reply arrives.
    Redirect hints naming an unknown certifier fall back to round-robin;
    repeated timeouts or redirect bounces back off exponentially (with
    jitter) up to [backoff_cap], so a fully partitioned client probes the
    group at a decaying rate instead of spinning at a fixed interval. *)

val certify_cross :
  t ->
  ?trace_id:int ->
  gtx:Types.gtx_id ->
  part:int ->
  replica_version:int ->
  oldest_snapshot:int ->
  fragments:Types.xfragment list ->
  unit ->
  Types.cert_reply
(** Submit one partition's fragment of a cross-partition transaction to
    the certifier group of partition [part]. [fragments] carries EVERY
    fragment of the transaction (the receiving group re-gossips them so
    any surviving leader can finish the commit); [replica_version] is in
    the receiving partition's version space. Same blocking retry
    discipline as {!certify} — the request id is stable across attempts
    and the certifier answers retries of decided transactions from its
    never-pruned outcome table. The reply's [commit_version] and
    [remotes] are for partition [part] only. *)

val fetch :
  t ->
  replica:string ->
  from_version:int ->
  oldest_snapshot:int ->
  Types.fetch_reply option
(** Blocking: used by the bounded-staleness refresher and recovery replay.
    [oldest_snapshot] piggybacks the watermark report as in {!certify}.
    A reply whose [fetch_snapshot] is present means the asked-for prefix
    was truncated and carries a full state transfer instead.
    Each attempt carries a fresh request id, so a stale reply to an
    abandoned (timed-out or superseded) fetch is discarded instead of
    filling a newer fetch's waiter; concurrent fetches are routed
    independently. Retries a bounded number of times across redirects and
    timeouts, rotating targets; [None] when every attempt timed out. *)

val handle : t -> Types.message -> unit

(** {1 Fault/robustness counters} *)

val requests_sent : t -> int

val retries : t -> int
(** Certify attempts beyond the first (redirects + timeouts). *)

val failovers : t -> int
(** Timeouts that rotated the target certifier (certify and fetch). *)

val refetches : t -> int
(** Fetch attempts beyond the first. *)

open Mvcc

type t = {
  entries : (int, Types.entry) Hashtbl.t; (* version -> entry *)
  writers : int list ref Key.Tbl.t; (* key -> versions that wrote it, newest first *)
}

let create () = { entries = Hashtbl.create 64; writers = Key.Tbl.create 256 }
let size t = Hashtbl.length t.entries

let add t (entry : Types.entry) =
  Hashtbl.replace t.entries entry.version entry;
  Writeset.iter_keys entry.ws (fun key ->
      match Key.Tbl.find_opt t.writers key with
      | Some versions -> versions := entry.version :: !versions
      | None -> Key.Tbl.replace t.writers key (ref [ entry.version ]))

let holds_request t ~origin ~req_id =
  Hashtbl.fold
    (fun _ (entry : Types.entry) acc ->
      acc || (entry.req_id = req_id && String.equal entry.origin origin))
    t.entries false

let conflict t ws ~start_version =
  let best = ref None in
  Writeset.iter_keys ws (fun key ->
      match Key.Tbl.find_opt t.writers key with
      | None -> ()
      | Some versions -> (
          (* Newest first: the head is this key's largest writer, so one
             comparison per key decides. *)
          match !versions with
          | v :: _ when v > start_version -> (
              match !best with Some b when b >= v -> () | _ -> best := Some v)
          | _ -> ()));
  !best

let remove t version =
  match Hashtbl.find_opt t.entries version with
  | None -> ()
  | Some entry ->
      Hashtbl.remove t.entries version;
      Writeset.iter_keys entry.ws (fun key ->
          match Key.Tbl.find_opt t.writers key with
          | None -> ()
          | Some versions -> (
              versions := List.filter (fun v -> v <> version) !versions;
              match !versions with [] -> Key.Tbl.remove t.writers key | _ -> ()))

let clear t =
  Hashtbl.reset t.entries;
  Key.Tbl.reset t.writers

open Mvcc

type t = {
  entries : (int, Types.entry) Hashtbl.t; (* version -> entry *)
  (* key -> (version, wrote-a-delta) pairs, newest first (see Cert_log). *)
  writers : (int * bool) list ref Key.Tbl.t;
  mutable delta_skips : int;
}

let create () =
  { entries = Hashtbl.create 64; writers = Key.Tbl.create 256; delta_skips = 0 }

let size t = Hashtbl.length t.entries

let add t (entry : Types.entry) =
  Hashtbl.replace t.entries entry.version entry;
  Writeset.iter_entries entry.ws (fun key op ->
      let tagged = (entry.version, Writeset.op_is_delta op) in
      match Key.Tbl.find_opt t.writers key with
      | Some versions -> versions := tagged :: !versions
      | None -> Key.Tbl.replace t.writers key (ref [ tagged ]))

let holds_request t ~origin ~req_id =
  Hashtbl.fold
    (fun _ (entry : Types.entry) acc ->
      acc || (entry.req_id = req_id && String.equal entry.origin origin))
    t.entries false

let conflict t ws ~start_version =
  let best = ref None in
  Writeset.iter_entries ws (fun key op ->
      let mine_delta = Writeset.op_is_delta op in
      match Key.Tbl.find_opt t.writers key with
      | None -> ()
      | Some versions ->
          (* Newest first. A delta candidate must scan past in-flight delta
             writers (they commute) down to the first blind writer still
             above its snapshot; a blind candidate conflicts with the head
             directly. *)
          let rec scan = function
            | [] -> ()
            | (v, writer_delta) :: rest ->
                if v > start_version then
                  if mine_delta && writer_delta then begin
                    t.delta_skips <- t.delta_skips + 1;
                    scan rest
                  end
                  else
                    match !best with
                    | Some b when b >= v -> ()
                    | _ -> best := Some v
          in
          scan !versions);
  !best

let remove t version =
  match Hashtbl.find_opt t.entries version with
  | None -> ()
  | Some entry ->
      Hashtbl.remove t.entries version;
      Writeset.iter_keys entry.ws (fun key ->
          match Key.Tbl.find_opt t.writers key with
          | None -> ()
          | Some versions -> (
              versions := List.filter (fun (v, _) -> v <> version) !versions;
              match !versions with [] -> Key.Tbl.remove t.writers key | _ -> ()))

let delta_overlaps t = t.delta_skips

let clear t =
  Hashtbl.reset t.entries;
  Key.Tbl.reset t.writers

(** Dependency-tracked parallel writeset applier.

    A replica's proxy feeds every certified commit — remote writesets and
    the replica's own commits alike — to this pool {e in version order}. A
    key-level index over in-flight writesets gives each new item the set of
    pending predecessors it conflicts with; a bounded pool of worker fibers
    then executes items as soon as their dependencies have finished, so
    non-conflicting writesets overlap their lock work, CPU charges and WAL
    fsyncs (which group across workers), while conflicting ones serialise
    exactly as the paper's commit-order rule requires (§5.2: order enforced
    only where transactions conflict).

    Commutative deltas ({!Mvcc.Writeset.Add}) relax the key-level
    dependencies: delta writers of the same key do not wait on each other
    (their store installs commute), only on the newest pending final-image
    writer of that key; a final-image write still waits on every pending
    writer of the key, blind or delta.

    Publication is decoupled from execution: a publisher fiber fires each
    item's [on_published] callback strictly in submission order, once every
    earlier item has executed. Callers pair this with
    [Mvcc.Db.apply_writeset_parallel] /
    [Mvcc.Db.commit_replicated_parallel], whose store installs become
    visible through the same contiguous-prefix barrier — GSI snapshots
    never see a gap.

    Metrics (registered by {!create} under [replica.<name>.apply.*]):
    [stalls] (items that had to wait for a conflicting predecessor),
    [submitted], [parallelism] (time-weighted mean number of concurrently
    executing items, over time when at least one is executing) and
    [pending] (submitted but not yet published). Trace stages: [apply.wait]
    (submission to execution start) and [apply.exec]. *)

type t

type handle
(** One submitted item. *)

val create :
  Sim.Engine.t ->
  name:string ->
  workers:int ->
  metrics:Obs.Registry.t ->
  trace:Obs.Trace.t ->
  unit ->
  t
(** Spawn [workers] worker fibers and one publisher fiber. [name] is the
    replica label used for fiber names, metric names and trace actors.
    Create at most one pool per [name] per registry.
    @raise Invalid_argument if [workers < 1]. *)

val submit :
  t ->
  version:int ->
  ws:Mvcc.Writeset.t ->
  ?trace_id:int ->
  ?on_published:(unit -> unit) ->
  exec:(unit -> unit) ->
  unit ->
  handle
(** Enqueue one item. [exec] runs in a worker fiber once every in-flight
    predecessor writing an overlapping key has executed; it may block (lock
    waits, CPU, WAL flush). [on_published] runs in the publisher fiber once
    every earlier-submitted item has executed. Items must be submitted in
    version order. *)

val has_deps : handle -> bool
(** Whether the item conflicted with a pending predecessor at submission
    time (the pool-level analogue of the certifier's [conflict_with]
    annotation). *)

val version : handle -> int

val wait_published : handle -> unit
(** Block until the item (and every item before it) has executed and been
    published. Must run in a fiber. *)

val parallelism : t -> float
(** Time-weighted mean number of concurrently executing items, measured
    over the time at least one item was executing. 0 if nothing has
    executed yet. Re-baselined by the registry's [reset]. *)

val stalls : t -> int
val pending : t -> int

val pause : t -> unit
(** Crash support: cancel all fibers, drop queued and in-flight items,
    clear the dependency index. Accounting is re-baselined. *)

val resume : t -> unit
(** Respawn worker and publisher fibers after {!pause}. *)

open Sim

type io_layout = Shared_io | Dedicated_io

type mw_recovery =
  | Dump_based of { interval : Time.t }
  | Integrity_kept of { wal_sync_interval : Time.t }

type config = {
  mode : Types.mode;
  io : io_layout;
  mw_recovery : mw_recovery;
  eager_precert : bool;
  exec_cpu : Time.t;
  apply_cpu_per_ws : Time.t;
  commit_record_bytes : int;
  page_read_miss : float;
  page_writeback_per_op : float;
  bg_page_writes_per_sec : float;
  staleness_bound : Time.t option;
  group_remote_batches : bool;
  apply_workers : int;
  db_size_bytes : int;
  dump_bandwidth : float;
  restore_bandwidth : float;
  gc_interval : Time.t option;
  max_snapshot_age : Time.t option;
}

let default_config mode =
  {
    mode;
    io = Shared_io;
    mw_recovery = Dump_based { interval = Time.sec 600 };
    eager_precert = true;
    exec_cpu = Time.of_ms 1.5;
    apply_cpu_per_ws = Time.us 65;
    commit_record_bytes = 8192;
    page_read_miss = 0.;
    page_writeback_per_op = 0.;
    bg_page_writes_per_sec = 0.;
    staleness_bound = Some (Time.sec 1);
    group_remote_batches = true;
    apply_workers = 1;
    db_size_bytes = 50_000_000;
    dump_bandwidth = 3_000_000.;
    restore_bandwidth = 5_000_000.;
    gc_interval = Some (Time.sec 30);
    max_snapshot_age = None;
  }

type recovery_report = {
  took : Time.t;
  restore_took : Time.t;
  replay_took : Time.t;
  restored_version : int;
  writesets_replayed : int;
  final_version : int;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  label : string;
  cfg : config;
  cpu_resource : Resource.t;
  log_device : Storage.Disk.t;
  data_device : Storage.Disk.t;
  database : Mvcc.Db.t;
  the_proxy : Proxy.t;
  dumps : Mvcc.Store.t Storage.Dump_store.t;
  mutable dump_in_progress : bool;
  mutable dump_count : int;
  mutable up : bool;
  mutable clients : Engine.fiber list;
  mutable respawn_clients : unit -> unit;
}

let name t = t.label
let proxy t = t.the_proxy
let db t = t.database
let cpu t = t.cpu_resource
let log_disk t = t.log_device
let data_disk t = t.data_device
let is_up t = t.up
let config t = t.cfg
let load t rows = Mvcc.Db.load t.database rows
let use_cpu t span = Resource.use t.cpu_resource span
let register_client t fiber = t.clients <- fiber :: t.clients
let set_respawn_clients t f = t.respawn_clients <- f
let dumps_taken t = t.dump_count

let durability_of cfg =
  match (cfg.mode, cfg.mw_recovery) with
  | Types.Base, _ | Types.Tashkent_api, _ -> Mvcc.Db.Synchronous
  | Types.Tashkent_mw, Dump_based _ -> Mvcc.Db.Asynchronous
  | Types.Tashkent_mw, Integrity_kept { wal_sync_interval } ->
      Mvcc.Db.Periodic wal_sync_interval

(* Periodic full database copy for Tashkent-MW case-1 recovery (§7.1). The
   copy streams through the data device at the configured pace, competing
   with normal traffic, and takes a CPU slice — the paper measured ~13%
   throughput degradation during the 230 s dump. *)
let spawn_dumper t interval =
  ignore
    (Engine.spawn t.engine ~name:(t.label ^ ".dumper") (fun () ->
         let rec loop () =
           Engine.sleep t.engine interval;
           if t.up then begin
             t.dump_in_progress <- true;
             let chunk = 1_000_000 in
             let chunks = max 1 (t.cfg.db_size_bytes / chunk) in
             let per_chunk = Time.of_sec (float_of_int chunk /. t.cfg.dump_bandwidth) in
             for _ = 1 to chunks do
               if t.up then begin
                 let started = Engine.now t.engine in
                 Storage.Disk.write t.data_device ~bytes:chunk;
                 Resource.use t.cpu_resource (Time.scale per_chunk 0.13);
                 let elapsed = Time.diff (Engine.now t.engine) started in
                 if Time.(elapsed < per_chunk) then
                   Engine.sleep t.engine (Time.sub per_chunk elapsed)
               end
             done;
             if t.up then begin
               let version, copy = Mvcc.Db.dump t.database in
               Storage.Dump_store.put t.dumps ~version ~bytes:t.cfg.db_size_bytes copy;
               t.dump_count <- t.dump_count + 1;
               t.dump_in_progress <- false
             end
           end;
           loop ()
         in
         loop ()))

let create (env : Env.t) ~name:label ~certifiers ~req_id_base ~config:cfg () =
  let engine = env.Env.engine in
  (* One private stream per replica, drawn from the environment's root in
     construction order — the same discipline Cluster used to apply
     externally, so seeds reproduce the same runs. *)
  let rng = Env.split_rng env in
  let cpu_resource = Resource.create engine ~name:(label ^ ".cpu") ~capacity:1 () in
  let hdd =
    Storage.Disk.create engine ~rng:(Rng.split rng) ~name:(label ^ ".disk") ()
  in
  let log_device, data_device =
    match cfg.io with
    | Shared_io -> (hdd, hdd)
    | Dedicated_io ->
        (hdd, Storage.Disk.create_ram engine ~rng:(Rng.split rng) ~name:(label ^ ".ram") ())
  in
  let db_config =
    {
      Mvcc.Db.durability = durability_of cfg;
      commit_record_bytes = cfg.commit_record_bytes;
      page_bytes = 8192;
      page_read_miss = cfg.page_read_miss;
      page_writeback_per_op = cfg.page_writeback_per_op;
      background_page_writes_per_sec = cfg.bg_page_writes_per_sec;
      commit_cpu = Time.zero;
      remote_priority = cfg.eager_precert;
      gc_interval = cfg.gc_interval;
      max_snapshot_age = cfg.max_snapshot_age;
    }
  in
  let database =
    Mvcc.Db.create engine ~rng:(Rng.split rng) ~log_disk:log_device
      ~data_disk:data_device ~cpu:cpu_resource ~config:db_config ~name:(label ^ ".db") ()
  in
  let proxy_config =
    {
      Proxy.mode = cfg.mode;
      apply_cpu_per_ws = cfg.apply_cpu_per_ws;
      apply_cpu_per_op = Time.us 35;
      staleness_bound = cfg.staleness_bound;
      soft_recovery = true;
      group_remote_batches = cfg.group_remote_batches;
      local_certification = true;
      apply_workers = cfg.apply_workers;
    }
  in
  let the_proxy =
    Proxy.create env ~addr:label ~db:database ~cpu:cpu_resource ~certifiers
      ~req_id_base ~config:proxy_config ()
  in
  let t =
    {
      engine;
      rng;
      label;
      cfg;
      cpu_resource;
      log_device;
      data_device;
      database;
      the_proxy;
      dumps = Storage.Dump_store.create ();
      dump_in_progress = false;
      dump_count = 0;
      up = true;
      clients = [];
      respawn_clients = (fun () -> ());
    }
  in
  (match (cfg.mode, cfg.mw_recovery) with
  | Types.Tashkent_mw, Dump_based { interval } -> spawn_dumper t interval
  | _ -> ());
  (* The proxy registered its own counters above; here we add views of the
     replica-owned devices and database, and make a registry reset restart
     their windows too (mirroring what Cluster.reset_stats used to spell
     out per module). *)
  let reg = env.Env.metrics in
  let g name read = Obs.Registry.gauge reg ("replica." ^ label ^ "." ^ name) read in
  g "db.ws_per_fsync" (fun () -> Storage.Wal.mean_group_size (Mvcc.Db.wal t.database));
  g "log_disk.fsyncs" (fun () -> float_of_int (Storage.Disk.fsyncs t.log_device));
  g "log_disk.utilization" (fun () -> Storage.Disk.utilization t.log_device);
  g "cpu.utilization" (fun () -> Resource.utilization t.cpu_resource);
  g "dumps_taken" (fun () -> float_of_int t.dump_count);
  (* GC-watermark health: live row-version count (must stay bounded under
     sustained load when vacuuming is on), cumulative versions pruned, and
     stale snapshots expired by the max_snapshot_age escape hatch. *)
  g "store.versions" (fun () ->
      float_of_int (Mvcc.Store.version_records (Mvcc.Db.store t.database)));
  g "store.pruned" (fun () ->
      float_of_int (Mvcc.Store.pruned (Mvcc.Db.store t.database)));
  g "db.stale_snapshots_expired" (fun () ->
      float_of_int (Mvcc.Db.stale_snapshots_expired t.database));
  g "db.cluster_gc_floor" (fun () ->
      float_of_int (Mvcc.Db.cluster_gc_floor t.database));
  Obs.Registry.on_reset reg (fun () ->
      Mvcc.Db.reset_stats t.database;
      Storage.Disk.reset_stats t.log_device;
      if not (t.data_device == t.log_device) then
        Storage.Disk.reset_stats t.data_device);
  t

(* ------------------------------------------------------------------ *)
(* Crash and recovery *)

let crash t =
  t.up <- false;
  List.iter (fun fiber -> Engine.cancel t.engine fiber) t.clients;
  t.clients <- [];
  Proxy.pause t.the_proxy;
  Proxy.disconnect t.the_proxy;
  (* A dump that was still being written is simply lost; only complete
     copies ever enter the store (which is why two are kept, 7.1). *)
  t.dump_in_progress <- false;
  Mvcc.Db.crash t.database

let stream_through_disk t ~bytes ~bandwidth =
  let chunk = 1_000_000 in
  let chunks = max 1 (bytes / chunk) in
  let per_chunk = Time.of_sec (float_of_int chunk /. bandwidth) in
  for _ = 1 to chunks do
    let started = Engine.now t.engine in
    Storage.Disk.read t.data_device ~bytes:chunk;
    let elapsed = Time.diff (Engine.now t.engine) started in
    if Time.(elapsed < per_chunk) then Engine.sleep t.engine (Time.sub per_chunk elapsed)
  done

let recover t =
  let started = Engine.now t.engine in
  let restored_version =
    match (t.cfg.mode, t.cfg.mw_recovery) with
    | Types.Tashkent_mw, Dump_based _ -> (
        (* §7.1 case 1: restart from the newest intact dump. *)
        match Storage.Dump_store.latest t.dumps with
        | Some (version, bytes, copy) ->
            stream_through_disk t ~bytes ~bandwidth:t.cfg.restore_bandwidth;
            Mvcc.Db.restore_from_dump t.database ~version copy;
            version
        | None ->
            (* Never dumped: rebuild from scratch (version 0 + full replay). *)
            0)
    | Types.Tashkent_mw, Integrity_kept _ | Types.Base, _ | Types.Tashkent_api, _ ->
        (* §7.2 / §7.1 case 2: the database's own redo. The paper measures
           this at a few seconds for TPC-W. *)
        let version = Mvcc.Db.recover t.database in
        Engine.sleep t.engine (Rng.time_uniform t.rng ~lo:(Time.sec 2) ~hi:(Time.sec 4));
        version
  in
  t.up <- true;
  Proxy.reconnect t.the_proxy;
  Proxy.resume t.the_proxy;
  let restore_done = Engine.now t.engine in
  (* Fetch and apply everything missed while down (proxy_log replay). *)
  let before = (Proxy.stats t.the_proxy).remote_ws_applied in
  Proxy.refresh t.the_proxy;
  let replayed = (Proxy.stats t.the_proxy).remote_ws_applied - before in
  t.respawn_clients ();
  {
    took = Time.diff (Engine.now t.engine) started;
    restore_took = Time.diff restore_done started;
    replay_took = Time.diff (Engine.now t.engine) restore_done;
    restored_version;
    writesets_replayed = replayed;
    final_version = Proxy.replica_version t.the_proxy;
  }

open Sim

type io_layout = Shared_io | Dedicated_io

type mw_recovery =
  | Dump_based of { interval : Time.t }
  | Integrity_kept of { wal_sync_interval : Time.t }

type config = {
  mode : Types.mode;
  io : io_layout;
  mw_recovery : mw_recovery;
  eager_precert : bool;
  exec_cpu : Time.t;
  apply_cpu_per_ws : Time.t;
  commit_record_bytes : int;
  page_read_miss : float;
  page_writeback_per_op : float;
  bg_page_writes_per_sec : float;
  staleness_bound : Time.t option;
  group_remote_batches : bool;
  apply_workers : int;
  db_size_bytes : int;
  dump_bandwidth : float;
  restore_bandwidth : float;
  gc_interval : Time.t option;
  max_snapshot_age : Time.t option;
}

let default_config mode =
  {
    mode;
    io = Shared_io;
    mw_recovery = Dump_based { interval = Time.sec 600 };
    eager_precert = true;
    exec_cpu = Time.of_ms 1.5;
    apply_cpu_per_ws = Time.us 65;
    commit_record_bytes = 8192;
    page_read_miss = 0.;
    page_writeback_per_op = 0.;
    bg_page_writes_per_sec = 0.;
    staleness_bound = Some (Time.sec 1);
    group_remote_batches = true;
    apply_workers = 1;
    db_size_bytes = 50_000_000;
    dump_bandwidth = 3_000_000.;
    restore_bandwidth = 5_000_000.;
    gc_interval = Some (Time.sec 30);
    max_snapshot_age = None;
  }

type recovery_report = {
  took : Time.t;
  restore_took : Time.t;
  replay_took : Time.t;
  restored_version : int;
  writesets_replayed : int;
  final_version : int;
}

(* One hosted partition: its own database (partition-private version
   space), its own proxy (own endpoint, own certifier group), its own
   dump store. Devices and CPU are shared — it is all one machine. *)
type part = {
  part_id : int;
  database : Mvcc.Db.t;
  part_proxy : Proxy.t;
  dumps : Mvcc.Store.t Storage.Dump_store.t;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  events : Obs.Events.t;
  label : string;
  cfg : config;
  n_partitions : int;
  partitioner : Partitioner.t;
  cpu_resource : Resource.t;
  log_device : Storage.Disk.t;
  data_device : Storage.Disk.t;
  parts : part list; (* hosted partitions, ascending *)
  the_session : Session.t;
  mutable dump_in_progress : bool;
  mutable dump_count : int;
  mutable up : bool;
  mutable clients : Engine.fiber list;
  mutable respawn_clients : unit -> unit;
}

let name t = t.label
let first_part t = List.hd t.parts
let proxy t = (first_part t).part_proxy
let db t = (first_part t).database
let session t = t.the_session
let partitions t = List.map (fun p -> p.part_id) t.parts
let hosts t ~part = List.exists (fun p -> p.part_id = part) t.parts

let proxy_of t ~part =
  List.find_map
    (fun p -> if p.part_id = part then Some p.part_proxy else None)
    t.parts

let db_of t ~part =
  List.find_map
    (fun p -> if p.part_id = part then Some p.database else None)
    t.parts

let cpu t = t.cpu_resource
let log_disk t = t.log_device
let data_disk t = t.data_device
let is_up t = t.up
let config t = t.cfg

(* Partial replication: each hosted partition loads only its own slice of
   the initial rows; rows of partitions this replica does not subscribe to
   are never stored here. With one partition this is the legacy full load. *)
let load t rows =
  List.iter
    (fun p ->
      let slice =
        List.filter
          (fun (key, _) -> Partitioner.of_key t.partitioner key = p.part_id)
          rows
      in
      Mvcc.Db.load p.database slice)
    t.parts

let use_cpu t span = Resource.use t.cpu_resource span
let register_client t fiber = t.clients <- fiber :: t.clients
let set_respawn_clients t f = t.respawn_clients <- f
let dumps_taken t = t.dump_count

let durability_of cfg =
  match (cfg.mode, cfg.mw_recovery) with
  | Types.Base, _ | Types.Tashkent_api, _ -> Mvcc.Db.Synchronous
  | Types.Tashkent_mw, Dump_based _ -> Mvcc.Db.Asynchronous
  | Types.Tashkent_mw, Integrity_kept { wal_sync_interval } ->
      Mvcc.Db.Periodic wal_sync_interval

(* Periodic full database copy for Tashkent-MW case-1 recovery (§7.1). The
   copy streams through the data device at the configured pace, competing
   with normal traffic, and takes a CPU slice — the paper measured ~13%
   throughput degradation during the 230 s dump. A multi-partition replica
   dumps every hosted partition in one pass (it is one machine copying its
   whole database); each partition's copy enters that partition's store. *)
let spawn_dumper t interval =
  ignore
    (Engine.spawn t.engine ~name:(t.label ^ ".dumper") (fun () ->
         let rec loop () =
           Engine.sleep t.engine interval;
           if t.up then begin
             t.dump_in_progress <- true;
             let chunk = 1_000_000 in
             let chunks = max 1 (t.cfg.db_size_bytes / chunk) in
             let per_chunk = Time.of_sec (float_of_int chunk /. t.cfg.dump_bandwidth) in
             for _ = 1 to chunks do
               if t.up then begin
                 let started = Engine.now t.engine in
                 Storage.Disk.write t.data_device ~bytes:chunk;
                 Resource.use t.cpu_resource (Time.scale per_chunk 0.13);
                 let elapsed = Time.diff (Engine.now t.engine) started in
                 if Time.(elapsed < per_chunk) then
                   Engine.sleep t.engine (Time.sub per_chunk elapsed)
               end
             done;
             if t.up then begin
               let bytes = t.cfg.db_size_bytes / List.length t.parts in
               List.iter
                 (fun p ->
                   let version, copy = Mvcc.Db.dump p.database in
                   Storage.Dump_store.put p.dumps ~version ~bytes copy)
                 t.parts;
               t.dump_count <- t.dump_count + 1;
               t.dump_in_progress <- false
             end
           end;
           loop ()
         in
         loop ()))

(* Endpoint / metric naming: a single-partition replica keeps the legacy
   names ([replica0], [replica0.db], ...) so seeds and dashboards are
   unchanged; a hosted partition of a multi-partition replica is
   [replica0#p2]. *)
let part_label ~label ~n_partitions part =
  if n_partitions = 1 then label else Printf.sprintf "%s#p%d" label part

let create (env : Env.t) ~name:label ~n_partitions ~groups ~config:cfg () =
  if groups = [] then invalid_arg "Replica.create: no certifier groups";
  let groups =
    List.sort (fun (a, _, _) (b, _, _) -> compare a b) groups
  in
  let engine = env.Env.engine in
  (* One private stream per replica, drawn from the environment's root in
     construction order — the same discipline Cluster used to apply
     externally, so seeds reproduce the same runs. Partition databases
     split off this stream in ascending partition order, after the
     devices, so a 1-partition replica consumes the stream exactly as the
     pre-partitioning code did. *)
  let rng = Env.split_rng env in
  let cpu_resource = Resource.create engine ~name:(label ^ ".cpu") ~capacity:1 () in
  let hdd =
    Storage.Disk.create engine ~rng:(Rng.split rng) ~name:(label ^ ".disk") ()
  in
  let log_device, data_device =
    match cfg.io with
    | Shared_io -> (hdd, hdd)
    | Dedicated_io ->
        (hdd, Storage.Disk.create_ram engine ~rng:(Rng.split rng) ~name:(label ^ ".ram") ())
  in
  let db_config =
    {
      Mvcc.Db.durability = durability_of cfg;
      commit_record_bytes = cfg.commit_record_bytes;
      page_bytes = 8192;
      page_read_miss = cfg.page_read_miss;
      page_writeback_per_op = cfg.page_writeback_per_op;
      background_page_writes_per_sec = cfg.bg_page_writes_per_sec;
      commit_cpu = Time.zero;
      remote_priority = cfg.eager_precert;
      gc_interval = cfg.gc_interval;
      max_snapshot_age = cfg.max_snapshot_age;
    }
  in
  let proxy_config =
    {
      Proxy.mode = cfg.mode;
      apply_cpu_per_ws = cfg.apply_cpu_per_ws;
      apply_cpu_per_op = Time.us 35;
      staleness_bound = cfg.staleness_bound;
      soft_recovery = true;
      group_remote_batches = cfg.group_remote_batches;
      local_certification = true;
      apply_workers = cfg.apply_workers;
    }
  in
  let parts =
    List.map
      (fun (part_id, certifiers, req_id_base) ->
        let plabel = part_label ~label ~n_partitions part_id in
        let database =
          Mvcc.Db.create engine ~rng:(Rng.split rng) ~log_disk:log_device
            ~data_disk:data_device ~cpu:cpu_resource ~config:db_config
            ~name:(plabel ^ ".db") ()
        in
        let part_proxy =
          Proxy.create env ~addr:plabel ~part:part_id ~db:database
            ~cpu:cpu_resource ~certifiers ~req_id_base ~config:proxy_config ()
        in
        { part_id; database; part_proxy; dumps = Storage.Dump_store.create () })
      groups
  in
  let the_session =
    Session.create engine ~addr:label ~parts:n_partitions
      ~proxies:(List.map (fun p -> (p.part_id, p.part_proxy)) parts)
  in
  let t =
    {
      engine;
      rng;
      events = Env.events env;
      label;
      cfg;
      n_partitions;
      partitioner = Partitioner.create ~parts:n_partitions;
      cpu_resource;
      log_device;
      data_device;
      parts;
      the_session;
      dump_in_progress = false;
      dump_count = 0;
      up = true;
      clients = [];
      respawn_clients = (fun () -> ());
    }
  in
  (match (cfg.mode, cfg.mw_recovery) with
  | Types.Tashkent_mw, Dump_based { interval } -> spawn_dumper t interval
  | _ -> ());
  (* The proxies registered their own counters above; here we add views of
     the replica-owned devices and the per-partition databases, and make a
     registry reset restart their windows too (mirroring what
     Cluster.reset_stats used to spell out per module). *)
  let reg = env.Env.metrics in
  let g name read = Obs.Registry.gauge reg ("replica." ^ label ^ "." ^ name) read in
  List.iter
    (fun p ->
      let plabel = part_label ~label ~n_partitions p.part_id in
      let gp name read =
        Obs.Registry.gauge reg ("replica." ^ plabel ^ "." ^ name) read
      in
      gp "db.ws_per_fsync" (fun () ->
          Storage.Wal.mean_group_size (Mvcc.Db.wal p.database));
      (* GC-watermark health: live row-version count (must stay bounded
         under sustained load when vacuuming is on), cumulative versions
         pruned, and stale snapshots expired by the max_snapshot_age
         escape hatch. *)
      gp "store.versions" (fun () ->
          float_of_int (Mvcc.Store.version_records (Mvcc.Db.store p.database)));
      gp "store.pruned" (fun () ->
          float_of_int (Mvcc.Store.pruned (Mvcc.Db.store p.database)));
      gp "db.stale_snapshots_expired" (fun () ->
          float_of_int (Mvcc.Db.stale_snapshots_expired p.database));
      gp "db.cluster_gc_floor" (fun () ->
          float_of_int (Mvcc.Db.cluster_gc_floor p.database)))
    parts;
  g "log_disk.fsyncs" (fun () -> float_of_int (Storage.Disk.fsyncs t.log_device));
  g "log_disk.utilization" (fun () -> Storage.Disk.utilization t.log_device);
  g "cpu.utilization" (fun () -> Resource.utilization t.cpu_resource);
  g "dumps_taken" (fun () -> float_of_int t.dump_count);
  Obs.Registry.on_reset reg (fun () ->
      List.iter (fun p -> Mvcc.Db.reset_stats p.database) t.parts;
      Storage.Disk.reset_stats t.log_device;
      if not (t.data_device == t.log_device) then
        Storage.Disk.reset_stats t.data_device);
  t

(* ------------------------------------------------------------------ *)
(* Crash and recovery *)

let part_actor t p = part_label ~label:t.label ~n_partitions:t.n_partitions p.part_id

let crash t =
  t.up <- false;
  (* Each hosted partition proxy is its own protocol actor: its store view
     and any client work die here; recovery re-seeds the view with the
     Snapshot_load below. *)
  List.iter
    (fun p ->
      Obs.Events.emit t.events (Obs.Events.Node_crash { actor = part_actor t p }))
    t.parts;
  List.iter (fun fiber -> Engine.cancel t.engine fiber) t.clients;
  t.clients <- [];
  (* Cross-partition commits in flight through the session become orphans
     of the pre-crash proxies; fail them instead of letting them touch the
     recovered state. The certifier groups still settle their outcome. *)
  Session.abort_inflight t.the_session;
  List.iter
    (fun p ->
      Proxy.pause p.part_proxy;
      Proxy.disconnect p.part_proxy)
    t.parts;
  (* A dump that was still being written is simply lost; only complete
     copies ever enter the store (which is why two are kept, 7.1). *)
  t.dump_in_progress <- false;
  List.iter (fun p -> Mvcc.Db.crash p.database) t.parts

let stream_through_disk t ~bytes ~bandwidth =
  let chunk = 1_000_000 in
  let chunks = max 1 (bytes / chunk) in
  let per_chunk = Time.of_sec (float_of_int chunk /. bandwidth) in
  for _ = 1 to chunks do
    let started = Engine.now t.engine in
    Storage.Disk.read t.data_device ~bytes:chunk;
    let elapsed = Time.diff (Engine.now t.engine) started in
    if Time.(elapsed < per_chunk) then Engine.sleep t.engine (Time.sub per_chunk elapsed)
  done

let recover t =
  let started = Engine.now t.engine in
  let restored_version =
    match (t.cfg.mode, t.cfg.mw_recovery) with
    | Types.Tashkent_mw, Dump_based _ ->
        (* §7.1 case 1: restart every hosted partition from its newest
           intact dump (the dumper writes them all in one pass, so they
           are from the same wall-clock copy). *)
        List.fold_left
          (fun acc p ->
            match Storage.Dump_store.latest p.dumps with
            | Some (version, bytes, copy) ->
                stream_through_disk t ~bytes ~bandwidth:t.cfg.restore_bandwidth;
                Mvcc.Db.restore_from_dump p.database ~version copy;
                if p.part_id = (first_part t).part_id then version else acc
            | None ->
                (* Never dumped: rebuild from scratch (version 0 + full
                   replay). *)
                acc)
          0 t.parts
    | Types.Tashkent_mw, Integrity_kept _ | Types.Base, _ | Types.Tashkent_api, _ ->
        (* §7.2 / §7.1 case 2: the database's own redo. The paper measures
           this at a few seconds for TPC-W. *)
        let version =
          List.fold_left
            (fun acc p ->
              let v = Mvcc.Db.recover p.database in
              if p.part_id = (first_part t).part_id then v else acc)
            0 t.parts
        in
        Engine.sleep t.engine (Rng.time_uniform t.rng ~lo:(Time.sec 2) ~hi:(Time.sec 4));
        version
  in
  t.up <- true;
  List.iter
    (fun p ->
      Proxy.reconnect p.part_proxy;
      Proxy.resume p.part_proxy;
      Obs.Events.emit t.events
        (Obs.Events.Node_recover { actor = part_actor t p });
      (* The restored store (dump or redo) is the new baseline; everything
         the replica missed arrives as installs above it via refresh. *)
      Obs.Events.emit t.events
        (Obs.Events.Snapshot_load
           {
             actor = part_actor t p;
             part = p.part_id;
             version = Mvcc.Db.current_version p.database;
           }))
    t.parts;
  let restore_done = Engine.now t.engine in
  (* Fetch and apply everything missed while down (proxy_log replay),
     partition by partition — each proxy refreshes from its own group. *)
  let applied () =
    List.fold_left
      (fun acc p -> acc + (Proxy.stats p.part_proxy).remote_ws_applied)
      0 t.parts
  in
  let before = applied () in
  List.iter (fun p -> Proxy.refresh p.part_proxy) t.parts;
  let replayed = applied () - before in
  t.respawn_clients ();
  {
    took = Time.diff (Engine.now t.engine) started;
    restore_took = Time.diff restore_done started;
    replay_took = Time.diff (Engine.now t.engine) restore_done;
    restored_version;
    writesets_replayed = replayed;
    final_version = Proxy.replica_version (proxy t);
  }

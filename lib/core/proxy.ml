open Sim

type config = {
  mode : Types.mode;
  apply_cpu_per_ws : Time.t;
  apply_cpu_per_op : Time.t;
  staleness_bound : Time.t option;
  soft_recovery : bool;
  group_remote_batches : bool;
  local_certification : bool;
  apply_workers : int;
      (* > 1 routes every certified commit through the dependency-tracked
         Apply_pool instead of the per-mode serial/concurrent paths. *)
}

let default_config mode =
  {
    mode;
    apply_cpu_per_ws = Time.us 65;
    apply_cpu_per_op = Time.us 35;
    staleness_bound = Some (Time.sec 1);
    soft_recovery = true;
    group_remote_batches = true;
    local_certification = true;
    apply_workers = 1;
  }

type tx = { db_tx : Mvcc.Db.tx; start_version : int; trace_id : int }

type failure = Cert_abort of Types.abort_cause | Local_abort of Mvcc.Db.abort_reason

let pp_failure fmt = function
  | Cert_abort Types.Ww_conflict -> Format.pp_print_string fmt "certification conflict"
  | Cert_abort Types.Forced -> Format.pp_print_string fmt "forced abort"
  | Local_abort r -> Format.fprintf fmt "local abort: %a" Mvcc.Db.pp_abort_reason r

type work =
  | Commit_reply of {
      reply : Types.cert_reply;
      w_tx : tx;
      done_ : (unit, failure) result Ivar.t;
    }
  | Refresh_batch of {
      remotes : Types.remote_ws list;
      trace_id : int;
      done_ : unit Ivar.t;
    }

type stats = {
  commits : int;
  cert_aborts : int;
  local_aborts : int;
  read_only_commits : int;
  remote_ws_applied : int;
  apply_batches : int;
  artificial_serializations : int;
  refreshes : int;
  local_cert_promotions : int;
  preempted_commits : int;
  apply_stalls : int;
}

type t = {
  engine : Engine.t;
  cfg : config;
  address : string;
  part : int;
  net : Types.message Net.Network.t;
  mailbox : Types.message Mailbox.t;
  database : Mvcc.Db.t;
  cpu : Resource.t;
  client : Cert_client.t;
  work : work Mailbox.t;
  pool : Apply_pool.t option;  (* Some iff [cfg.apply_workers > 1] *)
  version_done : (int, unit Ivar.t) Hashtbl.t;
  mutable rv : int;
  mutable inflight : int;
  mutable last_activity : Time.t;
  mutable paused : bool;
  mutable incarnation : int;
      (* Bumped by every {!pause}. A commit captures it before blocking on
         certification and re-checks it when the reply arrives: a reply
         addressed to a dead incarnation must not touch the revived state —
         the crash discarded its db transaction, and installing the reply's
         remotes window would stamp [rv] past versions the new incarnation
         never fetched, silently losing the prefix (refresh fetches from
         [rv]). Entry-level [paused] checks cannot catch this case: by the
         time the stale reply lands, the replica has already resumed. *)
  mutable applier : Engine.fiber option;
  mutable refresher : Engine.fiber option;
  (* Opt-in durability oracle for chaos harnesses: every commit acked
     durable to this proxy, recorded at reply arrival and NEVER cleared by
     pause/crash paths — so a harness can assert that each acked commit is
     still present in the certified log after recovery. *)
  mutable journaling : bool;
  mutable journal : (int * int) list; (* (req_id, commit_version), newest first *)
  mutable journal_x : (Types.gtx_id * int) list;
      (* cross-partition commits acked to this proxy: (gtx, local fragment
         version), newest first; same never-cleared contract as [journal] *)
  mutable submit_seq : int;
      (* client-transaction ids for the protocol-event stream: trace ids
         are only fresh when tracing is on, so the progress monitor gets
         its own counter *)
  trace : Obs.Trace.t;
  events : Obs.Events.t;
  c_commits : Stats.Counter.t;
  c_cert_aborts : Stats.Counter.t;
  c_local_aborts : Stats.Counter.t;
  c_ro_commits : Stats.Counter.t;
  c_applied : Stats.Counter.t;
  c_batches : Stats.Counter.t;
  c_artificial : Stats.Counter.t;
  c_refreshes : Stats.Counter.t;
  c_promotions : Stats.Counter.t;
  c_preempted : Stats.Counter.t;
  c_invariant : Stats.Counter.t;
  (* Per-reason abort breakdown ([proxy.<addr>.abort.*]): the coarse
     cert/local split above stays for the stats record; these let the
     registry snapshot answer *why* transactions aborted. *)
  c_ab_cert_ww : Stats.Counter.t;
  c_ab_cert_forced : Stats.Counter.t;
  c_ab_local_ww : Stats.Counter.t;
  c_ab_local_deadlock : Stats.Counter.t;
  c_ab_local_preempted : Stats.Counter.t;
  c_snapshot_installs : Stats.Counter.t;
  c_floor_heals : Stats.Counter.t;
  c_bridge_heals : Stats.Counter.t;
}

let addr t = t.address
let mode t = t.cfg.mode
let replica_version t = t.rv

let db t = t.database
let client t = t.client
let enable_commit_journal t = t.journaling <- true
let journaled_commits t = List.rev t.journal
let journaled_cross_commits t = List.rev t.journal_x
let tx_writeset w_tx = Mvcc.Db.writeset w_tx.db_tx
let tx_start_version w_tx = w_tx.start_version
let tx_trace_id w_tx = w_tx.trace_id

(* ------------------------------------------------------------------ *)
(* Protocol-event emission (Obs.Monitor food).

   [Ws_install] is only emitted for writesets that actually extend the
   store: a version at or below the current one is an idempotent backfill
   (a certifier failover re-answered a request whose writeset already
   arrived through the remote stream), not a second install — the
   serial-order monitor must not see it twice. The fresh/backfill test is
   taken before the apply call, mirroring the branch the database itself
   takes at announce time. *)

let emit_install t ~version =
  Obs.Events.emit t.events
    (Obs.Events.Ws_install { actor = t.address; part = t.part; version })

let emit_advance t =
  if Obs.Events.enabled t.events then
    Obs.Events.emit t.events
      (Obs.Events.Snapshot_advance
         {
           actor = t.address;
           part = t.part;
           version = Mvcc.Db.current_version t.database;
         })

let fresh_install t ~version = version > Mvcc.Db.current_version t.database

(* ------------------------------------------------------------------ *)
(* Remote writeset application *)

(* Retry a certified writeset through local deadlocks: doom the local cycle
   members (soft recovery, §8.1) and re-apply under the same order. *)
let rec apply_certified t ~version ~order ws =
  match Mvcc.Db.apply_writeset t.database ~version ~order ws with
  | Ok () -> ()
  | Error (Mvcc.Db.Deadlock cycle) when t.cfg.soft_recovery ->
      List.iter (fun txid -> Mvcc.Db.doom t.database txid) cycle;
      apply_certified t ~version ~order ws
  | Error reason ->
      (* A certified writeset can only fail through a deadlock; anything
         else is a model invariant violation. *)
      Stats.Counter.incr t.c_invariant;
      Mvcc.Db.skip_order t.database order;
      failwith
        (Format.asprintf "proxy %s: certified writeset failed: %a" t.address
           Mvcc.Db.pp_abort_reason reason)

let fresh_remotes t remotes =
  List.filter (fun (r : Types.remote_ws) -> r.version > t.rv) remotes

(* A full state transfer (the asked-for log prefix was truncated) is applied
   as one blind writeset at the snapshot's version: folded images for every
   key the pruned history wrote, deletions included, so it rides the normal
   apply paths (serial batch, concurrent, pool) in version order ahead of
   the accompanying remotes. *)
let snapshot_remote (snap : Types.snapshot) : Types.remote_ws =
  let ws =
    Mvcc.Writeset.of_list
      (List.map
         (fun (key, value) ->
           match value with
           | Some v -> (key, Mvcc.Writeset.Update v)
           | None -> (key, Mvcc.Writeset.Delete))
         snap.rows)
  in
  { Types.version = snap.snap_version; ws; conflict_with = None }

let charge_apply_cpu t remotes =
  let cost =
    List.fold_left
      (fun acc (r : Types.remote_ws) ->
        Time.add acc
          (Time.add t.cfg.apply_cpu_per_ws
             (Time.mul t.cfg.apply_cpu_per_op (Mvcc.Writeset.cardinal r.ws))))
      Time.zero remotes
  in
  if not (Time.is_zero cost) then Resource.use t.cpu cost

(* Serial application (Base, Tashkent-MW, refreshes): batch every fresh
   remote writeset into one transaction (the T1_2_3 grouping of §3) and wait
   for it to commit. With [group_remote_batches = false] this degenerates to
   the paper's naive implementation — one transaction (and one fsync, when
   the log is synchronous) per remote writeset. *)
let apply_one_serial t (r : Types.remote_ws) =
  t.rv <- max t.rv r.version;
  charge_apply_cpu t [ r ];
  let fresh = Obs.Events.enabled t.events && fresh_install t ~version:r.version in
  let order = Mvcc.Db.next_order t.database in
  apply_certified t ~version:r.version ~order r.ws;
  if fresh then begin
    emit_install t ~version:r.version;
    emit_advance t
  end;
  Stats.Counter.incr t.c_applied;
  Stats.Counter.incr t.c_batches

(* Batched grouping keeps one transaction / one fsync for the whole run of
   fresh writesets, but installs each at its own certified version (see
   {!Mvcc.Db.apply_writeset_batch} for why renaming versions is unsound). *)
let rec apply_batch_certified t ~batch ~order =
  match Mvcc.Db.apply_writeset_batch t.database ~batch ~order with
  | Ok () -> ()
  | Error (Mvcc.Db.Deadlock cycle) when t.cfg.soft_recovery ->
      List.iter (fun txid -> Mvcc.Db.doom t.database txid) cycle;
      apply_batch_certified t ~batch ~order
  | Error reason ->
      Stats.Counter.incr t.c_invariant;
      Mvcc.Db.skip_order t.database order;
      failwith
        (Format.asprintf "proxy %s: certified writeset failed: %a" t.address
           Mvcc.Db.pp_abort_reason reason)

let apply_serial t remotes =
  match fresh_remotes t remotes with
  | [] -> ()
  | fresh when not t.cfg.group_remote_batches -> List.iter (apply_one_serial t) fresh
  | fresh ->
      let vmax = List.fold_left (fun a (r : Types.remote_ws) -> max a r.version) 0 fresh in
      let batch = List.map (fun (r : Types.remote_ws) -> (r.version, r.ws)) fresh in
      t.rv <- vmax;
      charge_apply_cpu t fresh;
      let installs =
        if Obs.Events.enabled t.events then
          List.filter (fun (r : Types.remote_ws) -> fresh_install t ~version:r.version) fresh
        else []
      in
      let order = Mvcc.Db.next_order t.database in
      apply_batch_certified t ~batch ~order;
      List.iter (fun (r : Types.remote_ws) -> emit_install t ~version:r.version) installs;
      if installs <> [] then emit_advance t;
      Stats.Counter.add t.c_applied (List.length fresh);
      Stats.Counter.incr t.c_batches

(* Concurrent application (Tashkent-API): each remote writeset is its own
   transaction with its own commit sequence number, submitted without
   waiting — except when the certifier flagged an artificial conflict with
   a version still in flight, which must commit first (§5.2.1). *)
let apply_concurrent t remotes =
  List.iter
    (fun (r : Types.remote_ws) ->
      let order = Mvcc.Db.next_order t.database in
      let ivar = Ivar.create t.engine () in
      let dep =
        match r.conflict_with with
        | Some w when w > 0 -> (
            match Hashtbl.find_opt t.version_done w with
            | Some div when not (Ivar.is_filled div) ->
                Stats.Counter.incr t.c_artificial;
                Some div
            | Some _ | None -> None)
        | Some _ | None -> None
      in
      Hashtbl.replace t.version_done r.version ivar;
      t.rv <- max t.rv r.version;
      ignore
        (Engine.spawn t.engine ~name:(t.address ^ ".apply") (fun () ->
             let sp = Obs.Trace.span t.trace ~stage:"apply" ~actor:t.address () in
             (match dep with Some div -> Ivar.read div | None -> ());
             charge_apply_cpu t [ r ];
             let fresh =
               Obs.Events.enabled t.events && fresh_install t ~version:r.version
             in
             apply_certified t ~version:r.version ~order r.ws;
             if fresh then begin
               emit_install t ~version:r.version;
               emit_advance t
             end;
             Stats.Counter.incr t.c_applied;
             Stats.Counter.incr t.c_batches;
             Obs.Trace.finish t.trace sp;
             Ivar.fill ivar ())))
    (fresh_remotes t remotes)

(* ------------------------------------------------------------------ *)
(* Parallel application (apply_workers > 1): every certified commit —
   remote writesets and this replica's own — is dispatched to the
   dependency-tracked pool in version order, with its announce order drawn
   at dispatch. Workers may then finish out of order; the database's
   parallel path installs rows immediately but publishes the visible
   version only through the contiguous-order barrier. *)

let rec apply_certified_parallel t ~version ~order ws =
  match Mvcc.Db.apply_writeset_parallel t.database ~version ~order ws with
  | Ok () -> ()
  | Error (Mvcc.Db.Deadlock cycle) when t.cfg.soft_recovery ->
      List.iter (fun txid -> Mvcc.Db.doom t.database txid) cycle;
      apply_certified_parallel t ~version ~order ws
  | Error reason ->
      Stats.Counter.incr t.c_invariant;
      failwith
        (Format.asprintf "proxy %s: certified writeset failed: %a" t.address
           Mvcc.Db.pp_abort_reason reason)

let pool_submit_remote t pool ?trace_id ?on_published (r : Types.remote_ws) =
  let order = Mvcc.Db.next_order t.database in
  t.rv <- max t.rv r.version;
  let h =
    Apply_pool.submit pool ~version:r.version ~ws:r.ws ?trace_id ?on_published
      ~exec:(fun () ->
        charge_apply_cpu t [ r ];
        let fresh =
          Obs.Events.enabled t.events && fresh_install t ~version:r.version
        in
        apply_certified_parallel t ~version:r.version ~order r.ws;
        if fresh then begin
          emit_install t ~version:r.version;
          (* The published prefix advances through the pool's contiguous
             barrier, not at this worker's finish — report whatever is
             visible now (monotone either way). *)
          emit_advance t
        end;
        Stats.Counter.incr t.c_applied;
        Stats.Counter.incr t.c_batches)
      ()
  in
  if Apply_pool.has_deps h then Stats.Counter.incr t.c_artificial;
  h

let pool_submit_local t pool reply w_tx done_ =
  let version = reply.Types.commit_version in
  let order = Mvcc.Db.next_order t.database in
  t.rv <- max t.rv version;
  let ws = Mvcc.Db.writeset w_tx.db_tx in
  ignore
    (Apply_pool.submit pool ~version ~ws ~trace_id:w_tx.trace_id
       ~on_published:(fun () -> Ivar.fill done_ (Ok ()))
       ~exec:(fun () ->
         let sp =
           Obs.Trace.span t.trace ~id:w_tx.trace_id ~stage:"durability" ~actor:t.address ()
         in
         let fresh = Obs.Events.enabled t.events && fresh_install t ~version in
         (match Mvcc.Db.commit_replicated_parallel w_tx.db_tx ~version ~order with
         | Ok () -> ()
         | Error _doomed ->
             (* Same situation as in [finish_local_commit]: the global
                decision wins, install the buffered writeset. The parallel
                commit did not consume the order slot, so reuse it. *)
             Stats.Counter.incr t.c_preempted;
             apply_certified_parallel t ~version ~order ws);
         if fresh then begin
           emit_install t ~version;
           emit_advance t
         end;
         Obs.Trace.finish t.trace sp;
         Stats.Counter.incr t.c_commits)
       ())

let process_commit_pool t pool reply w_tx done_ =
  List.iter
    (fun r -> ignore (pool_submit_remote t pool ~trace_id:w_tx.trace_id r))
    (fresh_remotes t reply.Types.remotes);
  pool_submit_local t pool reply w_tx done_

let process_refresh_pool t pool ~trace_id remotes done_ =
  let fresh = fresh_remotes t remotes in
  let n = List.length fresh in
  List.iteri
    (fun i r ->
      let on_published = if i = n - 1 then Some (fun () -> Ivar.fill done_ ()) else None in
      ignore (pool_submit_remote t pool ~trace_id ?on_published r))
    fresh;
  if n = 0 then Ivar.fill done_ ();
  Stats.Counter.incr t.c_refreshes

(* ------------------------------------------------------------------ *)
(* Commit-reply bridging *)

(* Turn a fetch reply into an applicable remote batch: absorb the
   certifier's floor, and when the asked-for prefix had been truncated,
   lead with the snapshot transfer. Shared by the idle [refresh] and the
   commit-path [ensure_bridge] heal. *)
let remotes_of_fetch t (fetch : Types.fetch_reply) =
  Mvcc.Db.set_cluster_gc_floor t.database fetch.fetch_gc_floor;
  match fetch.fetch_snapshot with
  | Some snap when snap.snap_version > t.rv ->
      Stats.Counter.incr t.c_snapshot_installs;
      (* A state transfer is a legal version jump: tell the serial-order
         monitor the prefix below it is settled. The snapshot itself still
         rides the apply path as a writeset at [snap_version], hence the
         [- 1] — that install is the one version above the rebased floor. *)
      Obs.Events.emit t.events
        (Obs.Events.Snapshot_load
           { actor = t.address; part = t.part; version = snap.snap_version - 1 });
      snapshot_remote snap :: fetch.fetch_remotes
  | Some _ | None -> fetch.fetch_remotes

let apply_fetched t remotes =
  match t.pool with
  | Some pool ->
      let done_ = Ivar.create t.engine () in
      let fresh = fresh_remotes t remotes in
      let n = List.length fresh in
      List.iteri
        (fun i r ->
          let on_published =
            if i = n - 1 then Some (fun () -> Ivar.fill done_ ()) else None
          in
          ignore (pool_submit_remote t pool ?on_published r))
        fresh;
      if n > 0 then Ivar.read done_
  | None -> apply_serial t remotes

(* A commit reply is only sound if it is self-contained: its composed
   remotes must bridge every version between this replica's applied prefix
   and the commit version, because installing the commit advances [rv]
   over that whole range. One schedule breaks the bridge: the certifier
   re-answers a retried request from its decided table, but the log
   entries between the replica's version and the decided version were
   truncated while the replica was partitioned (its watermark report went
   stale and the GC floor passed it), so [compose_remotes] silently comes
   up short. Installing anyway would advance [rv] over a hole no later
   refresh can fill ([fetch] only asks from [rv] up) — permanent silent
   divergence. Heal before installing: fetch from [rv], which answers a
   truncated prefix with a snapshot transfer — exactly the missing state. *)
let bridged t (reply : Types.cert_reply) =
  reply.commit_version <= t.rv + 1
  || List.length
       (List.filter
          (fun (r : Types.remote_ws) ->
            r.version > t.rv && r.version < reply.commit_version)
          reply.remotes)
     = reply.commit_version - t.rv - 1

let ensure_bridge t (reply : Types.cert_reply) =
  if not (bridged t reply) then begin
    Stats.Counter.incr t.c_bridge_heals;
    let rec loop () =
      if (not t.paused) && not (bridged t reply) then begin
        (match
           Cert_client.fetch t.client ~replica:t.address ~from_version:t.rv
             ~oldest_snapshot:(Mvcc.Db.oldest_active_snapshot t.database)
         with
        | Some fetch -> apply_fetched t (remotes_of_fetch t fetch)
        | None -> Engine.sleep t.engine (Time.of_ms 5.));
        loop ()
      end
    in
    loop ()
  end

(* ------------------------------------------------------------------ *)
(* The applier fiber: consumes certifier replies in version order. *)

let finish_local_commit t w_tx ~version ~order done_ =
  (* The durability stage: where Base pays its serialized commit fsync and
     MW commits in memory — the gap the paper's Figure 7 turns on. *)
  let sp = Obs.Trace.span t.trace ~id:w_tx.trace_id ~stage:"durability" ~actor:t.address () in
  let fresh = Obs.Events.enabled t.events && fresh_install t ~version in
  match Mvcc.Db.commit_replicated w_tx.db_tx ~version ~order with
  | Ok () ->
      if fresh then begin
        emit_install t ~version;
        emit_advance t
      end;
      Obs.Trace.finish t.trace sp;
      Stats.Counter.incr t.c_commits;
      Ivar.fill done_ (Ok ())
  | Error _doomed ->
      (* The certifier committed this transaction, but it was doomed
         locally while its commit reply was delayed (a remote writeset
         preempted its locks — a soundness shortcut that assumes the local
         transaction will fail certification, which this one did not; the
         window only opens when certification outlasts the remote stream,
         i.e. under certifier failover). The global decision is
         authoritative: install the buffered writeset as if it arrived
         remotely — the store slots it at [version], beneath any later
         committed overwrites. [commit_replicated] already consumed the
         caller's order slot via skip_order, so draw a fresh one. *)
      Stats.Counter.incr t.c_preempted;
      let ws = Mvcc.Db.writeset w_tx.db_tx in
      let order = Mvcc.Db.next_order t.database in
      apply_certified t ~version ~order ws;
      if fresh then begin
        emit_install t ~version;
        emit_advance t
      end;
      Obs.Trace.finish t.trace sp;
      Stats.Counter.incr t.c_commits;
      Ivar.fill done_ (Ok ())

let process_commit_serial t reply w_tx done_ =
  (if reply.Types.remotes <> [] then begin
     let sp = Obs.Trace.span t.trace ~id:w_tx.trace_id ~stage:"apply" ~actor:t.address () in
     apply_serial t reply.Types.remotes;
     Obs.Trace.finish t.trace sp
   end);
  let order = Mvcc.Db.next_order t.database in
  t.rv <- max t.rv reply.commit_version;
  finish_local_commit t w_tx ~version:reply.commit_version ~order done_

let process_commit_api t reply w_tx done_ =
  apply_concurrent t reply.Types.remotes;
  let version = reply.commit_version in
  let order = Mvcc.Db.next_order t.database in
  let civar = Ivar.create t.engine () in
  Hashtbl.replace t.version_done version civar;
  t.rv <- max t.rv version;
  ignore
    (Engine.spawn t.engine ~name:(t.address ^ ".commit") (fun () ->
         finish_local_commit t w_tx ~version ~order done_;
         Ivar.fill civar ()))

let spawn_applier t =
  let fiber =
    Engine.spawn t.engine ~name:(t.address ^ ".applier") (fun () ->
        let rec loop () =
          (match Mailbox.recv t.work with
          | Commit_reply { reply; w_tx; done_ } -> (
              ensure_bridge t reply;
              match t.pool with
              | Some pool -> process_commit_pool t pool reply w_tx done_
              | None -> (
                  match t.cfg.mode with
                  | Types.Base | Types.Tashkent_mw ->
                      process_commit_serial t reply w_tx done_
                  | Types.Tashkent_api -> process_commit_api t reply w_tx done_))
          | Refresh_batch { remotes; trace_id; done_ } -> (
              match t.pool with
              | Some pool -> process_refresh_pool t pool ~trace_id remotes done_
              | None ->
                  let sp =
                    Obs.Trace.span t.trace ~id:trace_id ~stage:"apply" ~actor:t.address ()
                  in
                  apply_serial t remotes;
                  Obs.Trace.finish t.trace sp;
                  Stats.Counter.incr t.c_refreshes;
                  Ivar.fill done_ ()));
          loop ()
        in
        loop ())
  in
  t.applier <- Some fiber

(* ------------------------------------------------------------------ *)
(* Client interface *)

let begin_tx t =
  {
    db_tx = Mvcc.Db.begin_tx t.database;
    start_version = t.rv;
    trace_id = Obs.Trace.fresh_id t.trace;
  }
let read t w_tx key = ignore t; Mvcc.Db.read w_tx.db_tx key

let record_local_abort t (reason : Mvcc.Db.abort_reason) =
  Stats.Counter.incr t.c_local_aborts;
  Stats.Counter.incr
    (match reason with
    | Mvcc.Db.Ww_conflict _ -> t.c_ab_local_ww
    | Mvcc.Db.Deadlock _ -> t.c_ab_local_deadlock
    | Mvcc.Db.Preempted -> t.c_ab_local_preempted)

let record_cert_abort t (cause : Types.abort_cause) =
  Stats.Counter.incr t.c_cert_aborts;
  Stats.Counter.incr
    (match cause with
    | Types.Ww_conflict -> t.c_ab_cert_ww
    | Types.Forced -> t.c_ab_cert_forced)

let write t w_tx key op =
  match Mvcc.Db.write w_tx.db_tx key op with
  | Ok () -> Ok ()
  | Error reason ->
      record_local_abort t reason;
      Error (Local_abort reason)

let abort _t w_tx = Mvcc.Db.abort w_tx.db_tx

(* ------------------------------------------------------------------ *)
(* Bounded staleness (§6.2) *)

let refresh t =
  if (not t.paused) && t.inflight = 0 && Mailbox.is_empty t.work then begin
    let trace_id = Obs.Trace.fresh_id t.trace in
    let sp = Obs.Trace.span t.trace ~id:trace_id ~stage:"backfill" ~actor:t.address () in
    (match
       Cert_client.fetch t.client ~replica:t.address ~from_version:t.rv
         ~oldest_snapshot:(Mvcc.Db.oldest_active_snapshot t.database)
     with
    | Some fetch when t.inflight = 0 ->
        let remotes = remotes_of_fetch t fetch in
        let done_ = Ivar.create t.engine () in
        Mailbox.send t.work (Refresh_batch { remotes; trace_id; done_ });
        Ivar.read done_
    | Some _ | None -> ());
    Obs.Trace.finish t.trace sp
  end

(* A certification abort with the certifier's floor above our applied
   version means this replica's snapshot has fallen below the truncation
   floor: every request it sends from here on aborts as snapshot-too-old.
   The idle refresher cannot break the loop — the abort storm keeps
   [inflight] up and resets [last_activity] on every attempt — so the
   abort path heals eagerly: wait for the commit pipeline to drain, then
   refresh (which installs a snapshot transfer when the missing prefix was
   pruned). An unreachable certifier group is paced by the fetch's own
   timeouts rather than a hot loop here. *)
let heal_below_floor t ~floor =
  if (not t.paused) && t.rv < floor then begin
    Stats.Counter.incr t.c_floor_heals;
    let rec loop () =
      if (not t.paused) && t.rv < floor then begin
        refresh t;
        if t.rv < floor then begin
          Engine.sleep t.engine (Time.of_ms 5.);
          loop ()
        end
      end
    in
    loop ()
  end

let commit t w_tx =
  let ws = Mvcc.Db.writeset w_tx.db_tx in
  if Mvcc.Writeset.is_empty ws then begin
    Mvcc.Db.commit_readonly w_tx.db_tx;
    Stats.Counter.incr t.c_ro_commits;
    Ok ()
  end
  else
    match Mvcc.Db.is_doomed w_tx.db_tx with
    | Some reason ->
        Mvcc.Db.abort w_tx.db_tx;
        record_local_abort t reason;
        Error (Local_abort reason)
    | None ->
        if t.paused then begin
          Mvcc.Db.abort w_tx.db_tx;
          record_local_abort t Mvcc.Db.Preempted;
          Error (Local_abort Mvcc.Db.Preempted)
        end
        else begin
          t.inflight <- t.inflight + 1;
          t.last_activity <- Engine.now t.engine;
          let incarnation = t.incarnation in
          t.submit_seq <- t.submit_seq + 1;
          let txid = t.submit_seq in
          Obs.Events.emit t.events
            (Obs.Events.Tx_submitted { actor = t.address; tx = txid });
          let sp_txn =
            Obs.Trace.span t.trace ~id:w_tx.trace_id ~stage:"txn.commit" ~actor:t.address ()
          in
          (* The paper (5.2.1): the version submitted to the certifier is
             the current version of the database — i.e. what has actually
             been announced, not the versions merely in flight — so that
             back-certification covers every writeset this replica has not
             yet committed. *)
          let db_version = Mvcc.Db.current_version t.database in
          (* Local certification (6.2): this transaction held write locks on
             all its keys since it wrote them, and the first-updater check
             passed against everything announced locally — so the writeset
             is already known conflict-free up to [db_version], and the
             effective start version can be raised, shrinking the
             certifier's intersection window. *)
          let start_version =
            if t.cfg.local_certification && db_version > w_tx.start_version then begin
              Stats.Counter.incr t.c_promotions;
              db_version
            end
            else w_tx.start_version
          in
          let sp_cert =
            Obs.Trace.span t.trace ~id:w_tx.trace_id ~stage:"certify" ~actor:t.address ()
          in
          (* The watermark report is computed while this transaction is
             still registered in [db.active], so the reported oldest
             snapshot is <= start_version — the certifier's floor can never
             climb past the window this reply composes against. *)
          let reply =
            Cert_client.certify t.client ~trace_id:w_tx.trace_id ~start_version
              ~replica_version:db_version
              ~oldest_snapshot:(Mvcc.Db.oldest_active_snapshot t.database)
              ws
          in
          Obs.Trace.finish t.trace sp_cert;
          if t.incarnation <> incarnation then begin
            (* The replica crashed while this commit was parked inside
               certification and the reply outlived the outage (client-side
               retry or an unregistered caller fiber). Everything the reply
               talks about belongs to the dead incarnation — the db
               transaction is gone and [rv] was rebased by {!resume} — so
               touching any state here would corrupt the revived proxy.
               Drop the reply on the floor and report preemption. *)
            Obs.Trace.finish t.trace sp_txn;
            Obs.Events.emit t.events
              (Obs.Events.Tx_resolved { actor = t.address; tx = txid; committed = false });
            record_local_abort t Mvcc.Db.Preempted;
            Error (Local_abort Mvcc.Db.Preempted)
          end
          else begin
            Mvcc.Db.set_cluster_gc_floor t.database reply.gc_floor;
            t.last_activity <- Engine.now t.engine;
            let result =
              match reply.decision with
              | Types.Abort cause ->
                  Mvcc.Db.abort w_tx.db_tx;
                  record_cert_abort t cause;
                  Error (Cert_abort cause)
              | Types.Commit ->
                  if t.journaling then
                    t.journal <- (reply.req_id, reply.commit_version) :: t.journal;
                  let done_ = Ivar.create t.engine () in
                  Mailbox.send t.work (Commit_reply { reply; w_tx; done_ });
                  Ivar.read done_
            in
            Obs.Trace.finish t.trace sp_txn;
            t.inflight <- t.inflight - 1;
            Obs.Events.emit t.events
              (Obs.Events.Tx_resolved
                 { actor = t.address; tx = txid; committed = Result.is_ok result });
            (match result with
            | Error (Cert_abort _) when reply.gc_floor > t.rv ->
                heal_below_floor t ~floor:reply.gc_floor
            | Ok _ | Error _ -> ());
            result
          end
        end

(* Commit this proxy's fragment of a cross-partition transaction. The
   session has already split the writeset: [w_tx]'s own writeset IS the
   fragment for this proxy's partition (reads and writes were routed here
   by key), so the commit path below is the ordinary one — the only
   differences are that certification goes through {!Cert_client.certify_cross}
   (prepare/vote/decide among the involved certifier groups instead of a
   single certify) and that the commit version arriving in the reply is a
   decision-time version rather than a proposal-time one. Apply-side
   machinery (remote batching, pool, artificial conflicts, floor healing)
   is reused unchanged. *)
let commit_cross t w_tx ~gtx ~(fragments : Types.xfragment list) =
  match Mvcc.Db.is_doomed w_tx.db_tx with
  | Some reason ->
      Mvcc.Db.abort w_tx.db_tx;
      record_local_abort t reason;
      Error (Local_abort reason)
  | None ->
      if t.paused then begin
        Mvcc.Db.abort w_tx.db_tx;
        record_local_abort t Mvcc.Db.Preempted;
        Error (Local_abort Mvcc.Db.Preempted)
      end
      else begin
        t.inflight <- t.inflight + 1;
        t.last_activity <- Engine.now t.engine;
        let incarnation = t.incarnation in
        t.submit_seq <- t.submit_seq + 1;
        let txid = t.submit_seq in
        Obs.Events.emit t.events
          (Obs.Events.Tx_submitted { actor = t.address; tx = txid });
        let sp_txn =
          Obs.Trace.span t.trace ~id:w_tx.trace_id ~stage:"txn.commit" ~actor:t.address ()
        in
        let db_version = Mvcc.Db.current_version t.database in
        (* Local certification promotion applies to OUR fragment only: the
           sibling fragments' start versions live in other partitions'
           version spaces and are promoted by their own proxies. *)
        let part = ref 0 in
        let fragments =
          List.map
            (fun (f : Types.xfragment) ->
              if String.equal f.xf_origin t.address then begin
                part := f.xf_part;
                if t.cfg.local_certification && db_version > f.xf_start_version
                then begin
                  Stats.Counter.incr t.c_promotions;
                  { f with xf_start_version = db_version }
                end
                else f
              end
              else f)
            fragments
        in
        let sp_cert =
          Obs.Trace.span t.trace ~id:w_tx.trace_id ~stage:"certify" ~actor:t.address ()
        in
        let reply =
          Cert_client.certify_cross t.client ~trace_id:w_tx.trace_id ~gtx ~part:!part
            ~replica_version:db_version
            ~oldest_snapshot:(Mvcc.Db.oldest_active_snapshot t.database)
            ~fragments ()
        in
        Obs.Trace.finish t.trace sp_cert;
        if t.incarnation <> incarnation then begin
          (* Same stale-reply hazard as {!commit}, and here it is not
             hypothetical: the session commits fragments from helper fibers
             that are not registered with the replica, so they survive the
             crash parked inside [certify_cross] and resume when the reply
             (re)arrives after recovery. Applying that reply would install
             its remotes window over the rebuilt store and advance [rv]
             past the unfetched prefix — permanent silent data loss. The
             decision itself is not lost: if the group committed the
             fragment, refresh picks it up like any other remote. *)
          Obs.Trace.finish t.trace sp_txn;
          Obs.Events.emit t.events
            (Obs.Events.Tx_resolved { actor = t.address; tx = txid; committed = false });
          record_local_abort t Mvcc.Db.Preempted;
          Error (Local_abort Mvcc.Db.Preempted)
        end
        else begin
          Mvcc.Db.set_cluster_gc_floor t.database reply.gc_floor;
          t.last_activity <- Engine.now t.engine;
          let result =
            match reply.decision with
            | Types.Abort cause ->
                Mvcc.Db.abort w_tx.db_tx;
                record_cert_abort t cause;
                Error (Cert_abort cause)
            | Types.Commit ->
                if t.journaling then
                  t.journal_x <- (gtx, reply.commit_version) :: t.journal_x;
                let done_ = Ivar.create t.engine () in
                Mailbox.send t.work (Commit_reply { reply; w_tx; done_ });
                Ivar.read done_
          in
          Obs.Trace.finish t.trace sp_txn;
          t.inflight <- t.inflight - 1;
          Obs.Events.emit t.events
            (Obs.Events.Tx_resolved
               { actor = t.address; tx = txid; committed = Result.is_ok result });
          (match result with
          | Error (Cert_abort _) when reply.gc_floor > t.rv ->
              heal_below_floor t ~floor:reply.gc_floor
          | Ok _ | Error _ -> ());
          result
        end
      end

let spawn_refresher t bound =
  let fiber =
    Engine.spawn t.engine ~name:(t.address ^ ".refresher") (fun () ->
        let rec loop () =
          Engine.sleep t.engine bound;
          if
            (not t.paused)
            && Time.(Time.diff (Engine.now t.engine) t.last_activity >= bound)
          then refresh t;
          loop ()
        in
        loop ())
  in
  t.refresher <- Some fiber

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let create (env : Env.t) ~addr:address ?(part = 0) ~db:database ~cpu ~certifiers
    ~req_id_base ?config () =
  let engine = env.Env.engine and net = env.Env.net in
  let metrics = env.Env.metrics and trace = env.Env.trace in
  let events = env.Env.events in
  let cfg = Option.value ~default:(default_config Types.Base) config in
  if cfg.apply_workers < 1 then
    invalid_arg "Proxy.create: apply_workers must be >= 1";
  let counter name = Obs.Registry.counter metrics ("proxy." ^ address ^ "." ^ name) in
  let mailbox = Net.Network.register net address in
  let client =
    Cert_client.create engine ~net ~my_addr:address ~certifiers ~req_id_base ()
  in
  (* Cumulative robustness counters of the certifier client, exported as
     gauges: chaos accounting reads them over the whole run, so they are
     deliberately not windowed by [Registry.reset]. *)
  List.iter
    (fun (name, read) ->
      Obs.Registry.gauge metrics
        ("cert_client." ^ address ^ "." ^ name)
        (fun () -> float_of_int (read client)))
    [
      ("requests_sent", Cert_client.requests_sent);
      ("retries", Cert_client.retries);
      ("failovers", Cert_client.failovers);
      ("refetches", Cert_client.refetches);
    ];
  let t =
    {
      engine;
      cfg;
      address;
      part;
      net;
      mailbox;
      database;
      cpu;
      client;
      work = Mailbox.create engine ~name:(address ^ ".work") ();
      pool =
        (if cfg.apply_workers > 1 then
           Some
             (Apply_pool.create engine ~name:address ~workers:cfg.apply_workers
                ~metrics ~trace ())
         else None);
      version_done = Hashtbl.create 256;
      rv = 0;
      inflight = 0;
      last_activity = Engine.now engine;
      paused = false;
      incarnation = 0;
      applier = None;
      refresher = None;
      journaling = false;
      journal = [];
      journal_x = [];
      submit_seq = 0;
      trace;
      events;
      c_commits = counter "commits";
      c_cert_aborts = counter "cert_aborts";
      c_local_aborts = counter "local_aborts";
      c_ro_commits = counter "read_only_commits";
      c_applied = counter "remote_ws_applied";
      c_batches = counter "apply_batches";
      c_artificial = counter "artificial_serializations";
      c_refreshes = counter "refreshes";
      c_promotions = counter "local_cert_promotions";
      c_preempted = counter "preempted_commits";
      c_invariant = counter "invariant_violations";
      c_ab_cert_ww = counter "abort.cert_ww";
      c_ab_cert_forced = counter "abort.cert_forced";
      c_ab_local_ww = counter "abort.local_ww";
      c_ab_local_deadlock = counter "abort.local_deadlock";
      c_ab_local_preempted = counter "abort.local_preempted";
      c_snapshot_installs = counter "snapshot_installs";
      c_floor_heals = counter "floor_heals";
      c_bridge_heals = counter "bridge_heals";
    }
  in
  (* Reply dispatcher: long-lived, routes certifier messages to waiters. *)
  ignore
    (Engine.spawn engine ~name:(address ^ ".dispatch") (fun () ->
         let rec loop () =
           Cert_client.handle client (Mailbox.recv mailbox);
           loop ()
         in
         loop ()));
  spawn_applier t;
  (match cfg.staleness_bound with Some bound -> spawn_refresher t bound | None -> ());
  t

let pause t =
  t.paused <- true;
  t.incarnation <- t.incarnation + 1;
  (* Client fibers are cancelled by the host replica: their submitted
     transactions will never resolve, which the progress monitor must not
     count against the run. *)
  Obs.Events.emit t.events (Obs.Events.Actor_reset { actor = t.address });
  (* The replica cancels its client fibers before pausing; any of them that
     died between the inflight increment and decrement in [commit] will
     never decrement, which would disable [refresh] forever after resume. *)
  t.inflight <- 0;
  (match t.applier with Some f -> Engine.cancel t.engine f | None -> ());
  (match t.refresher with Some f -> Engine.cancel t.engine f | None -> ());
  t.applier <- None;
  t.refresher <- None;
  Mailbox.clear t.work;
  Hashtbl.reset t.version_done;
  (match t.pool with Some pool -> Apply_pool.pause pool | None -> ())

let disconnect t =
  (* The host replica crashed: its address must vanish from the network so
     in-flight replies are dropped (instead of queueing across the outage)
     and the per-link FIFO floors involving it are purged. The mailbox
     object survives — the dispatcher stays parked on it — and is handed
     back to the network by {!reconnect}. *)
  Net.Network.unregister t.net t.address;
  Mailbox.clear t.mailbox

let reconnect t = Net.Network.reattach t.net t.address t.mailbox

let resume t =
  t.paused <- false;
  t.rv <- Mvcc.Db.current_version t.database;
  t.last_activity <- Engine.now t.engine;
  (match t.pool with Some pool -> Apply_pool.resume pool | None -> ());
  spawn_applier t;
  (match t.cfg.staleness_bound with Some bound -> spawn_refresher t bound | None -> ())

(* ------------------------------------------------------------------ *)
(* Statistics *)

let stats t =
  {
    commits = Stats.Counter.value t.c_commits;
    cert_aborts = Stats.Counter.value t.c_cert_aborts;
    local_aborts = Stats.Counter.value t.c_local_aborts;
    read_only_commits = Stats.Counter.value t.c_ro_commits;
    remote_ws_applied = Stats.Counter.value t.c_applied;
    apply_batches = Stats.Counter.value t.c_batches;
    artificial_serializations = Stats.Counter.value t.c_artificial;
    refreshes = Stats.Counter.value t.c_refreshes;
    local_cert_promotions = Stats.Counter.value t.c_promotions;
    preempted_commits = Stats.Counter.value t.c_preempted;
    apply_stalls = (match t.pool with Some p -> Apply_pool.stalls p | None -> 0);
  }

let apply_parallelism t =
  match t.pool with Some p -> Apply_pool.parallelism p | None -> 1.0

let snapshot_installs t = Stats.Counter.value t.c_snapshot_installs
let floor_heals t = Stats.Counter.value t.c_floor_heals
let bridge_heals t = Stats.Counter.value t.c_bridge_heals

let reset_stats t =
  Stats.Counter.reset t.c_commits;
  Stats.Counter.reset t.c_cert_aborts;
  Stats.Counter.reset t.c_local_aborts;
  Stats.Counter.reset t.c_ab_cert_ww;
  Stats.Counter.reset t.c_ab_cert_forced;
  Stats.Counter.reset t.c_ab_local_ww;
  Stats.Counter.reset t.c_ab_local_deadlock;
  Stats.Counter.reset t.c_ab_local_preempted;
  Stats.Counter.reset t.c_ro_commits;
  Stats.Counter.reset t.c_applied;
  Stats.Counter.reset t.c_batches;
  Stats.Counter.reset t.c_artificial;
  Stats.Counter.reset t.c_refreshes;
  Stats.Counter.reset t.c_promotions;
  Stats.Counter.reset t.c_preempted;
  Stats.Counter.reset t.c_invariant;
  Stats.Counter.reset t.c_snapshot_installs;
  Stats.Counter.reset t.c_floor_heals;
  Stats.Counter.reset t.c_bridge_heals

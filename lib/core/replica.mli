(** One database replica: CPU, disks, and — per hosted keyspace partition
    — an {!Mvcc.Db} engine with its {!Proxy}, wired for the chosen system
    ({!Types.mode}) and IO layout, plus the crash/recovery procedures of
    §7.1–7.2 and §8.1.

    Under partitioned certification a replica may host several partitions
    (each with a private version space, database and proxy, sharing the
    machine's CPU and devices) or only a subset of them (partial
    replication: it loads, applies and refreshes nothing outside its
    subscriptions). A {!Session} fronts the partitions for clients. A
    1-partition replica is structurally the legacy replica: one database,
    one proxy named [<name>], same RNG stream, same metric names. *)

(** Where the database log lives relative to the data pages (§9.2):
    [Shared_io] puts WAL fsyncs, page reads and page write-backs on one
    device (the paper's single-disk servers); [Dedicated_io] gives the log
    its own device and serves data from RAM (the paper's ramdisk runs). *)
type io_layout = Shared_io | Dedicated_io

(** How a Tashkent-MW replica arranges recovery (§7.1). *)
type mw_recovery =
  | Dump_based of { interval : Sim.Time.t }
      (** case 1: all WAL sync writes disabled; periodic full dumps *)
  | Integrity_kept of { wal_sync_interval : Sim.Time.t }
      (** case 2: WAL synced in the background but not on commits *)

type config = {
  mode : Types.mode;
  io : io_layout;
  mw_recovery : mw_recovery;
  eager_precert : bool;
      (** give remote writesets priority over local lock holders (§8.2);
          when false, deadlocks are resolved by proxy soft recovery *)
  exec_cpu : Sim.Time.t;  (** CPU to execute one transaction (charged by
                              {!use_cpu} from the workload driver) *)
  apply_cpu_per_ws : Sim.Time.t;
  commit_record_bytes : int;
  page_read_miss : float;
  page_writeback_per_op : float;
  bg_page_writes_per_sec : float;
  staleness_bound : Sim.Time.t option;
  group_remote_batches : bool;  (** §3's grouping optimisation (ablation knob) *)
  apply_workers : int;
      (** parallel applier fibers for certified commits (default 1; see
          {!Proxy.config.apply_workers}) *)
  db_size_bytes : int;  (** logical database size, for dump/restore time *)
  dump_bandwidth : float;  (** bytes/s while dumping (paper: ~3 MB/s) *)
  restore_bandwidth : float;  (** bytes/s while restoring (paper: ~5 MB/s) *)
  gc_interval : Sim.Time.t option;
      (** database vacuum period (default 30 s): prune row versions below
          both the local oldest active snapshot and the cluster GC floor
          gossiped by the certifier; [None] disables vacuuming (versions
          grow without bound — the pre-watermark behaviour) *)
  max_snapshot_age : Sim.Time.t option;
      (** escape hatch: doom a local transaction still Active after this
          long so a stalled snapshot cannot pin garbage collection forever
          (default [None]; see {!Mvcc.Db.config.max_snapshot_age}) *)
}

val default_config : Types.mode -> config

type t

val create :
  Env.t ->
  name:string ->
  n_partitions:int ->
  groups:(int * string list * int) list ->
  config:config ->
  unit ->
  t
(** Build a replica inside [env]: its private random stream is derived with
    {!Env.split_rng} (so construction order fixes the run), its proxies
    join [env]'s network, and its metrics/trace handles come from [env].

    [n_partitions] is the cluster-wide partition count (it parameterises
    the key {!Partitioner}); [groups] lists the partitions this replica
    hosts as [(partition, certifier group member ids, req_id_base)] —
    req_id bases must be globally unique per (replica, partition). A
    legacy single-group replica is [~n_partitions:1 ~groups:[(0, certs,
    base)]]. Hosted-partition endpoints are named [<name>] when
    [n_partitions = 1] and [<name>#p<k>] otherwise.

    The replica registers [replica.<name>.*] gauges over its log disk and
    CPU, per-partition [replica.<endpoint>.*] gauges over each database,
    and an [on_reset] hook that restarts the database and disk stat
    windows (so one [Obs.Registry.reset] re-windows the whole replica). *)

val name : t -> string

val proxy : t -> Proxy.t
(** The lowest hosted partition's proxy — {e the} proxy of a 1-partition
    replica (every legacy harness path). *)

val db : t -> Mvcc.Db.t
(** The lowest hosted partition's database. *)

val session : t -> Session.t
(** The partition router fronting this replica's proxies. *)

val partitions : t -> int list
(** Hosted partitions, ascending. *)

val hosts : t -> part:int -> bool
val proxy_of : t -> part:int -> Proxy.t option
val db_of : t -> part:int -> Mvcc.Db.t option
val cpu : t -> Sim.Resource.t
val log_disk : t -> Storage.Disk.t
val data_disk : t -> Storage.Disk.t
val is_up : t -> bool
val config : t -> config

val load : t -> (Mvcc.Key.t * Mvcc.Value.t) list -> unit
(** Install initial rows (version 0). Each hosted partition takes only its
    own slice of [rows] (per the {!Partitioner}); rows of partitions this
    replica does not subscribe to are dropped — partial replication. *)

val use_cpu : t -> Sim.Time.t -> unit
(** Charge transaction-execution CPU (blocking fiber op). *)

(** {1 Clients} *)

val register_client : t -> Sim.Engine.fiber -> unit
(** Client fibers registered here are cancelled when the replica crashes. *)

val set_respawn_clients : t -> (unit -> unit) -> unit
(** Called after a successful recovery so the workload can restart its
    clients. *)

(** {1 Crash and recovery} *)

type recovery_report = {
  took : Sim.Time.t;  (** total downtime-to-resume duration *)
  restore_took : Sim.Time.t;  (** local redo / dump-restore phase *)
  replay_took : Sim.Time.t;  (** fetch-and-apply phase *)
  restored_version : int;  (** version recovered from local durable state *)
  writesets_replayed : int;  (** remote writesets fetched from the certifier *)
  final_version : int;
}

val crash : t -> unit

val recover : t -> recovery_report
(** Blocking fiber op. Base/Tashkent-API: database-internal redo (§7.2).
    Tashkent-MW case 1: restore from the newest intact dump; case 2:
    database redo of the synced WAL prefix. All modes then fetch and apply
    the missing remote writesets from the certifier. *)

val dumps_taken : t -> int

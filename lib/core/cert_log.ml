open Mvcc

type slot = { entry : Types.entry; mutable certified_back_to : int }

type t = {
  mutable slots : slot array;
  mutable size : int;  (* live entries: versions (floor, floor + size] *)
  mutable floor : int;  (* newest truncated version; 0 = nothing truncated *)
  (* key -> (version, wrote-a-delta) pairs, newest first. The delta tag
     lets certification skip commutative delta–delta overlaps without
     fetching the logged writeset. Truncation trims every list to
     versions above the floor, so no scan can ever observe pruned
     history. *)
  writers : (int * bool) list ref Key.Tbl.t;
  (* Database state at [floor], folded from the truncated prefix: the
     base every snapshot transfer and consistency check starts from.
     [base_keys] remembers every key a truncated entry ever touched —
     a key present there but absent from [base] (or reading [None]) is a
     key the truncated history deleted. *)
  base : Store.t;
  base_keys : unit Key.Tbl.t;
  truncated_by_origin : (string, int) Hashtbl.t;
  mutable bytes : int;  (* cumulative, survives truncation *)
  mutable live_bytes : int;  (* bytes held by live slots only *)
  mutable pruned : int;  (* cumulative entries dropped by truncation *)
  mutable extra_scans : int;
  mutable delta_skips : int;
}

let dummy_entry =
  {
    Types.version = 0;
    origin = "";
    req_id = 0;
    ws = Writeset.empty;
    gc_floor = 0;
    xa = None;
  }

let dummy_slot = { entry = dummy_entry; certified_back_to = 0 }

let create () =
  {
    slots = Array.make 256 dummy_slot;
    size = 0;
    floor = 0;
    writers = Key.Tbl.create 1024;
    base = Store.create ();
    base_keys = Key.Tbl.create 64;
    truncated_by_origin = Hashtbl.create 8;
    bytes = 0;
    live_bytes = 0;
    pruned = 0;
    extra_scans = 0;
    delta_skips = 0;
  }

let version t = t.floor + t.size
let floor t = t.floor
let entries t = t.size

let get t v =
  if v <= t.floor || v > t.floor + t.size then
    invalid_arg
      (Printf.sprintf "Cert_log.get: version %d outside (%d, %d]" v t.floor
         (t.floor + t.size));
  t.slots.(v - t.floor - 1).entry

let get_opt t v =
  if v <= t.floor || v > t.floor + t.size then None
  else Some t.slots.(v - t.floor - 1).entry

let append t (entry : Types.entry) =
  if entry.version <> t.floor + t.size + 1 then
    invalid_arg
      (Printf.sprintf "Cert_log.append: version %d, expected %d" entry.version
         (t.floor + t.size + 1));
  if t.size = Array.length t.slots then begin
    let bigger = Array.make (2 * t.size) dummy_slot in
    Array.blit t.slots 0 bigger 0 t.size;
    t.slots <- bigger
  end;
  (* A fresh entry is known conflict-free back to the transaction's own
     certification window start; callers record it via certified_back_to
     when they need more. We initialise pessimistically to version-1: the
     normal certification already covered (start_version, version), but the
     start version is not stored here, so the first back-certification pays
     the scan and memoises. *)
  t.slots.(t.size) <- { entry; certified_back_to = entry.version - 1 };
  t.size <- t.size + 1;
  t.bytes <- t.bytes + Types.entry_bytes entry;
  t.live_bytes <- t.live_bytes + Types.entry_bytes entry;
  Writeset.iter_entries entry.ws (fun key op ->
      let tagged = (entry.version, Writeset.op_is_delta op) in
      match Key.Tbl.find_opt t.writers key with
      | Some versions -> versions := tagged :: !versions
      | None -> Key.Tbl.replace t.writers key (ref [ tagged ]))

let truncate t ~upto =
  let upto = min upto (t.floor + t.size) in
  if upto > t.floor then begin
    let k = upto - t.floor in
    (* Fold the dropped prefix into the base state so snapshot transfers
       and consistency checks can still reconstruct state at the floor. *)
    for i = 0 to k - 1 do
      let e = t.slots.(i).entry in
      t.live_bytes <- t.live_bytes - Types.entry_bytes e;
      t.pruned <- t.pruned + 1;
      Hashtbl.replace t.truncated_by_origin e.origin
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.truncated_by_origin e.origin));
      Writeset.iter_entries e.ws (fun key _ -> Key.Tbl.replace t.base_keys key ());
      Store.install t.base ~version:e.version e.ws
    done;
    (* Flatten the base chains at the new floor; deleted rows read as
       [None] via [base_keys]. *)
    Store.gc t.base ~keep_after:upto;
    let remaining = t.size - k in
    Array.blit t.slots k t.slots 0 remaining;
    Array.fill t.slots remaining k dummy_slot;
    t.size <- remaining;
    t.floor <- upto;
    (* Trim the per-key writer index: nothing at or below the floor may
       ever be scanned again, so drop it (and empty lists with it). *)
    let dead = ref [] in
    Key.Tbl.iter
      (fun key versions ->
        match List.filter (fun (v, _) -> v > upto) !versions with
        | [] -> dead := key :: !dead
        | kept -> versions := kept)
      t.writers;
    List.iter (fun key -> Key.Tbl.remove t.writers key) !dead
  end

let base_rows t =
  Key.Tbl.fold
    (fun key () acc -> (key, Store.read_latest t.base key) :: acc)
    t.base_keys []

let base_version t = Store.current_version t.base

let truncated_for_origin t origin =
  Option.value ~default:0 (Hashtbl.find_opt t.truncated_by_origin origin)

let conflict_in_window t ws ~lo ~hi =
  (* The writer index holds nothing at or below the floor, so a window
     reaching below it could silently miss conflicts — clamp and leave the
     too-old decision to the caller (the certifier aborts requests whose
     start version is below the floor before ever scanning). *)
  let lo = max lo t.floor in
  if hi <= lo then None
  else begin
    let best = ref None in
    Writeset.iter_entries ws (fun key op ->
        let mine_delta = Writeset.op_is_delta op in
        match Key.Tbl.find_opt t.writers key with
        | None -> ()
        | Some versions ->
            let rec scan = function
              | [] -> ()
              | (v, writer_delta) :: rest ->
                  if v > hi then scan rest
                  else if v > lo then
                    if mine_delta && writer_delta then begin
                      (* Commutative delta–delta overlap: not a conflict.
                         Keep scanning — an older in-window blind write to
                         the same key would still conflict. *)
                      t.delta_skips <- t.delta_skips + 1;
                      scan rest
                    end
                    else
                      match !best with
                      | Some b when b >= v -> ()
                      | _ -> best := Some v
            in
            scan !versions);
    !best
  end

let certify t ws ~start_version =
  conflict_in_window t ws ~lo:start_version ~hi:(t.floor + t.size)

let back_certify t ~version ~down_to =
  if version <= t.floor then None
  else begin
    let slot = t.slots.(version - t.floor - 1) in
    if down_to >= slot.certified_back_to then None
    else begin
      t.extra_scans <- t.extra_scans + 1;
      let ws = slot.entry.ws in
      let conflict = conflict_in_window t ws ~lo:down_to ~hi:slot.certified_back_to in
      (match conflict with
      | None -> slot.certified_back_to <- max down_to t.floor
      | Some v ->
          (* Conflict-free strictly above v. *)
          slot.certified_back_to <- v);
      conflict
    end
  end

let entries_between t ~lo ~hi =
  let hi = min hi (t.floor + t.size) in
  let lo = max lo t.floor in
  let rec collect v acc =
    if v <= lo then acc else collect (v - 1) (t.slots.(v - t.floor - 1).entry :: acc)
  in
  collect hi []

let bytes_total t = t.bytes
let bytes_live t = t.live_bytes
let pruned t = t.pruned
let back_certifications t = t.extra_scans
let delta_overlaps t = t.delta_skips

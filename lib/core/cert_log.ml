open Mvcc

type slot = { entry : Types.entry; mutable certified_back_to : int }

type t = {
  mutable slots : slot array;
  mutable size : int;
  (* key -> (version, wrote-a-delta) pairs, newest first. The delta tag
     lets certification skip commutative delta–delta overlaps without
     fetching the logged writeset. *)
  writers : (int * bool) list ref Key.Tbl.t;
  mutable bytes : int;
  mutable extra_scans : int;
  mutable delta_skips : int;
}

let dummy_entry =
  { Types.version = 0; origin = ""; req_id = 0; ws = Writeset.empty }

let create () =
  {
    slots = Array.make 256 { entry = dummy_entry; certified_back_to = 0 };
    size = 0;
    writers = Key.Tbl.create 1024;
    bytes = 0;
    extra_scans = 0;
    delta_skips = 0;
  }

let version t = t.size

let get t v =
  if v < 1 || v > t.size then invalid_arg (Printf.sprintf "Cert_log.get: version %d" v);
  t.slots.(v - 1).entry

let append t (entry : Types.entry) =
  if entry.version <> t.size + 1 then
    invalid_arg
      (Printf.sprintf "Cert_log.append: version %d, expected %d" entry.version (t.size + 1));
  if t.size = Array.length t.slots then begin
    let bigger = Array.make (2 * t.size) t.slots.(0) in
    Array.blit t.slots 0 bigger 0 t.size;
    t.slots <- bigger
  end;
  (* A fresh entry is known conflict-free back to the transaction's own
     certification window start; callers record it via certified_back_to
     when they need more. We initialise pessimistically to version-1: the
     normal certification already covered (start_version, version), but the
     start version is not stored here, so the first back-certification pays
     the scan and memoises. *)
  t.slots.(t.size) <- { entry; certified_back_to = entry.version - 1 };
  t.size <- t.size + 1;
  t.bytes <- t.bytes + Types.entry_bytes entry;
  Writeset.iter_entries entry.ws (fun key op ->
      let tagged = (entry.version, Writeset.op_is_delta op) in
      match Key.Tbl.find_opt t.writers key with
      | Some versions -> versions := tagged :: !versions
      | None -> Key.Tbl.replace t.writers key (ref [ tagged ]))

let conflict_in_window t ws ~lo ~hi =
  if hi <= lo then None
  else begin
    let best = ref None in
    Writeset.iter_entries ws (fun key op ->
        let mine_delta = Writeset.op_is_delta op in
        match Key.Tbl.find_opt t.writers key with
        | None -> ()
        | Some versions ->
            let rec scan = function
              | [] -> ()
              | (v, writer_delta) :: rest ->
                  if v > hi then scan rest
                  else if v > lo then
                    if mine_delta && writer_delta then begin
                      (* Commutative delta–delta overlap: not a conflict.
                         Keep scanning — an older in-window blind write to
                         the same key would still conflict. *)
                      t.delta_skips <- t.delta_skips + 1;
                      scan rest
                    end
                    else
                      match !best with
                      | Some b when b >= v -> ()
                      | _ -> best := Some v
            in
            scan !versions);
    !best
  end

let certify t ws ~start_version = conflict_in_window t ws ~lo:start_version ~hi:t.size

let back_certify t ~version ~down_to =
  let slot = t.slots.(version - 1) in
  if down_to >= slot.certified_back_to then None
  else begin
    t.extra_scans <- t.extra_scans + 1;
    let ws = slot.entry.ws in
    let conflict = conflict_in_window t ws ~lo:down_to ~hi:slot.certified_back_to in
    (match conflict with
    | None -> slot.certified_back_to <- down_to
    | Some v ->
        (* Conflict-free strictly above v. *)
        slot.certified_back_to <- v);
    conflict
  end

let entries_between t ~lo ~hi =
  let hi = min hi t.size in
  let rec collect v acc =
    if v <= lo then acc else collect (v - 1) (t.slots.(v - 1).entry :: acc)
  in
  collect hi []

let bytes_total t = t.bytes
let back_certifications t = t.extra_scans
let delta_overlaps t = t.delta_skips

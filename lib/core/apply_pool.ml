open Sim

(* Dependency-tracked parallel applier (the worker half; the database half
   is Mvcc.Db's parallel path). Items are submitted in version order; a
   key-level index over in-flight writesets (the Overlay technique from the
   certifier) links each item to the newest pending writer of any key it
   touches, so non-conflicting writesets execute concurrently on a bounded
   pool of worker fibers while conflicting ones wait on their predecessors.
   A publisher fiber walks items in submission order and fires their
   publication callbacks only when every earlier item has finished — the
   ordered-publish barrier that keeps GSI snapshots gap-free. *)

type handle = {
  version : int;
  ws : Mvcc.Writeset.t;
  deps : handle list;  (* pending predecessors writing an overlapping key *)
  exec : unit -> unit;
  on_published : unit -> unit;
  exec_done : unit Ivar.t;
  published : unit Ivar.t;
  mutable wait_span : Obs.Trace.span option;
}

(* Per-key in-flight writers. Delta writers ([Writeset.Add]) commute with
   each other, so a key tracks the newest pending blind (final-image)
   writer plus every pending delta writer since it: a new delta depends
   only on the blind writer (all in-flight deltas can run concurrently
   with it), while a new blind write depends on everything — the blind
   writer and the whole delta set. *)
type key_writers = { mutable blind : handle option; mutable deltas : handle list }

type t = {
  engine : Engine.t;
  name : string;
  workers : int;
  trace : Obs.Trace.t;
  queue : handle Mailbox.t;
  publish_queue : handle Mailbox.t;
  index : key_writers Mvcc.Key.Tbl.t;
  mutable fibers : Engine.fiber list;
  (* Time-weighted exec concurrency: parallelism = ∫busy dt / ∫[busy>0] dt. *)
  mutable busy : int;
  mutable last_change : Time.t;
  mutable busy_area : float;
  mutable busy_span : float;
  c_stalls : Stats.Counter.t;
  c_submitted : Stats.Counter.t;
}

let account t =
  let now = Engine.now t.engine in
  let dt = Time.to_sec (Time.diff now t.last_change) in
  if dt > 0. then begin
    t.busy_area <- t.busy_area +. (float_of_int t.busy *. dt);
    if t.busy > 0 then t.busy_span <- t.busy_span +. dt
  end;
  t.last_change <- now

let enter_busy t =
  account t;
  t.busy <- t.busy + 1

let leave_busy t =
  account t;
  t.busy <- t.busy - 1

let parallelism t =
  account t;
  if t.busy_span > 0. then t.busy_area /. t.busy_span else 0.

let stalls t = Stats.Counter.value t.c_stalls
let pending t = Mailbox.length t.publish_queue

let worker_loop t () =
  let rec loop () =
    let h = Mailbox.recv t.queue in
    let unmet = List.filter (fun d -> not (Ivar.is_filled d.exec_done)) h.deps in
    if unmet <> [] then Stats.Counter.incr t.c_stalls;
    List.iter (fun d -> Ivar.read d.exec_done) unmet;
    (match h.wait_span with
    | Some sp ->
        Obs.Trace.finish t.trace sp;
        h.wait_span <- None
    | None -> ());
    let sp = Obs.Trace.span t.trace ~stage:"apply.exec" ~actor:t.name () in
    enter_busy t;
    h.exec ();
    leave_busy t;
    Obs.Trace.finish t.trace sp;
    Ivar.fill h.exec_done ();
    loop ()
  in
  loop ()

let publisher_loop t () =
  let rec loop () =
    let h = Mailbox.recv t.publish_queue in
    Ivar.read h.exec_done;
    (* Retire this item's key-index entries (unless a later submission
       already took them over). *)
    Mvcc.Writeset.iter_keys h.ws (fun key ->
        match Mvcc.Key.Tbl.find_opt t.index key with
        | None -> ()
        | Some w ->
            (match w.blind with
            | Some h' when h' == h -> w.blind <- None
            | Some _ | None -> ());
            w.deltas <- List.filter (fun h' -> not (h' == h)) w.deltas;
            (match (w.blind, w.deltas) with
            | None, [] -> Mvcc.Key.Tbl.remove t.index key
            | _ -> ()));
    h.on_published ();
    Ivar.fill h.published ();
    loop ()
  in
  loop ()

let spawn_fibers t =
  let ws =
    List.init t.workers (fun i ->
        Engine.spawn t.engine
          ~name:(Printf.sprintf "%s.apply_worker%d" t.name i)
          (worker_loop t))
  in
  let p = Engine.spawn t.engine ~name:(t.name ^ ".apply_publisher") (publisher_loop t) in
  t.fibers <- p :: ws

let create engine ~name ~workers ~metrics ~trace () =
  if workers < 1 then invalid_arg "Apply_pool.create: workers must be >= 1";
  let t =
    {
      engine;
      name;
      workers;
      trace;
      queue = Mailbox.create engine ~name:(name ^ ".apply_queue") ();
      publish_queue = Mailbox.create engine ~name:(name ^ ".apply_publish") ();
      index = Mvcc.Key.Tbl.create 1024;
      fibers = [];
      busy = 0;
      last_change = Engine.now engine;
      busy_area = 0.;
      busy_span = 0.;
      c_stalls = Obs.Registry.counter metrics ("replica." ^ name ^ ".apply.stalls");
      c_submitted = Obs.Registry.counter metrics ("replica." ^ name ^ ".apply.submitted");
    }
  in
  Obs.Registry.gauge metrics
    ("replica." ^ name ^ ".apply.parallelism")
    (fun () -> parallelism t);
  Obs.Registry.gauge metrics
    ("replica." ^ name ^ ".apply.pending")
    (fun () -> float_of_int (pending t));
  Obs.Registry.on_reset metrics (fun () ->
      account t;
      t.busy_area <- 0.;
      t.busy_span <- 0.);
  spawn_fibers t;
  t

let submit t ~version ~ws ?trace_id ?(on_published = fun () -> ()) ~exec () =
  let deps = ref [] in
  let depend d = if not (List.memq d !deps) then deps := d :: !deps in
  Mvcc.Writeset.iter_entries ws (fun key op ->
      match Mvcc.Key.Tbl.find_opt t.index key with
      | None -> ()
      | Some w ->
          (* A delta commutes with all pending deltas on the key and only
             waits for the pending blind writer (its read base). A blind
             write pins a final value, so it waits for everything. *)
          (match w.blind with Some d -> depend d | None -> ());
          if not (Mvcc.Writeset.op_is_delta op) then List.iter depend w.deltas);
  let h =
    {
      version;
      ws;
      deps = !deps;
      exec;
      on_published;
      exec_done = Ivar.create t.engine ();
      published = Ivar.create t.engine ();
      wait_span =
        (if Obs.Trace.enabled t.trace then
           Some (Obs.Trace.span t.trace ?id:trace_id ~stage:"apply.wait" ~actor:t.name ())
         else None);
    }
  in
  Mvcc.Writeset.iter_entries ws (fun key op ->
      let w =
        match Mvcc.Key.Tbl.find_opt t.index key with
        | Some w -> w
        | None ->
            let w = { blind = None; deltas = [] } in
            Mvcc.Key.Tbl.add t.index key w;
            w
      in
      if Mvcc.Writeset.op_is_delta op then w.deltas <- h :: w.deltas
      else begin
        (* The new blind writer supersedes every pending writer as the
           dependency target for later submissions. *)
        w.blind <- Some h;
        w.deltas <- []
      end);
  Stats.Counter.incr t.c_submitted;
  Mailbox.send t.queue h;
  Mailbox.send t.publish_queue h;
  h

let has_deps h = h.deps <> []
let version h = h.version
let wait_published h = Ivar.read h.published

let pause t =
  List.iter (fun f -> Engine.cancel t.engine f) t.fibers;
  t.fibers <- [];
  Mailbox.clear t.queue;
  Mailbox.clear t.publish_queue;
  Mvcc.Key.Tbl.reset t.index;
  account t;
  t.busy <- 0

let resume t = spawn_fibers t

(** Whole-system wiring: a certifier group and a set of database replicas
    on one simulated LAN — the architecture of Figure 2. *)

type config = {
  mode : Types.mode;
  n_replicas : int;
  n_certifiers : int;
  certifier : Certifier.config;
  replica : Replica.config;
  seed : int;
}

val default_config : Types.mode -> config

val config :
  ?n_replicas:int ->
  ?n_certifiers:int ->
  ?apply_workers:int ->
  ?gc_interval:Sim.Time.t option ->
  ?max_snapshot_age:Sim.Time.t option ->
  ?certifier:Certifier.config ->
  ?replica:Replica.config ->
  ?seed:int ->
  Types.mode ->
  config
(** Smart constructor over {!default_config}: each optional argument
    overrides the corresponding field. [apply_workers], [gc_interval] and
    [max_snapshot_age] are applied to the replica config {e after}
    [replica], so [config ~replica ~apply_workers:4 mode] parallelises a
    custom replica setup; pass [~gc_interval:None] to disable vacuuming
    entirely (the unbounded-growth baseline). *)

type t

val create : ?engine:Sim.Engine.t -> ?metrics:Obs.Registry.t -> ?trace:Obs.Trace.t -> config -> t
(** Builds an {!Env.t} (network included) and the certifier group and
    replicas inside it. Every component registers its metrics in [metrics]
    (a fresh registry when omitted) and records lifecycle spans into
    [trace] (disabled when omitted); the resulting metric namespace is
    [proxy.*], [cert_client.*], [replica.*], [certifier.*] and [net.*].

    The configuration is validated first; impossible settings
    ([n_replicas < 1], an even or non-positive [n_certifiers],
    [replica.apply_workers < 1], negative
    CPU/staleness/deadline/GC-interval/snapshot-age/watermark-TTL times)
    raise one [Invalid_argument] naming every problem. *)

val env : t -> Env.t
(** The environment the components were built in. *)

val engine : t -> Sim.Engine.t
val network : t -> Types.message Net.Network.t

val configuration : t -> config
(** The (validated) configuration the cluster was built from. *)

val metrics : t -> Obs.Registry.t
(** The shared registry all components registered into. *)

val trace : t -> Obs.Trace.t
(** The shared tracer ([Obs.Trace.disabled] unless one was passed in). *)

val replicas : t -> Replica.t list
val replica : t -> int -> Replica.t
val certifiers : t -> Certifier.t list
val certifier_ids : t -> string list

val leader : t -> Certifier.t option
(** The certifier currently claiming leadership, if any. *)

val settle : t -> unit
(** Run the engine until a certifier leader exists (bounded wait);
    call once after {!create} before submitting work. *)

val load_all : t -> (Mvcc.Key.t * Mvcc.Value.t) list -> unit
(** Install the same initial rows on every replica (version 0). *)

val check_consistency : t -> (unit, string) result
(** Safety invariant (§7): every up replica's database state equals the
    certifier log applied up to that replica's version — i.e. each replica
    is a consistent prefix of the global history. Truncation-aware: the
    reference state is rebuilt from the log's folded base wedge at the GC
    floor plus the live entries; a replica still below the floor (about to
    heal via snapshot transfer) is skipped. *)

val check_log_invariants : t -> (unit, string) result
(** Structural invariants on the certification log, checked against the
    current leader: contiguous versions from the truncation floor,
    at-most-once certification per (origin, req_id), every commit
    acknowledged by an up replica backed by a log entry of that origin —
    live or in the truncation ledger (no lost certified writeset) — and
    prefix agreement between every up certifier's log and the leader's.
    The chaos harness asserts this after each heal; requires proxy stats
    untouched by {!reset_stats} since the run began. *)

val total_commits : t -> int
val total_aborts : t -> int

val reset_stats : t -> unit
(** Start a fresh measurement window for the whole cluster: one
    [Obs.Registry.reset] (zeroing every registered counter and running each
    component's re-baselining hook) plus an [Obs.Trace.reset] (emptying the
    span ring). Used between warmup and the measured phase. *)

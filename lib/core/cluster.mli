(** Whole-system wiring: certifier groups and a set of database replicas
    on one simulated LAN — the architecture of Figure 2, generalised to
    partitioned certification (DESIGN.md §15).

    The keyspace is split into [n_partitions] static partitions (see
    {!Partitioner}); each partition gets its own certifier group — its own
    Paxos ring, WAL, certification log and GC watermark, in its own
    version space. Replicas host either every partition ([Host_all]) or
    one partition each ([Host_modulo]: partial replication — a replica
    loads, applies and refreshes only its subscription). With
    [n_partitions = 1] (the default) everything reduces to the legacy
    single-group cluster: same names, same RNG stream, same histories. *)

(** Which partitions each replica subscribes to: [Host_all] — every
    replica hosts every partition (cross-partition transactions possible
    on any replica); [Host_modulo] — replica [i] hosts only partition
    [i mod n_partitions] (pure partial replication; every transaction is
    partition-local by construction). *)
type hosting = Host_all | Host_modulo

type config = {
  mode : Types.mode;
  n_replicas : int;
  n_certifiers : int;  (** per group *)
  n_partitions : int;
  hosting : hosting;
  certifier : Certifier.config;
  replica : Replica.config;
  seed : int;
}

val default_config : Types.mode -> config

val config :
  ?n_replicas:int ->
  ?n_certifiers:int ->
  ?n_partitions:int ->
  ?hosting:hosting ->
  ?apply_workers:int ->
  ?gc_interval:Sim.Time.t option ->
  ?max_snapshot_age:Sim.Time.t option ->
  ?certifier:Certifier.config ->
  ?replica:Replica.config ->
  ?seed:int ->
  Types.mode ->
  config
(** Smart constructor over {!default_config}: each optional argument
    overrides the corresponding field. [apply_workers], [gc_interval] and
    [max_snapshot_age] are applied to the replica config {e after}
    [replica], so [config ~replica ~apply_workers:4 mode] parallelises a
    custom replica setup; pass [~gc_interval:None] to disable vacuuming
    entirely (the unbounded-growth baseline). *)

type t

val create :
  ?engine:Sim.Engine.t ->
  ?metrics:Obs.Registry.t ->
  ?trace:Obs.Trace.t ->
  ?events:Obs.Events.t ->
  config ->
  t
(** Builds an {!Env.t} (network included) and the certifier groups and
    replicas inside it. Every component registers its metrics in [metrics]
    (a fresh registry when omitted) and records lifecycle spans into
    [trace] (disabled when omitted); the resulting metric namespace is
    [proxy.*], [cert_client.*], [replica.*], [certifier.*] and [net.*].
    Certifiers are [cert<i>] in a 1-partition cluster and [p<g>.cert<i>]
    otherwise; a multi-partition replica's endpoints are [replica<i>#p<g>].

    The configuration is validated first; impossible settings
    ([n_replicas < 1], an even or non-positive [n_certifiers],
    [n_partitions < 1], [Host_modulo] with fewer replicas than partitions,
    [replica.apply_workers < 1], negative
    CPU/staleness/deadline/GC-interval/snapshot-age/watermark-TTL times)
    raise one [Invalid_argument] naming every problem. *)

val env : t -> Env.t
(** The environment the components were built in. *)

val engine : t -> Sim.Engine.t
val network : t -> Types.message Net.Network.t

val configuration : t -> config
(** The (validated) configuration the cluster was built from. *)

val metrics : t -> Obs.Registry.t
(** The shared registry all components registered into. *)

val trace : t -> Obs.Trace.t
val events : t -> Obs.Events.t
(** The shared tracer ([Obs.Trace.disabled] unless one was passed in). *)

val replicas : t -> Replica.t list
val replica : t -> int -> Replica.t

val partitioner : t -> Partitioner.t
(** The cluster's key → partition map (shared with every replica session;
    workloads use it to build partition-local key pools). *)

val certifiers : t -> Certifier.t list
(** Every certifier, group by group in partition order (the construction
    order — identical to the legacy flat list when [n_partitions = 1]). *)

val certifier_groups : t -> (int * Certifier.t list) list
(** Partition → its certifier group, ascending. *)

val group : t -> part:int -> Certifier.t list
(** @raise Invalid_argument on an unknown partition. *)

val certifier_ids : t -> string list

val leader : t -> Certifier.t option
(** The certifier currently claiming leadership of {e group 0} — the
    cluster's only group when [n_partitions = 1] (the historical
    contract). *)

val group_leader : t -> part:int -> Certifier.t option
val leaders : t -> Certifier.t list
(** The current leaders, one per group that has one. *)

val settle : t -> unit
(** Run the engine until {e every} certifier group has a leader (bounded
    wait); call once after {!create} before submitting work. *)

val load_all : t -> (Mvcc.Key.t * Mvcc.Value.t) list -> unit
(** Install the initial rows (version 0) on every replica; each replica
    keeps only the partitions it hosts. *)

val check_consistency : t -> (unit, string) result
(** Safety invariant (§7), per partition: every up replica hosting the
    partition has database state equal to that group's certifier log
    applied up to the replica's version — i.e. each hosted partition is a
    consistent prefix of that partition's history. Truncation-aware: the
    reference state is rebuilt from the log's folded base wedge at the GC
    floor plus the live entries; a replica still below the floor (about to
    heal via snapshot transfer) is skipped. *)

val check_log_invariants : t -> (unit, string) result
(** Structural invariants on each group's certification log, checked
    against that group's current leader: contiguous versions from the
    truncation floor, at-most-once certification per (origin, req_id) —
    cross-partition fragments included — every commit acknowledged by an
    up replica backed by a log entry of that origin (live or in the
    truncation ledger), and prefix agreement between every up member's log
    and its leader's. The chaos harness asserts this after each heal;
    requires proxy stats untouched by {!reset_stats} since the run
    began. *)

val check_cross_atomicity : ?settle:Sim.Time.t -> t -> (unit, string) result
(** Cross-partition atomicity: for every fragment committed with an
    {!Types.xatom} witness, every sibling group (that still has an up
    member to ask) must report the transaction committed in its own
    never-pruned outcome table — none may report it aborted or unknown.
    Because each group delivers its own Decision record independently, a
    scan under live traffic can catch an exchange mid-flight; a non-empty
    scan runs the simulation for [settle] (default 1 s) and reports only
    the problems that survive it. Trivially [Ok] (and side-effect-free)
    when [n_partitions = 1]. *)

val total_commits : t -> int
(** Summed proxy commit counts over every hosted partition. Under
    partitioned certification a cross-partition transaction contributes
    once {e per fragment}; per-transaction counts live in
    {!Session.stats}. *)

val total_aborts : t -> int

val reset_stats : t -> unit
(** Start a fresh measurement window for the whole cluster: one
    [Obs.Registry.reset] (zeroing every registered counter and running each
    component's re-baselining hook) plus an [Obs.Trace.reset] (emptying the
    span ring). Used between warmup and the measured phase. *)

open Sim

(* Which partitions each replica subscribes to (partial replication). *)
type hosting = Host_all | Host_modulo

type config = {
  mode : Types.mode;
  n_replicas : int;
  n_certifiers : int;
  n_partitions : int;
  hosting : hosting;
  certifier : Certifier.config;
  replica : Replica.config;
  seed : int;
}

let default_config mode =
  {
    mode;
    n_replicas = 3;
    n_certifiers = 3;
    n_partitions = 1;
    hosting = Host_all;
    certifier = Certifier.default_config;
    replica = Replica.default_config mode;
    seed = 42;
  }

let config ?n_replicas ?n_certifiers ?n_partitions ?hosting ?apply_workers
    ?gc_interval ?max_snapshot_age ?certifier ?replica ?seed mode =
  let base = default_config mode in
  let replica =
    match replica with Some r -> r | None -> base.replica
  in
  let replica =
    match apply_workers with
    | Some w -> { replica with Replica.apply_workers = w }
    | None -> replica
  in
  let replica =
    match gc_interval with
    | Some g -> { replica with Replica.gc_interval = g }
    | None -> replica
  in
  let replica =
    match max_snapshot_age with
    | Some a -> { replica with Replica.max_snapshot_age = a }
    | None -> replica
  in
  {
    mode;
    n_replicas = Option.value ~default:base.n_replicas n_replicas;
    n_certifiers = Option.value ~default:base.n_certifiers n_certifiers;
    n_partitions = Option.value ~default:base.n_partitions n_partitions;
    hosting = Option.value ~default:base.hosting hosting;
    certifier = Option.value ~default:base.certifier certifier;
    replica;
    seed = Option.value ~default:base.seed seed;
  }

(* Reject impossible configurations with one message naming every problem,
   instead of letting them surface as a hang or an assert deep inside the
   simulation. *)
let validate cfg =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if cfg.n_replicas < 1 then add "n_replicas must be >= 1 (got %d)" cfg.n_replicas;
  if cfg.n_certifiers < 1 then add "n_certifiers must be >= 1 (got %d)" cfg.n_certifiers
  else if cfg.n_certifiers mod 2 = 0 then
    add "n_certifiers must be odd for majority quorums (got %d)" cfg.n_certifiers;
  if cfg.n_partitions < 1 then
    add "n_partitions must be >= 1 (got %d)" cfg.n_partitions;
  (match cfg.hosting with
  | Host_modulo when cfg.n_replicas < cfg.n_partitions ->
      add
        "Host_modulo needs n_replicas >= n_partitions so every partition has a \
         replica (got %d < %d)"
        cfg.n_replicas cfg.n_partitions
  | Host_modulo | Host_all -> ());
  if cfg.replica.Replica.apply_workers < 1 then
    add "replica.apply_workers must be >= 1 (got %d)" cfg.replica.Replica.apply_workers;
  let non_negative name time =
    if Time.(time < Time.zero) then add "%s must be non-negative (got %s)" name (Time.to_string time)
  in
  non_negative "replica.exec_cpu" cfg.replica.Replica.exec_cpu;
  non_negative "replica.apply_cpu_per_ws" cfg.replica.Replica.apply_cpu_per_ws;
  (match cfg.replica.Replica.staleness_bound with
  | Some bound -> non_negative "replica.staleness_bound" bound
  | None -> ());
  (match cfg.replica.Replica.gc_interval with
  | Some interval -> non_negative "replica.gc_interval" interval
  | None -> ());
  (match cfg.replica.Replica.max_snapshot_age with
  | Some age -> non_negative "replica.max_snapshot_age" age
  | None -> ());
  non_negative "certifier.certify_cpu" cfg.certifier.Certifier.certify_cpu;
  (match cfg.certifier.Certifier.fsync_deadline with
  | Some deadline -> non_negative "certifier.fsync_deadline" deadline
  | None -> ());
  non_negative "certifier.watermark_ttl" cfg.certifier.Certifier.watermark_ttl;
  match List.rev !problems with
  | [] -> ()
  | ps -> invalid_arg ("Cluster.create: " ^ String.concat "; " ps)

type t = {
  the_env : Env.t;
  cfg : config;
  groups : (int * Certifier.t list) list; (* partition -> its group, ascending *)
  replica_nodes : Replica.t list;
  key_partitioner : Partitioner.t;
  mutable initial_rows : (Mvcc.Key.t * Mvcc.Value.t) list;
}

(* A 1-partition cluster keeps the historical names (cert0, replica0) so
   seeds, metric dashboards and fault plans stay valid; a partitioned one
   prefixes certifiers with their group. *)
let certifier_name ~n_partitions g i =
  if n_partitions = 1 then Printf.sprintf "cert%d" i
  else Printf.sprintf "p%d.cert%d" g i

let replica_name i = Printf.sprintf "replica%d" i

let hosted_partitions cfg i =
  match cfg.hosting with
  | Host_all -> List.init cfg.n_partitions Fun.id
  | Host_modulo -> [ i mod cfg.n_partitions ]

let create ?engine ?metrics ?trace ?events cfg =
  validate cfg;
  (* The environment replays the historical stream discipline: root rng
     from the seed, network on its first split, then one split per
     component in construction order (group 0's certifiers, group 1's,
     ..., then replicas). With one partition this is exactly the legacy
     order. *)
  let env = Env.create ?engine ?metrics ?trace ?events ~seed:cfg.seed () in
  let group_ids =
    List.init cfg.n_partitions (fun g ->
        (g, List.init cfg.n_certifiers (certifier_name ~n_partitions:cfg.n_partitions g)))
  in
  let directory = if cfg.n_partitions = 1 then [] else group_ids in
  let groups =
    List.map
      (fun (g, ids) ->
        ( g,
          List.map
            (fun id ->
              Certifier.create env ~id
                ~peers:(List.filter (fun p -> p <> id) ids)
                ~partition:g ~directory ~config:cfg.certifier ())
            ids ))
      group_ids
  in
  let replica_nodes =
    List.init cfg.n_replicas (fun i ->
        let parts = hosted_partitions cfg i in
        let rgroups =
          List.map
            (fun p ->
              ( p,
                List.assoc p group_ids,
                (* Globally unique per (replica, partition); reduces to the
                   historical (i+1) * 100_000_000 when n_partitions = 1. *)
                ((i * cfg.n_partitions) + p + 1) * 100_000_000 ))
            parts
        in
        Replica.create env ~name:(replica_name i)
          ~n_partitions:cfg.n_partitions ~groups:rgroups
          ~config:{ cfg.replica with mode = cfg.mode }
          ())
  in
  {
    the_env = env;
    cfg;
    groups;
    replica_nodes;
    key_partitioner = Partitioner.create ~parts:cfg.n_partitions;
    initial_rows = [];
  }

let env t = t.the_env
let engine t = t.the_env.Env.engine
let network t = t.the_env.Env.net
let configuration t = t.cfg
let metrics t = t.the_env.Env.metrics
let trace t = t.the_env.Env.trace
let events t = t.the_env.Env.events
let replicas t = t.replica_nodes
let replica t i = List.nth t.replica_nodes i
let partitioner t = t.key_partitioner
let certifier_groups t = t.groups
let certifiers t = List.concat_map snd t.groups
let certifier_ids t = List.map Certifier.id (certifiers t)

let group t ~part =
  match List.assoc_opt part t.groups with
  | Some nodes -> nodes
  | None -> invalid_arg (Printf.sprintf "Cluster.group: no partition %d" part)

let group_leader t ~part =
  List.find_opt
    (fun c -> Certifier.is_up c && Certifier.is_leader c)
    (group t ~part)

let leaders t =
  List.filter_map (fun (g, _) -> group_leader t ~part:g) t.groups

let leader t = group_leader t ~part:0

let settle t =
  let engine = engine t in
  let deadline = Time.add (Engine.now engine) (Time.sec 10) in
  let all_led () = List.length (leaders t) = List.length t.groups in
  let rec wait () =
    if (not (all_led ())) && Time.(Engine.now engine < deadline) then begin
      Engine.run ~until:(Time.add (Engine.now engine) (Time.of_ms 50.)) engine;
      wait ()
    end
  in
  wait ();
  if not (all_led ()) then
    failwith "Cluster.settle: some certifier group elected no leader"

let load_all t rows =
  t.initial_rows <- rows;
  List.iter (fun r -> Replica.load r rows) t.replica_nodes

(* The per-partition slice of the initial rows — what a hosting replica
   actually loaded. *)
let initial_slice t ~part =
  List.filter
    (fun (key, _) -> Partitioner.of_key t.key_partitioner key = part)
    t.initial_rows

let check_consistency_group t ~part cert =
  let problems = ref [] in
  let clog = Certifier.log cert in
  let lfloor = Cert_log.floor clog in
  let slice = initial_slice t ~part in
  (* Once the log is truncated the reference can only be rebuilt from
     the floor upwards: initial rows, then the folded base state as a
     wedge at the floor, then the live entries. *)
  let base_ws =
    lazy
      (Mvcc.Writeset.of_list
         (List.map
            (fun (key, value) ->
              match value with
              | Some v -> (key, Mvcc.Writeset.Update v)
              | None -> (key, Mvcc.Writeset.Delete))
            (Cert_log.base_rows clog)))
  in
  List.iter
    (fun r ->
      match Replica.db_of r ~part with
      | None -> () (* not subscribed to this partition *)
      | Some db when Replica.is_up r ->
          let store = Mvcc.Db.store db in
          let v = Mvcc.Store.current_version store in
          if v > Cert_log.version clog then
            problems :=
              Printf.sprintf "%s/p%d at version %d beyond certifier log %d"
                (Replica.name r) part v (Cert_log.version clog)
              :: !problems
          else if v < lfloor then
            (* The history this replica is at was pruned; it is about to
               heal through a snapshot transfer and cannot be verified
               against the log. Nothing to check yet. *)
            ()
          else begin
            (* Rebuild the reference state for version v and compare every
               key ever touched. *)
            let reference = Mvcc.Store.create () in
            List.iter
              (fun (key, value) -> Mvcc.Store.preload reference key value)
              slice;
            if lfloor > 0 then
              Mvcc.Store.install reference ~version:lfloor (Lazy.force base_ws);
            List.iter
              (fun (entry : Types.entry) ->
                Mvcc.Store.install reference ~version:entry.version entry.ws)
              (Cert_log.entries_between clog ~lo:lfloor ~hi:v);
            Mvcc.Store.force_version reference v;
            let check key =
              let expected = Mvcc.Store.read_latest reference key in
              let actual = Mvcc.Store.read store ~at:v key in
              let same =
                match (expected, actual) with
                | None, None -> true
                | Some a, Some b -> Mvcc.Value.equal a b
                | None, Some _ | Some _, None -> false
              in
              if not same then
                problems :=
                  Printf.sprintf
                    "%s/p%d: key %s diverges at version %d (expected %s, actual %s)"
                    (Replica.name r) part (Mvcc.Key.to_string key) v
                    (match expected with
                    | Some x -> Format.asprintf "%a" Mvcc.Value.pp x
                    | None -> "<none>")
                    (match actual with
                    | Some x -> Format.asprintf "%a" Mvcc.Value.pp x
                    | None -> "<none>")
                  :: !problems
            in
            List.iter (fun (key, _) -> check key) slice;
            List.iter
              (fun (entry : Types.entry) ->
                List.iter check (Mvcc.Writeset.keys entry.ws))
              (Cert_log.entries_between clog ~lo:0 ~hi:v)
          end
      | Some _ -> ())
    t.replica_nodes;
  !problems

let check_consistency t =
  let problems =
    List.concat_map
      (fun (part, _) ->
        match group_leader t ~part with
        | None -> [ Printf.sprintf "p%d: no certifier leader to check against" part ]
        | Some cert -> check_consistency_group t ~part cert)
      t.groups
  in
  if problems = [] then Ok () else Error (String.concat "; " problems)

(* Structural invariants on one group's certification log, checked against
   its current leader: version contiguity, at-most-once certification per
   (origin, req_id), no acknowledged commit missing from the log, and
   prefix agreement among up certifiers. Complements [check_consistency]
   (which checks replica *data* against the log) and is what the chaos
   harness asserts after every heal. *)
let check_log_invariants_group t ~part lead =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  let llog = Certifier.log lead in
  let lv = Cert_log.version llog in
  let lfloor = Cert_log.floor llog in
  let entries = Cert_log.entries_between llog ~lo:0 ~hi:lv in
  (* 1. Versions are contiguous from the truncation floor: a gap means
     a decided entry was dropped somewhere between Paxos delivery and
     the log (truncation only ever removes a prefix, so the live window
     must still be dense). *)
  ignore
    (List.fold_left
       (fun expect (e : Types.entry) ->
         if e.version <> expect then
           add "p%d leader log gap: expected version %d, found %d" part expect
             e.version;
         e.version + 1)
       (lfloor + 1) entries);
  (* 2. Each (origin, req_id) appears at most once: a duplicate means a
     retried request was certified twice (e.g. by a leader that exposed
     state before finishing recovery). Cross-partition fragments take part
     here too — their req_id is the per-session gtx_seq, disjoint from the
     >= 100 M client req_id space. *)
  let seen = Hashtbl.create 1024 in
  let by_version = Hashtbl.create 1024 in
  List.iter
    (fun (e : Types.entry) ->
      Hashtbl.replace by_version e.version (e.origin, e.req_id);
      (match Hashtbl.find_opt seen (e.origin, e.req_id) with
      | Some v ->
          add "p%d duplicate certification: (%s, req %d) at versions %d and %d"
            part e.origin e.req_id v e.version
      | None -> ());
      Hashtbl.replace seen (e.origin, e.req_id) e.version)
    entries;
  (* 3. No lost certified writeset: every commit a replica acknowledged
     to its clients must be backed by a log entry with that origin —
     live, or accounted for by the truncation ledger.
     (Assumes proxy stats have not been reset since the run began.) *)
  let per_origin = Hashtbl.create 8 in
  List.iter
    (fun (e : Types.entry) ->
      Hashtbl.replace per_origin e.origin
        (1 + Option.value ~default:0 (Hashtbl.find_opt per_origin e.origin)))
    entries;
  List.iter
    (fun r ->
      match Replica.proxy_of r ~part with
      | Some proxy when Replica.is_up r ->
          let origin = Proxy.addr proxy in
          let commits = (Proxy.stats proxy).commits in
          let backed =
            Option.value ~default:0 (Hashtbl.find_opt per_origin origin)
            + Cert_log.truncated_for_origin llog origin
          in
          if commits > backed then
            add "%s acknowledged %d commits but the p%d log backs only %d (lost writeset)"
              origin commits part backed
      | Some _ | None -> ())
    t.replica_nodes;
  (* 4. Prefix agreement: every up certifier's log must match the
     leader's on the versions both hold — Paxos must never let two
     certifiers decide different entries for the same slot. *)
  List.iter
    (fun c ->
      if Certifier.is_up c && not (String.equal (Certifier.id c) (Certifier.id lead))
      then
        let clog = Certifier.log c in
        let cv = min (Cert_log.version clog) lv in
        List.iter
          (fun (e : Types.entry) ->
            match Hashtbl.find_opt by_version e.version with
            | Some (origin, req_id)
              when String.equal origin e.origin && req_id = e.req_id ->
                ()
            | Some _ ->
                add "%s log diverges from leader at version %d" (Certifier.id c)
                  e.version
            | None -> ())
          (Cert_log.entries_between clog ~lo:0 ~hi:cv))
    (group t ~part);
  List.rev !problems

let check_log_invariants t =
  let problems =
    List.concat_map
      (fun (part, _) ->
        match group_leader t ~part with
        | None -> [ Printf.sprintf "p%d: no certifier leader to check against" part ]
        | Some lead -> check_log_invariants_group t ~part lead)
      t.groups
  in
  if problems = [] then Ok () else Error (String.concat "; " problems)

(* Cross-partition atomicity: every fragment a group committed with an
   {!Types.xatom} witness must have committed siblings — no sibling group
   may record the same transaction as aborted or unknown. Checked from the
   never-pruned outcome tables, so log truncation cannot hide a violation;
   a sibling group with no up member is skipped (nothing to ask).

   Each group delivers its own Decision record independently, so a scan
   can catch a transaction milliseconds after one group's log committed
   it and before the sibling group's Decision delivered. A non-empty
   first scan therefore runs the simulation for [settle] and keeps only
   the problems that are still there — in-flight exchanges resolve, a
   genuinely lost outcome (or a commit/abort split) does not. *)
let cross_atomicity_problems t =
  let problems = ref [] in
  let witness part =
    match group_leader t ~part with
    | Some c -> Some c
    | None -> List.find_opt Certifier.is_up (group t ~part)
  in
  List.iter
    (fun (part, _) ->
      match witness part with
      | None -> ()
      | Some c ->
          let clog = Certifier.log c in
          List.iter
            (fun (e : Types.entry) ->
              match e.xa with
              | None -> ()
              | Some { gtx; parts } ->
                  List.iter
                    (fun sibling ->
                      if sibling <> part then
                        match witness sibling with
                        | None -> ()
                        | Some w -> (
                            match Certifier.x_outcome w ~gtx with
                            | Some (Some _) -> ()
                            | Some None ->
                                problems := (gtx, part, sibling, `Aborted) :: !problems
                            | None ->
                                problems := (gtx, part, sibling, `Unknown) :: !problems))
                    parts)
            (Cert_log.entries_between clog ~lo:0 ~hi:(Cert_log.version clog)))
    t.groups;
  List.rev !problems

let check_cross_atomicity ?(settle = Time.sec 1) t =
  let problems =
    match cross_atomicity_problems t with
    | [] -> []
    | first ->
        let engine = engine t in
        Engine.run ~until:(Time.add (Engine.now engine) settle) engine;
        let second = cross_atomicity_problems t in
        List.filter (fun p -> List.mem p second) first
  in
  let describe (gtx, part, sibling, kind) =
    let gname = Format.asprintf "%a" Types.pp_gtx gtx in
    match kind with
    | `Aborted ->
        Printf.sprintf "%s committed in p%d but aborted in p%d (atomicity broken)"
          gname part sibling
    | `Unknown ->
        Printf.sprintf "%s committed in p%d but unknown in p%d [%s]" gname part
          sibling
          (String.concat " "
             (List.map (fun c -> Certifier.x_debug c ~gtx) (group t ~part:sibling)))
  in
  match problems with
  | [] -> Ok ()
  | ps -> Error (String.concat "; " (List.map describe ps))

let all_proxies t =
  List.concat_map
    (fun r ->
      List.filter_map (fun part -> Replica.proxy_of r ~part) (Replica.partitions r))
    t.replica_nodes

let total_commits t =
  List.fold_left (fun acc p -> acc + (Proxy.stats p).commits) 0 (all_proxies t)

let total_aborts t =
  List.fold_left
    (fun acc p ->
      let s = Proxy.stats p in
      acc + s.cert_aborts + s.local_aborts)
    0 (all_proxies t)

(* One registry reset restarts everyone's window (counters zeroed, each
   component's on_reset hook re-baselines its own cumulative state), and the
   trace ring starts fresh; the per-module reset_stats calls this used to
   spell out are now the components' own registry hooks. *)
let reset_stats t =
  Obs.Registry.reset t.the_env.Env.metrics;
  Obs.Trace.reset t.the_env.Env.trace

open Sim

type config = {
  mode : Types.mode;
  n_replicas : int;
  n_certifiers : int;
  certifier : Certifier.config;
  replica : Replica.config;
  seed : int;
}

let default_config mode =
  {
    mode;
    n_replicas = 3;
    n_certifiers = 3;
    certifier = Certifier.default_config;
    replica = Replica.default_config mode;
    seed = 42;
  }

let config ?n_replicas ?n_certifiers ?apply_workers ?gc_interval ?max_snapshot_age
    ?certifier ?replica ?seed mode =
  let base = default_config mode in
  let replica =
    match replica with Some r -> r | None -> base.replica
  in
  let replica =
    match apply_workers with
    | Some w -> { replica with Replica.apply_workers = w }
    | None -> replica
  in
  let replica =
    match gc_interval with
    | Some g -> { replica with Replica.gc_interval = g }
    | None -> replica
  in
  let replica =
    match max_snapshot_age with
    | Some a -> { replica with Replica.max_snapshot_age = a }
    | None -> replica
  in
  {
    mode;
    n_replicas = Option.value ~default:base.n_replicas n_replicas;
    n_certifiers = Option.value ~default:base.n_certifiers n_certifiers;
    certifier = Option.value ~default:base.certifier certifier;
    replica;
    seed = Option.value ~default:base.seed seed;
  }

(* Reject impossible configurations with one message naming every problem,
   instead of letting them surface as a hang or an assert deep inside the
   simulation. *)
let validate cfg =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if cfg.n_replicas < 1 then add "n_replicas must be >= 1 (got %d)" cfg.n_replicas;
  if cfg.n_certifiers < 1 then add "n_certifiers must be >= 1 (got %d)" cfg.n_certifiers
  else if cfg.n_certifiers mod 2 = 0 then
    add "n_certifiers must be odd for majority quorums (got %d)" cfg.n_certifiers;
  if cfg.replica.Replica.apply_workers < 1 then
    add "replica.apply_workers must be >= 1 (got %d)" cfg.replica.Replica.apply_workers;
  let non_negative name time =
    if Time.(time < Time.zero) then add "%s must be non-negative (got %s)" name (Time.to_string time)
  in
  non_negative "replica.exec_cpu" cfg.replica.Replica.exec_cpu;
  non_negative "replica.apply_cpu_per_ws" cfg.replica.Replica.apply_cpu_per_ws;
  (match cfg.replica.Replica.staleness_bound with
  | Some bound -> non_negative "replica.staleness_bound" bound
  | None -> ());
  (match cfg.replica.Replica.gc_interval with
  | Some interval -> non_negative "replica.gc_interval" interval
  | None -> ());
  (match cfg.replica.Replica.max_snapshot_age with
  | Some age -> non_negative "replica.max_snapshot_age" age
  | None -> ());
  non_negative "certifier.certify_cpu" cfg.certifier.Certifier.certify_cpu;
  (match cfg.certifier.Certifier.fsync_deadline with
  | Some deadline -> non_negative "certifier.fsync_deadline" deadline
  | None -> ());
  non_negative "certifier.watermark_ttl" cfg.certifier.Certifier.watermark_ttl;
  match List.rev !problems with
  | [] -> ()
  | ps -> invalid_arg ("Cluster.create: " ^ String.concat "; " ps)

type t = {
  the_env : Env.t;
  cfg : config;
  certifier_nodes : Certifier.t list;
  replica_nodes : Replica.t list;
  mutable initial_rows : (Mvcc.Key.t * Mvcc.Value.t) list;
}

let certifier_name i = Printf.sprintf "cert%d" i
let replica_name i = Printf.sprintf "replica%d" i

let create ?engine ?metrics ?trace cfg =
  validate cfg;
  (* The environment replays the historical stream discipline: root rng
     from the seed, network on its first split, then one split per
     component in construction order (certifiers, then replicas). *)
  let env = Env.create ?engine ?metrics ?trace ~seed:cfg.seed () in
  let cert_ids = List.init cfg.n_certifiers certifier_name in
  let certifier_nodes =
    List.map
      (fun id ->
        Certifier.create env ~id
          ~peers:(List.filter (fun p -> p <> id) cert_ids)
          ~config:cfg.certifier ())
      cert_ids
  in
  let replica_nodes =
    List.init cfg.n_replicas (fun i ->
        Replica.create env ~name:(replica_name i) ~certifiers:cert_ids
          ~req_id_base:((i + 1) * 100_000_000)
          ~config:{ cfg.replica with mode = cfg.mode }
          ())
  in
  { the_env = env; cfg; certifier_nodes; replica_nodes; initial_rows = [] }

let env t = t.the_env
let engine t = t.the_env.Env.engine
let network t = t.the_env.Env.net
let configuration t = t.cfg
let metrics t = t.the_env.Env.metrics
let trace t = t.the_env.Env.trace
let replicas t = t.replica_nodes
let replica t i = List.nth t.replica_nodes i
let certifiers t = t.certifier_nodes
let certifier_ids t = List.map Certifier.id t.certifier_nodes

let leader t = List.find_opt (fun c -> Certifier.is_up c && Certifier.is_leader c) t.certifier_nodes

let settle t =
  let engine = engine t in
  let deadline = Time.add (Engine.now engine) (Time.sec 10) in
  let rec wait () =
    if leader t = None && Time.(Engine.now engine < deadline) then begin
      Engine.run ~until:(Time.add (Engine.now engine) (Time.of_ms 50.)) engine;
      wait ()
    end
  in
  wait ();
  if leader t = None then failwith "Cluster.settle: no certifier leader elected"

let load_all t rows =
  t.initial_rows <- rows;
  List.iter (fun r -> Replica.load r rows) t.replica_nodes

let check_consistency t =
  match leader t with
  | None -> Error "no certifier leader to check against"
  | Some cert ->
      let clog = Certifier.log cert in
      let lfloor = Cert_log.floor clog in
      (* Once the log is truncated the reference can only be rebuilt from
         the floor upwards: initial rows, then the folded base state as a
         wedge at the floor, then the live entries. *)
      let base_ws =
        lazy
          (Mvcc.Writeset.of_list
             (List.map
                (fun (key, value) ->
                  match value with
                  | Some v -> (key, Mvcc.Writeset.Update v)
                  | None -> (key, Mvcc.Writeset.Delete))
                (Cert_log.base_rows clog)))
      in
      let problems = ref [] in
      List.iter
        (fun r ->
          if Replica.is_up r then begin
            let store = Mvcc.Db.store (Replica.db r) in
            let v = Mvcc.Store.current_version store in
            if v > Cert_log.version clog then
              problems :=
                Printf.sprintf "%s at version %d beyond certifier log %d" (Replica.name r)
                  v (Cert_log.version clog)
                :: !problems
            else if v < lfloor then
              (* The history this replica is at was pruned; it is about to
                 heal through a snapshot transfer and cannot be verified
                 against the log. Nothing to check yet. *)
              ()
            else begin
              (* Rebuild the reference state for version v and compare every
                 key ever touched. *)
              let reference = Mvcc.Store.create () in
              List.iter
                (fun (key, value) -> Mvcc.Store.preload reference key value)
                t.initial_rows;
              if lfloor > 0 then
                Mvcc.Store.install reference ~version:lfloor (Lazy.force base_ws);
              List.iter
                (fun (entry : Types.entry) ->
                  Mvcc.Store.install reference ~version:entry.version entry.ws)
                (Cert_log.entries_between clog ~lo:lfloor ~hi:v);
              Mvcc.Store.force_version reference v;
              let check key =
                let expected = Mvcc.Store.read_latest reference key in
                let actual = Mvcc.Store.read store ~at:v key in
                let same =
                  match (expected, actual) with
                  | None, None -> true
                  | Some a, Some b -> Mvcc.Value.equal a b
                  | None, Some _ | Some _, None -> false
                in
                if not same then
                  problems :=
                    Printf.sprintf "%s: key %s diverges at version %d (expected %s, actual %s)"
                      (Replica.name r) (Mvcc.Key.to_string key) v
                      (match expected with
                      | Some x -> Format.asprintf "%a" Mvcc.Value.pp x
                      | None -> "<none>")
                      (match actual with
                      | Some x -> Format.asprintf "%a" Mvcc.Value.pp x
                      | None -> "<none>")
                    :: !problems
              in
              List.iter (fun (key, _) -> check key) t.initial_rows;
              List.iter
                (fun (entry : Types.entry) ->
                  List.iter check (Mvcc.Writeset.keys entry.ws))
                (Cert_log.entries_between clog ~lo:0 ~hi:v)
            end
          end)
        t.replica_nodes;
      if !problems = [] then Ok () else Error (String.concat "; " !problems)

(* Structural invariants on the certification log itself, checked against
   the current leader: version contiguity, at-most-once certification per
   (origin, req_id), no acknowledged commit missing from the log, and
   prefix agreement among up certifiers. Complements [check_consistency]
   (which checks replica *data* against the log) and is what the chaos
   harness asserts after every heal. *)
let check_log_invariants t =
  match leader t with
  | None -> Error "no certifier leader to check against"
  | Some lead ->
      let problems = ref [] in
      let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
      let llog = Certifier.log lead in
      let lv = Cert_log.version llog in
      let lfloor = Cert_log.floor llog in
      let entries = Cert_log.entries_between llog ~lo:0 ~hi:lv in
      (* 1. Versions are contiguous from the truncation floor: a gap means
         a decided entry was dropped somewhere between Paxos delivery and
         the log (truncation only ever removes a prefix, so the live window
         must still be dense). *)
      ignore
        (List.fold_left
           (fun expect (e : Types.entry) ->
             if e.version <> expect then
               add "leader log gap: expected version %d, found %d" expect e.version;
             e.version + 1)
           (lfloor + 1) entries);
      (* 2. Each (origin, req_id) appears at most once: a duplicate means a
         retried request was certified twice (e.g. by a leader that exposed
         state before finishing recovery). *)
      let seen = Hashtbl.create 1024 in
      let by_version = Hashtbl.create 1024 in
      List.iter
        (fun (e : Types.entry) ->
          Hashtbl.replace by_version e.version (e.origin, e.req_id);
          (match Hashtbl.find_opt seen (e.origin, e.req_id) with
          | Some v ->
              add "duplicate certification: (%s, req %d) at versions %d and %d" e.origin
                e.req_id v e.version
          | None -> ());
          Hashtbl.replace seen (e.origin, e.req_id) e.version)
        entries;
      (* 3. No lost certified writeset: every commit a replica acknowledged
         to its clients must be backed by a log entry with that origin —
         live, or accounted for by the truncation ledger.
         (Assumes proxy stats have not been reset since the run began.) *)
      let per_origin = Hashtbl.create 8 in
      List.iter
        (fun (e : Types.entry) ->
          Hashtbl.replace per_origin e.origin
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_origin e.origin)))
        entries;
      List.iter
        (fun r ->
          if Replica.is_up r then begin
            let commits = (Proxy.stats (Replica.proxy r)).commits in
            let backed =
              Option.value ~default:0 (Hashtbl.find_opt per_origin (Replica.name r))
              + Cert_log.truncated_for_origin llog (Replica.name r)
            in
            if commits > backed then
              add "%s acknowledged %d commits but the log backs only %d (lost writeset)"
                (Replica.name r) commits backed
          end)
        t.replica_nodes;
      (* 4. Prefix agreement: every up certifier's log must match the
         leader's on the versions both hold — Paxos must never let two
         certifiers decide different entries for the same slot. *)
      List.iter
        (fun c ->
          if Certifier.is_up c && not (String.equal (Certifier.id c) (Certifier.id lead))
          then
            let clog = Certifier.log c in
            let cv = min (Cert_log.version clog) lv in
            List.iter
              (fun (e : Types.entry) ->
                match Hashtbl.find_opt by_version e.version with
                | Some (origin, req_id)
                  when String.equal origin e.origin && req_id = e.req_id ->
                    ()
                | Some _ ->
                    add "%s log diverges from leader at version %d" (Certifier.id c)
                      e.version
                | None -> ())
              (Cert_log.entries_between clog ~lo:0 ~hi:cv))
        t.certifier_nodes;
      if !problems = [] then Ok () else Error (String.concat "; " (List.rev !problems))

let total_commits t =
  List.fold_left
    (fun acc r -> acc + (Proxy.stats (Replica.proxy r)).commits)
    0 t.replica_nodes

let total_aborts t =
  List.fold_left
    (fun acc r ->
      let s = Proxy.stats (Replica.proxy r) in
      acc + s.cert_aborts + s.local_aborts)
    0 t.replica_nodes

(* One registry reset restarts everyone's window (counters zeroed, each
   component's on_reset hook re-baselines its own cumulative state), and the
   trace ring starts fresh; the per-module reset_stats calls this used to
   spell out are now the components' own registry hooks. *)
let reset_stats t =
  Obs.Registry.reset t.the_env.Env.metrics;
  Obs.Trace.reset t.the_env.Env.trace

(** Shared vocabulary of the replication middleware. *)

(** Which of the paper's three systems is running (§4, §5). *)
type mode =
  | Base  (** ordering in middleware, durability in the database, serial commits *)
  | Tashkent_mw  (** durability moved to the certifier; replica commits in memory *)
  | Tashkent_api  (** durability in the database, commit order passed via COMMIT n *)

val pp_mode : Format.formatter -> mode -> unit
val mode_name : mode -> string

(** A certified update transaction in the global log. *)
type entry = {
  version : int;  (** global commit version (dense, 1-based) *)
  origin : string;  (** replica that executed the transaction *)
  req_id : int;  (** idempotency token for request retries *)
  ws : Mvcc.Writeset.t;
  gc_floor : int;
      (** cluster GC watermark the leader stamped when proposing this
          entry: every certifier truncates its {!Cert_log} to this floor
          at delivery, so truncation replicates (and replays after a
          crash) deterministically through Paxos *)
}

val entry_bytes : entry -> int

type decision = Commit | Abort of abort_cause
and abort_cause = Ww_conflict | Forced
(** [Forced] aborts come from the injection knob used by the paper's §9.5
    goodput experiment. *)

val pp_decision : Format.formatter -> decision -> unit

(** A remote writeset shipped to a replica, with the artificial-conflict
    information of §5.2.1: [conflict_with] names the newest earlier version
    whose writeset intersects this one within the checked window (so the
    proxy must commit that version before submitting this writeset). *)
type remote_ws = { version : int; ws : Mvcc.Writeset.t; conflict_with : int option }

val remote_ws_bytes : remote_ws -> int

type cert_request = {
  req_id : int;
  trace_id : int;
      (** lifecycle trace id minted at [Proxy.begin_tx]; 0 when tracing is
          disabled. Stable across certify retries (same transaction). *)
  replica : string;  (** requesting replica (= message reply address) *)
  start_version : int;  (** [tx_start_version] *)
  replica_version : int;  (** replica state at request time, for trimming
                              and back-certification (§5.2.1) *)
  oldest_snapshot : int;
      (** oldest snapshot any transaction on the sending replica still
          reads (= [replica_version] when idle): the replica's GC
          watermark report, piggybacked on its normal traffic *)
  writeset : Mvcc.Writeset.t;
}

type cert_reply = {
  req_id : int;
  decision : decision;
  commit_version : int;  (** valid when [decision = Commit] *)
  gc_floor : int;
      (** cluster GC watermark at reply time, gossiped back so every
          replica can vacuum its version chains up to the floor *)
  remotes : remote_ws list;
      (** intervening remote writesets in [(replica_version, commit_version)],
          oldest first *)
}

type fetch_request = {
  fetch_req_id : int;
      (** matches the reply to the waiting fetch; a reply whose id is no
          longer pending (a timed-out or superseded fetch) is discarded *)
  fetch_replica : string;
  from_version : int;
  fetch_oldest_snapshot : int;  (** watermark report, as in {!cert_request} *)
}

(** Full state transfer for a replica whose [from_version] predates the
    certifier's truncation floor: the folded base rows at [snap_version]
    ([None] = key deleted below the floor). Installed before
    [fetch_remotes] (which then cover [(snap_version, certifier_version]]). *)
type snapshot = { snap_version : int; rows : (Mvcc.Key.t * Mvcc.Value.t option) list }

val snapshot_bytes : snapshot -> int

type fetch_reply = {
  fetch_req_id : int;
  fetch_remotes : remote_ws list;
  certifier_version : int;
  fetch_gc_floor : int;  (** watermark gossip, as in {!cert_reply} *)
  fetch_snapshot : snapshot option;
      (** present iff the requested prefix was truncated — the explicit
          "too old, take a snapshot" answer *)
}

(** Everything that travels on the wire. *)
type message =
  | Cert_request of cert_request
  | Cert_reply of cert_reply
  | Cert_redirect of { req_id : int; leader : string option }
  | Fetch_request of fetch_request
  | Fetch_reply of fetch_reply
  | Paxos of entry Paxos.Node.message

val message_bytes : message -> int

(** Shared vocabulary of the replication middleware. *)

(** Which of the paper's three systems is running (§4, §5). *)
type mode =
  | Base  (** ordering in middleware, durability in the database, serial commits *)
  | Tashkent_mw  (** durability moved to the certifier; replica commits in memory *)
  | Tashkent_api  (** durability in the database, commit order passed via COMMIT n *)

val pp_mode : Format.formatter -> mode -> unit
val mode_name : mode -> string

(** Identity of a cross-partition transaction, minted once by the
    originating {!Session} ([gtx_origin] = the session's replica name,
    [gtx_seq] = a session-local counter) and carried unchanged through
    prepare, vote and decision, so every involved certifier group agrees
    on which transaction it is resolving. *)
type gtx_id = { gtx_origin : string; gtx_seq : int }

val gtx_equal : gtx_id -> gtx_id -> bool
val pp_gtx : Format.formatter -> gtx_id -> unit

(** Atomicity witness stamped into a committed fragment's log entry:
    which cross-partition transaction it belongs to and which partitions
    hold its sibling fragments. The chaos harness walks these to check
    that no fragment ever commits without every sibling partition
    committing its own. *)
type xatom = { gtx : gtx_id; parts : int list }

(** A certified update transaction in a certifier group's log. *)
type entry = {
  version : int;  (** commit version in the group's version space (dense, 1-based) *)
  origin : string;  (** proxy that executed the transaction *)
  req_id : int;  (** idempotency token for request retries; for a
                     cross-partition fragment this is the [gtx_seq] (the
                     [origin] disambiguates sessions) *)
  ws : Mvcc.Writeset.t;
  gc_floor : int;
      (** group GC watermark the leader stamped when proposing this
          entry: every certifier truncates its {!Cert_log} to this floor
          at delivery, so truncation replicates (and replays after a
          crash) deterministically through Paxos *)
  xa : xatom option;
      (** [Some _] iff this entry is one fragment of a cross-partition
          transaction *)
}

val entry_bytes : entry -> int

type decision = Commit | Abort of abort_cause
and abort_cause = Ww_conflict | Forced
(** [Forced] aborts come from the injection knob used by the paper's §9.5
    goodput experiment. *)

val pp_decision : Format.formatter -> decision -> unit

(** A remote writeset shipped to a replica, with the artificial-conflict
    information of §5.2.1: [conflict_with] names the newest earlier version
    whose writeset intersects this one within the checked window (so the
    proxy must commit that version before submitting this writeset). *)
type remote_ws = { version : int; ws : Mvcc.Writeset.t; conflict_with : int option }

val remote_ws_bytes : remote_ws -> int

type cert_request = {
  req_id : int;
  trace_id : int;
      (** lifecycle trace id minted at [Proxy.begin_tx]; 0 when tracing is
          disabled. Stable across certify retries (same transaction). *)
  replica : string;  (** requesting replica (= message reply address) *)
  start_version : int;  (** [tx_start_version] *)
  replica_version : int;  (** replica state at request time, for trimming
                              and back-certification (§5.2.1) *)
  oldest_snapshot : int;
      (** oldest snapshot any transaction on the sending replica still
          reads (= [replica_version] when idle): the replica's GC
          watermark report, piggybacked on its normal traffic *)
  writeset : Mvcc.Writeset.t;
}

type cert_reply = {
  req_id : int;
  decision : decision;
  commit_version : int;  (** valid when [decision = Commit] *)
  gc_floor : int;
      (** group GC watermark at reply time, gossiped back so every
          replica can vacuum its version chains up to the floor *)
  remotes : remote_ws list;
      (** intervening remote writesets in [(replica_version, commit_version)],
          oldest first *)
}

type fetch_request = {
  fetch_req_id : int;
      (** matches the reply to the waiting fetch; a reply whose id is no
          longer pending (a timed-out or superseded fetch) is discarded *)
  fetch_replica : string;
  from_version : int;
  fetch_oldest_snapshot : int;  (** watermark report, as in {!cert_request} *)
}

(** Full state transfer for a replica whose [from_version] predates the
    certifier's truncation floor: the folded base rows at [snap_version]
    ([None] = key deleted below the floor). Installed before
    [fetch_remotes] (which then cover [(snap_version, certifier_version]]). *)
type snapshot = { snap_version : int; rows : (Mvcc.Key.t * Mvcc.Value.t option) list }

val snapshot_bytes : snapshot -> int

type fetch_reply = {
  fetch_req_id : int;
  fetch_remotes : remote_ws list;
  certifier_version : int;
  fetch_gc_floor : int;  (** watermark gossip, as in {!cert_reply} *)
  fetch_snapshot : snapshot option;
      (** present iff the requested prefix was truncated — the explicit
          "too old, take a snapshot" answer *)
}

(** One partition's slice of a cross-partition transaction. Every
    involved certifier receives ALL fragments (its own plus the
    siblings'): a group whose own copy of the request was lost can be
    brought into the vote by any sibling leader re-gossiping the
    fragments, which is what makes the two-round commit coordinator-less
    — no single node's survival is needed to finish the transaction. *)
type xfragment = {
  xf_part : int;  (** the partition this fragment writes *)
  xf_origin : string;
      (** proxy address hosting this fragment at the session's replica *)
  xf_start_version : int;
      (** snapshot version in partition [xf_part]'s version space *)
  xf_ws : Mvcc.Writeset.t;
}

val xfragment_bytes : xfragment -> int

(** Cross-partition certification request, sent by {!Cert_client} to the
    certifier group of each involved partition. *)
type xcert_request = {
  x_req_id : int;  (** per-proxy retry-idempotency token, like {!cert_request} *)
  x_trace_id : int;
  x_replica : string;  (** home proxy address — where the reply goes *)
  x_part : int;  (** partition of the receiving certifier group *)
  x_gtx : gtx_id;
  x_replica_version : int;  (** in the receiving partition's version space *)
  x_oldest_snapshot : int;
  x_fragments : xfragment list;  (** every fragment, home one included *)
}

(** Leader-to-leader vote gossip for a cross-partition transaction.
    [xv_fragments] rides along so a group that never saw the original
    request can still prepare and vote; [xv_echo] marks a response to a
    received vote (and is not echoed again, stopping the ping-pong). *)
type xvote = {
  xv_gtx : gtx_id;
  xv_part : int;  (** the voter's partition *)
  xv_vote : bool;
  xv_echo : bool;
  xv_fragments : xfragment list;
}

(** Input to a certifier group's replicated state machine. [Committed]
    is the classic certified-writeset entry; [Prepared] and [Decision]
    are the cross-partition commit records. A [Prepared] record carries
    no vote: the vote is computed at delivery, identically by every ring
    member, against the delivered log and pin state — which is exactly
    what makes it durable (it is re-derived unchanged by a failed-over
    leader or a crash replay). *)
type record =
  | Committed of entry
  | Prepared of { p_gtx : gtx_id; p_part : int; p_fragments : xfragment list }
  | Decision of { d_gtx : gtx_id; d_commit : bool }

val record_bytes : record -> int

(** Everything that travels on the wire. *)
type message =
  | Cert_request of cert_request
  | Cert_reply of cert_reply
  | Cert_redirect of { req_id : int; leader : string option }
  | Fetch_request of fetch_request
  | Fetch_reply of fetch_reply
  | Xcert_request of xcert_request
  | Xvote of xvote
  | Paxos of record Paxos.Node.message

val message_bytes : message -> int

(** Per-replica partition router.

    A session sits between the workload driver and a replica's proxies —
    one {!Proxy} per partition the replica hosts (partial replication).
    Reads and writes are routed to the owning partition through the
    cluster's shared {!Partitioner}; a sub-transaction is opened lazily on
    the first access to each partition, so a transaction that stays inside
    one partition runs the legacy single-proxy path unchanged.

    Commit dispatches on how many partitions accumulated writes:

    - none — read-only; every sub-transaction releases its snapshot and
      the commit succeeds locally;
    - one — the classic path: {!Proxy.commit} through that partition's
      certifier group, with zero cross-partition coordination (in a
      1-partition cluster this makes the session a transparent shim and
      keeps histories byte-identical to the pre-partitioning code);
    - several — a cross-partition transaction: the session mints a
      {!Types.gtx_id}, builds one {!Types.xfragment} per updating
      partition, and drives every fragment's {!Proxy.commit_cross}
      concurrently. The involved certifier groups settle the outcome with
      the coordinator-less prepare/vote/decide protocol (see
      {!Certifier}); the fragments commit atomically — all or none. *)

type t

val create :
  Sim.Engine.t -> addr:string -> parts:int -> proxies:(int * Proxy.t) list -> t
(** [parts] is the cluster-wide partition count (it seeds the
    {!Partitioner}, which must agree across every replica and workload);
    [proxies] maps each {e hosted} partition to its proxy — a subset of
    [0..parts-1] under partial replication. [addr] names the session in
    fiber labels and {!Types.gtx_id} origins, so it must be unique per
    replica.

    @raise Invalid_argument if [proxies] is empty. *)

val addr : t -> string

val partitions : t -> int list
(** Hosted partitions, ascending. *)

val proxy_for : t -> part:int -> Proxy.t option

(** {1 Client interface} *)

type tx

val begin_tx : t -> tx

val read : t -> tx -> Mvcc.Key.t -> Mvcc.Value.t option
(** Routed to the owning partition's sub-transaction (opened on first
    use).

    @raise Invalid_argument if the key's partition is not hosted here. *)

val write :
  t -> tx -> Mvcc.Key.t -> Mvcc.Writeset.op -> (unit, Proxy.failure) result

val abort : t -> tx -> unit

val commit : t -> tx -> (unit, Proxy.failure) result
(** Blocking. See the module description for the three commit shapes.
    A cross-partition result is atomic: [Ok] means every fragment
    committed; [Error (Cert_abort _)] means none did. [Error (Local_abort _)]
    can also mean the replica failed mid-flight (crash/pause) — the
    certified outcome is then whatever the certifier groups decided, and
    recovery replay installs it. *)

(** {1 Fault hooks} *)

val abort_inflight : t -> unit
(** Called by the replica's crash path: transactions begun before this
    call fail their commit with [Local_abort Preempted] instead of
    touching the rebuilt proxies. *)

(** {1 Statistics} *)

type stats = {
  read_only_commits : int;
  local_commits : int;  (** single-partition update commits *)
  cross_commits : int;  (** cross-partition transactions committed (counted
                            once, not per fragment) *)
  cross_aborts : int;   (** cross-partition transactions that failed *)
}

val stats : t -> stats

(** The shared simulation environment a component is constructed in.

    Every Tashkent component needs the same five handles — the event
    engine, a deterministic random stream, the message network, the metrics
    registry and the lifecycle tracer. [Env.t] bundles them so constructors
    take [env] plus their own [config] instead of five repeated labelled
    arguments ({!Replica.create}, {!Certifier.create}, {!Proxy.create}).

    Determinism: components derive their private random streams with
    {!split_rng} in creation order, so a cluster built from one seed is
    reproducible — construct components in a fixed order. *)

type t = {
  engine : Sim.Engine.t;
  rng : Sim.Rng.t;
  net : Types.message Net.Network.t;
  metrics : Obs.Registry.t;
  trace : Obs.Trace.t;
  events : Obs.Events.t;
      (** typed protocol-event stream feeding {!Obs.Monitor}; disabled
          unless the run opted in *)
}

val create :
  ?engine:Sim.Engine.t ->
  ?metrics:Obs.Registry.t ->
  ?trace:Obs.Trace.t ->
  ?events:Obs.Events.t ->
  seed:int ->
  unit ->
  t
(** Build a fresh environment: a root rng from [seed], a network on a split
    of it, a fresh engine/registry unless provided, a disabled tracer and
    event stream unless provided. Registers the [net.*] gauges and the
    [trace.dropped] gauge in the registry (so pass a given registry to at
    most one [create]). *)

val make :
  ?events:Obs.Events.t ->
  engine:Sim.Engine.t ->
  rng:Sim.Rng.t ->
  net:Types.message Net.Network.t ->
  metrics:Obs.Registry.t ->
  trace:Obs.Trace.t ->
  unit ->
  t
(** Bundle pre-built handles verbatim (no gauges registered; disabled
    event stream unless provided). *)

val engine : t -> Sim.Engine.t
val rng : t -> Sim.Rng.t
val net : t -> Types.message Net.Network.t
val metrics : t -> Obs.Registry.t
val trace : t -> Obs.Trace.t
val events : t -> Obs.Events.t

val split_rng : t -> Sim.Rng.t
(** Derive an independent random stream for one component (advances the
    env's root stream deterministically). *)

(** The certifier's ordered log of certified writesets, with the indexes
    needed for fast certification.

    Versions are dense and 1-based: entry [v] created snapshot [v].
    Certification ("writeset intersection", §6.1) asks: does any entry with
    version in [(after, now]] write a key that this writeset also writes?
    A per-key inverted index answers in O(keys in writeset).

    Back-certification for Tashkent-API (§5.2.1) asks the same question on
    an arbitrary window and caches how far back each entry has been checked
    ([certified_back_to]), exactly as the paper describes, so repeated
    responses to other replicas do not repeat the scan.

    Commutative deltas ({!Mvcc.Writeset.Add}) get a fast path: a key
    overlap where both the logged writer and the candidate wrote deltas is
    not a conflict — the increments commute and merge at apply time. Only
    a final-image write on either side makes the overlap abort. The same
    rule applies to back-certification windows: two delta writers need no
    artificial ordering between them. *)

type t

val create : unit -> t

val version : t -> int
(** Version of the newest entry (0 when empty). *)

val append : t -> Types.entry -> unit
(** @raise Invalid_argument unless [entry.version = version t + 1]. *)

val get : t -> int -> Types.entry

val conflict_in_window : t -> Mvcc.Writeset.t -> lo:int -> hi:int -> int option
(** Newest version [v] with [lo < v <= hi] whose writeset intersects the
    argument, if any. *)

val certify : t -> Mvcc.Writeset.t -> start_version:int -> int option
(** Certification test against everything after [start_version]; returns
    the newest conflicting version ([None] = pass). *)

val back_certify : t -> version:int -> down_to:int -> int option
(** Check entry [version] for conflicts against earlier entries down to
    (excluding) [down_to]; memoised per entry. Returns the newest
    conflicting version in that window. *)

val entries_between : t -> lo:int -> hi:int -> Types.entry list
(** Entries with [lo < version <= hi], oldest first. *)

val bytes_total : t -> int
(** Cumulative encoded size of all entries — the certifier log growth the
    paper reports as 56 MB/hour at 15 replicas. *)

val back_certifications : t -> int
(** How many extra windows {!back_certify} actually scanned. *)

val delta_overlaps : t -> int
(** Cumulative count of key overlaps skipped because both sides were
    commutative deltas — the certification fast path at work. *)

(** The certifier's ordered log of certified writesets, with the indexes
    needed for fast certification.

    Versions are dense and 1-based: entry [v] created snapshot [v].
    Certification ("writeset intersection", §6.1) asks: does any entry with
    version in [(after, now]] write a key that this writeset also writes?
    A per-key inverted index answers in O(keys in writeset).

    Back-certification for Tashkent-API (§5.2.1) asks the same question on
    an arbitrary window and caches how far back each entry has been checked
    ([certified_back_to]), exactly as the paper describes, so repeated
    responses to other replicas do not repeat the scan.

    Commutative deltas ({!Mvcc.Writeset.Add}) get a fast path: a key
    overlap where both the logged writer and the candidate wrote deltas is
    not a conflict — the increments commute and merge at apply time. Only
    a final-image write on either side makes the overlap abort. The same
    rule applies to back-certification windows: two delta writers need no
    artificial ordering between them.

    The log is truncatable behind the cluster GC watermark: {!truncate}
    drops the slot prefix at or below a floor, trims the per-key writer
    index to versions above it, and folds the dropped writesets into a
    materialised {e base state} at the floor — what snapshot transfers and
    consistency checks reconstruct from. Version arithmetic is unaffected:
    {!version} keeps counting globally, and live slots cover exactly
    [(floor, version]]. *)

type t

val create : unit -> t

val version : t -> int
(** Version of the newest entry (0 when empty). Counts globally — it does
    not shrink when the log is truncated. *)

val floor : t -> int
(** Newest truncated version (0 until the first {!truncate}); live entries
    are exactly [(floor, version]]. *)

val entries : t -> int
(** Number of live (untruncated) entries, [= version - floor]. *)

val append : t -> Types.entry -> unit
(** @raise Invalid_argument unless [entry.version = version t + 1]. *)

val truncate : t -> upto:int -> unit
(** Drop every entry with version [<= upto] (clamped to [version t]):
    free the slot prefix, trim the writer index, and fold the dropped
    writesets into the base state. Idempotent — a floor at or below the
    current one is a no-op. Monotone: the floor never moves backwards. *)

val get : t -> int -> Types.entry
(** @raise Invalid_argument unless [floor < v <= version] (truncated
    versions can no longer be fetched — use {!get_opt} or the base state). *)

val get_opt : t -> int -> Types.entry option
(** [Some] for live versions, [None] for truncated or future ones. *)

val base_rows : t -> (Mvcc.Key.t * Mvcc.Value.t option) list
(** Folded state at the floor for every key the truncated prefix ever
    wrote ([None] = the truncated history deleted the key). Keys never
    touched below the floor are absent: they still hold their initial
    value at the floor. This is the payload of a full snapshot transfer. *)

val base_version : t -> int
(** Version the base state is materialised at ([= floor] after a
    truncation; 0 when nothing was ever truncated). *)

val truncated_for_origin : t -> string -> int
(** How many truncated entries carried this origin — keeps the
    no-lost-writeset accounting exact after truncation. *)

val conflict_in_window : t -> Mvcc.Writeset.t -> lo:int -> hi:int -> int option
(** Newest version [v] with [lo < v <= hi] whose writeset intersects the
    argument, if any. The window is clamped to the truncation floor — the
    scan structurally cannot reach pruned history, so a caller whose
    window genuinely extends below the floor must reject the request
    itself (snapshot too old) rather than trust a [None]. *)

val certify : t -> Mvcc.Writeset.t -> start_version:int -> int option
(** Certification test against everything after [start_version]; returns
    the newest conflicting version ([None] = pass). *)

val back_certify : t -> version:int -> down_to:int -> int option
(** Check entry [version] for conflicts against earlier entries down to
    (excluding) [down_to]; memoised per entry. Returns the newest
    conflicting version in that window. *)

val entries_between : t -> lo:int -> hi:int -> Types.entry list
(** Entries with [lo < version <= hi], oldest first. Clamped to the live
    window — truncated versions are silently absent, so floor-aware
    callers must seed from {!base_rows} when [lo < floor]. *)

val bytes_total : t -> int
(** Cumulative encoded size of all entries ever appended (survives
    truncation) — the certifier log growth the paper reports as 56
    MB/hour at 15 replicas. *)

val bytes_live : t -> int
(** Encoded size of the live (untruncated) entries only — the number the
    soak harness asserts stays bounded. *)

val pruned : t -> int
(** Cumulative entries dropped by {!truncate}. *)

val back_certifications : t -> int
(** How many extra windows {!back_certify} actually scanned. *)

val delta_overlaps : t -> int
(** Cumulative count of key overlaps skipped because both sides were
    commutative deltas — the certification fast path at work. *)

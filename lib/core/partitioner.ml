type t = { parts : int }

let create ~parts =
  if parts < 1 then invalid_arg "Partitioner.create: parts must be >= 1";
  { parts }

let parts t = t.parts

(* FNV-1a (32-bit variant) over the key's table and row. Deliberately
   self-contained (not [Hashtbl.hash]) so the key -> partition map is a
   stable property of the repo, independent of compiler version — bench
   numbers and chaos seeds stay comparable across toolchains. *)
let fnv_offset = 0x811c9dc5
let fnv_prime = 0x01000193
let fnv_mask = 0xffffffff

let fnv h s =
  let h = ref h in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime land fnv_mask) s;
  !h

let hash_key (key : Mvcc.Key.t) =
  fnv (fnv fnv_offset key.Mvcc.Key.table) key.Mvcc.Key.row

let of_key t key = if t.parts = 1 then 0 else hash_key key mod t.parts

let split t ws =
  if t.parts = 1 then [ (0, ws) ]
  else begin
    let by_part = Hashtbl.create 4 in
    Mvcc.Writeset.iter_entries ws (fun key op ->
        let p = of_key t key in
        let frag =
          match Hashtbl.find_opt by_part p with
          | Some frag -> frag
          | None ->
              let frag = ref [] in
              Hashtbl.add by_part p frag;
              frag
        in
        frag := (key, op) :: !frag);
    Hashtbl.fold (fun p frag acc -> (p, Mvcc.Writeset.of_list (List.rev !frag)) :: acc)
      by_part []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  end

(** Leader-side speculative overlay: entries certified and proposed to
    Paxos but not yet delivered.

    Key-indexed so that certifying against in-flight transactions is one
    hash lookup per writeset key instead of a writeset intersection per
    overlay entry — the overlay can hold a full multi-entry Accept batch
    per round, which made the old linear scan quadratic per batch. *)

type t

val create : unit -> t
val size : t -> int

val add : t -> Types.entry -> unit
(** Versions must be added in increasing order (they are: the certifier
    assigns them densely). *)

val holds_request : t -> origin:string -> req_id:int -> bool
(** Whether an in-flight entry for this (origin, request) exists — a
    retried request whose first attempt is proposed but not yet delivered
    must be dropped, not re-certified: certifying it again would abort it
    against its own twin (and the reply it waits for arrives at
    delivery). Linear in the overlay, which holds at most a few in-flight
    batches. *)

val conflict : t -> Mvcc.Writeset.t -> start_version:int -> int option
(** Largest overlay version above [start_version] writing a key in the
    writeset, if any. Overlaps where both the in-flight writer and the
    candidate wrote commutative deltas ({!Mvcc.Writeset.Add}) are skipped,
    matching {!Cert_log}'s delta fast path. *)

val delta_overlaps : t -> int
(** Cumulative count of key overlaps skipped because both sides were
    commutative deltas. *)

val remove : t -> int -> unit
(** Drop the entry with this version: on delivery (it is now in the
    {!Cert_log}) or on proposal rollback. Unknown versions are ignored. *)

val clear : t -> unit

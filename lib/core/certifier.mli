(** The certifier: certification service + ordered durable log (§6.1, §7.3).

    A group of certifier nodes replicates the log of certified writesets
    with {!Paxos}. The elected leader serves certification requests:

    + intersect the incoming writeset against every writeset committed
      after the transaction's start version (fast, via {!Cert_log});
    + on success assign the next global version and replicate the log
      entry — every certifier appends it to its disk-backed WAL (batched
      into few fsyncs by {!Storage.Wal}), and a majority of acks commits it;
    + reply with the decision, the commit version, and the remote writesets
      the replica has not seen, each carrying the §5.2.1
      artificial-conflict annotation (computed by back-certification).

    Under partitioned certification each group owns one keyspace
    partition and the ring replicates {!Types.record}s, not bare entries.
    A cross-partition transaction runs a coordinator-less two-round
    commit among the involved groups:

    + {e prepare}: each group's leader replicates a [Prepared] record
      carrying ALL the transaction's fragments. The group's {e vote} is
      computed at delivery — a pure function of the delivered log, floor
      and pin table, hence identical on every member and re-derivable
      after any crash or failover (the vote is durable because it is
      deterministic, not because it is written down);
    + {e vote exchange}: at delivery the leader gossips its vote to the
      sibling groups' members; a yes-vote pins the fragment's keys
      (first-prepared-wins) until the decision;
    + {e decide}: once a leader holds all votes (all-yes) or any no-vote,
      it replicates a [Decision] record in its own ring; commit appends
      the local fragment — stamped with the {!Types.xatom} witness — at
      the group's next version. Every involved leader decides
      independently and identically, so no coordinator death can block
      the transaction; a periodic sweep re-gossips votes (with
      fragments) for anything left hanging.

    Durability can be disabled ([durable = false]) to reproduce the paper's
    [tashAPInoCERT] configuration: certification happens as usual but
    nothing is written to disk and replies return immediately.

    Forced aborts at a configurable rate reproduce §9.5: the request pays
    the full certification cost, then aborts. *)

type config = {
  durable : bool;
  forced_abort_rate : float;
  certify_cpu : Sim.Time.t;  (** CPU per certification request *)
  paxos : Paxos.Node.config;
  fsync_deadline : Sim.Time.t option;
      (** degraded-disk failover: while leading, a WAL flush still in
          flight past this deadline makes the leader abdicate so a
          healthy-disk acceptor can lead. [None] disables the watchdog.
          Default 250 ms — far above a healthy 6–12 ms fsync. *)
  watermark_ttl : Sim.Time.t;
      (** GC-watermark report aging: a replica's oldest-snapshot report
          older than this no longer pins the group floor, so one
          partitioned or dead replica cannot stop log truncation — it
          heals later through a full snapshot transfer. Default 10 s. *)
}

val default_config : config

type t

val create :
  Env.t ->
  id:string ->
  peers:string list ->
  ?partition:int ->
  ?directory:(int * string list) list ->
  ?config:config ->
  unit ->
  t
(** Builds the node inside [env]: its private random stream is derived with
    {!Env.split_rng}, the network endpoint [id] registers on [env]'s
    network, and the node's log disk and Paxos node are created before the
    message pump is spawned.

    [partition] (default 0) is the keyspace partition this node's group
    certifies; [directory] maps every partition to the member ids of its
    certifier group (own group included) and is the static routing table
    for cross-partition vote gossip. A 1-partition cluster passes the
    defaults and behaves exactly like the legacy single-group certifier.

    Observability: counters register under [certifier.<id>.*] in
    [env.metrics], with gauges over the WAL, Paxos batch
    stats, the log and CPU/disk utilization; an [on_reset] hook re-baselines
    the cumulative log stats and restarts the WAL/Paxos windows, mirroring
    {!reset_stats}. With a live [trace], the leader records [cert.batch]
    (one certification round, including the group-commit gate wait),
    [cert.durability] (per accepted entry, propose → majority delivery,
    carrying the requester's trace id) and [wal.fsync] spans. *)

val id : t -> string

val partition : t -> int
(** The keyspace partition this certifier's group owns. *)

val is_leader : t -> bool
val leader_hint : t -> string option
val system_version : t -> int
(** Version of the newest {e delivered} (majority-committed) entry on this
    node, in this group's version space. *)

val log : t -> Cert_log.t

val decided_version : t -> req_id:int -> int option
(** The commit version certified for [req_id], if this node ever delivered
    it. Unlike the log's slots this mapping survives {!Cert_log.truncate}
    (and is rebuilt by redelivery after a crash), so harnesses can verify
    acked commits whose log prefix was pruned behind the GC watermark. *)

val x_outcome : t -> gtx:Types.gtx_id -> int option option
(** Cross-partition outcome witness, same contract as {!decided_version}:
    [Some (Some v)] — this group's fragment committed at version [v];
    [Some None] — the transaction aborted; [None] — unknown or still in
    flight. Never pruned, rebuilt by redelivery after a crash. *)

val x_debug : t -> gtx:Types.gtx_id -> string
(** One-line dump of this node's state for a cross-partition transaction
    (outcome, or the in-flight exchange state) — for harness violation
    messages and postmortems. *)

(** {1 Fault injection} *)

val crash : ?wal_fault:Paxos.Node.wal_fault -> t -> unit
(** Crash-stop this certifier. [wal_fault] additionally leaves the node's
    Paxos WAL with a torn or corrupt tail for the recovery checksum scan
    ({!Storage.Wal.recover}) to find on {!recover}. *)

val recover : t -> unit
val is_up : t -> bool

val disk : t -> Storage.Disk.t
(** The node's log device — the handle the fault injector uses to stall or
    degrade it. *)

val disk_failovers : t -> int
(** Times the disk watchdog made this node abdicate leadership because a
    WAL flush exceeded [fsync_deadline]. Cumulative. *)

val set_forced_abort_rate : t -> float -> unit

(** {1 Statistics (meaningful on the leader)} *)

type stats = {
  requests : int;
  commits : int;
  aborts_ww : int;
  aborts_forced : int;
  fetches : int;
  log_bytes : int;
  log_fsyncs : int;
  log_records : int;
  mean_group_size : float;
  back_certifications : int;
  artificial_conflicts : int;
      (** remote writesets annotated with a conflict in some reply *)
  cert_batches : int;  (** certify-fiber scheduling rounds served *)
  mean_cert_batch : float;
      (** mean requests certified per round — grows with load *)
  accept_broadcasts : int;
  mean_accept_batch : float;
      (** mean entries per multi-entry Paxos Accept (> 1 under load) *)
  cpu_utilization : float;
  disk_utilization : float;
  disk_failovers : int;  (** abdications forced by the disk watchdog *)
  disk_fsync_stalls : int;  (** fsyncs served while a stall was injected *)
  disk_io_errors : int;  (** transient IO errors injected *)
  wal_torn_discarded : int;  (** torn records dropped by recovery scans *)
  wal_corrupt_discarded : int;
      (** corrupt records dropped by recovery scans *)
  xprepares : int;  (** cross-partition Prepared records delivered here *)
  xcommits : int;  (** cross-partition fragments committed here *)
  xaborts : int;  (** cross-partition transactions aborted here *)
}

val stats : t -> stats
(** Counts since creation or the last reset; utilizations are busy-time
    fractions over the whole run. [log_bytes] and [back_certifications] are
    windowed against the baseline captured at the last reset (the log itself
    is state and survives resets). *)

val reset_stats : t -> unit
(** Restart this certifier's measurement window: zero the counters,
    re-baseline the cumulative log stats, reset the WAL and Paxos batch
    windows. Equivalent to what an [Obs.Registry.reset] on the shared
    registry does for this node. *)

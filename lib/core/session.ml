open Sim

(* One sub-transaction per partition the client transaction has touched.
   Opened lazily on the first read/write routed to that partition, so a
   transaction that stays inside one partition costs exactly one proxy
   transaction — the legacy path. *)
type sub = { part : int; proxy : Proxy.t; ptx : Proxy.tx }

type tx = {
  mutable subs : sub list; (* most-recently-opened first *)
  born_epoch : int;
}

type t = {
  engine : Engine.t;
  addr : string;
  partitioner : Partitioner.t;
  proxies : (int * Proxy.t) list; (* hosted partitions, ascending *)
  mutable next_gtx : int;
  mutable epoch : int; (* bumped by {!abort_inflight}: commits straddling
                          a bump fail instead of touching revived state *)
  mutable c_read_only : int;
  mutable c_local : int;
  mutable c_cross : int;
  mutable c_cross_aborts : int;
}

let create engine ~addr ~parts ~proxies =
  if proxies = [] then invalid_arg "Session.create: no proxies";
  let proxies = List.sort (fun (a, _) (b, _) -> compare a b) proxies in
  {
    engine;
    addr;
    partitioner = Partitioner.create ~parts;
    proxies;
    next_gtx = 0;
    epoch = 0;
    c_read_only = 0;
    c_local = 0;
    c_cross = 0;
    c_cross_aborts = 0;
  }

let addr t = t.addr
let partitions t = List.map fst t.proxies
let proxy_for t ~part = List.assoc_opt part t.proxies

let proxy_exn t part =
  match List.assoc_opt part t.proxies with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Session %s: partition %d not hosted here" t.addr part)

let begin_tx t = { subs = []; born_epoch = t.epoch }

let sub_for t tx key =
  let part = Partitioner.of_key t.partitioner key in
  match List.find_opt (fun s -> s.part = part) tx.subs with
  | Some s -> s
  | None ->
      let proxy = proxy_exn t part in
      let s = { part; proxy; ptx = Proxy.begin_tx proxy } in
      tx.subs <- s :: tx.subs;
      s

let read t tx key =
  let s = sub_for t tx key in
  Proxy.read s.proxy s.ptx key

let write t tx key op =
  let s = sub_for t tx key in
  Proxy.write s.proxy s.ptx key op

let abort t tx =
  ignore t;
  List.iter (fun s -> Proxy.abort s.proxy s.ptx) tx.subs;
  tx.subs <- []

let fresh_gtx t =
  t.next_gtx <- t.next_gtx + 1;
  { Types.gtx_origin = t.addr; gtx_seq = t.next_gtx }

(* Commit the fragments in parallel: each sub's [commit_cross] blocks on
   its own partition's certifier group, and the groups settle the shared
   outcome among themselves (deterministic votes + independent decisions),
   so the fragment results agree — all [Ok] or all [Cert_abort] — unless a
   replica-side fault (pause/crash) failed one locally. *)
let commit_fragments t subs gtx =
  let fragments =
    List.map
      (fun s ->
        {
          Types.xf_part = s.part;
          xf_origin = Proxy.addr s.proxy;
          xf_start_version = Proxy.tx_start_version s.ptx;
          xf_ws = Proxy.tx_writeset s.ptx;
        })
      subs
    |> List.sort (fun a b -> compare a.Types.xf_part b.Types.xf_part)
  in
  let results =
    List.map
      (fun s ->
        let ivar = Ivar.create t.engine () in
        let _fib =
          Engine.spawn t.engine
            ~name:(Printf.sprintf "xcommit.%s.p%d" t.addr s.part)
            (fun () ->
              Ivar.fill ivar (Proxy.commit_cross s.proxy s.ptx ~gtx ~fragments))
        in
        ivar)
      subs
    |> List.map (fun ivar -> Ivar.read ivar)
  in
  match
    List.find_opt (function Error _ -> true | Ok () -> false) results
  with
  | Some (Error e) ->
      t.c_cross_aborts <- t.c_cross_aborts + 1;
      Error e
  | _ ->
      t.c_cross <- t.c_cross + 1;
      Ok ()

let commit t tx =
  if tx.born_epoch <> t.epoch then begin
    (* The replica crashed under this transaction: its proxies were torn
       down and rebuilt, so the sub-transactions are orphans. Fail without
       touching them. *)
    tx.subs <- [];
    Error (Proxy.Local_abort Mvcc.Db.Preempted)
  end
  else begin
    let updating, read_only =
      List.partition
        (fun s -> not (Mvcc.Writeset.is_empty (Proxy.tx_writeset s.ptx)))
        tx.subs
    in
    (* Read-only sub-transactions release their snapshots immediately:
       they hold no locks and Proxy.commit on an empty writeset is the
       read-only fast path. *)
    List.iter (fun s -> ignore (Proxy.commit s.proxy s.ptx)) read_only;
    match updating with
    | [] ->
        t.c_read_only <- t.c_read_only + 1;
        Ok ()
    | [ s ] ->
        (* Single-partition update: the legacy certification path,
           byte-identical to a partition-unaware cluster when parts = 1. *)
        let r = Proxy.commit s.proxy s.ptx in
        (match r with Ok () -> t.c_local <- t.c_local + 1 | Error _ -> ());
        r
    | subs -> commit_fragments t subs (fresh_gtx t)
  end

let abort_inflight t = t.epoch <- t.epoch + 1

type stats = {
  read_only_commits : int;
  local_commits : int;
  cross_commits : int;
  cross_aborts : int;
}

let stats t =
  {
    read_only_commits = t.c_read_only;
    local_commits = t.c_local;
    cross_commits = t.c_cross;
    cross_aborts = t.c_cross_aborts;
  }

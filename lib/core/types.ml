type mode = Base | Tashkent_mw | Tashkent_api

let mode_name = function
  | Base -> "base"
  | Tashkent_mw -> "tashkent-mw"
  | Tashkent_api -> "tashkent-api"

let pp_mode fmt mode = Format.pp_print_string fmt (mode_name mode)

type entry = { version : int; origin : string; req_id : int; ws : Mvcc.Writeset.t }

let entry_bytes e = 24 + Mvcc.Writeset.encoded_bytes e.ws

type decision = Commit | Abort of abort_cause
and abort_cause = Ww_conflict | Forced

let pp_decision fmt = function
  | Commit -> Format.pp_print_string fmt "commit"
  | Abort Ww_conflict -> Format.pp_print_string fmt "abort(ww)"
  | Abort Forced -> Format.pp_print_string fmt "abort(forced)"

type remote_ws = { version : int; ws : Mvcc.Writeset.t; conflict_with : int option }

let remote_ws_bytes r = 12 + Mvcc.Writeset.encoded_bytes r.ws

type cert_request = {
  req_id : int;
  trace_id : int;
  replica : string;
  start_version : int;
  replica_version : int;
  writeset : Mvcc.Writeset.t;
}

type cert_reply = {
  req_id : int;
  decision : decision;
  commit_version : int;
  remotes : remote_ws list;
}

type fetch_request = { fetch_req_id : int; fetch_replica : string; from_version : int }

type fetch_reply = {
  fetch_req_id : int;
  fetch_remotes : remote_ws list;
  certifier_version : int;
}

type message =
  | Cert_request of cert_request
  | Cert_reply of cert_reply
  | Cert_redirect of { req_id : int; leader : string option }
  | Fetch_request of fetch_request
  | Fetch_reply of fetch_reply
  | Paxos of entry Paxos.Node.message

let message_bytes = function
  | Cert_request r -> 48 + Mvcc.Writeset.encoded_bytes r.writeset
  | Cert_reply r -> List.fold_left (fun a rw -> a + remote_ws_bytes rw) 32 r.remotes
  | Cert_redirect _ -> 24
  | Fetch_request _ -> 28
  | Fetch_reply r -> List.fold_left (fun a rw -> a + remote_ws_bytes rw) 28 r.fetch_remotes
  | Paxos m -> Paxos.Node.message_bytes entry_bytes m

type mode = Base | Tashkent_mw | Tashkent_api

let mode_name = function
  | Base -> "base"
  | Tashkent_mw -> "tashkent-mw"
  | Tashkent_api -> "tashkent-api"

let pp_mode fmt mode = Format.pp_print_string fmt (mode_name mode)

(* Cross-partition transaction identity: minted once by the originating
   session (origin = the session's replica name, seq = a session-local
   counter), and carried unchanged through prepare, vote and decision so
   every involved certifier group agrees on which transaction it is
   resolving. *)
type gtx_id = { gtx_origin : string; gtx_seq : int }

let gtx_equal a b = a.gtx_seq = b.gtx_seq && String.equal a.gtx_origin b.gtx_origin
let pp_gtx fmt g = Format.fprintf fmt "%s/x%d" g.gtx_origin g.gtx_seq

(* Atomicity witness stamped into a committed fragment's log entry: which
   cross-partition transaction it belongs to and which partitions hold its
   sibling fragments. The chaos harness checks that no fragment ever
   commits without every sibling partition committing its own. *)
type xatom = { gtx : gtx_id; parts : int list }

type entry = {
  version : int;
  origin : string;
  req_id : int;
  ws : Mvcc.Writeset.t;
  gc_floor : int;
  xa : xatom option;
}

let entry_bytes e =
  28 + Mvcc.Writeset.encoded_bytes e.ws
  + match e.xa with None -> 0 | Some x -> 20 + (4 * List.length x.parts)

type decision = Commit | Abort of abort_cause
and abort_cause = Ww_conflict | Forced

let pp_decision fmt = function
  | Commit -> Format.pp_print_string fmt "commit"
  | Abort Ww_conflict -> Format.pp_print_string fmt "abort(ww)"
  | Abort Forced -> Format.pp_print_string fmt "abort(forced)"

type remote_ws = { version : int; ws : Mvcc.Writeset.t; conflict_with : int option }

let remote_ws_bytes r = 12 + Mvcc.Writeset.encoded_bytes r.ws

type cert_request = {
  req_id : int;
  trace_id : int;
  replica : string;
  start_version : int;
  replica_version : int;
  oldest_snapshot : int;
  writeset : Mvcc.Writeset.t;
}

type cert_reply = {
  req_id : int;
  decision : decision;
  commit_version : int;
  gc_floor : int;
  remotes : remote_ws list;
}

type fetch_request = {
  fetch_req_id : int;
  fetch_replica : string;
  from_version : int;
  fetch_oldest_snapshot : int;
}

(* A full state transfer for a replica whose needed log prefix was
   truncated: folded rows at [snap_version] for every key the truncated
   history wrote ([None] = deleted). The receiver installs these over its
   restored state, jumps to [snap_version], then applies the remotes. *)
type snapshot = { snap_version : int; rows : (Mvcc.Key.t * Mvcc.Value.t option) list }

let snapshot_bytes s =
  List.fold_left
    (fun a (key, value) ->
      a + Mvcc.Key.encoded_bytes key
      + match value with Some v -> Mvcc.Value.encoded_bytes v | None -> 0)
    8 s.rows

type fetch_reply = {
  fetch_req_id : int;
  fetch_remotes : remote_ws list;
  certifier_version : int;
  fetch_gc_floor : int;
  fetch_snapshot : snapshot option;
}

(* One partition's slice of a cross-partition transaction. Every involved
   certifier receives ALL fragments (its own plus the siblings'): a group
   whose own copy of the request was lost can be brought into the vote by
   any sibling leader re-gossiping the fragments, which is what makes the
   two-round commit coordinator-less — no single node's survival is needed
   to finish the transaction. *)
type xfragment = {
  xf_part : int;
  xf_origin : string; (* proxy address hosting this fragment at the session's replica *)
  xf_start_version : int; (* snapshot version in partition [xf_part]'s version space *)
  xf_ws : Mvcc.Writeset.t;
}

let xfragment_bytes f = 20 + Mvcc.Writeset.encoded_bytes f.xf_ws

type xcert_request = {
  x_req_id : int;
  x_trace_id : int;
  x_replica : string; (* home proxy address — where the reply goes *)
  x_part : int; (* partition of the receiving certifier group *)
  x_gtx : gtx_id;
  x_replica_version : int;
  x_oldest_snapshot : int;
  x_fragments : xfragment list;
}

(* Leader-to-leader vote gossip. [xv_fragments] rides along so a group
   that never saw the original request can still prepare and vote;
   [xv_echo] marks a response to a received vote (and is not echoed again,
   stopping the ping-pong). *)
type xvote = {
  xv_gtx : gtx_id;
  xv_part : int;
  xv_vote : bool;
  xv_echo : bool;
  xv_fragments : xfragment list;
}

(* The certifier group's replicated state machine input. [Committed] is
   the classic certified-writeset entry; [Prepared]/[Decision] are the
   cross-partition commit records. A [Prepared] record carries no vote:
   the vote is computed at delivery, identically by every ring member,
   against the delivered log + pin state — which is exactly what makes it
   durable (it can always be re-derived after a failover or a crash
   replay). *)
type record =
  | Committed of entry
  | Prepared of { p_gtx : gtx_id; p_part : int; p_fragments : xfragment list }
  | Decision of { d_gtx : gtx_id; d_commit : bool }

let record_bytes = function
  | Committed e -> 4 + entry_bytes e
  | Prepared p ->
      List.fold_left (fun a f -> a + xfragment_bytes f) 28 p.p_fragments
  | Decision _ -> 28

type message =
  | Cert_request of cert_request
  | Cert_reply of cert_reply
  | Cert_redirect of { req_id : int; leader : string option }
  | Fetch_request of fetch_request
  | Fetch_reply of fetch_reply
  | Xcert_request of xcert_request
  | Xvote of xvote
  | Paxos of record Paxos.Node.message

let message_bytes = function
  | Cert_request r -> 52 + Mvcc.Writeset.encoded_bytes r.writeset
  | Cert_reply r -> List.fold_left (fun a rw -> a + remote_ws_bytes rw) 36 r.remotes
  | Cert_redirect _ -> 24
  | Fetch_request _ -> 32
  | Fetch_reply r ->
      List.fold_left (fun a rw -> a + remote_ws_bytes rw) 32 r.fetch_remotes
      + (match r.fetch_snapshot with Some s -> snapshot_bytes s | None -> 0)
  | Xcert_request r ->
      List.fold_left (fun a f -> a + xfragment_bytes f) 64 r.x_fragments
  | Xvote v -> List.fold_left (fun a f -> a + xfragment_bytes f) 40 v.xv_fragments
  | Paxos m -> Paxos.Node.message_bytes record_bytes m

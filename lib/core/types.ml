type mode = Base | Tashkent_mw | Tashkent_api

let mode_name = function
  | Base -> "base"
  | Tashkent_mw -> "tashkent-mw"
  | Tashkent_api -> "tashkent-api"

let pp_mode fmt mode = Format.pp_print_string fmt (mode_name mode)

type entry = {
  version : int;
  origin : string;
  req_id : int;
  ws : Mvcc.Writeset.t;
  gc_floor : int;
}

let entry_bytes e = 28 + Mvcc.Writeset.encoded_bytes e.ws

type decision = Commit | Abort of abort_cause
and abort_cause = Ww_conflict | Forced

let pp_decision fmt = function
  | Commit -> Format.pp_print_string fmt "commit"
  | Abort Ww_conflict -> Format.pp_print_string fmt "abort(ww)"
  | Abort Forced -> Format.pp_print_string fmt "abort(forced)"

type remote_ws = { version : int; ws : Mvcc.Writeset.t; conflict_with : int option }

let remote_ws_bytes r = 12 + Mvcc.Writeset.encoded_bytes r.ws

type cert_request = {
  req_id : int;
  trace_id : int;
  replica : string;
  start_version : int;
  replica_version : int;
  oldest_snapshot : int;
  writeset : Mvcc.Writeset.t;
}

type cert_reply = {
  req_id : int;
  decision : decision;
  commit_version : int;
  gc_floor : int;
  remotes : remote_ws list;
}

type fetch_request = {
  fetch_req_id : int;
  fetch_replica : string;
  from_version : int;
  fetch_oldest_snapshot : int;
}

(* A full state transfer for a replica whose needed log prefix was
   truncated: folded rows at [snap_version] for every key the truncated
   history wrote ([None] = deleted). The receiver installs these over its
   restored state, jumps to [snap_version], then applies the remotes. *)
type snapshot = { snap_version : int; rows : (Mvcc.Key.t * Mvcc.Value.t option) list }

let snapshot_bytes s =
  List.fold_left
    (fun a (key, value) ->
      a + Mvcc.Key.encoded_bytes key
      + match value with Some v -> Mvcc.Value.encoded_bytes v | None -> 0)
    8 s.rows

type fetch_reply = {
  fetch_req_id : int;
  fetch_remotes : remote_ws list;
  certifier_version : int;
  fetch_gc_floor : int;
  fetch_snapshot : snapshot option;
}

type message =
  | Cert_request of cert_request
  | Cert_reply of cert_reply
  | Cert_redirect of { req_id : int; leader : string option }
  | Fetch_request of fetch_request
  | Fetch_reply of fetch_reply
  | Paxos of entry Paxos.Node.message

let message_bytes = function
  | Cert_request r -> 52 + Mvcc.Writeset.encoded_bytes r.writeset
  | Cert_reply r -> List.fold_left (fun a rw -> a + remote_ws_bytes rw) 36 r.remotes
  | Cert_redirect _ -> 24
  | Fetch_request _ -> 32
  | Fetch_reply r ->
      List.fold_left (fun a rw -> a + remote_ws_bytes rw) 32 r.fetch_remotes
      + (match r.fetch_snapshot with Some s -> snapshot_bytes s | None -> 0)
  | Paxos m -> Paxos.Node.message_bytes entry_bytes m

open Sim

type t = {
  engine : Engine.t;
  rng : Rng.t;
  net : Types.message Net.Network.t;
  metrics : Obs.Registry.t;
  trace : Obs.Trace.t;
  events : Obs.Events.t;
}

let make ?events ~engine ~rng ~net ~metrics ~trace () =
  let events = Option.value ~default:(Obs.Events.disabled ()) events in
  { engine; rng; net; metrics; trace; events }

let create ?engine ?metrics ?trace ?events ~seed () =
  let engine = match engine with Some e -> e | None -> Engine.create () in
  let metrics = match metrics with Some m -> m | None -> Obs.Registry.create () in
  let trace = Option.value ~default:(Obs.Trace.disabled ()) trace in
  let events = Option.value ~default:(Obs.Events.disabled ()) events in
  let rng = Rng.create seed in
  let net = Net.Network.create engine ~rng:(Rng.split rng) () in
  List.iter
    (fun (name, read) -> Obs.Registry.gauge metrics ("net." ^ name) read)
    [
      ("messages_sent", fun () -> float_of_int (Net.Network.messages_sent net));
      ("messages_delivered", fun () -> float_of_int (Net.Network.messages_delivered net));
      ("messages_dropped", fun () -> float_of_int (Net.Network.messages_dropped net));
    ];
  (* Span loss in the trace ring is otherwise silent: percentiles computed
     from a wrapped ring under-report without any signal. Long soaks alert
     on this gauge instead. *)
  Obs.Registry.gauge metrics "trace.dropped" (fun () ->
      float_of_int (Obs.Trace.dropped trace));
  { engine; rng; net; metrics; trace; events }

let engine t = t.engine
let rng t = t.rng
let net t = t.net
let metrics t = t.metrics
let trace t = t.trace
let events t = t.events

let split_rng t = Rng.split t.rng

(** Static hash partitioner: the cluster-wide, never-changing map from
    keys to certifier groups.

    Every component that needs to know where a key lives — the
    {!Session} routing reads and writes, {!Replica.load} filtering rows
    under partial replication, the workload generators building
    partition-local key pools — shares one [t], so the map is consistent
    by construction. The hash is a self-contained FNV-1a over the key's
    table and row (not [Hashtbl.hash]), making the assignment a stable
    property of the repo rather than of the compiler version.

    With [parts = 1] the partitioner is the identity: everything maps to
    partition 0 and {!split} returns the writeset unchanged, which is
    what keeps a 1-partition cluster byte-identical to the legacy
    single-certifier path. *)

type t

val create : parts:int -> t
(** [create ~parts] builds a partitioner over [parts] partitions,
    numbered [0 .. parts-1]. Raises [Invalid_argument] if [parts < 1]. *)

val parts : t -> int
(** Number of partitions. *)

val of_key : t -> Mvcc.Key.t -> int
(** The partition owning [key]. Pure and deterministic. *)

val split : t -> Mvcc.Writeset.t -> (int * Mvcc.Writeset.t) list
(** [split t ws] slices a writeset into per-partition fragments, sorted
    by partition id, omitting empty fragments. Operation order within
    each fragment is preserved. [split] with [parts = 1] is
    [[ (0, ws) ]]. *)

open Sim

type config = {
  durable : bool;
  forced_abort_rate : float;
  certify_cpu : Time.t;
  paxos : Paxos.Node.config;
  fsync_deadline : Time.t option;
  watermark_ttl : Time.t;
}

let default_config =
  {
    durable = true;
    forced_abort_rate = 0.;
    certify_cpu = Time.us 40;
    paxos = Paxos.Node.default_config;
    (* A healthy log fsync is 6–12 ms; a flush still in flight after this
       long means the disk has stalled and the leader should hand off. *)
    fsync_deadline = Some (Time.of_ms 250.);
    (* A replica's snapshot report older than this no longer pins the GC
       floor: a partitioned or dead replica must not stop the cluster from
       truncating, it heals later via a full snapshot transfer. *)
    watermark_ttl = Time.sec 10;
  }

type stats = {
  requests : int;
  commits : int;
  aborts_ww : int;
  aborts_forced : int;
  fetches : int;
  log_bytes : int;
  log_fsyncs : int;
  log_records : int;
  mean_group_size : float;
  back_certifications : int;
  artificial_conflicts : int;
  cert_batches : int;
  mean_cert_batch : float;
  accept_broadcasts : int;
  mean_accept_batch : float;
  cpu_utilization : float;
  disk_utilization : float;
  disk_failovers : int;
  disk_fsync_stalls : int;
  disk_io_errors : int;
  wal_torn_discarded : int;
  wal_corrupt_discarded : int;
  xprepares : int;
  xcommits : int;
  xaborts : int;
}

(* Work queued for the certify fiber. [Creq] is the classic single-
   partition request; [Xreq] a cross-partition request from a proxy (a
   reply is owed); [Xprep] an internally solicited prepare for a
   transaction learned about through vote gossip (no reply owed). *)
type task =
  | Creq of Types.cert_request
  | Xreq of Types.xcert_request
  | Xprep of Types.gtx_id * Types.xfragment list

(* Per cross-partition transaction state. Everything here is volatile and
   rebuilt by Paxos redelivery after a crash; the only durable facts are
   the Prepared / Decision records in the ring (votes being a
   deterministic function of the delivered prefix is what makes the vote
   itself durable). *)
type xstate = {
  xs_gtx : Types.gtx_id;
  mutable xs_parts : int list;  (* involved partitions, sorted *)
  mutable xs_fragments : Types.xfragment list;
  mutable xs_proposed : bool;  (* our Prepared record proposed (leader-side) *)
  mutable xs_prepared : bool;  (* our Prepared record delivered *)
  mutable xs_vote : bool option;  (* our vote, computed at delivery *)
  mutable xs_votes : (int * bool) list;  (* sibling votes received via gossip *)
  mutable xs_reply : Types.xcert_request option;  (* freshest request awaiting a reply *)
  mutable xs_decided : bool;  (* a Decision record proposed or delivered *)
  mutable xs_prepared_at : Time.t;  (* for the re-solicitation sweep *)
  mutable xs_decided_at : Time.t;  (* when the Decision was last proposed *)
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  node_id : string;
  partition : int;
  (* partition -> member ids of that partition's certifier group (own
     group included): the static routing table for vote gossip. *)
  directory : (int * string list) list;
  net : Types.message Net.Network.t;
  mailbox : Types.message Mailbox.t;
  cfg : config;
  mutable forced_abort_rate : float;
  cpu : Resource.t;
  disk : Storage.Disk.t;
  paxos_node : Types.record Paxos.Node.t;
  mutable clog : Cert_log.t;
  (* Leader-side speculative overlay: certified entries proposed to Paxos
     but not yet delivered, key-indexed (see Overlay). *)
  overlay : Overlay.t;
  cert_work : task Mailbox.t;
  pending_replies : (int, Types.cert_request) Hashtbl.t; (* version -> request *)
  decided : (int, int) Hashtbl.t; (* req_id -> version, for retry idempotency *)
  (* Cross-partition machinery. [xstates] holds in-flight transactions
     (pruned at decision); [x_outcomes] maps gtx key -> Some version
     (committed here) / None (aborted) and, like [decided], is never
     pruned — it is the retry-idempotency and durability witness for
     cross-partition commits. [pins] holds keys locked by delivered
     yes-voted Prepared records (deterministic, delivery-driven,
     identical on every ring member); [pins_spec] is the leader's
     volatile twin for proposed-but-undelivered prepares. *)
  xstates : (string, xstate) Hashtbl.t;
  x_outcomes : (string, int option) Hashtbl.t;
  pins : string Mvcc.Key.Tbl.t;
  pins_spec : string Mvcc.Key.Tbl.t;
  (* True once any Prepared/Decision record has been delivered: only then
     may delivered entries be re-stamped upward (see [on_deliver]). *)
  mutable x_seen : bool;
  (* Deliveries accumulated within one instant, flushed as one reply batch
     sharing a single log scan. *)
  mutable delivered : (Types.cert_request * int) list; (* newest first *)
  mutable flush_scheduled : bool;
  (* Round pacing: the certify fiber blocks here until the current batch
     is locally durable (or the node crashes), so the next batch forms
     while the disk works. *)
  round_gate : unit Mailbox.t;
  mutable round_waiting : bool;
  mutable was_leader : bool;
  mutable up : bool;
  (* Group GC watermark: freshest oldest-active-snapshot report per
     replica (with receipt time, for TTL aging) and the folded floor the
     leader last stamped into a proposed entry. The floor is monotone;
     truncation itself happens at delivery, from the stamp, identically on
     every certifier. *)
  snapshot_reports : (string, int * Time.t) Hashtbl.t;
  mutable gc_floor : int;
  trace : Obs.Trace.t;
  events : Obs.Events.t;
  (* Open [cert.durability] spans for accepted-but-undelivered entries,
     version -> span; mirrors [pending_replies]'s lifetime. *)
  dur_spans : (int, Obs.Trace.span) Hashtbl.t;
  (* counters *)
  c_requests : Stats.Counter.t;
  c_commits : Stats.Counter.t;
  c_aborts_ww : Stats.Counter.t;
  c_aborts_forced : Stats.Counter.t;
  c_fetches : Stats.Counter.t;
  c_artificial : Stats.Counter.t;
  c_cert_batches : Stats.Counter.t;
  c_disk_failovers : Stats.Counter.t;
  c_cert_conflicts : Stats.Counter.t;
  c_delta_fastpath : Stats.Counter.t;
  c_too_old : Stats.Counter.t;
  c_snapshot_transfers : Stats.Counter.t;
  (* Cross-partition visibility: prepares delivered, fragments committed,
     transactions aborted (each counted once per certifier). *)
  c_xprepares : Stats.Counter.t;
  c_xcommits : Stats.Counter.t;
  c_xaborts : Stats.Counter.t;
  cert_batch_sizes : Stats.Summary.t;
  (* The log and its back-certification scan counter survive reset_stats
     (they are state, not statistics), so windowed stats subtract a
     baseline captured at the last reset. *)
  mutable base_log_bytes : int;
  mutable base_back_certs : int;
}

let id t = t.node_id
let partition t = t.partition
let is_leader t = Paxos.Node.is_leader t.paxos_node
let leader_hint t = Paxos.Node.leader_hint t.paxos_node
let system_version t = Cert_log.version t.clog
let log t = t.clog

(* The decided table ([req_id -> version] for retry idempotency) is
   deliberately never pruned by log truncation and is rebuilt by Paxos
   redelivery after a crash — so it remains the durability witness for
   commits whose log slots were truncated behind the GC watermark. *)
let decided_version t ~req_id = Hashtbl.find_opt t.decided req_id

let xkey (g : Types.gtx_id) = g.gtx_origin ^ "/" ^ string_of_int g.gtx_seq

(* Same contract as [decided_version] for cross-partition transactions:
   [Some (Some v)] = fragment committed here at [v], [Some None] =
   transaction aborted, [None] = unknown/undecided. *)
let x_outcome t ~gtx = Hashtbl.find_opt t.x_outcomes (xkey gtx)

let x_debug t ~gtx =
  let gk = xkey gtx in
  match Hashtbl.find_opt t.x_outcomes gk with
  | Some (Some v) -> Printf.sprintf "%s:committed@%d" t.node_id v
  | Some None -> Printf.sprintf "%s:aborted" t.node_id
  | None -> (
      match Hashtbl.find_opt t.xstates gk with
      | None -> Printf.sprintf "%s@v%d:no-state(leader=%b,up=%b)" t.node_id
                  (Cert_log.version t.clog) (is_leader t) t.up
      | Some xs ->
          Printf.sprintf
            "%s@v%d:xs(leader=%b,up=%b,proposed=%b,prepared=%b,decided=%b,vote=%s,votes=[%s],frags=%d,reply=%b)"
            t.node_id (Cert_log.version t.clog) (is_leader t) t.up xs.xs_proposed xs.xs_prepared
            xs.xs_decided
            (match xs.xs_vote with
            | None -> "?"
            | Some true -> "y"
            | Some false -> "n")
            (String.concat ","
               (List.map
                  (fun (p, v) -> Printf.sprintf "p%d=%b" p v)
                  xs.xs_votes))
            (List.length xs.xs_fragments)
            (xs.xs_reply <> None))

let is_up t = t.up
let disk t = t.disk
let disk_failovers t = Stats.Counter.value t.c_disk_failovers
let set_forced_abort_rate t rate = t.forced_abort_rate <- rate

let send t ~dst msg =
  Net.Network.send t.net ~src:t.node_id ~dst ~size:(Types.message_bytes msg) msg

(* ------------------------------------------------------------------ *)
(* Certification *)

let next_version t = Cert_log.version t.clog + Overlay.size t.overlay + 1

let record_snapshot_report t ~replica ~oldest =
  Hashtbl.replace t.snapshot_reports replica (oldest, Engine.now t.engine)

(* Fold the freshest per-replica snapshot reports with every in-flight
   reply window into the group GC floor. Monotone, and only advanced
   when at least one report is fresh — a silent cluster keeps its floor
   rather than truncating history someone may still need. Reports older
   than [watermark_ttl] are ignored so one partitioned or dead replica
   cannot pin the floor forever; when it comes back asking for a pruned
   prefix it gets a full snapshot transfer instead. Folding the
   [replica_version] of every accepted-but-unreplied request (including
   undecided cross-partition requests) keeps the floor below every
   reply-composition window, so reply composition can never need a
   truncated entry. *)
let advance_watermark t =
  let base = max t.gc_floor (Cert_log.floor t.clog) in
  let now = Engine.now t.engine in
  let fresh = ref false in
  let candidate =
    Hashtbl.fold
      (fun _ (oldest, at) acc ->
        if Time.(Time.diff now at <= t.cfg.watermark_ttl) then begin
          fresh := true;
          min acc oldest
        end
        else acc)
      t.snapshot_reports max_int
  in
  if !fresh then begin
    let candidate =
      Hashtbl.fold
        (fun _ (req : Types.cert_request) acc -> min acc req.replica_version)
        t.pending_replies candidate
    in
    let candidate =
      List.fold_left
        (fun acc ((req : Types.cert_request), _) -> min acc req.replica_version)
        candidate t.delivered
    in
    let candidate =
      Hashtbl.fold
        (fun _ xs acc ->
          match xs.xs_reply with
          | Some (x : Types.xcert_request) -> min acc x.x_replica_version
          | None -> acc)
        t.xstates candidate
    in
    if candidate > base then t.gc_floor <- candidate else t.gc_floor <- base
  end
  else t.gc_floor <- base;
  t.gc_floor

(* Compose the remote writesets for a reply: everything the replica has not
   seen between its reported version and the commit version, each annotated
   with artificial-conflict info. The replica's own entries are included
   too: under failover a retried commit reply can overtake the reply for an
   earlier own transaction, and a reply that skipped own-origin versions
   would advance the replica past a hole it can never fill (its own pending
   commit's reply is the only other carrier). Self-contained replies keep
   every applied prefix gap-free; the proxy's staleness filter discards the
   own entries it has already installed. *)
let compose_remotes t ~replica_version ~upto =
  let entries = Cert_log.entries_between t.clog ~lo:replica_version ~hi:upto in
  List.map
    (fun (entry : Types.entry) ->
      let conflict_with =
        Cert_log.back_certify t.clog ~version:entry.version ~down_to:replica_version
      in
      (match conflict_with with
      | Some _ -> Stats.Counter.incr t.c_artificial
      | None -> ());
      { Types.version = entry.version; ws = entry.ws; conflict_with })
    entries

(* Protocol decision points announce themselves on the typed event stream
   (one branch when disabled); the identities match the log entry fields so
   the online monitors can join verdicts, acks and appends. *)
let emit_verdict t ~origin ~req_id ~committed ~version =
  Obs.Events.emit t.events
    (Obs.Events.Verdict
       { actor = t.node_id; part = t.partition; origin; req_id; committed; version })

let emit_ack t ~origin ~req_id ~version =
  Obs.Events.emit t.events
    (Obs.Events.Durable_ack
       { actor = t.node_id; part = t.partition; origin; req_id; version })

let reply_commit t ~(req : Types.cert_request) ~version =
  let remotes = compose_remotes t ~replica_version:req.replica_version ~upto:(version - 1) in
  emit_verdict t ~origin:req.replica ~req_id:req.req_id ~committed:true ~version;
  emit_ack t ~origin:req.replica ~req_id:req.req_id ~version;
  send t ~dst:req.replica
    (Types.Cert_reply
       {
         req_id = req.req_id;
         decision = Types.Commit;
         commit_version = version;
         gc_floor = Cert_log.floor t.clog;
         remotes;
       })

let reply_abort t ~(req : Types.cert_request) ~cause =
  (match cause with
  | Types.Ww_conflict ->
      Stats.Counter.incr t.c_aborts_ww;
      Stats.Counter.incr t.c_cert_conflicts
  | Types.Forced -> Stats.Counter.incr t.c_aborts_forced);
  emit_verdict t ~origin:req.replica ~req_id:req.req_id ~committed:false ~version:0;
  send t ~dst:req.replica
    (Types.Cert_reply
       {
         req_id = req.req_id;
         decision = Types.Abort cause;
         commit_version = 0;
         gc_floor = Cert_log.floor t.clog;
         remotes = [];
       })

let reply_xcommit t ~(xreq : Types.xcert_request) ~version =
  Stats.Counter.incr t.c_commits;
  let remotes =
    compose_remotes t ~replica_version:xreq.x_replica_version ~upto:(version - 1)
  in
  (* The fragment entry's identity is (xf_origin, gtx_seq); the asking
     sub-proxy IS the fragment's origin for this partition. *)
  emit_verdict t ~origin:xreq.x_replica ~req_id:xreq.x_gtx.Types.gtx_seq
    ~committed:true ~version;
  emit_ack t ~origin:xreq.x_replica ~req_id:xreq.x_gtx.Types.gtx_seq ~version;
  send t ~dst:xreq.x_replica
    (Types.Cert_reply
       {
         req_id = xreq.x_req_id;
         decision = Types.Commit;
         commit_version = version;
         gc_floor = Cert_log.floor t.clog;
         remotes;
       })

let reply_xabort t ~(xreq : Types.xcert_request) =
  Stats.Counter.incr t.c_aborts_ww;
  Stats.Counter.incr t.c_cert_conflicts;
  emit_verdict t ~origin:xreq.x_replica ~req_id:xreq.x_gtx.Types.gtx_seq
    ~committed:false ~version:0;
  send t ~dst:xreq.x_replica
    (Types.Cert_reply
       {
         req_id = xreq.x_req_id;
         decision = Types.Abort Types.Ww_conflict;
         commit_version = 0;
         gc_floor = Cert_log.floor t.clog;
         remotes = [];
       })

(* ------------------------------------------------------------------ *)
(* Cross-partition commit: prepare / vote / decide *)

let xstate t (gtx : Types.gtx_id) =
  let k = xkey gtx in
  match Hashtbl.find_opt t.xstates k with
  | Some xs -> xs
  | None ->
      let xs =
        {
          xs_gtx = gtx;
          xs_parts = [];
          xs_fragments = [];
          xs_proposed = false;
          xs_prepared = false;
          xs_vote = None;
          xs_votes = [];
          xs_reply = None;
          xs_decided = false;
          xs_prepared_at = Engine.now t.engine;
          xs_decided_at = Time.zero;
        }
      in
      Hashtbl.add t.xstates k xs;
      xs

let set_fragments xs (fragments : Types.xfragment list) =
  if xs.xs_fragments = [] && fragments <> [] then begin
    xs.xs_fragments <- fragments;
    xs.xs_parts <-
      List.sort_uniq compare (List.map (fun f -> f.Types.xf_part) fragments)
  end

let own_fragment t xs =
  List.find_opt (fun f -> f.Types.xf_part = t.partition) xs.xs_fragments

let sibling_parts t xs = List.filter (fun p -> p <> t.partition) xs.xs_parts

let pinned t ws =
  let hit = ref false in
  Mvcc.Writeset.iter_keys ws (fun key ->
      if Mvcc.Key.Tbl.mem t.pins key || Mvcc.Key.Tbl.mem t.pins_spec key then
        hit := true);
  !hit

let unpin tbl gk =
  let dead = ref [] in
  Mvcc.Key.Tbl.iter (fun key g -> if String.equal g gk then dead := key :: !dead) tbl;
  List.iter (Mvcc.Key.Tbl.remove tbl) !dead

let send_xvote t ~gtx ~vote ~echo ~fragments ~to_parts =
  List.iter
    (fun p ->
      if p <> t.partition then
        match List.assoc_opt p t.directory with
        | Some members ->
            List.iter
              (fun m ->
                send t ~dst:m
                  (Types.Xvote
                     {
                       xv_gtx = gtx;
                       xv_part = t.partition;
                       xv_vote = vote;
                       xv_echo = echo;
                       xv_fragments = fragments;
                     }))
              members
        | None -> ())
    to_parts

let broadcast_vote t xs ~echo ~to_parts =
  match xs.xs_vote with
  | Some vote ->
      send_xvote t ~gtx:xs.xs_gtx ~vote ~echo ~fragments:xs.xs_fragments ~to_parts
  | None -> ()

(* Propose the group's Decision record once the outcome is determined:
   all-yes commits, any-no aborts (no need to wait for stragglers once a
   no is in). Votes are sticky and deterministic, so every involved
   group's leader eventually proposes the SAME decision independently —
   there is no coordinator whose death can block it. *)
let maybe_decide t xs =
  if is_leader t && xs.xs_prepared && not xs.xs_decided then
    match xs.xs_vote with
    | None -> ()
    | Some own ->
        let vote_of p =
          if p = t.partition then Some own else List.assoc_opt p xs.xs_votes
        in
        let votes = List.map vote_of xs.xs_parts in
        let any_no = List.exists (fun v -> v = Some false) votes in
        let all_yes = List.for_all (fun v -> v = Some true) votes in
        if any_no || all_yes then
          if
            Paxos.Node.propose_batch t.paxos_node
              [ Types.Decision { d_gtx = xs.xs_gtx; d_commit = all_yes } ]
          then begin
            xs.xs_decided <- true;
            xs.xs_decided_at <- Engine.now t.engine
          end

(* Leader-side: put our group's Prepared record in the ring. The keys of
   our fragment go into [pins_spec] immediately so a single-partition
   request certified between propose and delivery cannot slip into the
   conflict window undetected. *)
let propose_prepare t xs =
  if (not xs.xs_proposed) && not xs.xs_prepared then
    if
      Paxos.Node.propose_batch t.paxos_node
        [
          Types.Prepared
            { p_gtx = xs.xs_gtx; p_part = t.partition; p_fragments = xs.xs_fragments };
        ]
    then begin
      xs.xs_proposed <- true;
      match own_fragment t xs with
      | Some frag ->
          Mvcc.Writeset.iter_keys frag.Types.xf_ws (fun key ->
              Mvcc.Key.Tbl.replace t.pins_spec key (xkey xs.xs_gtx))
      | None -> ()
    end

(* A cross-partition request reaching the leader: answer immediately from
   the outcome witness if already decided, otherwise (re)prepare, adopt
   the reply route, and push the vote exchange along. *)
let handle_xreq t (xreq : Types.xcert_request) =
  match Hashtbl.find_opt t.x_outcomes (xkey xreq.x_gtx) with
  | Some (Some version) -> reply_xcommit t ~xreq ~version
  | Some None -> reply_xabort t ~xreq
  | None ->
      let xs = xstate t xreq.x_gtx in
      if xs.xs_reply = None && not xs.xs_proposed then
        Stats.Counter.incr t.c_requests;
      xs.xs_reply <- Some xreq;
      set_fragments xs xreq.x_fragments;
      propose_prepare t xs;
      if xs.xs_prepared then begin
        broadcast_vote t xs ~echo:false ~to_parts:(sibling_parts t xs);
        maybe_decide t xs
      end

(* Vote gossip from a sibling partition's certifier. Votes are stashed on
   every member (not just the leader) so a failed-over leader inherits
   them; a non-echo vote is answered with our own so the exchange
   converges from either side. A vote for a transaction we never prepared
   carries the fragments — the leader solicits its own prepare from them,
   which is what un-sticks a group whose original request was lost. *)
let handle_xvote t (v : Types.xvote) =
  Obs.Events.emit t.events
    (Obs.Events.Xvote
       {
         actor = t.node_id;
         part = t.partition;
         from_part = v.xv_part;
         gtx = xkey v.xv_gtx;
         vote = v.xv_vote;
       });
  match Hashtbl.find_opt t.x_outcomes (xkey v.xv_gtx) with
  | Some outcome ->
      (* Already decided here: answer with a vote consistent with the
         global decision so the asking group converges too. *)
      if is_leader t && not v.xv_echo then
        send_xvote t ~gtx:v.xv_gtx ~vote:(outcome <> None) ~echo:true ~fragments:[]
          ~to_parts:[ v.xv_part ]
  | None ->
      let xs = xstate t v.xv_gtx in
      set_fragments xs v.xv_fragments;
      xs.xs_votes <-
        (v.xv_part, v.xv_vote) :: List.remove_assoc v.xv_part xs.xs_votes;
      if is_leader t then begin
        if (not xs.xs_prepared) && not xs.xs_proposed then begin
          if xs.xs_fragments <> [] then
            Mailbox.send t.cert_work (Xprep (xs.xs_gtx, xs.xs_fragments))
        end
        else if xs.xs_prepared && not v.xv_echo then
          broadcast_vote t xs ~echo:true ~to_parts:[ v.xv_part ];
        maybe_decide t xs
      end

(* ------------------------------------------------------------------ *)
(* Single-partition certification rounds *)

(* One scheduling round of the certify fiber: the batch is certified in
   arrival order against the log plus the overlay (which accumulates the
   batch's own accepted entries, so intra-batch ww-conflicts abort the
   later request), then the whole accepted set goes to Paxos as ONE
   multi-entry proposal: one Accept broadcast, one WAL batch per acceptor. *)
let process_cert_batch t (reqs : Types.cert_request list) =
  if not (is_leader t) then
    List.iter
      (fun (req : Types.cert_request) ->
        send t ~dst:req.replica
          (Types.Cert_redirect { req_id = req.req_id; leader = leader_hint t }))
      reqs
  else begin
    Stats.Counter.incr t.c_cert_batches;
    Stats.Summary.observe t.cert_batch_sizes (float_of_int (List.length reqs));
    let sp_batch = Obs.Trace.span t.trace ~stage:"cert.batch" ~actor:t.node_id () in
    (* One watermark fold per round; every entry accepted this round is
       stamped with it, so truncation replicates through Paxos. *)
    let floor_stamp = advance_watermark t in
    let accepted = ref [] in
    List.iter
      (fun (req : Types.cert_request) ->
        match Hashtbl.find_opt t.decided req.req_id with
        | Some version ->
            (* Retried request whose transaction already committed. *)
            reply_commit t ~req ~version
        | None when Overlay.holds_request t.overlay ~origin:req.replica ~req_id:req.req_id
          ->
            (* Retried request whose first attempt is proposed but not
               yet delivered (the client timed out faster than this
               round's fsync + quorum). Certifying it again would abort
               it against its own in-flight twin; dropping it is safe —
               the reply goes out at delivery. *)
            ()
        | None when req.start_version < Cert_log.floor t.clog ->
            (* Snapshot too old: the conflict window reaches below the
               truncation floor, where the writer index no longer exists,
               so absence of a conflict can't be proven. GSI must refuse;
               the replica refreshes (snapshot transfer if needed) and
               the client retries on a current snapshot. *)
            Stats.Counter.incr t.c_requests;
            Stats.Counter.incr t.c_too_old;
            reply_abort t ~req ~cause:Types.Ww_conflict
        | None -> (
            Stats.Counter.incr t.c_requests;
            let skips_before =
              Cert_log.delta_overlaps t.clog + Overlay.delta_overlaps t.overlay
            in
            let conflict =
              match
                Cert_log.certify t.clog req.writeset ~start_version:req.start_version
              with
              | Some v -> Some v
              | None ->
                  Overlay.conflict t.overlay req.writeset
                    ~start_version:req.start_version
            in
            (* A key pinned by an in-flight prepared cross-partition
               fragment conflicts with everything: the fragment may
               commit at any later version, so a certification window
               closing now cannot be proven conflict-free. First-
               prepared-wins; the single-partition request retries. *)
            let conflict =
              match conflict with
              | Some _ -> conflict
              | None -> if pinned t req.writeset then Some (next_version t) else None
            in
            match conflict with
            | Some _ -> reply_abort t ~req ~cause:Types.Ww_conflict
            | None ->
                if
                  Cert_log.delta_overlaps t.clog + Overlay.delta_overlaps t.overlay
                  > skips_before
                then Stats.Counter.incr t.c_delta_fastpath;
                if t.forced_abort_rate > 0. && Rng.chance t.rng t.forced_abort_rate
                then reply_abort t ~req ~cause:Types.Forced
                else begin
                  let version = next_version t in
                  let entry =
                    {
                      Types.version;
                      origin = req.replica;
                      req_id = req.req_id;
                      ws = req.writeset;
                      gc_floor = floor_stamp;
                      xa = None;
                    }
                  in
                  if t.cfg.durable then begin
                    Obs.Events.emit t.events
                      (Obs.Events.Request_admitted
                         {
                           actor = t.node_id;
                           part = t.partition;
                           origin = req.replica;
                           req_id = req.req_id;
                           replica_version = req.replica_version;
                         });
                    Overlay.add t.overlay entry;
                    Hashtbl.replace t.pending_replies version req;
                    Hashtbl.replace t.dur_spans version
                      (Obs.Trace.span t.trace ~id:req.trace_id
                         ~stage:"cert.durability" ~actor:t.node_id ());
                    accepted := entry :: !accepted
                  end
                  else begin
                    (* tashAPInoCERT: no disk write, apply and answer. *)
                    Cert_log.append t.clog entry;
                    Obs.Events.emit t.events
                      (Obs.Events.Log_append
                         {
                           actor = t.node_id;
                           part = t.partition;
                           version;
                           origin = entry.origin;
                           req_id = entry.req_id;
                           cross = false;
                         });
                    Hashtbl.replace t.decided entry.req_id version;
                    Stats.Counter.incr t.c_commits;
                    reply_commit t ~req ~version;
                    Cert_log.truncate t.clog ~upto:entry.gc_floor
                  end
                end))
      reqs;
    (match List.rev !accepted with
    | [] -> ()
    | batch ->
        if
          Paxos.Node.propose_batch t.paxos_node
            (List.map (fun e -> Types.Committed e) batch)
        then begin
          (* Group-commit pacing: hold the next round until this batch
             is locally durable. Arrivals meanwhile queue in cert_work,
             so the fsync cycle that groups the log records also sets
             the batch boundary — under load the next batch is the
             whole pile, not one request. *)
          let wal = Paxos.Node.wal t.paxos_node in
          ignore
            (Engine.spawn t.engine ~name:(t.node_id ^ ".roundsync") (fun () ->
                 let sp =
                   Obs.Trace.span t.trace ~stage:"wal.fsync" ~actor:t.node_id ()
                 in
                 Storage.Wal.sync wal;
                 Obs.Trace.finish t.trace sp;
                 Mailbox.send t.round_gate ()));
          t.round_waiting <- true;
          Mailbox.recv t.round_gate;
          t.round_waiting <- false
        end
        else
          (* Lost leadership in the meantime; drop, the proxies retry. *)
          List.iter
            (fun (e : Types.entry) ->
              Overlay.remove t.overlay e.version;
              Hashtbl.remove t.pending_replies e.version;
              Hashtbl.remove t.dur_spans e.version)
            batch);
    Obs.Trace.finish t.trace sp_batch
  end

let process_tasks t (tasks : task list) =
  Resource.use t.cpu (Time.mul t.cfg.certify_cpu (List.length tasks));
  (* A freshly elected leader re-proposes entries inherited from the
     previous term; until those are delivered its log can be missing
     majority-accepted entries, so certifying now could commit a retried
     request twice or abort it against its own twin. Hold the batch until
     the inherited prefix has applied (or leadership/liveness is lost).
     The same gate covers cross-partition prepares: an inherited Prepared
     record must deliver (and recreate its xstate) before a retried
     request could propose a duplicate. *)
  while t.up && is_leader t && not (Paxos.Node.leader_ready t.paxos_node) do
    Engine.sleep t.engine (Time.of_ms 1.)
  done;
  if t.up then begin
    let creqs = List.filter_map (function Creq r -> Some r | _ -> None) tasks in
    if creqs <> [] then process_cert_batch t creqs;
    List.iter
      (function
        | Creq _ -> ()
        | Xreq xreq ->
            if t.up then
              if not (is_leader t) then
                send t ~dst:xreq.Types.x_replica
                  (Types.Cert_redirect
                     { req_id = xreq.Types.x_req_id; leader = leader_hint t })
              else handle_xreq t xreq
        | Xprep (gtx, fragments) ->
            if t.up && is_leader t then begin
              let xs = xstate t gtx in
              set_fragments xs fragments;
              if not (Hashtbl.mem t.x_outcomes (xkey gtx)) then propose_prepare t xs
            end)
      tasks
  end

let handle_fetch t (freq : Types.fetch_request) =
  ignore
    (Engine.spawn t.engine ~name:(t.node_id ^ ".fetch") (fun () ->
         Resource.use t.cpu t.cfg.certify_cpu;
         if t.up then begin
           Stats.Counter.incr t.c_fetches;
           let floor = Cert_log.floor t.clog in
           (* A fetch from below the truncation floor cannot be served
              incrementally — those entries are gone. The well-defined
              answer is a full snapshot transfer: the folded base rows at
              the floor, then the live entries above it. *)
           let snapshot =
             if freq.from_version < floor then begin
               Stats.Counter.incr t.c_snapshot_transfers;
               Some { Types.snap_version = floor; rows = Cert_log.base_rows t.clog }
             end
             else None
           in
           let lo = if snapshot = None then freq.from_version else floor in
           let entries =
             Cert_log.entries_between t.clog ~lo ~hi:(Cert_log.version t.clog)
           in
           (* Unlike commit replies, fetches do NOT exclude the asking
              replica's own entries: a replica rebuilding after a crash
              (dump restore, or a redo that lost the un-synced WAL tail)
              replays from a version below its own committed writes and
              must get them back from the global log. The steady-state
              refresher is unaffected — it fetches from its replica
              version, which its own commits can never exceed. *)
           let remotes =
             List.map
               (fun (entry : Types.entry) ->
                 let conflict_with =
                   Cert_log.back_certify t.clog ~version:entry.version ~down_to:lo
                 in
                 { Types.version = entry.version; ws = entry.ws; conflict_with })
               entries
           in
           send t ~dst:freq.fetch_replica
             (Types.Fetch_reply
                {
                  fetch_req_id = freq.fetch_req_id;
                  fetch_remotes = remotes;
                  certifier_version = Cert_log.version t.clog;
                  fetch_gc_floor = floor;
                  fetch_snapshot = snapshot;
                })
         end))

(* ------------------------------------------------------------------ *)
(* Delivery from Paxos: the replicated state machine *)

(* Commit replies for a contiguous delivered run, composed incrementally:
   ONE entries_between scan covers the union of all reply windows, each
   reply then indexes into it. Back-certification stays memoised per log
   slot, so overlapping windows don't re-scan. *)
let send_commit_replies t (pending : (Types.cert_request * int) list) =
  let lo =
    List.fold_left
      (fun acc ((req : Types.cert_request), _) -> min acc req.replica_version)
      max_int pending
  in
  let hi = List.fold_left (fun acc (_, version) -> max acc (version - 1)) 0 pending in
  let entries = Array.of_list (Cert_log.entries_between t.clog ~lo ~hi) in
  (* entries.(i) holds version lo + 1 + i *)
  List.iter
    (fun ((req : Types.cert_request), version) ->
      let remotes = ref [] in
      (* Own-origin entries are deliberately included — see
         [compose_remotes]. *)
      for v = min (version - 1) (lo + Array.length entries) downto req.replica_version + 1
      do
        let entry = entries.(v - lo - 1) in
        let conflict_with =
          Cert_log.back_certify t.clog ~version:v ~down_to:req.replica_version
        in
        (match conflict_with with
        | Some _ -> Stats.Counter.incr t.c_artificial
        | None -> ());
        remotes := { Types.version = v; ws = entry.ws; conflict_with } :: !remotes
      done;
      emit_verdict t ~origin:req.replica ~req_id:req.req_id ~committed:true
        ~version;
      emit_ack t ~origin:req.replica ~req_id:req.req_id ~version;
      send t ~dst:req.replica
        (Types.Cert_reply
           {
             req_id = req.req_id;
             decision = Types.Commit;
             commit_version = version;
             gc_floor = Cert_log.floor t.clog;
             remotes = !remotes;
           }))
    pending

let flush_replies t =
  let pending = List.rev t.delivered in
  t.delivered <- [];
  t.flush_scheduled <- false;
  if t.up && pending <> [] then send_commit_replies t pending

let on_deliver_entry t (entry : Types.entry) =
  (* A leader taking over from a crash may find gap slots whose entries
     died un-acked with the old leader and no-op them; an inherited entry
     in a later slot still carries the version the dead leader stamped,
     now too high. Re-stamp it to the next contiguous version: every
     certifier applies in slot order so the renumbering is identical
     everywhere, and it can only shrink the window the entry was certified
     against, never grow it. The opposite direction — a proposed version
     now too LOW — can only happen when a cross-partition Decision
     delivered between propose and delivery consumed versions out of
     band; it is allowed only once such a record has been seen, so in a
     partition-free run a version regression still trips
     [Cert_log.append]'s invariant as before. *)
  let proposed = entry.Types.version in
  let expected = Cert_log.version t.clog + 1 in
  let entry =
    if proposed > expected || (proposed < expected && t.x_seen) then
      { entry with Types.version = expected }
    else entry
  in
  Cert_log.append t.clog entry;
  Obs.Events.emit t.events
    (Obs.Events.Log_append
       {
         actor = t.node_id;
         part = t.partition;
         version = entry.version;
         origin = entry.origin;
         req_id = entry.req_id;
         cross = false;
       });
  Hashtbl.replace t.decided entry.req_id entry.version;
  (* Replicated truncation: every certifier prunes from the stamp the
     leader folded at proposal time, in slot order — so the live window
     (and the base state behind it) is identical everywhere, including
     during crash-recovery redelivery. *)
  let floor_before = Cert_log.floor t.clog in
  Cert_log.truncate t.clog ~upto:entry.gc_floor;
  if Cert_log.floor t.clog > floor_before then
    Obs.Events.emit t.events
      (Obs.Events.Gc_floor
         { actor = t.node_id; part = t.partition; floor = Cert_log.floor t.clog });
  (* Speculative state is keyed by the PROPOSED version. *)
  Overlay.remove t.overlay proposed;
  (match Hashtbl.find_opt t.dur_spans proposed with
  | Some sp ->
      Hashtbl.remove t.dur_spans proposed;
      Obs.Trace.finish t.trace sp
  | None -> ());
  match Hashtbl.find_opt t.pending_replies proposed with
  | Some req when is_leader t ->
      Hashtbl.remove t.pending_replies proposed;
      Stats.Counter.incr t.c_commits;
      t.delivered <- (req, entry.version) :: t.delivered;
      if not t.flush_scheduled then begin
        t.flush_scheduled <- true;
        (* Zero delay: runs after the delivering fiber finishes this
           instant, so a whole committed batch flushes as one. *)
        Engine.schedule_after t.engine Time.zero (fun () -> flush_replies t)
      end
  | Some _ | None -> ()

(* Prepared delivery: THE vote point. The vote is a pure function of the
   delivered log, the truncation floor and the pin table — state that is
   identical on every ring member at this slot — so every member computes
   the same vote, and a crash replay or failed-over leader re-derives it
   unchanged. Yes-votes pin the fragment's keys until the decision. *)
let on_prepared t (gtx : Types.gtx_id) (fragments : Types.xfragment list) =
  let xs = xstate t gtx in
  if not xs.xs_prepared then begin
    set_fragments xs fragments;
    let vote =
      match own_fragment t xs with
      | None -> false
      | Some frag ->
          frag.Types.xf_start_version >= Cert_log.floor t.clog
          && Cert_log.certify t.clog frag.Types.xf_ws
               ~start_version:frag.Types.xf_start_version
             = None
          && not (Mvcc.Writeset.entries frag.Types.xf_ws
                  |> List.exists (fun (e : Mvcc.Writeset.entry) ->
                         Mvcc.Key.Tbl.mem t.pins e.key))
    in
    xs.xs_prepared <- true;
    xs.xs_vote <- Some vote;
    xs.xs_prepared_at <- Engine.now t.engine;
    Stats.Counter.incr t.c_xprepares;
    Obs.Events.emit t.events
      (Obs.Events.Prepared
         { actor = t.node_id; part = t.partition; gtx = xkey gtx; vote });
    let gk = xkey gtx in
    (if vote then
       match own_fragment t xs with
       | Some frag ->
           Mvcc.Writeset.iter_keys frag.Types.xf_ws (fun key ->
               Mvcc.Key.Tbl.replace t.pins key gk)
       | None -> ());
    unpin t.pins_spec gk;
    if is_leader t then begin
      broadcast_vote t xs ~echo:false ~to_parts:(sibling_parts t xs);
      maybe_decide t xs
    end
  end

(* Decision delivery: commit appends the local fragment at the next log
   version (stamped with the atomicity witness), abort just releases the
   pins. Either way the outcome is recorded in the never-pruned
   [x_outcomes] table and the in-flight state is dropped. *)
let on_decision t (gtx : Types.gtx_id) ~commit =
  let gk = xkey gtx in
  if not (Hashtbl.mem t.x_outcomes gk) then begin
    let xs = xstate t gtx in
    unpin t.pins gk;
    unpin t.pins_spec gk;
    xs.xs_decided <- true;
    Obs.Events.emit t.events
      (Obs.Events.Decision
         { actor = t.node_id; part = t.partition; gtx = gk; committed = commit });
    (if commit then begin
       let frag =
         match own_fragment t xs with
         | Some frag -> frag
         | None ->
             invalid_arg
               (Printf.sprintf "%s: Decision(commit) for %s without fragments"
                  t.node_id gk)
       in
       let version = Cert_log.version t.clog + 1 in
       let entry =
         {
           Types.version;
           origin = frag.Types.xf_origin;
           req_id = gtx.Types.gtx_seq;
           ws = frag.Types.xf_ws;
           gc_floor = Cert_log.floor t.clog;
           xa = Some { Types.gtx; parts = xs.xs_parts };
         }
       in
       Cert_log.append t.clog entry;
       Obs.Events.emit t.events
         (Obs.Events.Log_append
            {
              actor = t.node_id;
              part = t.partition;
              version;
              origin = entry.origin;
              req_id = entry.req_id;
              cross = true;
            });
       Hashtbl.replace t.x_outcomes gk (Some version);
       Stats.Counter.incr t.c_xcommits;
       if is_leader t then
         match xs.xs_reply with
         | Some xreq ->
             xs.xs_reply <- None;
             reply_xcommit t ~xreq ~version
         | None -> ()
     end
     else begin
       Hashtbl.replace t.x_outcomes gk None;
       Stats.Counter.incr t.c_xaborts;
       if is_leader t then
         match xs.xs_reply with
         | Some xreq ->
             xs.xs_reply <- None;
             reply_xabort t ~xreq
         | None -> ()
     end);
    Hashtbl.remove t.xstates gk
  end

let on_deliver t _slot (record : Types.record) =
  match record with
  | Types.Committed entry -> on_deliver_entry t entry
  | Types.Prepared p ->
      t.x_seen <- true;
      on_prepared t p.p_gtx p.p_fragments
  | Types.Decision d ->
      t.x_seen <- true;
      on_decision t d.d_gtx ~commit:d.d_commit

(* ------------------------------------------------------------------ *)
(* Wiring *)

let spawn_role_watch t =
  (* Clear speculative state when leadership is lost; outstanding requests
     will time out at the proxies and be retried at the new leader. For
     cross-partition state, only the leader-volatile parts go: proposed-
     but-undelivered prepares may be re-proposed if leadership returns,
     and the reply route re-arms from the proxy's retry. Delivered
     prepares, votes and pins are replicated state and stay. *)
  ignore
    (Engine.spawn t.engine ~name:(t.node_id ^ ".rolewatch") (fun () ->
         let rec loop () =
           Engine.sleep t.engine (Time.of_ms 5.);
           let now_leader = is_leader t in
           if t.was_leader && not now_leader then begin
             (* Speculative admissions die with leadership: the monitors'
                outstanding-request window must not outlive them. *)
             Obs.Events.emit t.events (Obs.Events.Actor_reset { actor = t.node_id });
             Overlay.clear t.overlay;
             Hashtbl.reset t.pending_replies;
             Hashtbl.reset t.dur_spans;
             Mvcc.Key.Tbl.reset t.pins_spec;
             Hashtbl.iter
               (fun gk xs ->
                 if not (Hashtbl.mem t.x_outcomes gk) then begin
                   xs.xs_reply <- None;
                   xs.xs_decided <- false;
                   if not xs.xs_prepared then xs.xs_proposed <- false
                 end)
               t.xstates
           end;
           t.was_leader <- now_leader;
           loop ()
         in
         loop ()))

(* Re-solicitation sweep: while leading, periodically re-gossip our vote
   for prepared-but-undecided transactions (carrying the full fragments,
   so a group that lost its request can still join), and prepare any
   transaction we only know from gossip. This is the liveness half of the
   coordinator-less commit: any surviving leader can finish any
   transaction whose Prepared record made it into at least one ring. *)
let spawn_xsweep t =
  ignore
    (Engine.spawn t.engine ~name:(t.node_id ^ ".xsweep") (fun () ->
         let rec loop () =
           Engine.sleep t.engine (Time.of_ms 100.);
           (if t.up && is_leader t then
              let now = Engine.now t.engine in
              Hashtbl.iter
                (fun gk xs ->
                  if not (Hashtbl.mem t.x_outcomes gk) then begin
                    (* A proposed Decision can die without a leadership
                       change (its Accept lost to the network, its slot
                       no-oped by a leadership blip between rolewatch
                       polls). Delivery is idempotent, so after a grace
                       period re-arm and propose it again. *)
                    if
                      xs.xs_decided
                      && Time.(Time.diff now xs.xs_decided_at > Time.of_ms 300.)
                    then xs.xs_decided <- false;
                    if not xs.xs_decided then
                      if xs.xs_prepared then begin
                        if Time.(Time.diff now xs.xs_prepared_at > Time.of_ms 50.)
                        then begin
                          broadcast_vote t xs ~echo:false
                            ~to_parts:(sibling_parts t xs);
                          maybe_decide t xs
                        end
                      end
                      else if (not xs.xs_proposed) && xs.xs_fragments <> [] then
                        Mailbox.send t.cert_work (Xprep (xs.xs_gtx, xs.xs_fragments))
                  end)
                t.xstates);
           loop ()
         in
         loop ()))

(* Degraded-disk failover (the disk watchdog): while this node leads, a WAL
   flush still in flight past [fsync_deadline] means the log device has
   stalled — every certified-but-unsynced batch is stuck behind it, and so
   is the whole cluster's commit path. The leader steps down (with a long
   election backoff, so a healthy-disk acceptor wins) rather than making the
   group wait out the stall; proxies retry at the new leader. *)
let spawn_disk_watch t =
  match t.cfg.fsync_deadline with
  | None -> ()
  | Some deadline ->
      let backoff = Time.scale t.cfg.paxos.Paxos.Node.election_timeout_hi 8. in
      ignore
        (Engine.spawn t.engine ~name:(t.node_id ^ ".diskwatch") (fun () ->
             let rec loop () =
               Engine.sleep t.engine (Time.div deadline 4);
               (if t.up && is_leader t then
                  match Storage.Wal.flushing_since (Paxos.Node.wal t.paxos_node) with
                  | Some started
                    when Time.(Time.diff (Engine.now t.engine) started > deadline) ->
                      Stats.Counter.incr t.c_disk_failovers;
                      Paxos.Node.abdicate t.paxos_node ~backoff
                  | Some _ | None -> ());
               loop ()
             in
             loop ()))

let create (env : Env.t) ~id:node_id ~peers ?(partition = 0) ?(directory = [])
    ?(config = default_config) () =
  let engine = env.Env.engine and net = env.Env.net in
  let metrics = env.Env.metrics and trace = env.Env.trace in
  let events = env.Env.events in
  (* Private stream drawn from the env root, in construction order. *)
  let rng = Env.split_rng env in
  let counter name = Obs.Registry.counter metrics ("certifier." ^ node_id ^ "." ^ name) in
  let mailbox = Net.Network.register net node_id in
  let disk = Storage.Disk.create engine ~rng:(Rng.split rng) ~name:(node_id ^ ".disk") () in
  let rec t =
    lazy
      {
        engine;
        rng;
        node_id;
        partition;
        directory;
        net;
        mailbox;
        cfg = config;
        forced_abort_rate = config.forced_abort_rate;
        cpu = Resource.create engine ~name:(node_id ^ ".cpu") ~capacity:1 ();
        disk;
        paxos_node =
          Paxos.Node.create engine ~rng:(Rng.split rng) ~id:node_id ~peers ~disk
            ~send:(fun ~dst msg ->
              let wrapped = Types.Paxos msg in
              Net.Network.send net ~src:node_id ~dst
                ~size:(Types.message_bytes wrapped) wrapped)
            ~on_deliver:(fun slot record -> on_deliver (Lazy.force t) slot record)
            ~config:config.paxos ();
        clog = Cert_log.create ();
        overlay = Overlay.create ();
        cert_work = Mailbox.create engine ~name:(node_id ^ ".certwork") ();
        pending_replies = Hashtbl.create 64;
        decided = Hashtbl.create 1024;
        xstates = Hashtbl.create 64;
        x_outcomes = Hashtbl.create 256;
        pins = Mvcc.Key.Tbl.create 64;
        pins_spec = Mvcc.Key.Tbl.create 64;
        x_seen = false;
        delivered = [];
        flush_scheduled = false;
        round_gate = Mailbox.create engine ~name:(node_id ^ ".roundgate") ();
        round_waiting = false;
        was_leader = false;
        up = true;
        snapshot_reports = Hashtbl.create 8;
        gc_floor = 0;
        trace;
        events;
        dur_spans = Hashtbl.create 64;
        c_requests = counter "requests";
        c_commits = counter "commits";
        c_aborts_ww = counter "aborts_ww";
        c_aborts_forced = counter "aborts_forced";
        c_fetches = counter "fetches";
        c_artificial = counter "artificial_conflicts";
        c_cert_batches = counter "cert_batches";
        c_disk_failovers = counter "disk_failovers";
        c_cert_conflicts = counter "cert.conflicts";
        c_delta_fastpath = counter "cert.delta_fastpath";
        c_too_old = counter "cert.snapshot_too_old";
        c_snapshot_transfers = counter "snapshot_transfers";
        c_xprepares = counter "xprepares";
        c_xcommits = counter "xcommits";
        c_xaborts = counter "xaborts";
        cert_batch_sizes =
          Obs.Registry.summary metrics ("certifier." ^ node_id ^ ".cert_batch_size");
        base_log_bytes = 0;
        base_back_certs = 0;
      }
  in
  let t = Lazy.force t in
  (* Gauges over state owned by sub-components (WAL, Paxos, CPU, disk, the
     log): read-only views, windowed — where windowing makes sense — by the
     on_reset hook below rather than by zeroing the owners. *)
  let g name read = Obs.Registry.gauge metrics ("certifier." ^ node_id ^ "." ^ name) read in
  let wal () = Paxos.Node.wal t.paxos_node in
  g "wal.fsyncs" (fun () -> float_of_int (Storage.Wal.sync_count (wal ())));
  g "wal.records_synced" (fun () -> float_of_int (Storage.Wal.records_synced (wal ())));
  g "wal.mean_group_size" (fun () -> Storage.Wal.mean_group_size (wal ()));
  g "paxos.accept_broadcasts" (fun () ->
      float_of_int (Paxos.Node.accept_broadcasts t.paxos_node));
  g "paxos.mean_accept_batch" (fun () -> Paxos.Node.mean_accept_batch t.paxos_node);
  g "log.bytes" (fun () ->
      float_of_int (Cert_log.bytes_total t.clog - t.base_log_bytes));
  g "log.back_certifications" (fun () ->
      float_of_int (Cert_log.back_certifications t.clog - t.base_back_certs));
  (* Truncation visibility: the live window (what memory actually holds)
     and the cumulative prune count. Never windowed — the soak harness
     asserts bounds on the raw values. *)
  g "cert_log.entries" (fun () -> float_of_int (Cert_log.entries t.clog));
  g "cert_log.bytes" (fun () -> float_of_int (Cert_log.bytes_live t.clog));
  g "cert_log.pruned" (fun () -> float_of_int (Cert_log.pruned t.clog));
  g "cert_log.floor" (fun () -> float_of_int (Cert_log.floor t.clog));
  g "cpu.utilization" (fun () -> Resource.utilization t.cpu);
  g "disk.utilization" (fun () -> Storage.Disk.utilization t.disk);
  (* Storage-fault visibility: current injected state plus cumulative fault
     and recovery-scan counters (never windowed — they are fault evidence,
     not throughput). *)
  g "disk.stalled" (fun () -> if Storage.Disk.stalled t.disk then 1. else 0.);
  g "disk.stall_extra_ms" (fun () ->
      match Storage.Disk.stall_extra t.disk with
      | None -> 0.
      | Some extra -> Time.to_ms extra);
  g "disk.degrade_factor" (fun () -> Storage.Disk.degrade_factor t.disk);
  g "disk.fsync_stalls" (fun () -> float_of_int (Storage.Disk.fsync_stalls t.disk));
  g "disk.io_errors" (fun () -> float_of_int (Storage.Disk.io_errors t.disk));
  g "disk.failovers" (fun () -> float_of_int (Stats.Counter.value t.c_disk_failovers));
  g "wal.torn_discarded" (fun () ->
      float_of_int (Storage.Wal.torn_discarded (wal ())));
  g "wal.corrupt_discarded" (fun () ->
      float_of_int (Storage.Wal.corrupt_discarded (wal ())));
  (* Registry reset = the certifier's own window reset: re-baseline the
     cumulative log stats and restart the WAL / Paxos batch windows. *)
  Obs.Registry.on_reset metrics (fun () ->
      t.base_log_bytes <- Cert_log.bytes_total t.clog;
      t.base_back_certs <- Cert_log.back_certifications t.clog;
      Paxos.Node.reset_batch_stats t.paxos_node;
      Storage.Wal.reset_stats (Paxos.Node.wal t.paxos_node));
  ignore
    (Engine.spawn engine ~name:(node_id ^ ".pump") (fun () ->
         let rec loop () =
           (match Mailbox.recv mailbox with
           | Types.Paxos msg -> if t.up then Paxos.Node.handle t.paxos_node msg
           | Types.Cert_request req ->
               if t.up then begin
                 record_snapshot_report t ~replica:req.replica
                   ~oldest:req.oldest_snapshot;
                 Mailbox.send t.cert_work (Creq req)
               end
           | Types.Xcert_request xreq ->
               if t.up then begin
                 record_snapshot_report t ~replica:xreq.x_replica
                   ~oldest:xreq.x_oldest_snapshot;
                 Mailbox.send t.cert_work (Xreq xreq)
               end
           | Types.Xvote v -> if t.up then handle_xvote t v
           | Types.Fetch_request freq ->
               if t.up then begin
                 record_snapshot_report t ~replica:freq.fetch_replica
                   ~oldest:freq.fetch_oldest_snapshot;
                 handle_fetch t freq
               end
           | Types.Cert_reply _ | Types.Cert_redirect _ | Types.Fetch_reply _ -> ());
           loop ()
         in
         loop ()));
  ignore
    (Engine.spawn engine ~name:(node_id ^ ".certify") (fun () ->
         let rec loop () =
           (* Blocks for the first request, then drains everything queued
              behind it: the batch formation rule. Under load the queue
              refills while this round's CPU + proposal happen, so batch
              size tracks the arrival rate. *)
           process_tasks t (Mailbox.recv_batch t.cert_work);
           loop ()
         in
         loop ()));
  spawn_role_watch t;
  spawn_xsweep t;
  spawn_disk_watch t;
  t

(* ------------------------------------------------------------------ *)
(* Faults *)

let crash ?wal_fault t =
  if t.up then begin
    t.up <- false;
    Obs.Events.emit t.events (Obs.Events.Node_crash { actor = t.node_id });
    (* A dead node has no network presence: drop the endpoint (so in-flight
       and future sends to it vanish, and per-link FIFO floors are purged)
       and discard anything already queued. The mailbox object survives for
       {!recover} to reattach — the pump fiber stays parked on it. *)
    Net.Network.unregister t.net t.node_id;
    Mailbox.clear t.mailbox;
    Paxos.Node.crash ?wal_fault t.paxos_node;
    (* Volatile certifier state is lost; the log is rebuilt from the durable
       Paxos log on recovery: redelivery re-appends from version 1 — and in
       the same stroke re-derives every cross-partition vote, pin and
       outcome, because those too are pure functions of the delivered
       prefix. *)
    t.clog <- Cert_log.create ();
    Overlay.clear t.overlay;
    Mailbox.clear t.cert_work;
    (* The WAL drops its durability waiters on crash, so the roundsync fiber
       never fires: release the certify fiber here instead. *)
    Mailbox.clear t.round_gate;
    if t.round_waiting then Mailbox.send t.round_gate ();
    t.delivered <- [];
    Hashtbl.reset t.pending_replies;
    Hashtbl.reset t.dur_spans;
    Hashtbl.reset t.decided;
    Hashtbl.reset t.xstates;
    Hashtbl.reset t.x_outcomes;
    Mvcc.Key.Tbl.reset t.pins;
    Mvcc.Key.Tbl.reset t.pins_spec;
    t.x_seen <- false;
    Hashtbl.reset t.snapshot_reports;
    t.gc_floor <- 0;
    t.base_log_bytes <- 0;
    t.base_back_certs <- 0
  end

let recover t =
  if not t.up then begin
    Net.Network.reattach t.net t.node_id t.mailbox;
    t.up <- true;
    Obs.Events.emit t.events (Obs.Events.Node_recover { actor = t.node_id });
    Paxos.Node.recover t.paxos_node
  end

let stats t =
  let wal = Paxos.Node.wal t.paxos_node in
  {
    requests = Stats.Counter.value t.c_requests;
    commits = Stats.Counter.value t.c_commits;
    aborts_ww = Stats.Counter.value t.c_aborts_ww;
    aborts_forced = Stats.Counter.value t.c_aborts_forced;
    fetches = Stats.Counter.value t.c_fetches;
    log_bytes = Cert_log.bytes_total t.clog - t.base_log_bytes;
    log_fsyncs = Storage.Wal.sync_count wal;
    log_records = Storage.Wal.records_synced wal;
    mean_group_size = Storage.Wal.mean_group_size wal;
    back_certifications = Cert_log.back_certifications t.clog - t.base_back_certs;
    artificial_conflicts = Stats.Counter.value t.c_artificial;
    cert_batches = Stats.Counter.value t.c_cert_batches;
    mean_cert_batch = Stats.Summary.mean t.cert_batch_sizes;
    accept_broadcasts = Paxos.Node.accept_broadcasts t.paxos_node;
    mean_accept_batch = Paxos.Node.mean_accept_batch t.paxos_node;
    cpu_utilization = Resource.utilization t.cpu;
    disk_utilization = Storage.Disk.utilization t.disk;
    disk_failovers = Stats.Counter.value t.c_disk_failovers;
    disk_fsync_stalls = Storage.Disk.fsync_stalls t.disk;
    disk_io_errors = Storage.Disk.io_errors t.disk;
    wal_torn_discarded = Storage.Wal.torn_discarded wal;
    wal_corrupt_discarded = Storage.Wal.corrupt_discarded wal;
    xprepares = Stats.Counter.value t.c_xprepares;
    xcommits = Stats.Counter.value t.c_xcommits;
    xaborts = Stats.Counter.value t.c_xaborts;
  }

let reset_stats t =
  Stats.Counter.reset t.c_requests;
  Stats.Counter.reset t.c_commits;
  Stats.Counter.reset t.c_aborts_ww;
  Stats.Counter.reset t.c_aborts_forced;
  Stats.Counter.reset t.c_fetches;
  Stats.Counter.reset t.c_artificial;
  Stats.Counter.reset t.c_cert_batches;
  Stats.Summary.reset t.cert_batch_sizes;
  (* Cumulative log state: window it by baseline instead of clearing. *)
  t.base_log_bytes <- Cert_log.bytes_total t.clog;
  t.base_back_certs <- Cert_log.back_certifications t.clog;
  Paxos.Node.reset_batch_stats t.paxos_node;
  Storage.Wal.reset_stats (Paxos.Node.wal t.paxos_node)

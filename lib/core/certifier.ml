open Sim

type config = {
  durable : bool;
  forced_abort_rate : float;
  certify_cpu : Time.t;
  paxos : Paxos.Node.config;
  fsync_deadline : Time.t option;
  watermark_ttl : Time.t;
}

let default_config =
  {
    durable = true;
    forced_abort_rate = 0.;
    certify_cpu = Time.us 40;
    paxos = Paxos.Node.default_config;
    (* A healthy log fsync is 6–12 ms; a flush still in flight after this
       long means the disk has stalled and the leader should hand off. *)
    fsync_deadline = Some (Time.of_ms 250.);
    (* A replica's snapshot report older than this no longer pins the GC
       floor: a partitioned or dead replica must not stop the cluster from
       truncating, it heals later via a full snapshot transfer. *)
    watermark_ttl = Time.sec 10;
  }

type stats = {
  requests : int;
  commits : int;
  aborts_ww : int;
  aborts_forced : int;
  fetches : int;
  log_bytes : int;
  log_fsyncs : int;
  log_records : int;
  mean_group_size : float;
  back_certifications : int;
  artificial_conflicts : int;
  cert_batches : int;
  mean_cert_batch : float;
  accept_broadcasts : int;
  mean_accept_batch : float;
  cpu_utilization : float;
  disk_utilization : float;
  disk_failovers : int;
  disk_fsync_stalls : int;
  disk_io_errors : int;
  wal_torn_discarded : int;
  wal_corrupt_discarded : int;
}

type t = {
  engine : Engine.t;
  rng : Rng.t;
  node_id : string;
  net : Types.message Net.Network.t;
  mailbox : Types.message Mailbox.t;
  cfg : config;
  mutable forced_abort_rate : float;
  cpu : Resource.t;
  disk : Storage.Disk.t;
  paxos_node : Types.entry Paxos.Node.t;
  mutable clog : Cert_log.t;
  (* Leader-side speculative overlay: certified entries proposed to Paxos
     but not yet delivered, key-indexed (see Overlay). *)
  overlay : Overlay.t;
  (* Requests queued for the certify fiber; it drains the whole queue each
     round and certifies the drained set as one batch. *)
  cert_work : Types.cert_request Mailbox.t;
  pending_replies : (int, Types.cert_request) Hashtbl.t; (* version -> request *)
  decided : (int, int) Hashtbl.t; (* req_id -> version, for retry idempotency *)
  (* Deliveries accumulated within one instant, flushed as one reply batch
     sharing a single log scan. *)
  mutable delivered : (Types.cert_request * int) list; (* newest first *)
  mutable flush_scheduled : bool;
  (* Round pacing: the certify fiber blocks here until the current batch
     is locally durable (or the node crashes), so the next batch forms
     while the disk works. *)
  round_gate : unit Mailbox.t;
  mutable round_waiting : bool;
  mutable was_leader : bool;
  mutable up : bool;
  (* Cluster GC watermark: freshest oldest-active-snapshot report per
     replica (with receipt time, for TTL aging) and the folded floor the
     leader last stamped into a proposed entry. The floor is monotone;
     truncation itself happens at delivery, from the stamp, identically on
     every certifier. *)
  snapshot_reports : (string, int * Time.t) Hashtbl.t;
  mutable gc_floor : int;
  trace : Obs.Trace.t;
  (* Open [cert.durability] spans for accepted-but-undelivered entries,
     version -> span; mirrors [pending_replies]'s lifetime. *)
  dur_spans : (int, Obs.Trace.span) Hashtbl.t;
  (* counters *)
  c_requests : Stats.Counter.t;
  c_commits : Stats.Counter.t;
  c_aborts_ww : Stats.Counter.t;
  c_aborts_forced : Stats.Counter.t;
  c_fetches : Stats.Counter.t;
  c_artificial : Stats.Counter.t;
  c_cert_batches : Stats.Counter.t;
  c_disk_failovers : Stats.Counter.t;
  (* Certification outcome visibility: [cert.conflicts] counts requests
     aborted on a real write–write overlap; [cert.delta_fastpath] counts
     requests that passed only thanks to the commutative-delta rule (at
     least one same-key overlap was skipped as delta–delta). *)
  c_cert_conflicts : Stats.Counter.t;
  c_delta_fastpath : Stats.Counter.t;
  (* Watermark visibility: requests refused because their snapshot
     predates the truncation floor, and fetches answered with a full
     snapshot transfer because the asked-for prefix was pruned. *)
  c_too_old : Stats.Counter.t;
  c_snapshot_transfers : Stats.Counter.t;
  cert_batch_sizes : Stats.Summary.t;
  (* The log and its back-certification scan counter survive reset_stats
     (they are state, not statistics), so windowed stats subtract a
     baseline captured at the last reset. *)
  mutable base_log_bytes : int;
  mutable base_back_certs : int;
}

let id t = t.node_id
let is_leader t = Paxos.Node.is_leader t.paxos_node
let leader_hint t = Paxos.Node.leader_hint t.paxos_node
let system_version t = Cert_log.version t.clog
let log t = t.clog

(* The decided table ([req_id -> version] for retry idempotency) is
   deliberately never pruned by log truncation and is rebuilt by Paxos
   redelivery after a crash — so it remains the durability witness for
   commits whose log slots were truncated behind the GC watermark. *)
let decided_version t ~req_id = Hashtbl.find_opt t.decided req_id
let is_up t = t.up
let disk t = t.disk
let disk_failovers t = Stats.Counter.value t.c_disk_failovers
let set_forced_abort_rate t rate = t.forced_abort_rate <- rate

let send t ~dst msg =
  Net.Network.send t.net ~src:t.node_id ~dst ~size:(Types.message_bytes msg) msg

(* ------------------------------------------------------------------ *)
(* Certification *)

let next_version t = Cert_log.version t.clog + Overlay.size t.overlay + 1

let record_snapshot_report t ~replica ~oldest =
  Hashtbl.replace t.snapshot_reports replica (oldest, Engine.now t.engine)

(* Fold the freshest per-replica snapshot reports with every in-flight
   reply window into the cluster GC floor. Monotone, and only advanced
   when at least one report is fresh — a silent cluster keeps its floor
   rather than truncating history someone may still need. Reports older
   than [watermark_ttl] are ignored so one partitioned or dead replica
   cannot pin the floor forever; when it comes back asking for a pruned
   prefix it gets a full snapshot transfer instead. Folding the
   [replica_version] of every accepted-but-unreplied request keeps the
   floor below every reply-composition window, so [send_commit_replies]
   can never need a truncated entry. *)
let advance_watermark t =
  let base = max t.gc_floor (Cert_log.floor t.clog) in
  let now = Engine.now t.engine in
  let fresh = ref false in
  let candidate =
    Hashtbl.fold
      (fun _ (oldest, at) acc ->
        if Time.(Time.diff now at <= t.cfg.watermark_ttl) then begin
          fresh := true;
          min acc oldest
        end
        else acc)
      t.snapshot_reports max_int
  in
  if !fresh then begin
    let candidate =
      Hashtbl.fold
        (fun _ (req : Types.cert_request) acc -> min acc req.replica_version)
        t.pending_replies candidate
    in
    let candidate =
      List.fold_left
        (fun acc ((req : Types.cert_request), _) -> min acc req.replica_version)
        candidate t.delivered
    in
    if candidate > base then t.gc_floor <- candidate else t.gc_floor <- base
  end
  else t.gc_floor <- base;
  t.gc_floor

(* Compose the remote writesets for a reply: everything the replica has not
   seen between its reported version and the commit version, each annotated
   with artificial-conflict info. The replica's own entries are included
   too: under failover a retried commit reply can overtake the reply for an
   earlier own transaction, and a reply that skipped own-origin versions
   would advance the replica past a hole it can never fill (its own pending
   commit's reply is the only other carrier). Self-contained replies keep
   every applied prefix gap-free; the proxy's staleness filter discards the
   own entries it has already installed. *)
let compose_remotes t ~(req : Types.cert_request) ~upto =
  let entries = Cert_log.entries_between t.clog ~lo:req.replica_version ~hi:upto in
  List.map
    (fun (entry : Types.entry) ->
      let conflict_with =
        Cert_log.back_certify t.clog ~version:entry.version ~down_to:req.replica_version
      in
      (match conflict_with with
      | Some _ -> Stats.Counter.incr t.c_artificial
      | None -> ());
      { Types.version = entry.version; ws = entry.ws; conflict_with })
    entries

let reply_commit t ~(req : Types.cert_request) ~version =
  let remotes = compose_remotes t ~req ~upto:(version - 1) in
  send t ~dst:req.replica
    (Types.Cert_reply
       {
         req_id = req.req_id;
         decision = Types.Commit;
         commit_version = version;
         gc_floor = Cert_log.floor t.clog;
         remotes;
       })

let reply_abort t ~(req : Types.cert_request) ~cause =
  (match cause with
  | Types.Ww_conflict ->
      Stats.Counter.incr t.c_aborts_ww;
      Stats.Counter.incr t.c_cert_conflicts
  | Types.Forced -> Stats.Counter.incr t.c_aborts_forced);
  send t ~dst:req.replica
    (Types.Cert_reply
       {
         req_id = req.req_id;
         decision = Types.Abort cause;
         commit_version = 0;
         gc_floor = Cert_log.floor t.clog;
         remotes = [];
       })

(* One scheduling round of the certify fiber: the batch is certified in
   arrival order against the log plus the overlay (which accumulates the
   batch's own accepted entries, so intra-batch ww-conflicts abort the
   later request), then the whole accepted set goes to Paxos as ONE
   multi-entry proposal: one Accept broadcast, one WAL batch per acceptor. *)
let process_batch t (reqs : Types.cert_request list) =
  Resource.use t.cpu (Time.mul t.cfg.certify_cpu (List.length reqs));
  (* A freshly elected leader re-proposes entries inherited from the
     previous term; until those are delivered its log can be missing
     majority-accepted entries, so certifying now could commit a retried
     request twice or abort it against its own twin. Hold the batch until
     the inherited prefix has applied (or leadership/liveness is lost). *)
  while t.up && is_leader t && not (Paxos.Node.leader_ready t.paxos_node) do
    Engine.sleep t.engine (Time.of_ms 1.)
  done;
  if t.up then begin
    if not (is_leader t) then
      List.iter
        (fun (req : Types.cert_request) ->
          send t ~dst:req.replica
            (Types.Cert_redirect { req_id = req.req_id; leader = leader_hint t }))
        reqs
    else begin
      Stats.Counter.incr t.c_cert_batches;
      Stats.Summary.observe t.cert_batch_sizes (float_of_int (List.length reqs));
      let sp_batch = Obs.Trace.span t.trace ~stage:"cert.batch" ~actor:t.node_id () in
      (* One watermark fold per round; every entry accepted this round is
         stamped with it, so truncation replicates through Paxos. *)
      let floor_stamp = advance_watermark t in
      let accepted = ref [] in
      List.iter
        (fun (req : Types.cert_request) ->
          match Hashtbl.find_opt t.decided req.req_id with
          | Some version ->
              (* Retried request whose transaction already committed. *)
              reply_commit t ~req ~version
          | None when Overlay.holds_request t.overlay ~origin:req.replica ~req_id:req.req_id
            ->
              (* Retried request whose first attempt is proposed but not
                 yet delivered (the client timed out faster than this
                 round's fsync + quorum). Certifying it again would abort
                 it against its own in-flight twin; dropping it is safe —
                 the reply goes out at delivery. *)
              ()
          | None when req.start_version < Cert_log.floor t.clog ->
              (* Snapshot too old: the conflict window reaches below the
                 truncation floor, where the writer index no longer exists,
                 so absence of a conflict can't be proven. GSI must refuse;
                 the replica refreshes (snapshot transfer if needed) and
                 the client retries on a current snapshot. *)
              Stats.Counter.incr t.c_requests;
              Stats.Counter.incr t.c_too_old;
              reply_abort t ~req ~cause:Types.Ww_conflict
          | None -> (
              Stats.Counter.incr t.c_requests;
              let skips_before =
                Cert_log.delta_overlaps t.clog + Overlay.delta_overlaps t.overlay
              in
              let conflict =
                match
                  Cert_log.certify t.clog req.writeset ~start_version:req.start_version
                with
                | Some v -> Some v
                | None ->
                    Overlay.conflict t.overlay req.writeset
                      ~start_version:req.start_version
              in
              match conflict with
              | Some _ -> reply_abort t ~req ~cause:Types.Ww_conflict
              | None ->
                  if
                    Cert_log.delta_overlaps t.clog + Overlay.delta_overlaps t.overlay
                    > skips_before
                  then Stats.Counter.incr t.c_delta_fastpath;
                  if t.forced_abort_rate > 0. && Rng.chance t.rng t.forced_abort_rate
                  then reply_abort t ~req ~cause:Types.Forced
                  else begin
                    let version = next_version t in
                    let entry =
                      {
                        Types.version;
                        origin = req.replica;
                        req_id = req.req_id;
                        ws = req.writeset;
                        gc_floor = floor_stamp;
                      }
                    in
                    if t.cfg.durable then begin
                      Overlay.add t.overlay entry;
                      Hashtbl.replace t.pending_replies version req;
                      Hashtbl.replace t.dur_spans version
                        (Obs.Trace.span t.trace ~id:req.trace_id
                           ~stage:"cert.durability" ~actor:t.node_id ());
                      accepted := entry :: !accepted
                    end
                    else begin
                      (* tashAPInoCERT: no disk write, apply and answer. *)
                      Cert_log.append t.clog entry;
                      Hashtbl.replace t.decided entry.req_id version;
                      Stats.Counter.incr t.c_commits;
                      reply_commit t ~req ~version;
                      Cert_log.truncate t.clog ~upto:entry.gc_floor
                    end
                  end))
        reqs;
      (match List.rev !accepted with
      | [] -> ()
      | batch ->
          if Paxos.Node.propose_batch t.paxos_node batch then begin
            (* Group-commit pacing: hold the next round until this batch
               is locally durable. Arrivals meanwhile queue in cert_work,
               so the fsync cycle that groups the log records also sets
               the batch boundary — under load the next batch is the
               whole pile, not one request. *)
            let wal = Paxos.Node.wal t.paxos_node in
            ignore
              (Engine.spawn t.engine ~name:(t.node_id ^ ".roundsync") (fun () ->
                   let sp =
                     Obs.Trace.span t.trace ~stage:"wal.fsync" ~actor:t.node_id ()
                   in
                   Storage.Wal.sync wal;
                   Obs.Trace.finish t.trace sp;
                   Mailbox.send t.round_gate ()));
            t.round_waiting <- true;
            Mailbox.recv t.round_gate;
            t.round_waiting <- false
          end
          else
            (* Lost leadership in the meantime; drop, the proxies retry. *)
            List.iter
              (fun (e : Types.entry) ->
                Overlay.remove t.overlay e.version;
                Hashtbl.remove t.pending_replies e.version;
                Hashtbl.remove t.dur_spans e.version)
              batch);
      Obs.Trace.finish t.trace sp_batch
    end
  end

let handle_fetch t (freq : Types.fetch_request) =
  ignore
    (Engine.spawn t.engine ~name:(t.node_id ^ ".fetch") (fun () ->
         Resource.use t.cpu t.cfg.certify_cpu;
         if t.up then begin
           Stats.Counter.incr t.c_fetches;
           let floor = Cert_log.floor t.clog in
           (* A fetch from below the truncation floor cannot be served
              incrementally — those entries are gone. The well-defined
              answer is a full snapshot transfer: the folded base rows at
              the floor, then the live entries above it. *)
           let snapshot =
             if freq.from_version < floor then begin
               Stats.Counter.incr t.c_snapshot_transfers;
               Some { Types.snap_version = floor; rows = Cert_log.base_rows t.clog }
             end
             else None
           in
           let lo = if snapshot = None then freq.from_version else floor in
           let entries =
             Cert_log.entries_between t.clog ~lo ~hi:(Cert_log.version t.clog)
           in
           (* Unlike commit replies, fetches do NOT exclude the asking
              replica's own entries: a replica rebuilding after a crash
              (dump restore, or a redo that lost the un-synced WAL tail)
              replays from a version below its own committed writes and
              must get them back from the global log. The steady-state
              refresher is unaffected — it fetches from its replica
              version, which its own commits can never exceed. *)
           let remotes =
             List.map
               (fun (entry : Types.entry) ->
                 let conflict_with =
                   Cert_log.back_certify t.clog ~version:entry.version ~down_to:lo
                 in
                 { Types.version = entry.version; ws = entry.ws; conflict_with })
               entries
           in
           send t ~dst:freq.fetch_replica
             (Types.Fetch_reply
                {
                  fetch_req_id = freq.fetch_req_id;
                  fetch_remotes = remotes;
                  certifier_version = Cert_log.version t.clog;
                  fetch_gc_floor = floor;
                  fetch_snapshot = snapshot;
                })
         end))

(* ------------------------------------------------------------------ *)
(* Delivery from Paxos: the replicated state machine *)

(* Commit replies for a contiguous delivered run, composed incrementally:
   ONE entries_between scan covers the union of all reply windows, each
   reply then indexes into it. Back-certification stays memoised per log
   slot, so overlapping windows don't re-scan. *)
let send_commit_replies t (pending : (Types.cert_request * int) list) =
  let lo =
    List.fold_left
      (fun acc ((req : Types.cert_request), _) -> min acc req.replica_version)
      max_int pending
  in
  let hi = List.fold_left (fun acc (_, version) -> max acc (version - 1)) 0 pending in
  let entries = Array.of_list (Cert_log.entries_between t.clog ~lo ~hi) in
  (* entries.(i) holds version lo + 1 + i *)
  List.iter
    (fun ((req : Types.cert_request), version) ->
      let remotes = ref [] in
      (* Own-origin entries are deliberately included — see
         [compose_remotes]. *)
      for v = min (version - 1) (lo + Array.length entries) downto req.replica_version + 1
      do
        let entry = entries.(v - lo - 1) in
        let conflict_with =
          Cert_log.back_certify t.clog ~version:v ~down_to:req.replica_version
        in
        (match conflict_with with
        | Some _ -> Stats.Counter.incr t.c_artificial
        | None -> ());
        remotes := { Types.version = v; ws = entry.ws; conflict_with } :: !remotes
      done;
      send t ~dst:req.replica
        (Types.Cert_reply
           {
             req_id = req.req_id;
             decision = Types.Commit;
             commit_version = version;
             gc_floor = Cert_log.floor t.clog;
             remotes = !remotes;
           }))
    pending

let flush_replies t =
  let pending = List.rev t.delivered in
  t.delivered <- [];
  t.flush_scheduled <- false;
  if t.up && pending <> [] then send_commit_replies t pending

let on_deliver t _slot (entry : Types.entry) =
  (* A leader taking over from a crash may find gap slots whose entries
     died un-acked with the old leader and no-op them; an inherited entry
     in a later slot still carries the version the dead leader stamped,
     now too high. Re-stamp it to the next contiguous version: every
     certifier applies in slot order so the renumbering is identical
     everywhere, and it can only shrink the window the entry was certified
     against, never grow it. Entries at or below the expected version are
     left alone — a duplicate or regression there is a real invariant
     violation that [Cert_log.append] must still reject. *)
  let entry =
    let expected = Cert_log.version t.clog + 1 in
    if entry.Types.version > expected then { entry with Types.version = expected }
    else entry
  in
  Cert_log.append t.clog entry;
  Hashtbl.replace t.decided entry.req_id entry.version;
  (* Replicated truncation: every certifier prunes from the stamp the
     leader folded at proposal time, in slot order — so the live window
     (and the base state behind it) is identical everywhere, including
     during crash-recovery redelivery. *)
  Cert_log.truncate t.clog ~upto:entry.gc_floor;
  Overlay.remove t.overlay entry.version;
  (match Hashtbl.find_opt t.dur_spans entry.version with
  | Some sp ->
      Hashtbl.remove t.dur_spans entry.version;
      Obs.Trace.finish t.trace sp
  | None -> ());
  match Hashtbl.find_opt t.pending_replies entry.version with
  | Some req when is_leader t ->
      Hashtbl.remove t.pending_replies entry.version;
      Stats.Counter.incr t.c_commits;
      t.delivered <- (req, entry.version) :: t.delivered;
      if not t.flush_scheduled then begin
        t.flush_scheduled <- true;
        (* Zero delay: runs after the delivering fiber finishes this
           instant, so a whole committed batch flushes as one. *)
        Engine.schedule_after t.engine Time.zero (fun () -> flush_replies t)
      end
  | Some _ | None -> ()

(* ------------------------------------------------------------------ *)
(* Wiring *)

let spawn_role_watch t =
  (* Clear speculative state when leadership is lost; outstanding requests
     will time out at the proxies and be retried at the new leader. *)
  ignore
    (Engine.spawn t.engine ~name:(t.node_id ^ ".rolewatch") (fun () ->
         let rec loop () =
           Engine.sleep t.engine (Time.of_ms 5.);
           let now_leader = is_leader t in
           if t.was_leader && not now_leader then begin
             Overlay.clear t.overlay;
             Hashtbl.reset t.pending_replies;
             Hashtbl.reset t.dur_spans
           end;
           t.was_leader <- now_leader;
           loop ()
         in
         loop ()))

(* Degraded-disk failover (the disk watchdog): while this node leads, a WAL
   flush still in flight past [fsync_deadline] means the log device has
   stalled — every certified-but-unsynced batch is stuck behind it, and so
   is the whole cluster's commit path. The leader steps down (with a long
   election backoff, so a healthy-disk acceptor wins) rather than making the
   group wait out the stall; proxies retry at the new leader. *)
let spawn_disk_watch t =
  match t.cfg.fsync_deadline with
  | None -> ()
  | Some deadline ->
      let backoff = Time.scale t.cfg.paxos.Paxos.Node.election_timeout_hi 8. in
      ignore
        (Engine.spawn t.engine ~name:(t.node_id ^ ".diskwatch") (fun () ->
             let rec loop () =
               Engine.sleep t.engine (Time.div deadline 4);
               (if t.up && is_leader t then
                  match Storage.Wal.flushing_since (Paxos.Node.wal t.paxos_node) with
                  | Some started
                    when Time.(Time.diff (Engine.now t.engine) started > deadline) ->
                      Stats.Counter.incr t.c_disk_failovers;
                      Paxos.Node.abdicate t.paxos_node ~backoff
                  | Some _ | None -> ());
               loop ()
             in
             loop ()))

let create (env : Env.t) ~id:node_id ~peers ?(config = default_config) () =
  let engine = env.Env.engine and net = env.Env.net in
  let metrics = env.Env.metrics and trace = env.Env.trace in
  (* Private stream drawn from the env root, in construction order. *)
  let rng = Env.split_rng env in
  let counter name = Obs.Registry.counter metrics ("certifier." ^ node_id ^ "." ^ name) in
  let mailbox = Net.Network.register net node_id in
  let disk = Storage.Disk.create engine ~rng:(Rng.split rng) ~name:(node_id ^ ".disk") () in
  let rec t =
    lazy
      {
        engine;
        rng;
        node_id;
        net;
        mailbox;
        cfg = config;
        forced_abort_rate = config.forced_abort_rate;
        cpu = Resource.create engine ~name:(node_id ^ ".cpu") ~capacity:1 ();
        disk;
        paxos_node =
          Paxos.Node.create engine ~rng:(Rng.split rng) ~id:node_id ~peers ~disk
            ~send:(fun ~dst msg ->
              let wrapped = Types.Paxos msg in
              Net.Network.send net ~src:node_id ~dst
                ~size:(Types.message_bytes wrapped) wrapped)
            ~on_deliver:(fun slot entry -> on_deliver (Lazy.force t) slot entry)
            ~config:config.paxos ();
        clog = Cert_log.create ();
        overlay = Overlay.create ();
        cert_work = Mailbox.create engine ~name:(node_id ^ ".certwork") ();
        pending_replies = Hashtbl.create 64;
        decided = Hashtbl.create 1024;
        delivered = [];
        flush_scheduled = false;
        round_gate = Mailbox.create engine ~name:(node_id ^ ".roundgate") ();
        round_waiting = false;
        was_leader = false;
        up = true;
        snapshot_reports = Hashtbl.create 8;
        gc_floor = 0;
        trace;
        dur_spans = Hashtbl.create 64;
        c_requests = counter "requests";
        c_commits = counter "commits";
        c_aborts_ww = counter "aborts_ww";
        c_aborts_forced = counter "aborts_forced";
        c_fetches = counter "fetches";
        c_artificial = counter "artificial_conflicts";
        c_cert_batches = counter "cert_batches";
        c_disk_failovers = counter "disk_failovers";
        c_cert_conflicts = counter "cert.conflicts";
        c_delta_fastpath = counter "cert.delta_fastpath";
        c_too_old = counter "cert.snapshot_too_old";
        c_snapshot_transfers = counter "snapshot_transfers";
        cert_batch_sizes =
          Obs.Registry.summary metrics ("certifier." ^ node_id ^ ".cert_batch_size");
        base_log_bytes = 0;
        base_back_certs = 0;
      }
  in
  let t = Lazy.force t in
  (* Gauges over state owned by sub-components (WAL, Paxos, CPU, disk, the
     log): read-only views, windowed — where windowing makes sense — by the
     on_reset hook below rather than by zeroing the owners. *)
  let g name read = Obs.Registry.gauge metrics ("certifier." ^ node_id ^ "." ^ name) read in
  let wal () = Paxos.Node.wal t.paxos_node in
  g "wal.fsyncs" (fun () -> float_of_int (Storage.Wal.sync_count (wal ())));
  g "wal.records_synced" (fun () -> float_of_int (Storage.Wal.records_synced (wal ())));
  g "wal.mean_group_size" (fun () -> Storage.Wal.mean_group_size (wal ()));
  g "paxos.accept_broadcasts" (fun () ->
      float_of_int (Paxos.Node.accept_broadcasts t.paxos_node));
  g "paxos.mean_accept_batch" (fun () -> Paxos.Node.mean_accept_batch t.paxos_node);
  g "log.bytes" (fun () ->
      float_of_int (Cert_log.bytes_total t.clog - t.base_log_bytes));
  g "log.back_certifications" (fun () ->
      float_of_int (Cert_log.back_certifications t.clog - t.base_back_certs));
  (* Truncation visibility: the live window (what memory actually holds)
     and the cumulative prune count. Never windowed — the soak harness
     asserts bounds on the raw values. *)
  g "cert_log.entries" (fun () -> float_of_int (Cert_log.entries t.clog));
  g "cert_log.bytes" (fun () -> float_of_int (Cert_log.bytes_live t.clog));
  g "cert_log.pruned" (fun () -> float_of_int (Cert_log.pruned t.clog));
  g "cert_log.floor" (fun () -> float_of_int (Cert_log.floor t.clog));
  g "cpu.utilization" (fun () -> Resource.utilization t.cpu);
  g "disk.utilization" (fun () -> Storage.Disk.utilization t.disk);
  (* Storage-fault visibility: current injected state plus cumulative fault
     and recovery-scan counters (never windowed — they are fault evidence,
     not throughput). *)
  g "disk.stalled" (fun () -> if Storage.Disk.stalled t.disk then 1. else 0.);
  g "disk.stall_extra_ms" (fun () ->
      match Storage.Disk.stall_extra t.disk with
      | None -> 0.
      | Some extra -> Time.to_ms extra);
  g "disk.degrade_factor" (fun () -> Storage.Disk.degrade_factor t.disk);
  g "disk.fsync_stalls" (fun () -> float_of_int (Storage.Disk.fsync_stalls t.disk));
  g "disk.io_errors" (fun () -> float_of_int (Storage.Disk.io_errors t.disk));
  g "disk.failovers" (fun () -> float_of_int (Stats.Counter.value t.c_disk_failovers));
  g "wal.torn_discarded" (fun () ->
      float_of_int (Storage.Wal.torn_discarded (wal ())));
  g "wal.corrupt_discarded" (fun () ->
      float_of_int (Storage.Wal.corrupt_discarded (wal ())));
  (* Registry reset = the certifier's own window reset: re-baseline the
     cumulative log stats and restart the WAL / Paxos batch windows. *)
  Obs.Registry.on_reset metrics (fun () ->
      t.base_log_bytes <- Cert_log.bytes_total t.clog;
      t.base_back_certs <- Cert_log.back_certifications t.clog;
      Paxos.Node.reset_batch_stats t.paxos_node;
      Storage.Wal.reset_stats (Paxos.Node.wal t.paxos_node));
  ignore
    (Engine.spawn engine ~name:(node_id ^ ".pump") (fun () ->
         let rec loop () =
           (match Mailbox.recv mailbox with
           | Types.Paxos msg -> if t.up then Paxos.Node.handle t.paxos_node msg
           | Types.Cert_request req ->
               if t.up then begin
                 record_snapshot_report t ~replica:req.replica
                   ~oldest:req.oldest_snapshot;
                 Mailbox.send t.cert_work req
               end
           | Types.Fetch_request freq ->
               if t.up then begin
                 record_snapshot_report t ~replica:freq.fetch_replica
                   ~oldest:freq.fetch_oldest_snapshot;
                 handle_fetch t freq
               end
           | Types.Cert_reply _ | Types.Cert_redirect _ | Types.Fetch_reply _ -> ());
           loop ()
         in
         loop ()));
  ignore
    (Engine.spawn engine ~name:(node_id ^ ".certify") (fun () ->
         let rec loop () =
           (* Blocks for the first request, then drains everything queued
              behind it: the batch formation rule. Under load the queue
              refills while this round's CPU + proposal happen, so batch
              size tracks the arrival rate. *)
           process_batch t (Mailbox.recv_batch t.cert_work);
           loop ()
         in
         loop ()));
  spawn_role_watch t;
  spawn_disk_watch t;
  t

(* ------------------------------------------------------------------ *)
(* Faults *)

let crash ?wal_fault t =
  if t.up then begin
    t.up <- false;
    (* A dead node has no network presence: drop the endpoint (so in-flight
       and future sends to it vanish, and per-link FIFO floors are purged)
       and discard anything already queued. The mailbox object survives for
       {!recover} to reattach — the pump fiber stays parked on it. *)
    Net.Network.unregister t.net t.node_id;
    Mailbox.clear t.mailbox;
    Paxos.Node.crash ?wal_fault t.paxos_node;
    (* Volatile certifier state is lost; the log is rebuilt from the durable
       Paxos log on recovery: redelivery re-appends from version 1. *)
    t.clog <- Cert_log.create ();
    Overlay.clear t.overlay;
    Mailbox.clear t.cert_work;
    (* The WAL drops its durability waiters on crash, so the roundsync fiber
       never fires: release the certify fiber here instead. *)
    Mailbox.clear t.round_gate;
    if t.round_waiting then Mailbox.send t.round_gate ();
    t.delivered <- [];
    Hashtbl.reset t.pending_replies;
    Hashtbl.reset t.dur_spans;
    Hashtbl.reset t.decided;
    Hashtbl.reset t.snapshot_reports;
    t.gc_floor <- 0;
    t.base_log_bytes <- 0;
    t.base_back_certs <- 0
  end

let recover t =
  if not t.up then begin
    Net.Network.reattach t.net t.node_id t.mailbox;
    t.up <- true;
    Paxos.Node.recover t.paxos_node
  end

let stats t =
  let wal = Paxos.Node.wal t.paxos_node in
  {
    requests = Stats.Counter.value t.c_requests;
    commits = Stats.Counter.value t.c_commits;
    aborts_ww = Stats.Counter.value t.c_aborts_ww;
    aborts_forced = Stats.Counter.value t.c_aborts_forced;
    fetches = Stats.Counter.value t.c_fetches;
    log_bytes = Cert_log.bytes_total t.clog - t.base_log_bytes;
    log_fsyncs = Storage.Wal.sync_count wal;
    log_records = Storage.Wal.records_synced wal;
    mean_group_size = Storage.Wal.mean_group_size wal;
    back_certifications = Cert_log.back_certifications t.clog - t.base_back_certs;
    artificial_conflicts = Stats.Counter.value t.c_artificial;
    cert_batches = Stats.Counter.value t.c_cert_batches;
    mean_cert_batch = Stats.Summary.mean t.cert_batch_sizes;
    accept_broadcasts = Paxos.Node.accept_broadcasts t.paxos_node;
    mean_accept_batch = Paxos.Node.mean_accept_batch t.paxos_node;
    cpu_utilization = Resource.utilization t.cpu;
    disk_utilization = Storage.Disk.utilization t.disk;
    disk_failovers = Stats.Counter.value t.c_disk_failovers;
    disk_fsync_stalls = Storage.Disk.fsync_stalls t.disk;
    disk_io_errors = Storage.Disk.io_errors t.disk;
    wal_torn_discarded = Storage.Wal.torn_discarded wal;
    wal_corrupt_discarded = Storage.Wal.corrupt_discarded wal;
  }

let reset_stats t =
  Stats.Counter.reset t.c_requests;
  Stats.Counter.reset t.c_commits;
  Stats.Counter.reset t.c_aborts_ww;
  Stats.Counter.reset t.c_aborts_forced;
  Stats.Counter.reset t.c_fetches;
  Stats.Counter.reset t.c_artificial;
  Stats.Counter.reset t.c_cert_batches;
  Stats.Summary.reset t.cert_batch_sizes;
  (* Cumulative log state: window it by baseline instead of clearing. *)
  t.base_log_bytes <- Cert_log.bytes_total t.clog;
  t.base_back_certs <- Cert_log.back_certifications t.clog;
  Paxos.Node.reset_batch_stats t.paxos_node;
  Storage.Wal.reset_stats (Paxos.Node.wal t.paxos_node)

open Sim

type config = {
  latency_lo : Time.t;
  latency_hi : Time.t;
  bandwidth_bytes_per_sec : float;
}

let default_lan =
  {
    latency_lo = Time.us 40;
    latency_hi = Time.us 80;
    bandwidth_bytes_per_sec = 125_000_000.; (* 1 Gb/s *)
  }

type verdict = Pass | Drop | Delay of Time.t

type 'a t = {
  engine : Engine.t;
  rng : Rng.t;
  config : config;
  endpoints : (string, 'a Mailbox.t) Hashtbl.t;
  last_delivery : (string * string, Time.t) Hashtbl.t;
  partitions : (string * string, unit) Hashtbl.t;
  link_extra : (string * string, Time.t) Hashtbl.t;
  mutable drop_rate : float;
  mutable tap : (src:string -> dst:string -> 'a -> verdict) option;
  sent : Stats.Counter.t;
  delivered : Stats.Counter.t;
  dropped : Stats.Counter.t;
}

let create engine ~rng ?(config = default_lan) () =
  {
    engine;
    rng;
    config;
    endpoints = Hashtbl.create 32;
    last_delivery = Hashtbl.create 64;
    partitions = Hashtbl.create 8;
    link_extra = Hashtbl.create 8;
    drop_rate = 0.;
    tap = None;
    sent = Stats.Counter.create ();
    delivered = Stats.Counter.create ();
    dropped = Stats.Counter.create ();
  }

let engine t = t.engine

let register t addr =
  if Hashtbl.mem t.endpoints addr then
    invalid_arg (Printf.sprintf "Network.register: address %S already taken" addr);
  let mb = Mailbox.create t.engine ~name:addr () in
  Hashtbl.replace t.endpoints addr mb;
  mb

let reattach t addr mb =
  if Hashtbl.mem t.endpoints addr then
    invalid_arg (Printf.sprintf "Network.reattach: address %S already taken" addr);
  Hashtbl.replace t.endpoints addr mb

let unregister t addr =
  Hashtbl.remove t.endpoints addr;
  (* Drop the FIFO floors of every link touching this address: a restarted
     node must not inherit the pre-crash delivery horizon, which would
     delay its first post-recovery messages by however far ahead the old
     incarnation's traffic had pushed the link. *)
  let stale =
    Hashtbl.fold
      (fun ((src, dst) as key) _ acc ->
        if String.equal src addr || String.equal dst addr then key :: acc else acc)
      t.last_delivery []
  in
  List.iter (Hashtbl.remove t.last_delivery) stale

let link_key a b = if a <= b then (a, b) else (b, a)
let partition t a b = Hashtbl.replace t.partitions (link_key a b) ()
let heal t a b = Hashtbl.remove t.partitions (link_key a b)
let is_partitioned t a b = Hashtbl.mem t.partitions (link_key a b)
let set_drop_rate t rate = t.drop_rate <- rate
let drop_rate t = t.drop_rate
let slow_link t a b ~extra = Hashtbl.replace t.link_extra (link_key a b) extra
let restore_link t a b = Hashtbl.remove t.link_extra (link_key a b)
let set_tap t tap = t.tap <- tap

let transfer_time t size =
  Time.of_sec (float_of_int size /. t.config.bandwidth_bytes_per_sec)

let send t ~src ~dst ?(size = 256) msg =
  Stats.Counter.incr t.sent;
  let drop () = Stats.Counter.incr t.dropped in
  (* The tap (targeted fault injection) rules first: a surgically dropped or
     delayed message must not depend on the link's random state, so the
     verdict is computed before any latency draw. With no tap installed the
     random stream is untouched and delivery is bit-identical. *)
  let tap_verdict =
    match t.tap with None -> Pass | Some f -> f ~src ~dst msg
  in
  if tap_verdict = Drop then drop ()
  else if Hashtbl.mem t.partitions (link_key src dst) then drop ()
  else if t.drop_rate > 0. && Rng.chance t.rng t.drop_rate then drop ()
  else begin
    let latency =
      Rng.time_uniform t.rng ~lo:t.config.latency_lo ~hi:t.config.latency_hi
    in
    let latency =
      match Hashtbl.find_opt t.link_extra (link_key src dst) with
      | Some extra -> Time.add latency extra
      | None -> latency
    in
    let latency =
      match tap_verdict with Delay extra -> Time.add latency extra | _ -> latency
    in
    let arrival =
      Time.add (Engine.now t.engine) (Time.add latency (transfer_time t size))
    in
    (* FIFO per directed link: never deliver before an earlier message. *)
    let arrival =
      match Hashtbl.find_opt t.last_delivery (src, dst) with
      | Some prev when Time.( < ) arrival prev -> prev
      | _ -> arrival
    in
    Hashtbl.replace t.last_delivery (src, dst) arrival;
    Engine.schedule t.engine ~at:arrival (fun () ->
        match Hashtbl.find_opt t.endpoints dst with
        | Some mb ->
            Stats.Counter.incr t.delivered;
            Mailbox.send mb msg
        | None -> Stats.Counter.incr t.dropped)
  end

let messages_sent t = Stats.Counter.value t.sent
let messages_delivered t = Stats.Counter.value t.delivered
let messages_dropped t = Stats.Counter.value t.dropped

(** Simulated switched LAN.

    Nodes register under string addresses and receive messages through a
    mailbox. Delivery on each directed link is FIFO (as over a TCP
    connection): a message never overtakes an earlier one on the same link,
    even when random latencies would allow it. Links can be partitioned and
    lossy for fault-tolerance experiments. *)

type 'a t

type config = {
  latency_lo : Sim.Time.t;  (** one-way latency lower bound *)
  latency_hi : Sim.Time.t;  (** one-way latency upper bound *)
  bandwidth_bytes_per_sec : float;  (** per-message transfer rate *)
}

val default_lan : config
(** 1 Gb/s switched Ethernet: 40–80 µs one way. *)

val create : Sim.Engine.t -> rng:Sim.Rng.t -> ?config:config -> unit -> 'a t
val engine : 'a t -> Sim.Engine.t

val register : 'a t -> string -> 'a Sim.Mailbox.t
(** Create an endpoint. @raise Invalid_argument if the address is taken. *)

val unregister : 'a t -> string -> unit
(** Remove an endpoint; in-flight messages to it are dropped on arrival.
    Used to model a crashed node. Also forgets the FIFO delivery floors of
    every link touching the address, so a restarted node starts with fresh
    link state. Re-registering yields a fresh mailbox. *)

val reattach : 'a t -> string -> 'a Sim.Mailbox.t -> unit
(** Re-register an existing mailbox under an address (a restarted node
    re-announcing its endpoint). @raise Invalid_argument if taken. *)

val send : 'a t -> src:string -> dst:string -> ?size:int -> 'a -> unit
(** Fire-and-forget. [size] in bytes adds transfer time (default 256). If
    [dst] is unknown or unreachable the message is silently dropped. *)

val partition : 'a t -> string -> string -> unit
(** Cut both directions between two addresses. *)

val heal : 'a t -> string -> string -> unit
val is_partitioned : 'a t -> string -> string -> bool

val set_drop_rate : 'a t -> float -> unit
(** Uniform message loss probability applied to every link (burst faults). *)

val drop_rate : 'a t -> float

val slow_link : 'a t -> string -> string -> extra:Sim.Time.t -> unit
(** Add [extra] one-way latency to both directions of a link (congestion /
    WAN-hiccup modelling). Replaces any previous spike on the link. *)

val restore_link : 'a t -> string -> string -> unit

type verdict = Pass | Drop | Delay of Sim.Time.t
(** Per-message ruling from a {!set_tap} callback. *)

val set_tap : 'a t -> (src:string -> dst:string -> 'a -> verdict) option -> unit
(** Install (or clear, with [None]) a message tap consulted on every
    {!send} before the latency draw, so a [Pass] verdict leaves delivery
    bit-identical to an untapped network. [Drop] discards the message (it
    counts as dropped); [Delay extra] adds [extra] to the one-way latency —
    later traffic on the same directed link still queues FIFO behind the
    delayed message, as over a stalled TCP connection. Targeted fault
    injection (delay the decisive Paxos ack, drop the Nth cross-partition
    vote) hangs off this hook. *)

val messages_sent : 'a t -> int
val messages_delivered : 'a t -> int
val messages_dropped : 'a t -> int

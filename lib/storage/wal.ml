open Sim

(* Each log slot models one physical record: the typed payload plus the
   on-disk framing that recovery validates — a length ([bytes] expected,
   [written] actually on disk) and a checksum over the payload. A slot is
   readable iff it is fully written and its checksum verifies. *)
type 'r slot = { payload : 'r; bytes : int; written : int; crc : int }

let checksum payload = Hashtbl.hash payload

let intact s = s.written = s.bytes && s.crc = checksum s.payload

type scan = { verified : int; torn : int; corrupt : int }

type 'r t = {
  engine : Engine.t;
  disk : Disk.t;
  label : string;
  mutable sync_writes : bool;
  mutable records : 'r slot array; (* dense, index = lsn - 1 *)
  mutable size : int;
  mutable durable : int; (* durable lsn *)
  mutable unsynced_bytes : int;
  mutable syncing : bool;
  mutable flush_started : Time.t option; (* fsync in flight since *)
  mutable epoch : int; (* bumped on crash: invalidates in-flight flushes *)
  mutable waiters : (int * (unit -> unit)) list; (* target lsn, resume *)
  syncs : Stats.Counter.t;
  synced_records : Stats.Counter.t;
  group_sizes : Stats.Summary.t;
  batch_appends : Stats.Counter.t;
  append_batch_sizes : Stats.Summary.t;
  torn_drops : Stats.Counter.t;
  corrupt_drops : Stats.Counter.t;
}

let create engine ~disk ?(synchronous = true) ?(name = "wal") () =
  {
    engine;
    disk;
    label = name;
    sync_writes = synchronous;
    (* slots beyond [size] are never read; see Sim.Heap for the idiom *)
    records = Array.make 64 (Obj.magic 0);
    size = 0;
    durable = 0;
    unsynced_bytes = 0;
    syncing = false;
    flush_started = None;
    epoch = 0;
    waiters = [];
    syncs = Stats.Counter.create ();
    synced_records = Stats.Counter.create ();
    group_sizes = Stats.Summary.create ();
    batch_appends = Stats.Counter.create ();
    append_batch_sizes = Stats.Summary.create ();
    torn_drops = Stats.Counter.create ();
    corrupt_drops = Stats.Counter.create ();
  }

let name t = t.label
let synchronous t = t.sync_writes
let set_synchronous t flag = t.sync_writes <- flag
let last_lsn t = t.size
let durable_lsn t = t.durable

let append t ~bytes r =
  if t.size = Array.length t.records then begin
    let bigger = Array.make (2 * t.size) t.records.(0) in
    Array.blit t.records 0 bigger 0 t.size;
    t.records <- bigger
  end;
  t.records.(t.size) <- { payload = r; bytes; written = bytes; crc = checksum r };
  t.size <- t.size + 1;
  t.unsynced_bytes <- t.unsynced_bytes + bytes;
  t.size

(* A producer handing over several records at once (e.g. a multi-entry
   Paxos Accept) appends them as one batch, so the log can account for
   producer-side grouping separately from the fsync-side grouping that
   [group_sizes] tracks. *)
let append_batch t ~bytes_of records =
  List.iter (fun r -> ignore (append t ~bytes:(bytes_of r) r)) records;
  (match records with
  | [] -> ()
  | _ ->
      Stats.Counter.incr t.batch_appends;
      Stats.Summary.observe t.append_batch_sizes
        (float_of_int (List.length records)));
  t.size

(* Flush loop: one in-flight fsync at a time; each flush covers everything
   appended before it starts, so concurrent committers group naturally.
   A crash while the fsync is in flight bumps [epoch]: the writer must then
   NOT mark its captured target durable — the tail it was flushing has been
   truncated, and advancing [durable] past [size] would resurrect stale
   slots on the next append. *)
let rec start_flush t =
  if (not t.syncing) && t.durable < t.size then begin
    t.syncing <- true;
    ignore
      (Engine.spawn t.engine ~name:(t.label ^ ".writer") (fun () ->
           (* Capture the batch when the writer actually runs, so appends
              made at the same instant share this fsync. *)
           let epoch = t.epoch in
           let target = t.size in
           let bytes = t.unsynced_bytes in
           t.unsynced_bytes <- 0;
           t.flush_started <- Some (Engine.now t.engine);
           Disk.fsync t.disk ~bytes;
           t.syncing <- false;
           if t.epoch = epoch then begin
             t.flush_started <- None;
             let group = target - t.durable in
             t.durable <- target;
             Stats.Counter.incr t.syncs;
             Stats.Counter.add t.synced_records group;
             Stats.Summary.observe t.group_sizes (float_of_int group);
             let ready, blocked =
               List.partition (fun (lsn, _) -> lsn <= target) t.waiters
             in
             t.waiters <- blocked;
             List.iter
               (fun (_, resume) -> Engine.schedule_after t.engine Time.zero resume)
               (List.rev ready)
           end;
           if t.waiters <> [] then start_flush t))
  end

let wait_durable t target =
  if target > t.durable then begin
    Engine.suspend t.engine (fun resume ->
        t.waiters <- (target, fun () -> resume ()) :: t.waiters;
        start_flush t)
  end

let append_and_sync t ~bytes r =
  let lsn = append t ~bytes r in
  if t.sync_writes then wait_durable t lsn;
  lsn

let sync t = if t.sync_writes then wait_durable t t.size

let flushing_since t = t.flush_started

(* The redo stream stops at the first unreadable slot: a torn or corrupt
   record — and everything behind it — must never be replayed. *)
let records_from t lsn =
  let rec collect i acc =
    if i >= t.durable then List.rev acc
    else
      let s = t.records.(i) in
      if intact s then collect (i + 1) (s.payload :: acc) else List.rev acc
  in
  collect (max 0 lsn) []

let crash ?(torn = false) ?torn_bytes t =
  let lost = t.size - t.durable in
  t.epoch <- t.epoch + 1;
  t.unsynced_bytes <- 0;
  t.waiters <- [];
  t.flush_started <- None;
  (if torn && lost > 0 && t.records.(t.durable).bytes > 0 then begin
     (* The first un-synced record was mid-write when power failed: keep it
        as a partial slot past the durable prefix. It is only visible to a
        recovery scan ([records_from] never reads past [durable]); the log
        MUST be passed through [recover] before reuse. *)
     let s = t.records.(t.durable) in
     let written =
       match torn_bytes with
       | Some b -> max 0 (min b (s.bytes - 1))
       | None -> s.bytes / 2
     in
     t.records.(t.durable) <- { s with written };
     t.size <- t.durable + 1
   end
   else t.size <- t.durable);
  lost

let corrupt_tail t =
  if t.durable = 0 then false
  else begin
    (* Media corruption of the newest durable record: the payload bits no
       longer match the stored checksum. Modelled by perturbing the crc. *)
    let s = t.records.(t.durable - 1) in
    t.records.(t.durable - 1) <- { s with crc = s.crc lxor 0x5A5A5A };
    true
  end

let recover t =
  let rec prefix i =
    if i < t.size && intact t.records.(i) then prefix (i + 1) else i
  in
  let verified = prefix 0 in
  let torn = ref 0 and corrupt = ref 0 in
  for i = verified to t.size - 1 do
    let s = t.records.(i) in
    if s.written < s.bytes then incr torn else incr corrupt
  done;
  t.size <- verified;
  t.durable <- min t.durable verified;
  t.unsynced_bytes <- 0;
  t.waiters <- [];
  t.flush_started <- None;
  t.epoch <- t.epoch + 1;
  Stats.Counter.add t.torn_drops !torn;
  Stats.Counter.add t.corrupt_drops !corrupt;
  let rec collect i acc =
    if i = 0 then acc else collect (i - 1) (t.records.(i - 1).payload :: acc)
  in
  (collect verified [], { verified; torn = !torn; corrupt = !corrupt })

let torn_discarded t = Stats.Counter.value t.torn_drops
let corrupt_discarded t = Stats.Counter.value t.corrupt_drops

let sync_count t = Stats.Counter.value t.syncs
let records_synced t = Stats.Counter.value t.synced_records
let mean_group_size t = Stats.Summary.mean t.group_sizes
let batch_appends t = Stats.Counter.value t.batch_appends
let mean_append_batch t = Stats.Summary.mean t.append_batch_sizes

let reset_stats t =
  Stats.Counter.reset t.syncs;
  Stats.Counter.reset t.synced_records;
  Stats.Summary.reset t.group_sizes;
  Stats.Counter.reset t.batch_appends;
  Stats.Summary.reset t.append_batch_sizes

open Sim

type 'r t = {
  engine : Engine.t;
  disk : Disk.t;
  label : string;
  mutable sync_writes : bool;
  mutable records : 'r array; (* dense, index = lsn - 1 *)
  mutable size : int;
  mutable durable : int; (* durable lsn *)
  mutable unsynced_bytes : int;
  mutable syncing : bool;
  mutable waiters : (int * (unit -> unit)) list; (* target lsn, resume *)
  syncs : Stats.Counter.t;
  synced_records : Stats.Counter.t;
  group_sizes : Stats.Summary.t;
  batch_appends : Stats.Counter.t;
  append_batch_sizes : Stats.Summary.t;
}

let create engine ~disk ?(synchronous = true) ?(name = "wal") () =
  {
    engine;
    disk;
    label = name;
    sync_writes = synchronous;
    (* slots beyond [size] are never read; see Sim.Heap for the idiom *)
    records = Array.make 64 (Obj.magic 0);
    size = 0;
    durable = 0;
    unsynced_bytes = 0;
    syncing = false;
    waiters = [];
    syncs = Stats.Counter.create ();
    synced_records = Stats.Counter.create ();
    group_sizes = Stats.Summary.create ();
    batch_appends = Stats.Counter.create ();
    append_batch_sizes = Stats.Summary.create ();
  }

let name t = t.label
let synchronous t = t.sync_writes
let set_synchronous t flag = t.sync_writes <- flag
let last_lsn t = t.size
let durable_lsn t = t.durable

let append t ~bytes r =
  if t.size = Array.length t.records then begin
    let bigger = Array.make (2 * t.size) t.records.(0) in
    Array.blit t.records 0 bigger 0 t.size;
    t.records <- bigger
  end;
  t.records.(t.size) <- r;
  t.size <- t.size + 1;
  t.unsynced_bytes <- t.unsynced_bytes + bytes;
  t.size

(* A producer handing over several records at once (e.g. a multi-entry
   Paxos Accept) appends them as one batch, so the log can account for
   producer-side grouping separately from the fsync-side grouping that
   [group_sizes] tracks. *)
let append_batch t ~bytes_of records =
  List.iter (fun r -> ignore (append t ~bytes:(bytes_of r) r)) records;
  (match records with
  | [] -> ()
  | _ ->
      Stats.Counter.incr t.batch_appends;
      Stats.Summary.observe t.append_batch_sizes
        (float_of_int (List.length records)));
  t.size

(* Flush loop: one in-flight fsync at a time; each flush covers everything
   appended before it starts, so concurrent committers group naturally. *)
let rec start_flush t =
  if (not t.syncing) && t.durable < t.size then begin
    t.syncing <- true;
    ignore
      (Engine.spawn t.engine ~name:(t.label ^ ".writer") (fun () ->
           (* Capture the batch when the writer actually runs, so appends
              made at the same instant share this fsync. *)
           let target = t.size in
           let bytes = t.unsynced_bytes in
           t.unsynced_bytes <- 0;
           Disk.fsync t.disk ~bytes;
           let group = target - t.durable in
           t.durable <- target;
           Stats.Counter.incr t.syncs;
           Stats.Counter.add t.synced_records group;
           Stats.Summary.observe t.group_sizes (float_of_int group);
           let ready, blocked = List.partition (fun (lsn, _) -> lsn <= target) t.waiters in
           t.waiters <- blocked;
           List.iter
             (fun (_, resume) -> Engine.schedule_after t.engine Time.zero resume)
             (List.rev ready);
           t.syncing <- false;
           if t.waiters <> [] then start_flush t))
  end

let wait_durable t target =
  if target > t.durable then begin
    Engine.suspend t.engine (fun resume ->
        t.waiters <- (target, fun () -> resume ()) :: t.waiters;
        start_flush t)
  end

let append_and_sync t ~bytes r =
  let lsn = append t ~bytes r in
  if t.sync_writes then wait_durable t lsn;
  lsn

let sync t = if t.sync_writes then wait_durable t t.size

let records_from t lsn =
  let rec collect i acc = if i <= lsn then acc else collect (i - 1) (t.records.(i - 1) :: acc) in
  collect t.durable []

let crash t =
  let lost = t.size - t.durable in
  t.size <- t.durable;
  t.unsynced_bytes <- 0;
  t.waiters <- [];
  lost

let sync_count t = Stats.Counter.value t.syncs
let records_synced t = Stats.Counter.value t.synced_records
let mean_group_size t = Stats.Summary.mean t.group_sizes
let batch_appends t = Stats.Counter.value t.batch_appends
let mean_append_batch t = Stats.Summary.mean t.append_batch_sizes

let reset_stats t =
  Stats.Counter.reset t.syncs;
  Stats.Counter.reset t.synced_records;
  Stats.Summary.reset t.group_sizes;
  Stats.Counter.reset t.batch_appends;
  Stats.Summary.reset t.append_batch_sizes

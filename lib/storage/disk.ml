open Sim

type config = {
  fsync_lo : Time.t;
  fsync_hi : Time.t;
  position_lo : Time.t;
  position_hi : Time.t;
  bandwidth_bytes_per_sec : float;
}

let default_hdd =
  {
    fsync_lo = Time.of_ms 6.;
    fsync_hi = Time.of_ms 12.;
    position_lo = Time.of_ms 4.;
    position_hi = Time.of_ms 9.;
    bandwidth_bytes_per_sec = 55_000_000.;
  }

let ram_config =
  {
    fsync_lo = Time.us 3;
    fsync_hi = Time.us 6;
    position_lo = Time.us 1;
    position_hi = Time.us 2;
    bandwidth_bytes_per_sec = 2_000_000_000.;
  }

type t = {
  rng : Rng.t;
  config : config;
  channel : Resource.t;
  engine : Engine.t;
  label : string;
  ram : bool;
  fsync_count : Stats.Counter.t;
  read_count : Stats.Counter.t;
  write_count : Stats.Counter.t;
  synced_bytes : Stats.Counter.t;
  (* Injectable fault state. All of it is mutated by the fault injector at
     runtime; the operation paths below consult it on every op. *)
  mutable stall_extra : Time.t option;
  mutable degrade_factor : float;
  mutable write_error_rate : float;
  fsync_stall_count : Stats.Counter.t;
  io_error_count : Stats.Counter.t;
}

let create engine ~rng ?(config = default_hdd) ?(name = "disk") () =
  {
    rng;
    config;
    channel = Resource.create engine ~name ~capacity:1 ();
    engine;
    label = name;
    ram = false;
    fsync_count = Stats.Counter.create ();
    read_count = Stats.Counter.create ();
    write_count = Stats.Counter.create ();
    synced_bytes = Stats.Counter.create ();
    stall_extra = None;
    degrade_factor = 1.0;
    write_error_rate = 0.;
    fsync_stall_count = Stats.Counter.create ();
    io_error_count = Stats.Counter.create ();
  }

let create_ram engine ~rng ?(name = "ramdisk") () =
  { (create engine ~rng ~config:ram_config ~name ()) with ram = true }

let name t = t.label
let is_ram t = t.ram

(* ------------------------------------------------------------------ *)
(* Fault injection *)

let set_stall t ~extra = t.stall_extra <- Some extra
let clear_stall t = t.stall_extra <- None
let stalled t = t.stall_extra <> None
let stall_extra t = t.stall_extra
let set_degrade t ~factor = t.degrade_factor <- Float.max 1.0 factor
let clear_degrade t = t.degrade_factor <- 1.0
let degrade_factor t = t.degrade_factor

let set_write_error_rate t rate =
  t.write_error_rate <- Float.min 1.0 (Float.max 0. rate)

let write_error_rate t = t.write_error_rate
let fsync_stalls t = Stats.Counter.value t.fsync_stall_count
let io_errors t = Stats.Counter.value t.io_error_count

(* A healthy op takes [base]; a degraded device multiplies it, a stalled
   one additionally holds the channel for the stall window. *)
let faulted t base =
  let lat = if t.degrade_factor > 1.0 then Time.scale base t.degrade_factor else base in
  match t.stall_extra with None -> lat | Some extra -> Time.add lat extra

let transfer_time t bytes =
  Time.of_sec (float_of_int bytes /. t.config.bandwidth_bytes_per_sec)

let occupy t duration = Resource.use t.channel duration

(* A transient write error is absorbed inside the device model: the failed
   attempt occupies the channel for a full op time before the driver's
   retry succeeds. At most one error per operation is modelled — enough to
   perturb latency without making op cost unbounded. *)
let maybe_error t ~lo ~hi ~bytes =
  if t.write_error_rate > 0. && Rng.chance t.rng t.write_error_rate then begin
    Stats.Counter.incr t.io_error_count;
    let wasted = Rng.time_uniform t.rng ~lo ~hi in
    occupy t (faulted t (Time.add wasted (transfer_time t bytes)))
  end

let fsync t ~bytes =
  maybe_error t ~lo:t.config.fsync_lo ~hi:t.config.fsync_hi ~bytes;
  if t.stall_extra <> None then Stats.Counter.incr t.fsync_stall_count;
  let latency = Rng.time_uniform t.rng ~lo:t.config.fsync_lo ~hi:t.config.fsync_hi in
  occupy t (faulted t (Time.add latency (transfer_time t bytes)));
  Stats.Counter.incr t.fsync_count;
  Stats.Counter.add t.synced_bytes bytes

let page_io t counter ~bytes =
  maybe_error t ~lo:t.config.position_lo ~hi:t.config.position_hi ~bytes;
  let latency =
    Rng.time_uniform t.rng ~lo:t.config.position_lo ~hi:t.config.position_hi
  in
  occupy t (faulted t (Time.add latency (transfer_time t bytes)));
  Stats.Counter.incr counter

let read t ~bytes = page_io t t.read_count ~bytes
let write t ~bytes = page_io t t.write_count ~bytes

let fsyncs t = Stats.Counter.value t.fsync_count
let reads t = Stats.Counter.value t.read_count
let writes t = Stats.Counter.value t.write_count
let bytes_synced t = Stats.Counter.value t.synced_bytes
let utilization t = Resource.utilization t.channel
let queue_length t = Resource.queue_length t.channel

let reset_stats t =
  Stats.Counter.reset t.fsync_count;
  Stats.Counter.reset t.read_count;
  Stats.Counter.reset t.write_count;
  Stats.Counter.reset t.synced_bytes

(** Disk device model.

    A single-channel FIFO device: one operation at a time, in request order
    — this is exactly what makes a "shared IO channel" (paper §9.2) hurt:
    page reads and log fsyncs queue behind each other. Three operation kinds
    are distinguished so benchmarks can report their mix:

    - [fsync]: synchronous log flush. Cost = a random latency drawn from the
      configured range (the paper measured 6–12 ms, ~8 ms typical) plus the
      transfer time of the bytes being flushed.
    - [read]/[write]: data-page IO. Cost = positioning latency + transfer.

    A [ram] disk (paper: database in ramdisk) has microsecond costs, used to
    model a dedicated logging channel by moving page IO off the real disk.

    {b Fault injection.} The device carries injectable fault state, mutated
    by the fault injector ([Fault]) and consulted on every operation:
    - a {e stall} adds a fixed extra channel occupancy to every op (a
      firmware hiccup / write-cache flush storm: fsyncs take hundreds of
      milliseconds instead of ~8 ms);
    - a {e degrade factor} multiplies the drawn latency (a sick disk that is
      uniformly slow, not stuck);
    - a {e transient write-error rate} makes ops occasionally burn a full
      extra op-time on a failed attempt before the retry succeeds (absorbed
      inside the device — the caller only observes added latency).

    Fault counters ([fsync_stalls], [io_errors]) are cumulative and are not
    cleared by {!reset_stats}, so chaos harnesses can read totals after the
    measurement window was re-baselined. *)

type t

type config = {
  fsync_lo : Sim.Time.t;
  fsync_hi : Sim.Time.t;
  position_lo : Sim.Time.t;  (** seek+rotate for a page IO *)
  position_hi : Sim.Time.t;
  bandwidth_bytes_per_sec : float;
}

val default_hdd : config
(** The paper's 120 GB 7200 rpm drive: fsync 6–12 ms, page IO 4–9 ms,
    ~55 MB/s sequential. *)

val ram_config : config

val create : Sim.Engine.t -> rng:Sim.Rng.t -> ?config:config -> ?name:string -> unit -> t
val create_ram : Sim.Engine.t -> rng:Sim.Rng.t -> ?name:string -> unit -> t

val name : t -> string
val is_ram : t -> bool

(** {1 Blocking operations (fiber context)} *)

val fsync : t -> bytes:int -> unit
val read : t -> bytes:int -> unit
val write : t -> bytes:int -> unit

(** {1 Fault injection} *)

val set_stall : t -> extra:Sim.Time.t -> unit
(** Every subsequent op holds the channel for an additional [extra] on top
    of its drawn latency, until {!clear_stall}. *)

val clear_stall : t -> unit
val stalled : t -> bool
val stall_extra : t -> Sim.Time.t option

val set_degrade : t -> factor:float -> unit
(** Multiply every subsequent op's drawn latency by [factor] (clamped to
    ≥ 1.0), until {!clear_degrade}. *)

val clear_degrade : t -> unit
val degrade_factor : t -> float

val set_write_error_rate : t -> float -> unit
(** Probability (clamped to [0,1]) that an op first burns a full extra
    op-time on a failed attempt before succeeding. *)

val write_error_rate : t -> float

val fsync_stalls : t -> int
(** Cumulative count of fsyncs served while a stall was active. *)

val io_errors : t -> int
(** Cumulative count of transient op errors injected. *)

(** {1 Statistics} *)

val fsyncs : t -> int
val reads : t -> int
val writes : t -> int
val bytes_synced : t -> int
val utilization : t -> float
val queue_length : t -> int

val reset_stats : t -> unit
(** Clear the operation counters (e.g. after warm-up); utilisation keeps
    integrating from creation, and the fault counters stay cumulative. *)

(** Write-ahead log with group commit and checksummed records.

    Carries typed records so that recovery can actually redo them. Appends
    are in-memory; durability happens on [sync]/[append_and_sync], where the
    single-writer discipline batches every record appended since the last
    flush into one device [fsync] — the group-commit optimisation whose loss
    is the subject of the paper.

    Each record is framed with a length and a checksum, as a real log would
    be. Two storage faults are modelled on top of the clean {!crash}:
    - a {e torn tail} ({!crash}[ ~torn:true]): the first un-synced record
      was mid-write at power-off and survives as a partial slot;
    - {e tail corruption} ({!corrupt_tail}): the newest durable record's
      payload no longer matches its checksum.

    {!recover} is the checksum scan: it verifies the log front to back,
    truncates at the first torn or corrupt record, and reports what was
    discarded. {!records_from} also refuses to read past an unreadable
    record, so a torn record can never be replayed even if a caller skips
    the scan. After a torn crash the log must go through {!recover} before
    new appends.

    With [synchronous = false] the log never touches the device (PostgreSQL
    with WAL synchronous writes disabled, paper §7.1 case 1): commits are
    fast but the un-synced tail — which is everything — is lost on {!crash}. *)

type 'r t

type scan = {
  verified : int;  (** records in the intact prefix that recovery replays *)
  torn : int;  (** partially-written records discarded by the scan *)
  corrupt : int;  (** checksum-mismatch (or unreachable) records discarded *)
}

val create :
  Sim.Engine.t -> disk:Disk.t -> ?synchronous:bool -> ?name:string -> unit -> 'r t

val name : 'r t -> string
val synchronous : 'r t -> bool
val set_synchronous : 'r t -> bool -> unit

(** {1 Appending} *)

val append : 'r t -> bytes:int -> 'r -> int
(** Buffer a record, returning its LSN (1-based, dense). Non-blocking. *)

val append_and_sync : 'r t -> bytes:int -> 'r -> int
(** Append, then block until the record is durable (or return immediately
    in asynchronous mode). Concurrent callers share fsyncs. *)

val append_batch : 'r t -> bytes_of:('r -> int) -> 'r list -> int
(** Buffer a producer-side batch of records in order, returning the last
    LSN. Equivalent to [append] per record, but additionally counted as
    one batch in the append-batch statistics, so grouping decided by the
    producer (a multi-entry Paxos Accept) is visible separately from the
    fsync-side grouping of {!mean_group_size}. Non-blocking. *)

val sync : 'r t -> unit
(** Block until everything appended so far is durable. No-op in
    asynchronous mode or when already durable. *)

val flushing_since : 'r t -> Sim.Time.t option
(** When an fsync is currently in flight, the sim time it started — the
    hook a disk watchdog uses to detect a stalled flush. [None] when the
    device is idle. *)

(** {1 State} *)

val last_lsn : 'r t -> int
val durable_lsn : 'r t -> int

val records_from : 'r t -> int -> 'r list
(** [records_from t lsn] returns the durable records with LSN > [lsn] in
    append order — the redo stream. Stops at the first torn or corrupt
    record: an unreadable record (and everything behind it) is never
    replayed. *)

(** {1 Crash and recovery} *)

val crash : ?torn:bool -> ?torn_bytes:int -> 'r t -> int
(** Lose the un-synced tail, returning how many records were dropped. The
    durable prefix survives and remains readable. With [~torn:true] the
    first un-synced record additionally survives as a partially-written
    slot ([torn_bytes] of it on disk, default half) past the durable
    prefix; the log must then be passed through {!recover} before reuse.
    Any in-flight fsync is invalidated: its batch is no longer marked
    durable (the tail it covered is gone). *)

val corrupt_tail : 'r t -> bool
(** Corrupt the newest durable record so its checksum no longer verifies.
    Returns [false] when the log has no durable record to corrupt. *)

val recover : 'r t -> 'r list * scan
(** Checksum scan: verify records front to back, truncate the log at the
    first torn/corrupt record, and return the surviving payloads in append
    order together with a report of what was discarded. Resets volatile
    flush state; the discard totals are also accumulated into
    {!torn_discarded}/{!corrupt_discarded}. *)

val torn_discarded : 'r t -> int
(** Cumulative torn records discarded across all {!recover} scans. Not
    cleared by {!reset_stats}. *)

val corrupt_discarded : 'r t -> int
(** Cumulative corrupt records discarded across all {!recover} scans. Not
    cleared by {!reset_stats}. *)

(** {1 Statistics} *)

val sync_count : 'r t -> int
val records_synced : 'r t -> int

val mean_group_size : 'r t -> float
(** Mean number of records made durable per fsync — the paper's
    "writesets per fsync" metric (§9.2 reports ~29 for Tashkent-MW). *)

val batch_appends : 'r t -> int
(** Number of {!append_batch} calls with at least one record. *)

val mean_append_batch : 'r t -> float
(** Mean records per {!append_batch} call. *)

val reset_stats : 'r t -> unit

(** Write-ahead log with group commit.

    Carries typed records so that recovery can actually redo them. Appends
    are in-memory; durability happens on [sync]/[append_and_sync], where the
    single-writer discipline batches every record appended since the last
    flush into one device [fsync] — the group-commit optimisation whose loss
    is the subject of the paper.

    With [synchronous = false] the log never touches the device (PostgreSQL
    with WAL synchronous writes disabled, paper §7.1 case 1): commits are
    fast but the un-synced tail — which is everything — is lost on {!crash}. *)

type 'r t

val create :
  Sim.Engine.t -> disk:Disk.t -> ?synchronous:bool -> ?name:string -> unit -> 'r t

val name : 'r t -> string
val synchronous : 'r t -> bool
val set_synchronous : 'r t -> bool -> unit

(** {1 Appending} *)

val append : 'r t -> bytes:int -> 'r -> int
(** Buffer a record, returning its LSN (1-based, dense). Non-blocking. *)

val append_and_sync : 'r t -> bytes:int -> 'r -> int
(** Append, then block until the record is durable (or return immediately
    in asynchronous mode). Concurrent callers share fsyncs. *)

val append_batch : 'r t -> bytes_of:('r -> int) -> 'r list -> int
(** Buffer a producer-side batch of records in order, returning the last
    LSN. Equivalent to [append] per record, but additionally counted as
    one batch in the append-batch statistics, so grouping decided by the
    producer (a multi-entry Paxos Accept) is visible separately from the
    fsync-side grouping of {!mean_group_size}. Non-blocking. *)

val sync : 'r t -> unit
(** Block until everything appended so far is durable. No-op in
    asynchronous mode or when already durable. *)

(** {1 State} *)

val last_lsn : 'r t -> int
val durable_lsn : 'r t -> int

val records_from : 'r t -> int -> 'r list
(** [records_from t lsn] returns the durable records with LSN > [lsn] in
    append order — the redo stream. *)

val crash : 'r t -> int
(** Lose the un-synced tail, returning how many records were dropped. The
    durable prefix survives and remains readable. *)

(** {1 Statistics} *)

val sync_count : 'r t -> int
val records_synced : 'r t -> int

val mean_group_size : 'r t -> float
(** Mean number of records made durable per fsync — the paper's
    "writesets per fsync" metric (§9.2 reports ~29 for Tashkent-MW). *)

val batch_appends : 'r t -> int
(** Number of {!append_batch} calls with at least one record. *)

val mean_append_batch : 'r t -> float
(** Mean records per {!append_batch} call. *)

val reset_stats : 'r t -> unit

(** Deterministic fault injection for the replicated certifier.

    A fault {e plan} is a list of timed actions — partitions, message-loss
    bursts, latency spikes, and crash/recover of certifier Paxos nodes or
    whole replicas — applied to a running {!Tashkent.Cluster} by an
    injector fiber. Plans are either scripted (regression scenarios) or
    drawn from a seeded RNG ({!random_plan}), so every chaos run replays
    bit-identically from its seed.

    The fault model extends the paper's §7: certifier nodes fail by
    crash-stop and rejoin via Paxos state transfer (a minority may be down
    at any moment); replicas fail independently and recover via dump
    restore or redo plus writeset replay (§7.1 cases 1 and 2); the network
    may partition, lose, or delay messages but does not corrupt them — the
    {e storage} layer, however, may: disks stall ({!Disk_stall}) or run
    uniformly slow ({!Disk_degrade}), and a crash can leave the WAL with a
    partially-written final record ({!Torn_crash}) or one whose checksum no
    longer verifies ({!Corrupt_tail}). Recovery runs a checksum scan
    ({!Storage.Wal.recover}) that truncates at the first torn/corrupt
    record; this is safe because every durability ack follows the sync
    (write-ahead discipline), so a truncated record was never acked. A
    certifier leader whose fsyncs exceed its configured deadline abdicates
    so a healthy-disk acceptor can lead
    ({!Tashkent.Certifier.config}[.fsync_deadline]). *)

(** A node of the cluster, by role and index (as in
    {!Tashkent.Cluster.create}: certifiers [cert0..], replicas
    [replica0..]). *)
type node = Cert of int | Rep of int

val pp_node : Format.formatter -> node -> unit

(** Protocol-message classes a targeted tap rule ({!Delay_msg},
    {!Drop_msg}, {!Crash_on_msg}) can match at the network layer. *)
type msg_class =
  | M_cert_request  (** proxy → certifier single-partition certification *)
  | M_cert_reply  (** certifier → proxy verdict (the durable ack) *)
  | M_fetch_reply  (** certifier → proxy refresh/backfill answer *)
  | M_xcert_request  (** proxy → certifier cross-partition fragment *)
  | M_xvote  (** leader → leader cross-partition vote gossip *)
  | M_paxos_prepare
  | M_paxos_accept
  | M_paxos_accept_ok  (** the acceptor ack that completes a majority *)
  | M_paxos_commit
  | M_paxos_heartbeat

val pp_msg_class : Format.formatter -> msg_class -> unit
val msg_class_name : msg_class -> string

val msg_class_matches : msg_class -> Tashkent.Types.message -> bool
(** Whether a concrete wire message belongs to the class (exposed for
    tests). *)

type action =
  | Partition of node list * node list
      (** Cut every link between the two groups (both directions). *)
  | Heal of node list * node list
      (** Undo exactly the cross-group cuts of a matching {!Partition}. *)
  | Heal_all
      (** Heal every outstanding partition, restore spiked links, and
          clear any drop rate. *)
  | Drop_burst of { rate : float; duration : Sim.Time.t }
      (** Uniform message loss on all links for [duration]. *)
  | Latency_spike of {
      a : node;
      b : node;
      extra : Sim.Time.t;
      duration : Sim.Time.t;
    }  (** Extra one-way latency on the [a]–[b] link for [duration]. *)
  | Crash_certifier of int
  | Recover_certifier of int
  | Crash_leader
      (** Crash whichever certifier currently leads (no-op when no leader
          is up — e.g. during an election). *)
  | Recover_crashed
      (** Recover the most recent {!Crash_leader} victim. *)
  | Crash_group_leader of int
      (** Partitioned certification: crash whichever certifier currently
          leads the given partition's group (no-op during its election).
          [Crash_group_leader 0] on a 1-partition cluster is
          {!Crash_leader} with its own recovery stack. *)
  | Recover_group_crashed of int
      (** Recover that group's most recent {!Crash_group_leader} victim. *)
  | Crash_replica of int
  | Recover_replica of int
  | Disk_stall of { cert : int option; extra : Sim.Time.t; duration : Sim.Time.t }
      (** Every op on the target certifier's log disk takes [extra] longer
          for [duration]. [cert = None] targets whoever leads at fire time
          (no-op during an election). A stall above the certifier's fsync
          deadline triggers degraded-disk failover. *)
  | Disk_degrade of { cert : int option; factor : float; duration : Sim.Time.t }
      (** Multiply the target disk's op latencies by [factor] for
          [duration]. *)
  | Torn_crash of { cert : int option }
      (** Crash the target certifier mid-write: its WAL keeps a
          partially-written final record for the recovery scan to truncate.
          With [cert = None] the victim goes onto the {!Recover_crashed}
          stack, like {!Crash_leader}. *)
  | Corrupt_tail of { cert : int option }
      (** Crash the target certifier and corrupt the newest durable WAL
          record, so its checksum fails at recovery. Victim handling as in
          {!Torn_crash}. *)
  | Delay_msg of {
      cls : msg_class;
      src : node option;  (** [None] matches any sender *)
      dst : node option;  (** [None] matches any receiver *)
      nth : int;  (** 1-based: fire on the nth matching send after arming *)
      extra : Sim.Time.t;
    }
      (** Arm a tap that delays exactly the [nth] message matching
          [(cls, src, dst)] by [extra] — e.g. the decisive Paxos
          accept-ack. Per-link FIFO still applies, so later messages on
          the same link queue behind it (a stalled TCP connection). *)
  | Drop_msg of { cls : msg_class; src : node option; dst : node option; nth : int }
      (** Arm a tap that drops exactly the [nth] matching message — e.g.
          the Nth cross-partition vote. *)
  | Crash_on_msg of {
      cls : msg_class;
      src : node option;
      dst : node option;
      nth : int;
      victim : node;
    }
      (** Crash [victim] at the instant the [nth] matching message is
          sent (the message itself still flows) — e.g. a certifier
          between appending an entry and announcing it. Pair with a
          recover action; an unfired rule is disarmed by {!Heal_all}. *)

val pp_action : Format.formatter -> action -> unit

type plan = (Sim.Time.t * action) list
(** Times are offsets from injection start; the injector sorts them. *)

type stats = {
  actions_applied : int;
  partitions_cut : int;  (** individual directed-pair cuts *)
  heals : int;
  drop_bursts : int;
  latency_spikes : int;
  crashes : int;
  recoveries : int;
  disk_stalls : int;
  disk_degrades : int;
  torn_crashes : int;  (** crashes that left a torn WAL tail *)
  corrupt_tails : int;  (** crashes that corrupted the durable WAL tail *)
  msg_taps_armed : int;  (** targeted tap rules armed *)
  msg_taps_fired : int;  (** targeted tap rules whose nth match arrived *)
}

type t

val inject : Tashkent.Cluster.t -> plan -> t
(** Spawn the injector fiber; returns immediately. Timed reverts
    (drop-burst and latency-spike expiry, blocking replica recovery) run
    in their own fibers, so actions never delay each other. *)

val stats : t -> stats
(** Cumulative over the injector's lifetime (fault accounting is never
    windowed). *)

val register_metrics : t -> Obs.Registry.t -> unit
(** Export the injector's counters as [fault.*] gauges in [reg] (gauges, so
    a registry reset does not erase fault history mid-plan). *)

val quiescent : t -> bool
(** True once every scheduled action has been applied, every timed fault
    has expired, no partition, spike or armed tap rule remains
    outstanding, and every node this injector crashed has been recovered —
    i.e. it is sound to assert cluster invariants. The injector reports
    each transition of this predicate into the cluster's protocol-event
    stream as [Fault_health], which is what restarts the progress
    monitor's clock after the last heal. *)

val random_plan :
  seed:int ->
  duration:Sim.Time.t ->
  n_certifiers:int ->
  n_replicas:int ->
  ?n_partitions:int ->
  ?disk_faults:bool ->
  ?fsync_stall:Sim.Time.t ->
  unit ->
  plan
(** A reproducible plan over [duration]: a certifier-leader crash with
    later recovery, a replica–certifier partition window, a replica crash
    with recovery, a drop burst and a latency spike — jittered by [seed],
    never crashing a certifier majority (one certifier down at a time),
    with every fault healed by [0.85 * duration] (a final {!Heal_all}
    backstop).

    With [disk_faults] (default false) the plan additionally stalls the
    leader's log disk by [fsync_stall] per op (default 600 ms — above the
    default fsync deadline, so the leader abdicates), degrades a random
    certifier's disk, torn-crashes the leader, and corrupt-tail-crashes a
    random certifier, each recovered before the backstop. Plans with
    [disk_faults = false] are bit-identical to pre-storage-fault plans for
    the same seed.

    With [n_partitions > 1] the plan additionally crash-stops a non-zero
    group's leader mid-run (recovered before the backstop), exercising
    cross-partition decisions across a failover; its draws come after
    every other draw, so 1-partition plans are unchanged for the same
    seed. *)

open Sim

type node = Cert of int | Rep of int

let pp_node fmt = function
  | Cert i -> Format.fprintf fmt "cert%d" i
  | Rep i -> Format.fprintf fmt "replica%d" i

(* Disk-fault targets: a certifier by index, or whoever leads at fire time. *)
let pp_cert_target fmt = function
  | None -> Format.pp_print_string fmt "leader"
  | Some i -> Format.fprintf fmt "cert%d" i

(* Message classes a tap rule can match — the protocol messages whose
   precise reordering has historically hidden bugs. *)
type msg_class =
  | M_cert_request
  | M_cert_reply
  | M_fetch_reply
  | M_xcert_request
  | M_xvote
  | M_paxos_prepare
  | M_paxos_accept
  | M_paxos_accept_ok
  | M_paxos_commit
  | M_paxos_heartbeat

let msg_class_name = function
  | M_cert_request -> "cert-request"
  | M_cert_reply -> "cert-reply"
  | M_fetch_reply -> "fetch-reply"
  | M_xcert_request -> "xcert-request"
  | M_xvote -> "xvote"
  | M_paxos_prepare -> "paxos-prepare"
  | M_paxos_accept -> "paxos-accept"
  | M_paxos_accept_ok -> "paxos-accept-ok"
  | M_paxos_commit -> "paxos-commit"
  | M_paxos_heartbeat -> "paxos-heartbeat"

let pp_msg_class fmt c = Format.pp_print_string fmt (msg_class_name c)

let msg_class_matches cls (msg : Tashkent.Types.message) =
  match (cls, msg) with
  | M_cert_request, Tashkent.Types.Cert_request _
  | M_cert_reply, Tashkent.Types.Cert_reply _
  | M_fetch_reply, Tashkent.Types.Fetch_reply _
  | M_xcert_request, Tashkent.Types.Xcert_request _
  | M_xvote, Tashkent.Types.Xvote _
  | M_paxos_prepare, Tashkent.Types.Paxos (Paxos.Node.Prepare _)
  | M_paxos_accept, Tashkent.Types.Paxos (Paxos.Node.Accept _)
  | M_paxos_accept_ok, Tashkent.Types.Paxos (Paxos.Node.Accept_ok _)
  | M_paxos_commit, Tashkent.Types.Paxos (Paxos.Node.Commit _)
  | M_paxos_heartbeat, Tashkent.Types.Paxos (Paxos.Node.Heartbeat _) ->
      true
  | _ -> false

type action =
  | Partition of node list * node list
  | Heal of node list * node list
  | Heal_all
  | Drop_burst of { rate : float; duration : Time.t }
  | Latency_spike of { a : node; b : node; extra : Time.t; duration : Time.t }
  | Crash_certifier of int
  | Recover_certifier of int
  | Crash_leader
  | Recover_crashed
  | Crash_group_leader of int
  | Recover_group_crashed of int
  | Crash_replica of int
  | Recover_replica of int
  | Disk_stall of { cert : int option; extra : Time.t; duration : Time.t }
  | Disk_degrade of { cert : int option; factor : float; duration : Time.t }
  | Torn_crash of { cert : int option }
  | Corrupt_tail of { cert : int option }
  | Delay_msg of {
      cls : msg_class;
      src : node option;
      dst : node option;
      nth : int;
      extra : Time.t;
    }
  | Drop_msg of { cls : msg_class; src : node option; dst : node option; nth : int }
  | Crash_on_msg of {
      cls : msg_class;
      src : node option;
      dst : node option;
      nth : int;
      victim : node;
    }

let pp_endpoint fmt = function
  | None -> Format.pp_print_string fmt "*"
  | Some n -> pp_node fmt n

(* A literal space, not [pp_print_space]: the break hint turns into a
   newline outside an enclosing box, and action lines are repro artifacts
   that must stay one line wherever they are printed. *)
let pp_nodes fmt nodes =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ' ')
    pp_node fmt nodes

let pp_action fmt = function
  | Partition (g1, g2) ->
      Format.fprintf fmt "partition {%a} | {%a}" pp_nodes g1 pp_nodes g2
  | Heal (g1, g2) -> Format.fprintf fmt "heal {%a} | {%a}" pp_nodes g1 pp_nodes g2
  | Heal_all -> Format.pp_print_string fmt "heal-all"
  | Drop_burst { rate; duration } ->
      Format.fprintf fmt "drop-burst %.2f for %a" rate Time.pp duration
  | Latency_spike { a; b; extra; duration } ->
      Format.fprintf fmt "latency-spike %a-%a +%a for %a" pp_node a pp_node b Time.pp
        extra Time.pp duration
  | Crash_certifier i -> Format.fprintf fmt "crash cert%d" i
  | Recover_certifier i -> Format.fprintf fmt "recover cert%d" i
  | Crash_leader -> Format.pp_print_string fmt "crash leader"
  | Recover_crashed -> Format.pp_print_string fmt "recover crashed leader"
  | Crash_group_leader g -> Format.fprintf fmt "crash p%d leader" g
  | Recover_group_crashed g -> Format.fprintf fmt "recover crashed p%d leader" g
  | Crash_replica i -> Format.fprintf fmt "crash replica%d" i
  | Recover_replica i -> Format.fprintf fmt "recover replica%d" i
  | Disk_stall { cert; extra; duration } ->
      Format.fprintf fmt "disk-stall %a +%a for %a" pp_cert_target cert Time.pp extra
        Time.pp duration
  | Disk_degrade { cert; factor; duration } ->
      Format.fprintf fmt "disk-degrade %a x%.1f for %a" pp_cert_target cert factor
        Time.pp duration
  | Torn_crash { cert } -> Format.fprintf fmt "torn-crash %a" pp_cert_target cert
  | Corrupt_tail { cert } -> Format.fprintf fmt "corrupt-tail %a" pp_cert_target cert
  | Delay_msg { cls; src; dst; nth; extra } ->
      Format.fprintf fmt "delay-msg %a#%d %a->%a +%a" pp_msg_class cls nth
        pp_endpoint src pp_endpoint dst Time.pp extra
  | Drop_msg { cls; src; dst; nth } ->
      Format.fprintf fmt "drop-msg %a#%d %a->%a" pp_msg_class cls nth pp_endpoint
        src pp_endpoint dst
  | Crash_on_msg { cls; src; dst; nth; victim } ->
      Format.fprintf fmt "crash-on-msg %a#%d %a->%a kill %a" pp_msg_class cls nth
        pp_endpoint src pp_endpoint dst pp_node victim

type plan = (Time.t * action) list

type stats = {
  actions_applied : int;
  partitions_cut : int;
  heals : int;
  drop_bursts : int;
  latency_spikes : int;
  crashes : int;
  recoveries : int;
  disk_stalls : int;
  disk_degrades : int;
  torn_crashes : int;
  corrupt_tails : int;
  msg_taps_armed : int;
  msg_taps_fired : int;
}

(* An armed message-tap rule: counts matching sends down from [nth] and
   fires its effect exactly once on the [nth]-th match. *)
type tap_effect = Tap_drop | Tap_delay of Time.t | Tap_crash of node

type tap_rule = {
  rule_cls : msg_class;
  rule_src : string option;
  rule_dst : string option;
  mutable rule_nth : int;
  rule_eff : tap_effect;
}

type t = {
  engine : Engine.t;
  cluster : Tashkent.Cluster.t;
  net : Tashkent.Types.message Net.Network.t;
  events : Obs.Events.t;
  (* Armed {!tap_rule}s; the injector owns the network's single message
     tap while this list is non-empty. *)
  mutable rules : tap_rule list;
  mutable last_healthy : bool;
  (* Undirected address pairs currently cut / spiked by this injector, so
     Heal / Heal_all can undo exactly what was done. *)
  mutable cut : (string * string) list;
  mutable spiked : (string * string) list;
  (* Crash_leader victims, newest first, for Recover_crashed. *)
  mutable crashed_leaders : int list;
  (* Crash_group_leader victims, newest first per group, for
     Recover_group_crashed. *)
  mutable crashed_group_leaders : (int * int) list; (* (group, flat index) *)
  mutable crashed_nodes : int; (* crashes minus recoveries, any kind *)
  (* Disks with an outstanding injected stall / degrade, so Heal_all can
     clear them and [quiescent] can insist they are gone. *)
  mutable stalled_disks : Storage.Disk.t list;
  mutable degraded_disks : Storage.Disk.t list;
  (* Actions scheduled but not yet finished (timed faults count until
     their revert fires). *)
  mutable outstanding : int;
  mutable applied : int;
  c_cuts : int ref;
  c_heals : int ref;
  c_bursts : int ref;
  c_spikes : int ref;
  c_crashes : int ref;
  c_recoveries : int ref;
  c_disk_stalls : int ref;
  c_disk_degrades : int ref;
  c_torn : int ref;
  c_corrupt : int ref;
  c_taps_armed : int ref;
  c_taps_fired : int ref;
}

let addr t = function
  | Cert i -> List.nth (Tashkent.Cluster.certifier_ids t.cluster) i
  | Rep i -> Tashkent.Replica.name (Tashkent.Cluster.replica t.cluster i)

let pair_eq (a, b) (c, d) =
  (String.equal a c && String.equal b d) || (String.equal a d && String.equal b c)

let cut_pair t a b =
  if not (List.exists (pair_eq (a, b)) t.cut) then begin
    Net.Network.partition t.net a b;
    t.cut <- (a, b) :: t.cut;
    incr t.c_cuts
  end

let heal_pair t a b =
  if List.exists (pair_eq (a, b)) t.cut then begin
    Net.Network.heal t.net a b;
    t.cut <- List.filter (fun p -> not (pair_eq (a, b) p)) t.cut;
    incr t.c_heals
  end

let cross t g1 g2 f =
  List.iter (fun a -> List.iter (fun b -> f (addr t a) (addr t b)) g2) g1

let certifier_at t i = List.nth (Tashkent.Cluster.certifiers t.cluster) i

(* Flat index (into the group-major certifier list) of a group's current
   leader. [leader_index] is the group-0 special case — the only group of
   a legacy 1-partition cluster. *)
let group_leader_index t g =
  match Tashkent.Cluster.group_leader t.cluster ~part:g with
  | None -> None
  | Some lead ->
      let id = Tashkent.Certifier.id lead in
      let rec find i = function
        | [] -> None
        | c :: rest ->
            if String.equal (Tashkent.Certifier.id c) id then Some i
            else find (i + 1) rest
      in
      find 0 (Tashkent.Cluster.certifiers t.cluster)

let leader_index t = group_leader_index t 0

(* [None] targets whichever certifier leads when the action fires (like
   Crash_leader); skipped when an election is in progress. *)
let resolve_cert t = function Some i -> Some i | None -> leader_index t

let cert_disk t i = Tashkent.Certifier.disk (certifier_at t i)

(* A disk-fault crash: like Crash_certifier but leaves the WAL with a torn
   or corrupt tail. Guarded on [is_up] so a plan that races another crash
   window cannot wedge the crashed_nodes accounting. Leader-targeted
   victims go onto [crashed_leaders] so Recover_crashed pairs with them. *)
let crash_with_wal_fault t ~counter ~wal_fault ~was_leader_target i =
  let c = certifier_at t i in
  if Tashkent.Certifier.is_up c then begin
    incr counter;
    incr t.c_crashes;
    t.crashed_nodes <- t.crashed_nodes + 1;
    if was_leader_target then t.crashed_leaders <- i :: t.crashed_leaders;
    Tashkent.Certifier.crash ~wal_fault c
  end

let is_quiescent t =
  t.outstanding = 0 && t.cut = [] && t.spiked = [] && t.crashed_leaders = []
  && t.crashed_group_leaders = [] && t.crashed_nodes = 0
  && t.stalled_disks = [] && t.degraded_disks = [] && t.rules = []
  && Net.Network.drop_rate t.net = 0.

(* Health transitions for the progress monitor: [healthy = true] marks the
   moment every injected fault has healed, restarting its clock. Emitted
   only on transitions, never per message. *)
let note_health t =
  let h = is_quiescent t in
  if h <> t.last_healthy then begin
    t.last_healthy <- h;
    Obs.Events.emit t.events (Obs.Events.Fault_health { healthy = h })
  end

(* ------------------------------------------------------------------ *)
(* Targeted message taps: precise, schedule-exploration faults. A rule
   counts sends matching its (class, src, dst) filter and fires exactly
   once on the nth match. The injector owns the network's single tap
   while any rule is armed; with no rules the tap is uninstalled, so an
   idle injector leaves [send] on its zero-cost path. *)

let crash_victim t = function
  | Cert i ->
      let c = certifier_at t i in
      if Tashkent.Certifier.is_up c then begin
        incr t.c_crashes;
        t.crashed_nodes <- t.crashed_nodes + 1;
        Tashkent.Certifier.crash c
      end
  | Rep i ->
      let r = Tashkent.Cluster.replica t.cluster i in
      if Tashkent.Replica.is_up r then begin
        incr t.c_crashes;
        t.crashed_nodes <- t.crashed_nodes + 1;
        Tashkent.Replica.crash r
      end

let tap_callback t ~src ~dst msg =
  let drop = ref false and delay = ref Time.zero in
  let crash_scheduled = ref false in
  List.iter
    (fun r ->
      let src_ok =
        match r.rule_src with None -> true | Some a -> String.equal a src
      in
      let dst_ok =
        match r.rule_dst with None -> true | Some a -> String.equal a dst
      in
      if src_ok && dst_ok && msg_class_matches r.rule_cls msg then begin
        r.rule_nth <- r.rule_nth - 1;
        if r.rule_nth = 0 then begin
          incr t.c_taps_fired;
          match r.rule_eff with
          | Tap_drop -> drop := true
          | Tap_delay extra -> delay := Time.add !delay extra
          | Tap_crash victim ->
              (* Crashing inside [send] would re-enter the network (a
                 crash purges the victim's links); defer to the next
                 engine step at the same sim time. *)
              crash_scheduled := true;
              Engine.schedule_after t.engine Time.zero (fun () ->
                  ignore
                    (Engine.spawn t.engine ~name:"fault.tap-crash" (fun () ->
                         crash_victim t victim;
                         note_health t)))
        end
      end)
    t.rules;
  let live = List.filter (fun r -> r.rule_nth <> 0) t.rules in
  if List.length live <> List.length t.rules then begin
    t.rules <- live;
    if t.rules = [] then Net.Network.set_tap t.net None;
    (* A fired crash makes the cluster unhealthy in the very next step:
       announcing "healed" in between would only confuse the monitors. *)
    if not !crash_scheduled then note_health t
  end;
  if !drop then Net.Network.Drop
  else if Time.is_zero !delay then Net.Network.Pass
  else Net.Network.Delay !delay

let arm_rule t ~cls ~src ~dst ~nth eff =
  if nth < 1 then invalid_arg "Fault: tap rule nth must be >= 1";
  incr t.c_taps_armed;
  let resolve = Option.map (fun n -> addr t n) in
  let r =
    {
      rule_cls = cls;
      rule_src = resolve src;
      rule_dst = resolve dst;
      rule_nth = nth;
      rule_eff = eff;
    }
  in
  let install = t.rules = [] in
  t.rules <- t.rules @ [ r ];
  if install then
    Net.Network.set_tap t.net
      (Some (fun ~src ~dst msg -> tap_callback t ~src ~dst msg))

(* Apply one action. Runs inside its own fiber: timed faults sleep here
   until their revert, and replica recovery blocks on restore + replay. *)
let apply t action =
  (match action with
  | Partition (g1, g2) -> cross t g1 g2 (cut_pair t)
  | Heal (g1, g2) -> cross t g1 g2 (heal_pair t)
  | Heal_all ->
      List.iter (fun (a, b) -> Net.Network.heal t.net a b) t.cut;
      t.c_heals := !(t.c_heals) + List.length t.cut;
      t.cut <- [];
      List.iter (fun (a, b) -> Net.Network.restore_link t.net a b) t.spiked;
      t.spiked <- [];
      Net.Network.set_drop_rate t.net 0.;
      List.iter Storage.Disk.clear_stall t.stalled_disks;
      t.stalled_disks <- [];
      List.iter Storage.Disk.clear_degrade t.degraded_disks;
      t.degraded_disks <- [];
      (* Disarm tap rules that never reached their nth match, so a plan
         whose targeted message never flowed still converges. *)
      if t.rules <> [] then begin
        t.rules <- [];
        Net.Network.set_tap t.net None
      end
  | Drop_burst { rate; duration } ->
      incr t.c_bursts;
      Net.Network.set_drop_rate t.net rate;
      Engine.sleep t.engine duration;
      Net.Network.set_drop_rate t.net 0.
  | Latency_spike { a; b; extra; duration } ->
      incr t.c_spikes;
      let a = addr t a and b = addr t b in
      Net.Network.slow_link t.net a b ~extra;
      t.spiked <- (a, b) :: t.spiked;
      Engine.sleep t.engine duration;
      Net.Network.restore_link t.net a b;
      t.spiked <- List.filter (fun p -> not (pair_eq (a, b) p)) t.spiked
  | Crash_certifier i ->
      (* Guarded for the same reason as the recover below: a plan edited
         by the explore shrinker may crash a node that is already down. *)
      let c = certifier_at t i in
      if Tashkent.Certifier.is_up c then begin
        incr t.c_crashes;
        t.crashed_nodes <- t.crashed_nodes + 1;
        Tashkent.Certifier.crash c
      end
  | Recover_certifier i ->
      (* Guarded so a recover whose paired crash no-oped (the victim was
         already down) cannot drive crashed_nodes negative and wedge
         [quiescent]. *)
      let c = certifier_at t i in
      if not (Tashkent.Certifier.is_up c) then begin
        incr t.c_recoveries;
        t.crashed_nodes <- t.crashed_nodes - 1;
        Tashkent.Certifier.recover c
      end
  | Crash_leader -> (
      match leader_index t with
      | None -> () (* election in progress: nothing to kill *)
      | Some i ->
          incr t.c_crashes;
          t.crashed_nodes <- t.crashed_nodes + 1;
          t.crashed_leaders <- i :: t.crashed_leaders;
          Tashkent.Certifier.crash (certifier_at t i))
  | Recover_crashed -> (
      match t.crashed_leaders with
      | [] -> ()
      | i :: rest ->
          t.crashed_leaders <- rest;
          incr t.c_recoveries;
          t.crashed_nodes <- t.crashed_nodes - 1;
          Tashkent.Certifier.recover (certifier_at t i))
  | Crash_group_leader g -> (
      match group_leader_index t g with
      | None -> () (* election in progress: nothing to kill *)
      | Some i ->
          incr t.c_crashes;
          t.crashed_nodes <- t.crashed_nodes + 1;
          t.crashed_group_leaders <- (g, i) :: t.crashed_group_leaders;
          Tashkent.Certifier.crash (certifier_at t i))
  | Recover_group_crashed g -> (
      match List.assoc_opt g t.crashed_group_leaders with
      | None -> ()
      | Some i ->
          t.crashed_group_leaders <-
            (let dropped = ref false in
             List.filter
               (fun (g', i') ->
                 if (not !dropped) && g' = g && i' = i then begin
                   dropped := true;
                   false
                 end
                 else true)
               t.crashed_group_leaders);
          incr t.c_recoveries;
          t.crashed_nodes <- t.crashed_nodes - 1;
          Tashkent.Certifier.recover (certifier_at t i))
  | Crash_replica i ->
      (* Guarded like the certifier pair: shrunk/hand-written plans may
         carry a crash or recover whose partner was edited out, and a
         double crash (or a recover of an up replica) must be a no-op, not
         a crashed_nodes miscount or a network reattach error. *)
      let r = Tashkent.Cluster.replica t.cluster i in
      if Tashkent.Replica.is_up r then begin
        incr t.c_crashes;
        t.crashed_nodes <- t.crashed_nodes + 1;
        Tashkent.Replica.crash r
      end
  | Recover_replica i ->
      let r = Tashkent.Cluster.replica t.cluster i in
      if not (Tashkent.Replica.is_up r) then begin
        incr t.c_recoveries;
        t.crashed_nodes <- t.crashed_nodes - 1;
        ignore (Tashkent.Replica.recover r)
      end
  | Disk_stall { cert; extra; duration } -> (
      match resolve_cert t cert with
      | None -> ()
      | Some i ->
          incr t.c_disk_stalls;
          let disk = cert_disk t i in
          Storage.Disk.set_stall disk ~extra;
          t.stalled_disks <- disk :: t.stalled_disks;
          Engine.sleep t.engine duration;
          Storage.Disk.clear_stall disk;
          t.stalled_disks <- List.filter (fun d -> d != disk) t.stalled_disks)
  | Disk_degrade { cert; factor; duration } -> (
      match resolve_cert t cert with
      | None -> ()
      | Some i ->
          incr t.c_disk_degrades;
          let disk = cert_disk t i in
          Storage.Disk.set_degrade disk ~factor;
          t.degraded_disks <- disk :: t.degraded_disks;
          Engine.sleep t.engine duration;
          Storage.Disk.clear_degrade disk;
          t.degraded_disks <- List.filter (fun d -> d != disk) t.degraded_disks)
  | Torn_crash { cert } -> (
      match resolve_cert t cert with
      | None -> ()
      | Some i ->
          crash_with_wal_fault t ~counter:t.c_torn ~wal_fault:Paxos.Node.Torn_tail
            ~was_leader_target:(cert = None) i)
  | Corrupt_tail { cert } -> (
      match resolve_cert t cert with
      | None -> ()
      | Some i ->
          crash_with_wal_fault t ~counter:t.c_corrupt
            ~wal_fault:Paxos.Node.Corrupt_tail ~was_leader_target:(cert = None) i)
  | Delay_msg { cls; src; dst; nth; extra } ->
      arm_rule t ~cls ~src ~dst ~nth (Tap_delay extra)
  | Drop_msg { cls; src; dst; nth } -> arm_rule t ~cls ~src ~dst ~nth Tap_drop
  | Crash_on_msg { cls; src; dst; nth; victim } ->
      arm_rule t ~cls ~src ~dst ~nth (Tap_crash victim));
  t.applied <- t.applied + 1;
  t.outstanding <- t.outstanding - 1;
  note_health t

let inject cluster plan =
  let engine = Tashkent.Cluster.engine cluster in
  let t =
    {
      engine;
      cluster;
      net = Tashkent.Cluster.network cluster;
      events = Tashkent.Cluster.events cluster;
      rules = [];
      last_healthy = true;
      cut = [];
      spiked = [];
      crashed_leaders = [];
      crashed_group_leaders = [];
      crashed_nodes = 0;
      stalled_disks = [];
      degraded_disks = [];
      outstanding = List.length plan;
      applied = 0;
      c_cuts = ref 0;
      c_heals = ref 0;
      c_bursts = ref 0;
      c_spikes = ref 0;
      c_crashes = ref 0;
      c_recoveries = ref 0;
      c_disk_stalls = ref 0;
      c_disk_degrades = ref 0;
      c_torn = ref 0;
      c_corrupt = ref 0;
      c_taps_armed = ref 0;
      c_taps_fired = ref 0;
    }
  in
  (* A non-empty plan makes the run unhealthy until everything heals. *)
  note_health t;
  let plan = List.sort (fun (a, _) (b, _) -> Time.compare a b) plan in
  let start = Engine.now engine in
  ignore
    (Engine.spawn engine ~name:"fault.injector" (fun () ->
         List.iter
           (fun (offset, action) ->
             let due = Time.add start offset in
             let now = Engine.now engine in
             if Time.(due > now) then Engine.sleep engine (Time.diff due now);
             (* Each action gets its own fiber so a timed fault's revert
                sleep or a blocking replica recovery never delays the next
                scheduled action. *)
             ignore (Engine.spawn engine ~name:"fault.action" (fun () -> apply t action)))
           plan));
  t

let stats t =
  {
    actions_applied = t.applied;
    partitions_cut = !(t.c_cuts);
    heals = !(t.c_heals);
    drop_bursts = !(t.c_bursts);
    latency_spikes = !(t.c_spikes);
    crashes = !(t.c_crashes);
    recoveries = !(t.c_recoveries);
    disk_stalls = !(t.c_disk_stalls);
    disk_degrades = !(t.c_disk_degrades);
    torn_crashes = !(t.c_torn);
    corrupt_tails = !(t.c_corrupt);
    msg_taps_armed = !(t.c_taps_armed);
    msg_taps_fired = !(t.c_taps_fired);
  }

let register_metrics t reg =
  let g name read = Obs.Registry.gauge reg ("fault." ^ name) read in
  g "actions_applied" (fun () -> float_of_int t.applied);
  g "partitions_cut" (fun () -> float_of_int !(t.c_cuts));
  g "heals" (fun () -> float_of_int !(t.c_heals));
  g "drop_bursts" (fun () -> float_of_int !(t.c_bursts));
  g "latency_spikes" (fun () -> float_of_int !(t.c_spikes));
  g "crashes" (fun () -> float_of_int !(t.c_crashes));
  g "recoveries" (fun () -> float_of_int !(t.c_recoveries));
  g "disk_stalls" (fun () -> float_of_int !(t.c_disk_stalls));
  g "disk_degrades" (fun () -> float_of_int !(t.c_disk_degrades));
  g "torn_crashes" (fun () -> float_of_int !(t.c_torn));
  g "corrupt_tails" (fun () -> float_of_int !(t.c_corrupt));
  g "msg_taps_armed" (fun () -> float_of_int !(t.c_taps_armed));
  g "msg_taps_fired" (fun () -> float_of_int !(t.c_taps_fired));
  g "outstanding" (fun () -> float_of_int t.outstanding)

let quiescent = is_quiescent

(* ------------------------------------------------------------------ *)
(* Seeded random plans *)

let random_plan ~seed ~duration ~n_certifiers ~n_replicas
    ?(n_partitions = 1) ?(disk_faults = false) ?(fsync_stall = Time.of_ms 600.) () =
  let rng = Rng.create (0xFA17 lxor seed) in
  let frac lo hi =
    Rng.time_uniform rng ~lo:(Time.scale duration lo) ~hi:(Time.scale duration hi)
  in
  let plan = ref [] in
  let add time action = plan := (time, action) :: !plan in
  (* Certifier-leader crash, recovered well before the horizon. One
     certifier is down at a time: a minority for any group of >= 3, so the
     remaining nodes keep a quorum (and n_certifiers = 1 setups simply get
     an outage window). *)
  let t_crash = frac 0.12 0.22 in
  add t_crash Crash_leader;
  add (Time.add t_crash (frac 0.08 0.15)) Recover_crashed;
  (* A replica partitioned away from every certifier, then healed. *)
  if n_replicas > 0 && n_certifiers > 0 then begin
    let victim = Rep (Rng.int rng n_replicas) in
    let certs = List.init n_certifiers (fun i -> Cert i) in
    let t_cut = frac 0.3 0.4 in
    add t_cut (Partition ([ victim ], certs));
    add (Time.add t_cut (frac 0.08 0.15)) (Heal ([ victim ], certs))
  end;
  (* An independent replica crash + recovery. *)
  if n_replicas > 0 then begin
    let i = Rng.int rng n_replicas in
    let t_down = frac 0.45 0.55 in
    add t_down (Crash_replica i);
    add (Time.add t_down (frac 0.1 0.15)) (Recover_replica i)
  end;
  (* Message-loss burst and a latency spike on a random certifier link. *)
  add (frac 0.2 0.6)
    (Drop_burst
       { rate = Rng.uniform rng ~lo:0.05 ~hi:0.2; duration = frac 0.05 0.1 });
  if n_certifiers > 1 then begin
    let a = Rng.int rng n_certifiers in
    let b = (a + 1 + Rng.int rng (n_certifiers - 1)) mod n_certifiers in
    add (frac 0.2 0.6)
      (Latency_spike
         {
           a = Cert a;
           b = Cert b;
           extra = Rng.time_uniform rng ~lo:(Time.of_ms 1.) ~hi:(Time.of_ms 5.);
           duration = frac 0.05 0.1;
         })
  end;
  (* Storage faults, opt-in. The windows are drawn after every network
     fault above, so a plan with [disk_faults = false] is bit-identical to
     the pre-storage-fault plan for the same seed. They are placed to keep
     at most one certifier down at a time: the leader crash above recovers
     by 0.37, the torn victim by 0.58, the corrupt victim by 0.78 — all
     before the 0.85 Heal_all backstop. *)
  if disk_faults && n_certifiers > 0 then begin
    (* Sustained fsync stall on the leader's log device: long enough per op
       to trip the certifier's fsync-deadline watchdog and force an
       abdication to a healthy-disk acceptor. *)
    add (frac 0.24 0.3)
      (Disk_stall { cert = None; extra = fsync_stall; duration = frac 0.06 0.1 });
    (* A uniformly slow (but not stuck) disk on a random certifier. *)
    add (frac 0.3 0.45)
      (Disk_degrade
         {
           cert = Some (Rng.int rng n_certifiers);
           factor = Rng.uniform rng ~lo:2.0 ~hi:6.0;
           duration = frac 0.05 0.1;
         });
    (* Power-fail the leader mid-write: its WAL keeps a torn tail for the
       recovery scan to truncate. *)
    let t_torn = frac 0.4 0.46 in
    add t_torn (Torn_crash { cert = None });
    add (Time.add t_torn (frac 0.08 0.12)) Recover_crashed;
    (* Media corruption of the newest durable record on a random
       certifier, discovered at recovery. *)
    let victim = Rng.int rng n_certifiers in
    let t_corrupt = frac 0.62 0.68 in
    add t_corrupt (Corrupt_tail { cert = Some victim });
    add (Time.add t_corrupt (frac 0.06 0.1)) (Recover_certifier victim)
  end;
  (* Partitioned certification, opt-in by n_partitions > 1: crash a
     non-zero group's leader in the middle of the run — cross-partition
     transactions prepared against it must still decide atomically through
     the surviving majority and the vote re-gossip sweep. The draws come
     after every legacy draw, so a 1-partition plan is bit-identical to
     the pre-partitioning plan for the same seed. *)
  if n_partitions > 1 then begin
    let g = 1 + Rng.int rng (n_partitions - 1) in
    let t_down = frac 0.35 0.45 in
    add t_down (Crash_group_leader g);
    add (Time.add t_down (frac 0.1 0.15)) (Recover_group_crashed g)
  end;
  (* Backstop: whatever is still broken heals before the measurement tail. *)
  add (Time.scale duration 0.85) Heal_all;
  List.rev !plan

(** A multi-Paxos node: proposer, acceptor and learner combined.

    The paper (§7.3) replicates the certifier over a small set of nodes
    with an elected leader: the leader certifies, sends the new state (log
    records) to all certifiers, everyone writes it to disk, and once a
    majority has acknowledged, the records are committed. This module is
    that replication layer, generic in the value type.

    Integration contract: the owner gives the node a [send] function and
    feeds every incoming wire message to {!handle}. Acceptor state
    (promises and accepted slot values) is persisted in a {!Storage.Wal}
    whose disk is the node's log device, so a leader proposing many values
    concurrently groups their disk writes into few fsyncs — the behaviour
    the whole paper hinges on. Values committed by the group are delivered
    to [on_deliver] exactly once per node, in slot order.

    Leadership: heartbeat timeouts trigger an election (Prepare/Promise
    with accepted-value recovery, then re-proposal under the new ballot).
    A node that crashes loses its un-synced WAL tail and rejoins via state
    transfer from the current leader. *)

type 'v entry_value = 'v Wal_record.entry_value = Noop | Value of 'v

type 'v slot_value = { slot : int; ballot : Ballot.t; value : 'v entry_value }

(** The wire protocol, exposed concretely so tests can inject crafted
    messages (e.g. duplicate [Accept_ok]s) through {!handle}. *)
type 'v message =
  | Prepare of { ballot : Ballot.t; from : string; commit_index : int }
  | Promise of {
      ballot : Ballot.t;
      from : string;
      accepted : 'v slot_value list;
      commit_index : int;
    }
  | Prepare_reject of { from : string; higher : Ballot.t }
  | Accept of { ballot : Ballot.t; from : string; entries : 'v slot_value list }
  | Accept_ok of { ballot : Ballot.t; from : string; slots : int list }
  | Accept_reject of { from : string; higher : Ballot.t }
  | Commit of { from : string; entries : (int * 'v entry_value) list; commit_index : int }
  | Heartbeat of { ballot : Ballot.t; from : string; commit_index : int }
  | Ask_transfer of { from : string; applied : int }

val message_bytes : ('v -> int) -> 'v message -> int
(** Wire size estimate, given a value sizer. *)

val pp_message_kind : Format.formatter -> 'v message -> unit

type 'v t

type config = {
  heartbeat_interval : Sim.Time.t;
  election_timeout_lo : Sim.Time.t;  (** randomised per election attempt *)
  election_timeout_hi : Sim.Time.t;
}

val default_config : config

val create :
  Sim.Engine.t ->
  rng:Sim.Rng.t ->
  id:string ->
  peers:string list ->
  disk:Storage.Disk.t ->
  send:(dst:string -> 'v message -> unit) ->
  on_deliver:(int -> 'v -> unit) ->
  ?config:config ->
  unit ->
  'v t
(** [peers] excludes [id]. The node starts as a follower; the node with the
    lowest id typically wins the first election. Spawns its timer fibers
    immediately. *)

val id : 'v t -> string
val handle : 'v t -> 'v message -> unit
(** Feed an incoming message. Cheap; heavy work (disk writes) runs in
    internal fibers. *)

(** {1 Proposing} *)

val is_leader : 'v t -> bool
val leader_hint : 'v t -> string option

val leader_ready : 'v t -> bool
(** True once this node is leader {e and} has delivered every entry it
    inherited (re-proposed) from previous leaderships. A state machine
    layered on the log must not answer reads against it (e.g. certify)
    before this point: the log may still be missing majority-accepted
    entries from the previous term. Always false on non-leaders. *)

val propose : 'v t -> 'v -> bool
(** Submit a value for replication. Returns false (value dropped) if this
    node is not currently leader — the caller should retry via
    {!leader_hint}. Delivery to [on_deliver] across the group signals
    success. *)

val propose_batch : 'v t -> 'v list -> bool
(** Submit several values at once: contiguous slots, ONE multi-entry
    Accept broadcast, and one WAL batch-append (hence at most one fsync)
    per acceptor for the whole batch. [propose_batch t []] is a no-op that
    reports leadership. *)

(** {1 Introspection} *)

val commit_index : 'v t -> int
val applied_index : 'v t -> int
val current_ballot : 'v t -> Ballot.t
val wal : 'v t -> 'v Wal_record.t Storage.Wal.t

val accept_broadcasts : 'v t -> int
(** Accept broadcasts sent while leader — each covers a whole batch. *)

val mean_accept_batch : 'v t -> float
(** Mean entries per Accept broadcast (> 1 under load once the certifier
    batches). *)

val reset_batch_stats : 'v t -> unit

val abdicate : 'v t -> backoff:Sim.Time.t -> unit
(** Degraded-disk failover: if this node is leader, step down to follower
    without learning a new ballot and defer this node's own next election
    attempt by [backoff], so a healthy peer (whose randomised timeout is at
    most [election_timeout_hi]) wins the next election. No-op on
    non-leaders. *)

(** {1 Crash and recovery} *)

type wal_fault =
  | Torn_tail
      (** the first un-synced record was mid-write at power-off and
          survives as a partial record *)
  | Corrupt_tail
      (** the newest durable record's payload no longer matches its
          checksum *)

val crash : ?wal_fault:wal_fault -> 'v t -> unit
(** Lose volatile state and the un-synced WAL tail; the node stops
    reacting to messages and timers until {!recover}. [wal_fault] leaves
    the log with a torn or corrupt tail for the recovery scan to find. *)

val recover : 'v t -> unit
(** Checksum-scan the WAL ({!Storage.Wal.recover}), rebuild
    promises/accepted values from the verified prefix, resume as a
    follower, and catch up via state transfer. Safe against torn/corrupt
    tails: a record that failed the scan was never acked to a peer (its
    Promise/Accept_ok is only sent after the sync returns), except that
    promises are double-written so even corruption of the newest durable
    record cannot make this acceptor un-promise. *)

val is_up : 'v t -> bool

open Sim

type 'v entry_value = 'v Wal_record.entry_value = Noop | Value of 'v

type 'v slot_value = { slot : int; ballot : Ballot.t; value : 'v entry_value }

type 'v message =
  | Prepare of { ballot : Ballot.t; from : string; commit_index : int }
  | Promise of {
      ballot : Ballot.t;
      from : string;
      accepted : 'v slot_value list;
      commit_index : int;
    }
  | Prepare_reject of { from : string; higher : Ballot.t }
  | Accept of { ballot : Ballot.t; from : string; entries : 'v slot_value list }
  | Accept_ok of { ballot : Ballot.t; from : string; slots : int list }
  | Accept_reject of { from : string; higher : Ballot.t }
  | Commit of { from : string; entries : (int * 'v entry_value) list; commit_index : int }
  | Heartbeat of { ballot : Ballot.t; from : string; commit_index : int }
  | Ask_transfer of { from : string; applied : int }

let entry_value_bytes value_bytes = function Noop -> 4 | Value v -> 4 + value_bytes v

let message_bytes value_bytes = function
  | Prepare _ | Prepare_reject _ | Accept_reject _ | Heartbeat _ -> 32
  | Accept_ok { slots; _ } -> 32 + (8 * List.length slots)
  | Promise { accepted; _ } ->
      List.fold_left (fun a sv -> a + 24 + entry_value_bytes value_bytes sv.value) 32 accepted
  | Accept { entries; _ } ->
      List.fold_left (fun a sv -> a + 24 + entry_value_bytes value_bytes sv.value) 32 entries
  | Commit { entries; _ } ->
      List.fold_left (fun a (_, v) -> a + 12 + entry_value_bytes value_bytes v) 32 entries
  | Ask_transfer _ -> 16

let pp_message_kind fmt = function
  | Prepare _ -> Format.pp_print_string fmt "prepare"
  | Promise _ -> Format.pp_print_string fmt "promise"
  | Prepare_reject _ -> Format.pp_print_string fmt "prepare-reject"
  | Accept _ -> Format.pp_print_string fmt "accept"
  | Accept_ok _ -> Format.pp_print_string fmt "accept-ok"
  | Accept_reject _ -> Format.pp_print_string fmt "accept-reject"
  | Commit _ -> Format.pp_print_string fmt "commit"
  | Heartbeat _ -> Format.pp_print_string fmt "heartbeat"
  | Ask_transfer _ -> Format.pp_print_string fmt "ask-transfer"

type config = {
  heartbeat_interval : Time.t;
  election_timeout_lo : Time.t;
  election_timeout_hi : Time.t;
}

let default_config =
  {
    heartbeat_interval = Time.of_ms 20.;
    election_timeout_lo = Time.of_ms 80.;
    election_timeout_hi = Time.of_ms 160.;
  }

type 'v role =
  | Follower
  | Candidate of { ballot : Ballot.t; mutable promises : (string * 'v slot_value list) list }
  | Leader of {
      ballot : Ballot.t;
      mutable next_slot : int;
      (* slot -> set of acked peers; Hashtbl.length is O(1), so the
         majority test never walks the set. *)
      acks : (int, (string, unit) Hashtbl.t) Hashtbl.t;
    }

type 'v t = {
  engine : Engine.t;
  rng : Rng.t;
  node_id : string;
  peers : string list;
  cluster_size : int;
  cfg : config;
  send : dst:string -> 'v message -> unit;
  on_deliver : int -> 'v -> unit;
  node_wal : 'v Wal_record.t Storage.Wal.t;
  value_bytes_hint : int; (* only for wal accounting of unknown values *)
  mutable up : bool;
  mutable promised : Ballot.t;
  accepted : (int, 'v slot_value) Hashtbl.t;
  chosen : (int, 'v entry_value) Hashtbl.t;
  mutable commit : int;
  mutable applied : int;
  mutable role : 'v role;
  (* Highest slot inherited from previous leaderships at election time; a
     new leader must not expose state (certify against its log) until these
     are delivered, or a retried request could be certified against a log
     missing an accepted-but-undelivered twin of itself. *)
  mutable recovery_floor : int;
  mutable leader_seen : string option;
  mutable election_deadline : Time.t;
  accept_broadcasts : Stats.Counter.t;
  accept_batch_sizes : Stats.Summary.t;
}

let majority t = (t.cluster_size / 2) + 1
let id t = t.node_id
let is_up t = t.up
let commit_index t = t.commit
let applied_index t = t.applied
let current_ballot t = t.promised
let wal t = t.node_wal

let is_leader t = match t.role with Leader _ -> true | Follower | Candidate _ -> false

let leader_ready t =
  match t.role with
  | Leader _ -> t.applied >= t.recovery_floor
  | Follower | Candidate _ -> false

let leader_hint t =
  match t.role with Leader _ -> Some t.node_id | Follower | Candidate _ -> t.leader_seen

let broadcast t msg = List.iter (fun peer -> t.send ~dst:peer msg) t.peers

let fresh_deadline t =
  Time.add (Engine.now t.engine)
    (Rng.time_uniform t.rng ~lo:t.cfg.election_timeout_lo ~hi:t.cfg.election_timeout_hi)

let record_bytes t r = Wal_record.bytes (fun _ -> t.value_bytes_hint) r

(* Promises are double-written: two consecutive copies of the record, one
   fsync for the pair. An acceptor that "un-promises" after a restart can
   let two leaders win the same ballot, so the newest promise must survive
   every single-record storage fault the recovery scan can hit: a torn
   final record was never acked (write-ahead: we only send the Promise
   after the sync returns), and corruption of the final durable record
   leaves the first copy of the pair intact. *)
let persist_promise t record =
  let bytes = record_bytes t record in
  ignore (Storage.Wal.append t.node_wal ~bytes record);
  ignore (Storage.Wal.append_and_sync t.node_wal ~bytes record)

let deliver_ready t =
  let rec loop () =
    match Hashtbl.find_opt t.chosen (t.applied + 1) with
    | None -> ()
    | Some value ->
        t.applied <- t.applied + 1;
        (match value with Value v -> t.on_deliver t.applied v | Noop -> ());
        loop ()
  in
  loop ()

let learn t slot value =
  if not (Hashtbl.mem t.chosen slot) then Hashtbl.replace t.chosen slot value

(* ------------------------------------------------------------------ *)
(* Leader side *)

let newly_chosen_entries t ~from_slot =
  let rec collect s acc =
    if s > t.commit then List.rev acc
    else collect (s + 1) ((s, Hashtbl.find t.chosen s) :: acc)
  in
  collect from_slot []

let advance_commit t =
  match t.role with
  | Leader l ->
      let start = t.commit + 1 in
      let rec advance () =
        match Hashtbl.find_opt l.acks (t.commit + 1) with
        | Some acks when Hashtbl.length acks >= majority t -> (
            match Hashtbl.find_opt t.accepted (t.commit + 1) with
            | Some sv ->
                t.commit <- t.commit + 1;
                learn t t.commit sv.value;
                Hashtbl.remove l.acks t.commit;
                advance ()
            | None -> ())
        | Some _ | None -> ()
      in
      advance ();
      if t.commit >= start then begin
        deliver_ready t;
        let entries = newly_chosen_entries t ~from_slot:start in
        broadcast t (Commit { from = t.node_id; entries; commit_index = t.commit })
      end
  | Follower | Candidate _ -> ()

let leader_ack t ballot slot ~from =
  match t.role with
  | Leader l when Ballot.equal l.ballot ballot ->
      let acks =
        match Hashtbl.find_opt l.acks slot with
        | Some acks -> acks
        | None ->
            let acks = Hashtbl.create 8 in
            Hashtbl.replace l.acks slot acks;
            acks
      in
      (* A duplicate Accept_ok from the same peer must not double-count
         toward the majority. *)
      if not (Hashtbl.mem acks from) then Hashtbl.replace acks from ();
      advance_commit t
  | Leader _ | Follower | Candidate _ -> ()

let accepted_records entries =
  List.map
    (fun sv -> Wal_record.Accepted { slot = sv.slot; ballot = sv.ballot; value = sv.value })
    entries

let send_accepts t ballot entries =
  (* Replicate then self-accept; the self-accept's fsync groups with any
     other in-flight proposal on this node's log disk. *)
  Stats.Counter.incr t.accept_broadcasts;
  Stats.Summary.observe t.accept_batch_sizes (float_of_int (List.length entries));
  broadcast t (Accept { ballot; from = t.node_id; entries });
  ignore
    (Engine.spawn t.engine ~name:(t.node_id ^ ".selfaccept") (fun () ->
         List.iter (fun sv -> Hashtbl.replace t.accepted sv.slot sv) entries;
         ignore
           (Storage.Wal.append_batch t.node_wal ~bytes_of:(record_bytes t)
              (accepted_records entries));
         Storage.Wal.sync t.node_wal;
         if t.up then
           List.iter (fun sv -> leader_ack t ballot sv.slot ~from:t.node_id) entries))

let propose_batch t vs =
  match t.role with
  | Leader _ when vs = [] -> true
  | Leader l ->
      let entries =
        List.map
          (fun v ->
            let slot = l.next_slot in
            l.next_slot <- slot + 1;
            { slot; ballot = l.ballot; value = Value v })
          vs
      in
      send_accepts t l.ballot entries;
      true
  | Follower | Candidate _ -> false

let propose t v = propose_batch t [ v ]

let accept_broadcasts t = Stats.Counter.value t.accept_broadcasts
let mean_accept_batch t = Stats.Summary.mean t.accept_batch_sizes

let reset_batch_stats t =
  Stats.Counter.reset t.accept_broadcasts;
  Stats.Summary.reset t.accept_batch_sizes

let become_leader t ballot promises =
  (* Merge the highest-ballot accepted value per slot above our commit
     point, from our own table and every promise. *)
  let best : (int, 'v slot_value) Hashtbl.t = Hashtbl.create 16 in
  let consider sv =
    if sv.slot > t.commit then
      match Hashtbl.find_opt best sv.slot with
      | Some cur when Ballot.(cur.ballot >= sv.ballot) -> ()
      | Some _ | None -> Hashtbl.replace best sv.slot sv
  in
  Hashtbl.iter (fun _ sv -> consider sv) t.accepted;
  List.iter (fun (_, accepted) -> List.iter consider accepted) promises;
  let max_slot = Hashtbl.fold (fun slot _ acc -> max slot acc) best t.commit in
  let entries =
    List.init (max_slot - t.commit) (fun i ->
        let slot = t.commit + 1 + i in
        match Hashtbl.find_opt best slot with
        | Some sv -> { sv with ballot }
        | None -> { slot; ballot; value = Noop })
  in
  t.role <- Leader { ballot; next_slot = max_slot + 1; acks = Hashtbl.create 16 };
  t.recovery_floor <- max_slot;
  t.leader_seen <- Some t.node_id;
  broadcast t (Heartbeat { ballot; from = t.node_id; commit_index = t.commit });
  if entries <> [] then send_accepts t ballot entries

let start_election t =
  let ballot = Ballot.next t.promised ~node:t.node_id in
  t.promised <- ballot;
  t.election_deadline <- fresh_deadline t;
  let own_accepted = Hashtbl.fold (fun _ sv acc -> sv :: acc) t.accepted [] in
  t.role <- Candidate { ballot; promises = [ (t.node_id, own_accepted) ] };
  ignore
    (Engine.spawn t.engine ~name:(t.node_id ^ ".election") (fun () ->
         persist_promise t (Wal_record.Promised ballot);
         if t.up then begin
           match t.role with
           | Candidate c when Ballot.equal c.ballot ballot ->
               broadcast t (Prepare { ballot; from = t.node_id; commit_index = t.commit });
               if majority t = 1 then become_leader t ballot c.promises
           | _ -> ()
         end))

(* Degraded-disk failover: a leader whose log device has gone bad steps
   down voluntarily so a healthy-disk peer can lead. Unlike {!step_down} it
   does not learn a higher ballot — it just stops leading and defers its
   own next election by [backoff], giving the healthy peers (whose timeout
   is election_timeout_hi at most) first claim on the leadership. *)
let abdicate t ~backoff =
  match t.role with
  | Leader _ ->
      t.role <- Follower;
      t.leader_seen <- None;
      t.election_deadline <- Time.add (Engine.now t.engine) backoff
  | Follower | Candidate _ -> ()

let step_down t ~higher =
  if Ballot.(higher > t.promised) then t.promised <- higher;
  (match t.role with
  | Leader _ | Candidate _ ->
      t.role <- Follower;
      t.election_deadline <- fresh_deadline t
  | Follower -> ())

(* ------------------------------------------------------------------ *)
(* Acceptor / learner side *)

let handle_prepare t ~ballot ~from ~commit_index =
  if Ballot.(ballot > t.promised) then begin
    t.promised <- ballot;
    (match t.role with Leader _ | Candidate _ -> t.role <- Follower | Follower -> ());
    t.election_deadline <- fresh_deadline t;
    ignore
      (Engine.spawn t.engine ~name:(t.node_id ^ ".promise") (fun () ->
           persist_promise t (Wal_record.Promised ballot);
           if t.up then begin
             let accepted =
               Hashtbl.fold
                 (fun slot sv acc -> if slot > commit_index then sv :: acc else acc)
                 t.accepted []
             in
             t.send ~dst:from
               (Promise { ballot; from = t.node_id; accepted; commit_index = t.commit })
           end))
  end
  else t.send ~dst:from (Prepare_reject { from = t.node_id; higher = t.promised })

let handle_promise t ~ballot ~from ~accepted =
  match t.role with
  | Candidate c when Ballot.equal c.ballot ballot ->
      if not (List.mem_assoc from c.promises) then
        c.promises <- (from, accepted) :: c.promises;
      if List.length c.promises >= majority t then become_leader t ballot c.promises
  | Candidate _ | Leader _ | Follower -> ()

let handle_accept t ~ballot ~from ~entries =
  if Ballot.(ballot >= t.promised) then begin
    t.promised <- ballot;
    (match t.role with
    | Leader l when not (Ballot.equal l.ballot ballot) -> t.role <- Follower
    | Candidate _ -> t.role <- Follower
    | Leader _ | Follower -> ());
    t.leader_seen <- Some from;
    t.election_deadline <- fresh_deadline t;
    ignore
      (Engine.spawn t.engine ~name:(t.node_id ^ ".accept") (fun () ->
           List.iter (fun sv -> Hashtbl.replace t.accepted sv.slot sv) entries;
           ignore
             (Storage.Wal.append_batch t.node_wal ~bytes_of:(record_bytes t)
                (accepted_records entries));
           Storage.Wal.sync t.node_wal;
           if t.up then
             t.send ~dst:from
               (Accept_ok
                  { ballot; from = t.node_id; slots = List.map (fun sv -> sv.slot) entries })))
  end
  else t.send ~dst:from (Accept_reject { from = t.node_id; higher = t.promised })

let request_transfer_if_behind t ~from ~commit_index =
  if commit_index > t.applied then
    t.send ~dst:from (Ask_transfer { from = t.node_id; applied = t.applied })

let handle_commit t ~from ~entries ~commit_index =
  List.iter (fun (slot, value) -> learn t slot value) entries;
  if commit_index > t.commit then t.commit <- commit_index;
  deliver_ready t;
  (* A gap means we missed earlier Commit messages: fetch them. *)
  if t.applied < t.commit && not (Hashtbl.mem t.chosen (t.applied + 1)) then
    t.send ~dst:from (Ask_transfer { from = t.node_id; applied = t.applied })

let handle_ask_transfer t ~from ~applied =
  let entries =
    let rec collect s acc =
      if s > t.commit then List.rev acc
      else
        match Hashtbl.find_opt t.chosen s with
        | Some v -> collect (s + 1) ((s, v) :: acc)
        | None -> List.rev acc
    in
    collect (applied + 1) []
  in
  if entries <> [] then
    t.send ~dst:from (Commit { from = t.node_id; entries; commit_index = t.commit })

let handle t msg =
  if t.up then
    match msg with
    | Prepare { ballot; from; commit_index } -> handle_prepare t ~ballot ~from ~commit_index
    | Promise { ballot; from; accepted; commit_index = _ } ->
        handle_promise t ~ballot ~from ~accepted
    | Prepare_reject { higher; _ } -> step_down t ~higher
    | Accept { ballot; from; entries } -> handle_accept t ~ballot ~from ~entries
    | Accept_ok { ballot; from; slots } ->
        List.iter (fun slot -> leader_ack t ballot slot ~from) slots
    | Accept_reject { higher; _ } -> step_down t ~higher
    | Commit { from; entries; commit_index } -> handle_commit t ~from ~entries ~commit_index
    | Heartbeat { ballot; from; commit_index } ->
        if Ballot.(ballot >= t.promised) then begin
          t.promised <- ballot;
          (match t.role with
          | Leader l when not (Ballot.equal l.ballot ballot) -> t.role <- Follower
          | Candidate _ -> t.role <- Follower
          | Leader _ | Follower -> ());
          t.leader_seen <- Some from;
          t.election_deadline <- fresh_deadline t;
          request_transfer_if_behind t ~from ~commit_index
        end
    | Ask_transfer { from; applied } -> handle_ask_transfer t ~from ~applied

(* ------------------------------------------------------------------ *)
(* Timers, creation, crash/recovery *)

(* Accept retransmission. There is no ack-driven resend: an Accept
   broadcast (or every Accept_ok for it) lost to the network would wedge
   its slot forever — the commit index cannot pass an unchosen slot, and
   the leader keeps heartbeating, so no election ever rescues the group.
   When the commit index sits still across heartbeat intervals with
   proposals in flight, re-broadcast the oldest pending slots' Accepts:
   acceptors re-accept idempotently (equal ballot) and re-send their
   Accept_ok, and {!leader_ack} dedups per peer. Bounded to a window off
   the commit index — choosing those unblocks the next window. *)
let resend_window = 32

let resend_pending t ~ballot ~next_slot =
  let pending =
    let hi = min (next_slot - 1) (t.commit + resend_window) in
    let rec collect slot acc =
      if slot <= t.commit then acc
      else
        match Hashtbl.find_opt t.accepted slot with
        | Some sv -> collect (slot - 1) ({ sv with ballot } :: acc)
        | None -> collect (slot - 1) acc
    in
    collect hi []
  in
  if pending <> [] then
    broadcast t (Accept { ballot; from = t.node_id; entries = pending })

let spawn_timers t =
  ignore
    (Engine.spawn t.engine ~name:(t.node_id ^ ".timers") (fun () ->
         (* Commit index at the previous tick: no movement across a full
            interval with slots in flight means their Accepts are lost. *)
         let last_commit = ref (-1) in
         let rec loop () =
           Engine.sleep t.engine t.cfg.heartbeat_interval;
           if t.up then begin
             (match t.role with
             | Leader l ->
                 broadcast t
                   (Heartbeat { ballot = l.ballot; from = t.node_id; commit_index = t.commit });
                 if t.commit = !last_commit && l.next_slot > t.commit + 1 then
                   resend_pending t ~ballot:l.ballot ~next_slot:l.next_slot
             | Follower | Candidate _ ->
                 if Time.(Engine.now t.engine >= t.election_deadline) then start_election t);
             last_commit := t.commit
           end;
           loop ()
         in
         loop ()))

let create engine ~rng ~id:node_id ~peers ~disk ~send ~on_deliver
    ?(config = default_config) () =
  let t =
    {
      engine;
      rng;
      node_id;
      peers;
      cluster_size = 1 + List.length peers;
      cfg = config;
      send;
      on_deliver;
      node_wal = Storage.Wal.create engine ~disk ~name:(node_id ^ ".wal") ();
      value_bytes_hint = 256;
      up = true;
      promised = Ballot.initial;
      accepted = Hashtbl.create 64;
      chosen = Hashtbl.create 64;
      commit = 0;
      applied = 0;
      role = Follower;
      recovery_floor = 0;
      leader_seen = None;
      election_deadline = Time.zero;
      accept_broadcasts = Stats.Counter.create ();
      accept_batch_sizes = Stats.Summary.create ();
    }
  in
  t.election_deadline <- fresh_deadline t;
  spawn_timers t;
  t

type wal_fault = Torn_tail | Corrupt_tail

let crash ?wal_fault t =
  t.up <- false;
  (match wal_fault with
  | None -> ignore (Storage.Wal.crash t.node_wal)
  | Some Torn_tail -> ignore (Storage.Wal.crash ~torn:true t.node_wal)
  | Some Corrupt_tail ->
      ignore (Storage.Wal.crash t.node_wal);
      ignore (Storage.Wal.corrupt_tail t.node_wal));
  Hashtbl.reset t.accepted;
  Hashtbl.reset t.chosen;
  t.commit <- 0;
  t.applied <- 0;
  t.promised <- Ballot.initial;
  t.role <- Follower;
  t.recovery_floor <- 0;
  t.leader_seen <- None

let recover t =
  (* Checksum-scan the acceptor log: replay only the verified prefix. A
     torn record was never acked (write-ahead discipline: every Promise /
     Accept_ok is sent only after its sync returned), so truncating it
     cannot forget a promise or acceptance the group observed. *)
  let records, _scan = Storage.Wal.recover t.node_wal in
  List.iter
    (fun record ->
      match record with
      | Wal_record.Promised b -> if Ballot.(b > t.promised) then t.promised <- b
      | Wal_record.Accepted { slot; ballot; value } -> (
          match Hashtbl.find_opt t.accepted slot with
          | Some sv when Ballot.(sv.ballot >= ballot) -> ()
          | Some _ | None -> Hashtbl.replace t.accepted slot { slot; ballot; value }))
    records;
  t.up <- true;
  t.role <- Follower;
  t.election_deadline <- fresh_deadline t;
  (* Catch up on the chosen log from whoever leads now. *)
  broadcast t (Ask_transfer { from = t.node_id; applied = 0 })

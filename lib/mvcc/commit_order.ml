open Sim

type t = {
  engine : Engine.t;
  mutable allocated : int;
  mutable announced_upto : int;
  mutable turnstile : Waitq.t;
  (* Sequence numbers finished out of order (parallel apply) that are still
     waiting for every lower number to finish before they can publish. *)
  completed : (int, unit) Hashtbl.t;
}

let create engine () =
  {
    engine;
    allocated = 0;
    announced_upto = 0;
    turnstile = Waitq.create engine ();
    completed = Hashtbl.create 64;
  }

let next_seq t =
  t.allocated <- t.allocated + 1;
  t.allocated

let rec wait_turn t n =
  if n <= 0 then invalid_arg "Commit_order.wait_turn: sequence numbers are 1-based";
  if t.announced_upto < n - 1 then begin
    Waitq.wait t.turnstile;
    wait_turn t n
  end

let announce t n =
  if n <> t.announced_upto + 1 then
    invalid_arg
      (Printf.sprintf "Commit_order.announce: got %d, expected %d" n
         (t.announced_upto + 1));
  t.announced_upto <- n;
  Waitq.broadcast t.turnstile

(* Out-of-order completion with ordered publish: mark [n] finished in any
   order; the announced prefix only advances through a contiguous run of
   completed numbers, so observers never see [n] published before [n-1]. *)
let complete t n =
  if n <= 0 then invalid_arg "Commit_order.complete: sequence numbers are 1-based";
  if n > t.announced_upto && not (Hashtbl.mem t.completed n) then begin
    Hashtbl.replace t.completed n ();
    let advanced = ref false in
    while Hashtbl.mem t.completed (t.announced_upto + 1) do
      Hashtbl.remove t.completed (t.announced_upto + 1);
      t.announced_upto <- t.announced_upto + 1;
      advanced := true
    done;
    if !advanced then Waitq.broadcast t.turnstile
  end

let announced t = t.announced_upto
let waiting t = Waitq.waiters t.turnstile

let reset t =
  t.allocated <- 0;
  t.announced_upto <- 0;
  Hashtbl.reset t.completed;
  t.turnstile <- Waitq.create t.engine ()

(** Writesets: the minimal description of a transaction's modifications.

    Extracted at the replica (the paper uses triggers in PostgreSQL),
    shipped to the certifier for write–write conflict detection, and
    re-applied at the other replicas. Order of operations within a writeset
    is preserved; a later operation on the same key supersedes the earlier
    one (only the final image is shipped). *)

type op = Insert of Value.t | Update of Value.t | Delete

type entry = { key : Key.t; op : op }

type t

val empty : t
val is_empty : t -> bool
val singleton : Key.t -> op -> t
val add : t -> Key.t -> op -> t
val of_list : (Key.t * op) list -> t

val entries : t -> entry list
(** In first-write order (with superseded duplicates removed). *)

val cardinal : t -> int
val keys : t -> Key.t list

val iter_keys : t -> (Key.t -> unit) -> unit
(** Allocation-free iteration over the distinct keys, in first-write
    order. The certification hot path ({!Cert_log}) uses this instead of
    {!keys} to avoid building a list per conflict check. *)

val mem : t -> Key.t -> bool

val intersects : t -> t -> bool
(** True when the two writesets touch a common key — the certification
    test. *)

val inter_keys : t -> t -> Key.t list

val union : t -> t -> t
(** [union earlier later]: combined effects, [later] winning on shared
    keys. Used to batch several remote writesets into one transaction
    (T1_2_3 in paper §3). *)

val encoded_bytes : t -> int
(** Wire/log size; the paper reports 54 B (AllUpdates), 158 B (TPC-B),
    275 B (TPC-W) averages. *)

val pp : Format.formatter -> t -> unit

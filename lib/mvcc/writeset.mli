(** Writesets: the minimal description of a transaction's modifications.

    Extracted at the replica (the paper uses triggers in PostgreSQL),
    shipped to the certifier for write–write conflict detection, and
    re-applied at the other replicas. Order of operations within a writeset
    is preserved; a later operation on the same key supersedes the earlier
    one (only the final image is shipped).

    Two op families coexist. The final-image ops ([Insert]/[Update]/
    [Delete]) are blind writes: they pin a concrete value and conflict with
    any concurrent writer of the same key. [Add] is a commutative delta: it
    records an integer increment against whatever value is committed at
    apply time, so two concurrent [Add]s on the same key commute and the
    certifier lets both commit (the delta fast path). A delta folded onto a
    final image inside one writeset collapses to a final image — the
    transaction has pinned a value, so the commutativity is gone. *)

type op =
  | Insert of Value.t
  | Update of Value.t
  | Delete
  | Add of int  (** commutative integer increment against the committed base *)

type entry = { key : Key.t; op : op }

type t

val op_is_delta : op -> bool
(** True only for [Add]. *)

val empty : t
val is_empty : t -> bool
val singleton : Key.t -> op -> t
val add : t -> Key.t -> op -> t
val of_list : (Key.t * op) list -> t

val entries : t -> entry list
(** In first-write order (with superseded duplicates removed). A later
    final image replaces an earlier op on the same key; a later [Add]
    folds onto an earlier op (image + delta stays an image, delta + delta
    sums, delete + delta re-creates the row from a zero base). *)

val cardinal : t -> int
val keys : t -> Key.t list

val iter_keys : t -> (Key.t -> unit) -> unit
(** Allocation-free iteration over the distinct keys, in first-write
    order. The certification hot path ({!Cert_log}) uses this instead of
    {!keys} to avoid building a list per conflict check. *)

val iter_entries : t -> (Key.t -> op -> unit) -> unit
(** Like {!iter_keys} but also hands over each key's final op, so the
    delta-aware certification and apply paths can classify writes without
    an extra lookup. *)

val mem : t -> Key.t -> bool

val find_op : t -> Key.t -> op option
(** The final op this writeset holds for [key], by binary search over the
    sealed key-sorted entries. *)

val all_deltas : t -> bool
(** True when every entry is an [Add] — the writeset commutes with any
    other all-delta writeset. Vacuously true for {!empty}. *)

val intersects : t -> t -> bool
(** True when the two writesets touch a common key — the certification
    test. *)

val inter_keys : t -> t -> Key.t list

val union : t -> t -> t
(** [union earlier later]: combined effects, [later] winning on shared
    keys (with [later]'s deltas folding onto [earlier]'s images, as in
    {!entries}). Used to batch several remote writesets into one
    transaction (T1_2_3 in paper §3). *)

val encoded_bytes : t -> int
(** Wire/log size; the paper reports 54 B (AllUpdates), 158 B (TPC-B),
    275 B (TPC-W) averages. Delta ops are 9 B (tag + increment) plus the
    key, and legacy blind-write sets are unaffected. *)

val pp : Format.formatter -> t -> unit

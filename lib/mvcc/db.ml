open Sim

type txid = int

type durability = Synchronous | Asynchronous | Periodic of Time.t

type config = {
  durability : durability;
  commit_record_bytes : int;
  page_bytes : int;
  page_read_miss : float;
  page_writeback_per_op : float;
  background_page_writes_per_sec : float;
  commit_cpu : Time.t;
  remote_priority : bool;
  gc_interval : Time.t option;
  max_snapshot_age : Time.t option;
}

let default_config =
  {
    durability = Synchronous;
    commit_record_bytes = 8192;
    page_bytes = 8192;
    page_read_miss = 0.;
    page_writeback_per_op = 0.;
    background_page_writes_per_sec = 0.;
    commit_cpu = Time.zero;
    remote_priority = false;
    gc_interval = None;
    max_snapshot_age = None;
  }

type abort_reason = Ww_conflict of Key.t | Deadlock of txid list | Preempted

let pp_abort_reason fmt = function
  | Ww_conflict key -> Format.fprintf fmt "ww-conflict on %a" Key.pp key
  | Deadlock cycle ->
      Format.fprintf fmt "deadlock [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt " -> ")
           Format.pp_print_int)
        cycle
  | Preempted -> Format.pp_print_string fmt "preempted"

type tx_state = Active | Doomed of abort_reason | Committing | Committed | Aborted

type tx = {
  db : t;
  id : txid;
  snapshot : int;
  remote : bool;
  born : Time.t;  (* begin time, for the max-snapshot-age escape hatch *)
  mutable buffer : Writeset.t;
  mutable state : tx_state;
  mutable parked : ((unit, abort_reason) result -> unit) option;
  mutable parked_key : Key.t option;
}

and t = {
  engine : Engine.t;
  rng : Rng.t;
  label : string;
  cfg : config;
  cpu : Resource.t option;
  data_disk : Storage.Disk.t option;
  mutable db_store : Store.t;
  mutable locks : Locks.t;
  mutable order : Commit_order.t;
  (* Commit records carry (version, prev, writeset): [prev] is the version
     this replica had applied immediately before [version], so recovery can
     verify the redo chain and truncate at the first gap — essential once
     parallel apply lets records reach the log out of version order. *)
  db_wal : (int * int * Writeset.t) Storage.Wal.t;
  (* Parallel-apply publish frontier: completed-but-unpublished commits,
     keyed by announce order, whose store visibility is still waiting for a
     lower order to finish. *)
  parallel_versions : (int, int) Hashtbl.t;
  mutable published_order : int;
  active : (txid, tx) Hashtbl.t;
  mutable initial_rows : (Key.t * Value.t) list;
  mutable next_txid : int;
  (* Cluster GC watermark gossiped back by the certifier (monotone).
     [None] until the first gossip arrives — a standalone database
     vacuums on its local watermark alone. *)
  mutable cluster_floor : int option;
  commit_count : Stats.Counter.t;
  abort_count : Stats.Counter.t;
  deadlock_count : Stats.Counter.t;
  backfill_count : Stats.Counter.t;
  stale_expired : Stats.Counter.t;
}

let wake_grants t grants =
  (* Locks freed by a release were handed to queued waiters; wake their
     fibers so they can re-run their acquisition check. *)
  List.iter
    (fun (_key, holder) ->
      match Hashtbl.find_opt t.active holder with
      | Some waiter -> (
          match waiter.parked with
          | Some resume ->
              Engine.schedule_after t.engine Time.zero (fun () -> resume (Ok ()))
          | None -> ())
      | None -> ())
    grants

let doom t txid =
  match Hashtbl.find_opt t.active txid with
  | None -> ()
  (* Remote transactions carry certified writesets: they must commit, so
     they are never victims. *)
  | Some tx when tx.remote -> ()
  | Some tx -> (
      match tx.state with
      | Active ->
          tx.state <- Doomed Preempted;
          (* Stop waiting and free locks immediately so the preemptor can
             proceed; the owner fiber observes the doom at its next step. *)
          (match (tx.parked, tx.parked_key) with
          | Some resume, Some key ->
              Locks.cancel_wait t.locks tx.id key;
              Engine.schedule_after t.engine Time.zero (fun () ->
                  resume (Error Preempted))
          | Some resume, None ->
              Engine.schedule_after t.engine Time.zero (fun () ->
                  resume (Error Preempted))
          | None, _ -> ());
          let grants = Locks.release_all t.locks tx.id in
          wake_grants t grants
      | Doomed _ | Committing | Committed | Aborted -> ())

(* The replica's GC watermark: the oldest snapshot any live transaction
   still reads, defaulting to the current version when idle. Doomed
   transactions are condemned — their results are discarded on rollback —
   so they deliberately do not pin the watermark: that is what lets the
   max-snapshot-age escape hatch (and preemption) free history held by a
   stalled or leaked transaction. *)
let oldest_active_snapshot t =
  Hashtbl.fold
    (fun _ tx acc -> match tx.state with Doomed _ -> acc | _ -> min acc tx.snapshot)
    t.active
    (Store.current_version t.db_store)

let set_cluster_gc_floor t floor =
  match t.cluster_floor with
  | Some current when current >= floor -> ()
  | Some _ | None -> t.cluster_floor <- Some floor

let cluster_gc_floor t = Option.value ~default:0 t.cluster_floor

(* One vacuum pass: expire over-age local snapshots (the escape hatch that
   keeps GC making progress past a stalled or leaked transaction), then
   prune the version chains up to the cluster floor capped by the local
   watermark. *)
let vacuum t =
  (match t.cfg.max_snapshot_age with
  | Some max_age ->
      let now = Engine.now t.engine in
      let stale =
        Hashtbl.fold
          (fun _ tx acc ->
            match tx.state with
            | Active when (not tx.remote) && Time.(Time.diff now tx.born > max_age) ->
                tx :: acc
            | _ -> acc)
          t.active []
      in
      List.iter
        (fun tx ->
          Stats.Counter.incr t.stale_expired;
          doom t tx.id)
        stale
  | None -> ());
  let keep_after =
    let local = oldest_active_snapshot t in
    match t.cluster_floor with Some floor -> min floor local | None -> local
  in
  Store.gc t.db_store ~keep_after

let create engine ~rng ~log_disk ?data_disk ?cpu ?(config = default_config)
    ?(name = "db") () =
  let db =
    {
      engine;
      rng;
      label = name;
      cfg = config;
      cpu;
      data_disk;
      db_store = Store.create ();
      locks = Locks.create ();
      order = Commit_order.create engine ();
      db_wal = Storage.Wal.create engine ~disk:log_disk ~name:(name ^ ".wal") ();
      parallel_versions = Hashtbl.create 64;
      published_order = 0;
      active = Hashtbl.create 32;
      initial_rows = [];
      next_txid = 0;
      cluster_floor = None;
      commit_count = Stats.Counter.create ();
      abort_count = Stats.Counter.create ();
      deadlock_count = Stats.Counter.create ();
      backfill_count = Stats.Counter.create ();
      stale_expired = Stats.Counter.create ();
    }
  in
  (match (config.background_page_writes_per_sec, data_disk) with
  | rate, Some disk when rate > 0. ->
      (* A small hot page set coalesces dirty writes into a steady
         background stream (checkpointer/bgwriter), independent of the
         transaction rate. *)
      let interval = Time.of_sec (1. /. rate) in
      ignore
        (Engine.spawn engine ~name:(name ^ ".bgwriter") (fun () ->
             let rec loop () =
               Engine.sleep engine interval;
               if Stats.Counter.value db.commit_count > 0 then
                 Storage.Disk.write disk ~bytes:config.page_bytes;
               loop ()
             in
             loop ()))
  | _, (Some _ | None) -> ());
  (match config.durability with
  | Periodic interval ->
      ignore
        (Engine.spawn engine ~name:(name ^ ".walsync") (fun () ->
             let rec loop () =
               Engine.sleep engine interval;
               Storage.Wal.sync db.db_wal;
               loop ()
             in
             loop ()))
  | Synchronous | Asynchronous -> ());
  (match config.gc_interval with
  | Some interval ->
      (* Vacuum: drop row versions no active snapshot (and no replica
         behind the cluster GC floor) can still see. *)
      ignore
        (Engine.spawn engine ~name:(name ^ ".vacuum") (fun () ->
             let rec loop () =
               Engine.sleep engine interval;
               vacuum db;
               loop ()
             in
             loop ()))
  | None -> ());
  db

let name t = t.label
let config t = t.cfg
let engine t = t.engine
let current_version t = Store.current_version t.db_store

let load t rows =
  (* The initial population lives in the data files, which survive a crash
     (only WAL-recent state is at risk), so recovery re-seeds it. *)
  t.initial_rows <- t.initial_rows @ rows;
  List.iter (fun (key, value) -> Store.preload t.db_store key value) rows

(* ------------------------------------------------------------------ *)
(* Transaction lifecycle *)

let begin_tx_internal t ~remote =
  t.next_txid <- t.next_txid + 1;
  let tx =
    {
      db = t;
      id = t.next_txid;
      snapshot = Store.current_version t.db_store;
      remote;
      born = Engine.now t.engine;
      buffer = Writeset.empty;
      state = Active;
      parked = None;
      parked_key = None;
    }
  in
  Hashtbl.replace t.active tx.id tx;
  tx

let begin_tx t = begin_tx_internal t ~remote:false
let tx_id tx = tx.id
let snapshot_version tx = tx.snapshot

let release_locks tx =
  let grants = Locks.release_all tx.db.locks tx.id in
  wake_grants tx.db grants

(* Final transition out of Active/Doomed/Committing into Aborted. *)
let rollback tx =
  match tx.state with
  | Aborted | Committed -> ()
  | Active | Doomed _ | Committing ->
      tx.state <- Aborted;
      (match tx.parked_key with
      | Some key -> Locks.cancel_wait tx.db.locks tx.id key
      | None -> ());
      release_locks tx;
      Hashtbl.remove tx.db.active tx.id;
      Stats.Counter.incr tx.db.abort_count

let abort tx = rollback tx

let commit_readonly tx =
  if not (Writeset.is_empty tx.buffer) then
    invalid_arg "Db.commit_readonly: transaction has writes";
  match tx.state with
  | Committed | Aborted -> ()
  | Active | Doomed _ | Committing ->
      tx.state <- Committed;
      Hashtbl.remove tx.db.active tx.id

let is_doomed tx = match tx.state with Doomed r -> Some r | _ -> None

let fail tx reason =
  rollback tx;
  Error reason

(* ------------------------------------------------------------------ *)
(* Reads and writes *)

let maybe_page_in t =
  match t.data_disk with
  | Some disk when t.cfg.page_read_miss > 0. && Rng.chance t.rng t.cfg.page_read_miss ->
      Storage.Disk.read disk ~bytes:t.cfg.page_bytes
  | Some _ | None -> ()

let read tx key =
  maybe_page_in tx.db;
  (* Read-your-own-writes from the buffer first. *)
  match Writeset.find_op tx.buffer key with
  | Some (Writeset.Insert v | Writeset.Update v) -> Some v
  | Some Writeset.Delete -> None
  | Some (Writeset.Add d) ->
      (* A buffered delta folds onto the snapshot base (missing or
         non-integer base counts as zero, as at apply time). *)
      let base =
        match Store.read tx.db.db_store ~at:tx.snapshot key with
        | Some (Value.Int n) -> n
        | Some (Value.Text _) | None -> 0
      in
      Some (Value.int (base + d))
  | None -> Store.read tx.db.db_store ~at:tx.snapshot key

let park tx =
  let result =
    Engine.suspend tx.db.engine (fun resume -> tx.parked <- Some resume)
  in
  tx.parked <- None;
  tx.parked_key <- None;
  result

let rec write tx key op =
  match tx.state with
  | Doomed r -> fail tx r
  | Aborted | Committed | Committing -> invalid_arg "Db.write: transaction is finished"
  | Active -> (
      (* First-updater-wins against already-committed concurrent writers. A
         delta write only conflicts with a committed final image: committed
         deltas past the snapshot commute with it, mirroring the
         certifier's delta fast path so local and global certification
         agree. *)
      let committed_conflict =
        (not tx.remote)
        &&
        match op with
        | Writeset.Add _ ->
            Store.latest_blind_writer tx.db.db_store key > tx.snapshot
        | Writeset.Insert _ | Writeset.Update _ | Writeset.Delete ->
            Store.latest_writer tx.db.db_store key > tx.snapshot
      in
      if committed_conflict then fail tx (Ww_conflict key)
      else
        match Locks.acquire tx.db.locks tx.id key with
        | Locks.Granted ->
            tx.buffer <- Writeset.add tx.buffer key op;
            Ok ()
        | Locks.Deadlock cycle ->
            Stats.Counter.incr tx.db.deadlock_count;
            fail tx (Deadlock cycle)
        | Locks.Would_block holder ->
            let park_and_retry () =
              Locks.enqueue tx.db.locks tx.id key;
              tx.parked_key <- Some key;
              match park tx with
              | Ok () -> write tx key op
              | Error r -> fail tx r
            in
            let holder_delta_on_key =
              match Hashtbl.find_opt tx.db.active holder with
              | Some htx -> (
                  match Writeset.find_op htx.buffer key with
                  | Some hop -> Writeset.op_is_delta hop
                  | None -> false)
              | None -> false
            in
            if tx.remote && Writeset.op_is_delta op && holder_delta_on_key then begin
              (* Commutative bypass: a remote delta slots around a holder
                 whose own write to this key is a delta, instead of evicting
                 or queueing behind it. The symbolic store makes the two
                 installs order-insensitive, and the holder's delta folds on
                 top of this one when it commits. *)
              tx.buffer <- Writeset.add tx.buffer key op;
              Ok ()
            end
            else if tx.remote && tx.db.cfg.remote_priority then begin
              (* Priority write: evict an active holder and retry. A holder
                 already in its commit phase cannot be evicted — it will
                 release the lock when it announces, so queue behind it. *)
              doom tx.db holder;
              if Locks.holder tx.db.locks key = Some holder then park_and_retry ()
              else write tx key op
            end
            else park_and_retry ())

let writeset tx = tx.buffer

(* ------------------------------------------------------------------ *)
(* Commit machinery *)

let next_order t = Commit_order.next_seq t.order

let skip_order t order =
  ignore
    (Engine.spawn t.engine ~name:(t.label ^ ".skip") (fun () ->
         Commit_order.wait_turn t.order order;
         Commit_order.announce t.order order))

let charge_commit_cpu t =
  match t.cpu with
  | Some cpu when not (Time.is_zero t.cfg.commit_cpu) -> Resource.use cpu t.cfg.commit_cpu
  | Some _ | None -> ()

let schedule_writebacks t ws =
  match t.data_disk with
  | Some disk when t.cfg.page_writeback_per_op > 0. ->
      let expected = t.cfg.page_writeback_per_op *. float_of_int (Writeset.cardinal ws) in
      let whole = int_of_float expected in
      let pages = whole + if Rng.chance t.rng (expected -. float_of_int whole) then 1 else 0 in
      if pages > 0 then
        ignore
          (Engine.spawn t.engine ~name:(t.label ^ ".bgwriter") (fun () ->
               for _ = 1 to pages do
                 Storage.Disk.write disk ~bytes:t.cfg.page_bytes
               done))
  | Some _ | None -> ()

let log_commit t ~version ?prev ws =
  (* [prev] defaults to the store's version at log time, clamped below
     [version]: exact for the serial apply paths (one commit in flight at a
     time) and for backfilled commits (whose true predecessor in the chain
     is version - 1). Parallel apply passes [version - 1] explicitly, since
     at log time the store still sits at the published prefix. *)
  let prev =
    match prev with
    | Some p -> p
    | None -> min (Store.current_version t.db_store) (version - 1)
  in
  let bytes = max (Writeset.encoded_bytes ws) t.cfg.commit_record_bytes in
  match t.cfg.durability with
  | Synchronous -> ignore (Storage.Wal.append_and_sync t.db_wal ~bytes (version, prev, ws))
  | Asynchronous | Periodic _ -> ignore (Storage.Wal.append t.db_wal ~bytes (version, prev, ws))

let finish_commit tx ~version ~order =
  let t = tx.db in
  let ws = tx.buffer in
  charge_commit_cpu t;
  log_commit t ~version ws;
  Commit_order.wait_turn t.order order;
  (* A commit whose global version trails the store happens when the reply
     overtook the remote-writeset stream (a certifier failover re-answered
     a retried request from its decided table after this replica already
     applied later versions): slot the writes in at their version instead
     of clobbering newer ones. *)
  if version > Store.current_version t.db_store then
    Store.install t.db_store ~version ws
  else begin
    Stats.Counter.incr t.backfill_count;
    Store.backfill t.db_store ~version ws
  end;
  Commit_order.announce t.order order;
  tx.state <- Committed;
  release_locks tx;
  Hashtbl.remove t.active tx.id;
  Stats.Counter.incr t.commit_count;
  schedule_writebacks t ws

let commit_replicated tx ~version ~order =
  match tx.state with
  | Doomed r ->
      skip_order tx.db order;
      fail tx r
  | Aborted | Committed | Committing ->
      invalid_arg "Db.commit_replicated: transaction is finished"
  | Active ->
      tx.state <- Committing;
      finish_commit tx ~version ~order;
      Ok ()

let commit_standalone tx =
  match tx.state with
  | Doomed r -> fail tx r
  | Aborted | Committed | Committing ->
      invalid_arg "Db.commit_standalone: transaction is finished"
  | Active ->
      tx.state <- Committing;
      let order = next_order tx.db in
      (* In a centralised database the announce sequence *is* the version
         sequence. *)
      finish_commit tx ~version:order ~order;
      Ok order

let apply_writeset t ~version ~order ws =
  let tx = begin_tx_internal t ~remote:true in
  let rec apply_entries = function
    | [] ->
        tx.state <- Committing;
        finish_commit tx ~version ~order;
        Ok ()
    | { Writeset.key; op } :: rest -> (
        match write tx key op with
        | Ok () -> apply_entries rest
        | Error r -> Error r)
  in
  apply_entries (Writeset.entries ws)

let finish_commit_batch tx ~batch ~order =
  let t = tx.db in
  charge_commit_cpu t;
  (* One durable group for the whole batch: a redo record per version,
     chained through the batch, one sync. *)
  let records =
    let prev = ref (min (Store.current_version t.db_store) (fst (List.hd batch) - 1)) in
    List.map
      (fun (version, ws) ->
        let r = (version, !prev, ws) in
        prev := version;
        r)
      batch
  in
  let bytes_of (_, _, ws) = max (Writeset.encoded_bytes ws) t.cfg.commit_record_bytes in
  ignore (Storage.Wal.append_batch t.db_wal ~bytes_of records);
  (match t.cfg.durability with
  | Synchronous -> Storage.Wal.sync t.db_wal
  | Asynchronous | Periodic _ -> ());
  Commit_order.wait_turn t.order order;
  List.iter
    (fun (version, ws) ->
      if version > Store.current_version t.db_store then
        Store.install t.db_store ~version ws
      else begin
        Stats.Counter.incr t.backfill_count;
        Store.backfill t.db_store ~version ws
      end)
    batch;
  Commit_order.announce t.order order;
  tx.state <- Committed;
  release_locks tx;
  Hashtbl.remove t.active tx.id;
  Stats.Counter.incr t.commit_count;
  schedule_writebacks t tx.buffer

(* Apply a contiguous run of certified writesets as ONE local transaction —
   the proxy's remote-batch grouping — while still slotting every
   writeset's rows in at its own certified version. Installing the merged
   union at the batch's top version would read the same at the head, but
   it renames history: a delayed commit reply for one of the batched
   versions (a certifier failover re-answering from its decided table)
   would then backfill the same writeset beside its renamed copy instead
   of landing on it idempotently — a harmless shadow for blind images, a
   double count for commutative deltas. *)
let apply_writeset_batch t ~batch ~order =
  match List.sort (fun (a, _) (b, _) -> Int.compare a b) batch with
  | [] ->
      skip_order t order;
      Ok ()
  | batch ->
      let merged =
        List.fold_left (fun acc (_, ws) -> Writeset.union acc ws) Writeset.empty batch
      in
      let tx = begin_tx_internal t ~remote:true in
      let rec apply_entries = function
        | [] ->
            tx.state <- Committing;
            finish_commit_batch tx ~batch ~order;
            Ok ()
        | { Writeset.key; op } :: rest -> (
            match write tx key op with
            | Ok () -> apply_entries rest
            | Error r -> Error r)
      in
      apply_entries (Writeset.entries merged)

(* ------------------------------------------------------------------ *)
(* Parallel apply: out-of-order install, ordered publish.

   Workers finish commits in whatever order their locks, CPU and WAL
   flushes allow: rows are slotted into the version chains immediately
   ({!Store.install_at}) and the commit record hits the log right away
   (grouping fsyncs across workers), but the store's visible version only
   advances once every lower announce order has finished
   ({!Commit_order.complete}) — so snapshot reads and [check_consistency]
   still always see a gap-free prefix of the global history. *)

let publish_parallel t =
  let upto = Commit_order.announced t.order in
  let continue_ = ref true in
  while !continue_ && t.published_order < upto do
    match Hashtbl.find_opt t.parallel_versions (t.published_order + 1) with
    | None -> continue_ := false
    | Some version ->
        Hashtbl.remove t.parallel_versions (t.published_order + 1);
        t.published_order <- t.published_order + 1;
        if version > Store.current_version t.db_store then
          Store.force_version t.db_store version
  done

let finish_commit_parallel tx ~version ~order =
  let t = tx.db in
  let ws = tx.buffer in
  charge_commit_cpu t;
  (* Parallel streams are dense in version: every certified version passes
     through the pool individually, so this record's chain predecessor is
     exactly [version - 1] regardless of what is published right now. *)
  log_commit t ~version ~prev:(version - 1) ws;
  Store.install_at t.db_store ~version ws;
  tx.state <- Committed;
  release_locks tx;
  Hashtbl.remove t.active tx.id;
  Stats.Counter.incr t.commit_count;
  Hashtbl.replace t.parallel_versions order version;
  Commit_order.complete t.order order;
  publish_parallel t;
  schedule_writebacks t ws

let apply_writeset_parallel t ~version ~order ws =
  let tx = begin_tx_internal t ~remote:true in
  let rec apply_entries = function
    | [] ->
        tx.state <- Committing;
        finish_commit_parallel tx ~version ~order;
        Ok ()
    | { Writeset.key; op } :: rest -> (
        match write tx key op with
        | Ok () -> apply_entries rest
        | Error r -> Error r)
  in
  apply_entries (Writeset.entries ws)

let commit_replicated_parallel tx ~version ~order =
  match tx.state with
  | Doomed r ->
      (* Unlike {!commit_replicated}, the order is NOT consumed: the caller
         re-installs the buffered writeset under the same order via
         {!apply_writeset_parallel}, keeping the publish chain dense. *)
      ignore order;
      fail tx r
  | Aborted | Committed | Committing ->
      invalid_arg "Db.commit_replicated_parallel: transaction is finished"
  | Active ->
      tx.state <- Committing;
      finish_commit_parallel tx ~version ~order;
      Ok ()

(* ------------------------------------------------------------------ *)
(* Queries *)

let read_committed t ?at key =
  let at = Option.value ~default:(Store.current_version t.db_store) at in
  Store.read t.db_store ~at key

let store t = t.db_store
let active_txids t = Hashtbl.fold (fun id _ acc -> id :: acc) t.active []
let lock_holder t key = Locks.holder t.locks key

(* ------------------------------------------------------------------ *)
(* Crash and recovery *)

let reset_parallel t =
  Hashtbl.reset t.parallel_versions;
  t.published_order <- 0

let crash t =
  ignore (Storage.Wal.crash t.db_wal);
  t.db_store <- Store.create ();
  (* Data files survive; only logged state needs recovery. *)
  List.iter (fun (key, value) -> Store.preload t.db_store key value) t.initial_rows;
  t.locks <- Locks.create ();
  Commit_order.reset t.order;
  t.order <- Commit_order.create t.engine ();
  reset_parallel t;
  Hashtbl.reset t.active

exception Redo_gap

let recover t =
  (* Checksum-scan the redo log: replay only the verified prefix, so a torn
     or corrupt tail record is truncated rather than installed. Anything
     discarded was never acked durable (redo acks follow the sync). Each
     record names its chain predecessor; replay stops at the first record
     whose predecessor never made it to disk — under parallel apply the
     records can be logged out of version order, so a lost middle record
     must truncate everything above it or recovery would expose a snapshot
     with a hole in the history. *)
  let records, _scan = Storage.Wal.recover t.db_wal in
  let by_version =
    List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) records
  in
  let fresh = Store.create () in
  List.iter (fun (key, value) -> Store.preload fresh key value) t.initial_rows;
  (try
     List.iter
       (fun (version, prev, ws) ->
         if version > Store.current_version fresh then
           if prev > Store.current_version fresh then raise Redo_gap
           else Store.install fresh ~version ws)
       by_version
   with Redo_gap -> ());
  t.db_store <- fresh;
  (* Announce sequence restarts after recovery. *)
  t.order <- Commit_order.create t.engine ();
  reset_parallel t;
  Store.current_version fresh

let restore_from_dump t ~version dump =
  let copy = Store.copy dump in
  Store.force_version copy version;
  t.db_store <- copy;
  t.order <- Commit_order.create t.engine ();
  reset_parallel t

let dump t = (Store.current_version t.db_store, Store.copy t.db_store)

(* ------------------------------------------------------------------ *)
(* Statistics *)

let commits t = Stats.Counter.value t.commit_count
let backfills t = Stats.Counter.value t.backfill_count
let aborts t = Stats.Counter.value t.abort_count
let deadlocks_detected t = Stats.Counter.value t.deadlock_count
let stale_snapshots_expired t = Stats.Counter.value t.stale_expired
let wal t = t.db_wal

let reset_stats t =
  Stats.Counter.reset t.commit_count;
  Stats.Counter.reset t.abort_count;
  Stats.Counter.reset t.deadlock_count;
  Stats.Counter.reset t.backfill_count;
  Stats.Counter.reset t.stale_expired;
  Storage.Wal.reset_stats t.db_wal

(** Multi-version row store.

    Each row carries a chain of versions tagged with the global commit
    version that created them; a snapshot read at version [v] sees the
    newest version [<= v]. Versions need not be dense at a replica: a
    replica that applies a batched remote writeset jumps straight from,
    say, version 0 to version 3 (paper §3, "grouping remote writesets").

    Commutative delta writes ({!Writeset.Add}) are kept symbolic in the
    version chains and folded onto the nearest final image below them at
    read time, so installing deltas out of order (parallel apply) yields
    the same chain — and the same snapshot reads — as installing them in
    version order. *)

type t

val create : unit -> t

val current_version : t -> int
(** Version of the newest installed snapshot. *)

val read : t -> at:int -> Key.t -> Value.t option
(** Snapshot read: newest committed value with version [<= at], or [None]
    if the row does not exist (never inserted, or deleted) in that
    snapshot. *)

val read_latest : t -> Key.t -> Value.t option

val latest_writer : t -> Key.t -> int
(** Commit version of the newest committed write to this key; 0 if never
    written. This is what the first-updater-wins check compares against a
    transaction's snapshot. *)

val latest_blind_writer : t -> Key.t -> int
(** Commit version of the newest committed {e final-image} write to this
    key, skipping commutative delta entries; 0 if never written. A
    delta-only transaction's first-updater-wins check compares against
    this instead of {!latest_writer}: committed deltas commute with it and
    must not abort it. *)

val install : t -> version:int -> Writeset.t -> unit
(** Commit a writeset, creating snapshot [version]. [version] must exceed
    {!current_version}; the store advances to it. *)

val install_at : t -> version:int -> Writeset.t -> unit
(** Slot a writeset's rows into their version chains at [version] without
    touching {!current_version} — the out-of-order install half of parallel
    apply. Rows land as apply workers finish (in any order); visibility is
    published separately with {!force_version} once every lower version has
    been installed, so snapshot reads never observe a gap. Idempotent for a
    version already present in a chain; keys already overwritten by a newer
    committed version keep the newer value. *)

val backfill : t -> version:int -> Writeset.t -> unit
(** Install a writeset at a version at or below {!current_version}: each
    write slots into its key's chain at the correct version position, and
    keys already overwritten by a newer committed version keep the newer
    value (which is the globally-correct state — any later committed write
    to the same key was certified against a log containing [version]).
    Needed when a commit reply overtakes the remote-writeset stream, e.g.
    a certifier failover re-answering a retried request from its decided
    table after the replica has already applied later versions. *)

val preload : t -> Key.t -> Value.t -> unit
(** Insert a row as part of version 0 (initial database population). *)

val force_version : t -> int -> unit
(** Set the snapshot version without installing rows (used when restoring
    from a dump taken at that version). *)

val row_count : t -> int
val version_records : t -> int
(** Total version-chain entries, across all rows. *)

val estimated_bytes : t -> int

val copy : t -> t
(** Deep copy of the latest snapshot only — the "DUMP DATA" operation. The
    copy's chains are flattened to single versions. *)

val gc : t -> keep_after:int -> unit
(** Drop version-chain entries made obsolete by a newer version [<=]
    [keep_after] (no active snapshot older than [keep_after] exists). The
    boundary entry at or below [keep_after] is materialised with the same
    tombstone-preserving fold as {!read} — a deleted key stays deleted, and
    a delta run above a tombstone keeps folding from the deletion. A row
    whose whole remaining history is a tombstone at or below the floor is
    removed outright. *)

val pruned : t -> int
(** Cumulative version-chain records dropped by {!gc} over this store's
    lifetime (including rows removed whole). *)

val pp_stats : Format.formatter -> t -> unit

val pp_chain : Format.formatter -> t -> Key.t -> unit
(** Debug view of one key's raw version chain, newest first: [(v,B<img>)]
    for blind images, [(v,D<+d>)] for symbolic deltas. *)

(** Ordered commit announcement — the Tashkent-API database extension.

    The paper's 20-line PostgreSQL change (§8.3): commit records may reach
    disk in any (grouped) order, but transactions are {e announced} as
    committed strictly by the sequence number supplied with [COMMIT n].
    A semaphore starts at 0; the commit carrying sequence [n] blocks until
    [n-1] announcements have happened, then announces and increments.

    Sequence numbers are dense and 1-based per database instance. Misusing
    the interface (announcing [n] without ever submitting [n-1]) blocks
    forever — the deadlock the paper warns about. *)

type t

val create : Sim.Engine.t -> unit -> t

val next_seq : t -> int
(** Allocate the next sequence number (what the proxy attaches to
    [COMMIT n]). *)

val wait_turn : t -> int -> unit
(** Block until all sequence numbers below [n] have been announced. *)

val announce : t -> int -> unit
(** Mark [n] announced. Must be called with the exact next number —
    i.e. after [wait_turn t n] — otherwise raises. *)

val complete : t -> int -> unit
(** Out-of-order completion with ordered publish (parallel apply): mark [n]
    finished without waiting for a turn. The announced prefix advances only
    through a contiguous run of completed numbers — [n] stays pending until
    every lower number has completed — and the turnstile is broadcast when
    the prefix moves, so {!wait_turn} and {!announced} observers still see a
    strictly ordered publication. Idempotent; numbers at or below the
    published prefix are ignored. Do not mix with {!announce} on the same
    instance. *)

val announced : t -> int
val waiting : t -> int

val reset : t -> unit
(** Forget allocations and announcements (database restart). Parked
    waiters are abandoned. *)

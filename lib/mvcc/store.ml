(* Version chains are newest-first lists of (commit_version, value option);
   [None] marks a deletion tombstone. *)

type chain = (int * Value.t option) list

type t = { rows : chain Key.Tbl.t; mutable version : int }

let create () = { rows = Key.Tbl.create 1024; version = 0 }
let current_version t = t.version

let read t ~at key =
  match Key.Tbl.find_opt t.rows key with
  | None -> None
  | Some chain -> (
      match List.find_opt (fun (v, _) -> v <= at) chain with
      | Some (_, value) -> value
      | None -> None)

let read_latest t key = read t ~at:max_int key

let latest_writer t key =
  match Key.Tbl.find_opt t.rows key with
  | None | Some [] -> 0
  | Some ((v, _) :: _) -> v

let install t ~version ws =
  if version <= t.version then
    invalid_arg
      (Printf.sprintf "Store.install: version %d not beyond current %d" version t.version);
  List.iter
    (fun { Writeset.key; op } ->
      let value =
        match op with
        | Writeset.Insert v | Writeset.Update v -> Some v
        | Writeset.Delete -> None
      in
      let chain = Option.value ~default:[] (Key.Tbl.find_opt t.rows key) in
      Key.Tbl.replace t.rows key ((version, value) :: chain))
    (Writeset.entries ws);
  t.version <- version

(* Slot each write into its key's chain at the right version position,
   without touching the store's visible version. Writes already overtaken
   by a newer committed version do not clobber it; an entry already at
   [version] wins (idempotent re-apply). This is the out-of-order install
   half of parallel apply: rows land as workers finish, visibility advances
   separately via {!force_version} once every lower version is in. *)
let install_at t ~version ws =
  List.iter
    (fun { Writeset.key; op } ->
      let value =
        match op with
        | Writeset.Insert v | Writeset.Update v -> Some v
        | Writeset.Delete -> None
      in
      let chain = Option.value ~default:[] (Key.Tbl.find_opt t.rows key) in
      (* Chains are newest-first: insert in descending position. *)
      let rec ins = function
        | (v, _) :: _ as rest when v < version -> (version, value) :: rest
        | (v, _) :: _ as rest when v = version -> rest
        | entry :: rest -> entry :: ins rest
        | [] -> [ (version, value) ]
      in
      Key.Tbl.replace t.rows key (ins chain))
    (Writeset.entries ws)

(* Install a writeset whose global version is at or below the store's
   current version. Used when a commit reply arrives behind the
   remote-writeset stream (certifier failover re-answering a retried
   request from its decided table). *)
let backfill t ~version ws =
  install_at t ~version ws;
  t.version <- max t.version version

let preload t key value = Key.Tbl.replace t.rows key [ (0, Some value) ]
let force_version t v = t.version <- v
let row_count t = Key.Tbl.length t.rows

let version_records t =
  Key.Tbl.fold (fun _ chain acc -> acc + List.length chain) t.rows 0

let estimated_bytes t =
  Key.Tbl.fold
    (fun key chain acc ->
      let per_version =
        List.fold_left
          (fun a (_, v) ->
            a + 16 + match v with Some v -> Value.encoded_bytes v | None -> 0)
          0 chain
      in
      acc + Key.encoded_bytes key + per_version)
    t.rows 0

let copy t =
  let fresh = { rows = Key.Tbl.create (Key.Tbl.length t.rows); version = t.version } in
  Key.Tbl.iter
    (fun key chain ->
      match chain with
      | [] -> ()
      | (v, value) :: _ -> Key.Tbl.replace fresh.rows key [ (v, value) ])
    t.rows;
  fresh

let gc t ~keep_after =
  let prune chain =
    (* Keep every version newer than [keep_after] plus the newest one at or
       below it (still visible to snapshots in (keep_after, now]). *)
    let rec loop = function
      | [] -> []
      | (v, value) :: rest ->
          if v > keep_after then (v, value) :: loop rest else [ (v, value) ]
    in
    loop chain
  in
  let updates =
    Key.Tbl.fold (fun key chain acc -> (key, prune chain) :: acc) t.rows []
  in
  List.iter (fun (key, chain) -> Key.Tbl.replace t.rows key chain) updates

let pp_stats fmt t =
  Format.fprintf fmt "store{version=%d rows=%d records=%d ~%dB}" t.version (row_count t)
    (version_records t) (estimated_bytes t)

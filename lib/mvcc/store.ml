(* Version chains are newest-first lists of (commit_version, cell). A
   [Blind] cell is a final image ([None] marks a deletion tombstone); a
   [Delta] cell records a commutative increment against whatever the chain
   holds below it. Deltas are kept symbolic in the chain and folded at read
   time: an out-of-order [install_at] of a delta then needs no re-
   materialisation of its neighbours, so parallel apply reaches the same
   chain — and the same reads — whatever order the workers land in. GC and
   dump flatten delta runs back into blind images at the points where the
   chain below them is cut. *)

type cell = Blind of Value.t option | Delta of int

type chain = (int * cell) list

type t = { rows : chain Key.Tbl.t; mutable version : int; mutable pruned : int }

let create () = { rows = Key.Tbl.create 1024; version = 0; pruned = 0 }
let current_version t = t.version
let pruned t = t.pruned

let cell_of_op = function
  | Writeset.Insert v | Writeset.Update v -> Blind (Some v)
  | Writeset.Delete -> Blind None
  | Writeset.Add d -> Delta d

(* Fold a chain suffix down to the value it denotes: accumulate deltas
   until the first blind image (a non-integer or missing base counts as
   zero once a delta has touched it). *)
let rec fold_value acc saw_delta = function
  | (_, Blind value) :: _ ->
      if saw_delta then
        let base = match value with Some (Value.Int n) -> n | _ -> 0 in
        Some (Value.int (acc + base))
      else value
  | (_, Delta d) :: rest -> fold_value (acc + d) true rest
  | [] -> if saw_delta then Some (Value.int acc) else None

(* Materialise a chain suffix into the single cell it denotes at a chain
   cut. This is the one place gc and dump flatten history, and it must
   agree with {!read} on every chain shape — in particular a [Blind None]
   tombstone with no deltas above stays a tombstone (the key remains
   deleted), and a delta run above a tombstone folds from the deletion
   (missing base = 0), exactly as {!fold_value} resolves a read. *)
let materialise suffix = Blind (fold_value 0 false suffix)

let read t ~at key =
  match Key.Tbl.find_opt t.rows key with
  | None -> None
  | Some chain ->
      let rec visible = function
        | (v, _) :: rest when v > at -> visible rest
        | suffix -> fold_value 0 false suffix
      in
      visible chain

let read_latest t key = read t ~at:max_int key

let latest_writer t key =
  match Key.Tbl.find_opt t.rows key with
  | None | Some [] -> 0
  | Some ((v, _) :: _) -> v

let latest_blind_writer t key =
  match Key.Tbl.find_opt t.rows key with
  | None -> 0
  | Some chain ->
      let rec walk = function
        | [] -> 0
        | (v, Blind _) :: _ -> v
        | (_, Delta _) :: rest -> walk rest
      in
      walk chain

let install t ~version ws =
  if version <= t.version then
    invalid_arg
      (Printf.sprintf "Store.install: version %d not beyond current %d" version t.version);
  List.iter
    (fun { Writeset.key; op } ->
      let chain = Option.value ~default:[] (Key.Tbl.find_opt t.rows key) in
      Key.Tbl.replace t.rows key ((version, cell_of_op op) :: chain))
    (Writeset.entries ws);
  t.version <- version

(* Slot each write into its key's chain at the right version position,
   without touching the store's visible version. Writes already overtaken
   by a newer committed version do not clobber it; an entry already at
   [version] wins (idempotent re-apply). This is the out-of-order install
   half of parallel apply: rows land as workers finish, visibility advances
   separately via {!force_version} once every lower version is in. Deltas
   stay symbolic, so the chain (and every read) is independent of the
   order in which concurrent delta installs arrive. *)
let install_at t ~version ws =
  List.iter
    (fun { Writeset.key; op } ->
      let cell = cell_of_op op in
      let chain = Option.value ~default:[] (Key.Tbl.find_opt t.rows key) in
      (* Chains are newest-first: insert in descending position. *)
      let rec ins = function
        | (v, _) :: _ as rest when v < version -> (version, cell) :: rest
        | (v, _) :: _ as rest when v = version -> rest
        | entry :: rest -> entry :: ins rest
        | [] -> [ (version, cell) ]
      in
      Key.Tbl.replace t.rows key (ins chain))
    (Writeset.entries ws)

(* Install a writeset whose global version is at or below the store's
   current version. Used when a commit reply arrives behind the
   remote-writeset stream (certifier failover re-answering a retried
   request from its decided table). *)
let backfill t ~version ws =
  install_at t ~version ws;
  t.version <- max t.version version

let preload t key value = Key.Tbl.replace t.rows key [ (0, Blind (Some value)) ]
let force_version t v = t.version <- v
let row_count t = Key.Tbl.length t.rows

let version_records t =
  Key.Tbl.fold (fun _ chain acc -> acc + List.length chain) t.rows 0

let estimated_bytes t =
  Key.Tbl.fold
    (fun key chain acc ->
      let per_version =
        List.fold_left
          (fun a (_, cell) ->
            a + 16
            +
            match cell with
            | Blind (Some v) -> Value.encoded_bytes v
            | Blind None -> 0
            | Delta _ -> 8)
          0 chain
      in
      acc + Key.encoded_bytes key + per_version)
    t.rows 0

let copy t =
  let fresh =
    { rows = Key.Tbl.create (Key.Tbl.length t.rows); version = t.version; pruned = 0 }
  in
  Key.Tbl.iter
    (fun key chain ->
      match chain with
      | [] -> ()
      | (v, _) :: _ ->
          (* Flattening cuts the chain below the newest entry, so the head
             must be materialised ({!materialise} keeps a tombstone a
             tombstone and folds delta runs exactly like a read would). *)
          Key.Tbl.replace fresh.rows key [ (v, materialise chain) ])
    t.rows;
  fresh

let gc t ~keep_after =
  (* Keep every version newer than [keep_after] plus the newest one at or
     below it (still visible to snapshots in (keep_after, now]). The kept
     boundary entry becomes the new bottom of the chain: materialise it so
     delta runs above keep their base — with the same tombstone-preserving
     fold as {!read}, so gc can never resurrect a deleted key. A row whose
     entire surviving history is a tombstone at or below the floor is
     dropped outright: every visible snapshot already reads it as absent. *)
  let drops = ref [] and updates = ref [] in
  Key.Tbl.iter
    (fun key chain ->
      let rec split above = function
        | ((v, _) :: _ as suffix) when v <= keep_after -> (List.rev above, suffix)
        | entry :: rest -> split (entry :: above) rest
        | [] -> (List.rev above, [])
      in
      let above, suffix = split [] chain in
      match suffix with
      | [] -> () (* nothing at or below the floor *)
      | (v, cell) :: below -> (
          let boundary = materialise suffix in
          match (above, boundary) with
          | [], Blind None ->
              drops := key :: !drops;
              t.pruned <- t.pruned + List.length suffix
          | _ ->
              let already_flat =
                below = [] && match cell with Blind _ -> true | Delta _ -> false
              in
              if not already_flat then begin
                updates := (key, above @ [ (v, boundary) ]) :: !updates;
                t.pruned <- t.pruned + List.length below
              end))
    t.rows;
  List.iter (fun key -> Key.Tbl.remove t.rows key) !drops;
  List.iter (fun (key, chain) -> Key.Tbl.replace t.rows key chain) !updates

let pp_chain fmt t key =
  match Key.Tbl.find_opt t.rows key with
  | None -> Format.fprintf fmt "<no chain>"
  | Some chain ->
      List.iter
        (fun (v, cell) ->
          match cell with
          | Blind (Some value) -> Format.fprintf fmt "(%d,B%a)" v Value.pp value
          | Blind None -> Format.fprintf fmt "(%d,Bdel)" v
          | Delta d -> Format.fprintf fmt "(%d,D%+d)" v d)
        chain

let pp_stats fmt t =
  Format.fprintf fmt "store{version=%d rows=%d records=%d ~%dB}" t.version (row_count t)
    (version_records t) (estimated_bytes t)

type op = Insert of Value.t | Update of Value.t | Delete | Add of int

type entry = { key : Key.t; op : op }

let op_is_delta = function Add _ -> true | _ -> false

(* Folding an [Add d] onto an earlier op on the same key. An earlier
   final-image op absorbs the delta and stays a final image (the pair no
   longer commutes with concurrent writers, which is exactly right: the
   transaction pinned a concrete value). Only pure delta chains stay
   deltas. A delta over a delete re-creates the row from a zero base. *)
let fold_delta earlier d =
  let base = function Value.Int n -> n | Value.Text _ -> 0 in
  match earlier with
  | Insert v -> Insert (Value.int (base v + d))
  | Update v -> Update (Value.int (base v + d))
  | Delete -> Update (Value.int d)
  | Add d0 -> Add (d0 + d)

(* Writesets are built incrementally while a transaction runs, then read
   many times on the certification and apply paths (every [intersects],
   [keys] and [entries] of every certification sits on top of this module).
   The write side is a plain prepend log — [add] is O(1) even when it
   supersedes an earlier op on the same key, because duplicates are kept
   and resolved at seal time. The read side is a lazily computed [sealed]
   form: a first-write-ordered array of final entries plus a key-sorted
   array of the same entries, so intersection is a linear merge walk and
   key iteration is allocation-free. The seal is forced at most once per
   writeset value: writesets are immutable once the transaction ships
   them. *)
type sealed = {
  ordered : entry array; (* first-write order, final op per key *)
  sorted : entry array; (* same entries, ascending by Key.compare *)
}

type t = {
  rev_writes : entry list; (* newest first; may contain superseded ops *)
  count : int; (* distinct keys *)
  keyset : Key.Set.t;
  sealed : sealed Lazy.t;
}

let seal rev_writes count =
  match rev_writes with
  | [] -> { ordered = [||]; sorted = [||] }
  | e0 :: _ ->
      let ordered = Array.make count e0 in
      let slot = Key.Tbl.create (2 * count) in
      let next = ref 0 in
      (* Oldest first: the first write of a key fixes its position. A later
         final-image op overwrites the op in place; a later delta folds
         onto whatever is already there. *)
      List.iter
        (fun e ->
          match Key.Tbl.find_opt slot e.key with
          | Some i ->
              ordered.(i) <-
                (match e.op with
                | Add d -> { key = e.key; op = fold_delta ordered.(i).op d }
                | _ -> e)
          | None ->
              let i = !next in
              incr next;
              Key.Tbl.replace slot e.key i;
              ordered.(i) <- e)
        (List.rev rev_writes);
      let sorted = Array.copy ordered in
      Array.sort (fun a b -> Key.compare a.key b.key) sorted;
      { ordered; sorted }

let empty =
  {
    rev_writes = [];
    count = 0;
    keyset = Key.Set.empty;
    sealed = lazy { ordered = [||]; sorted = [||] };
  }

let is_empty t = t.count = 0

let add t key op =
  let rev_writes = { key; op } :: t.rev_writes in
  let count, keyset =
    if Key.Set.mem key t.keyset then (t.count, t.keyset)
    else (t.count + 1, Key.Set.add key t.keyset)
  in
  { rev_writes; count; keyset; sealed = lazy (seal rev_writes count) }

let singleton key op = add empty key op
let of_list l = List.fold_left (fun t (key, op) -> add t key op) empty l
let entries t = Array.to_list (Lazy.force t.sealed).ordered
let cardinal t = t.count

let keys t =
  Array.fold_right (fun e acc -> e.key :: acc) (Lazy.force t.sealed).ordered []

let iter_keys t f = Array.iter (fun e -> f e.key) (Lazy.force t.sealed).ordered

let iter_entries t f =
  Array.iter (fun e -> f e.key e.op) (Lazy.force t.sealed).ordered

let mem t key = Key.Set.mem key t.keyset

let find_op t key =
  if not (Key.Set.mem key t.keyset) then None
  else begin
    let sorted = (Lazy.force t.sealed).sorted in
    let rec search lo hi =
      if lo > hi then None
      else
        let mid = (lo + hi) / 2 in
        let c = Key.compare key sorted.(mid).key in
        if c = 0 then Some sorted.(mid).op
        else if c < 0 then search lo (mid - 1)
        else search (mid + 1) hi
    in
    search 0 (Array.length sorted - 1)
  end

let all_deltas t =
  Array.for_all (fun e -> op_is_delta e.op) (Lazy.force t.sealed).ordered

let intersects a b =
  if a.count = 0 || b.count = 0 then false
  else begin
    let ka = (Lazy.force a.sealed).sorted in
    let kb = (Lazy.force b.sealed).sorted in
    let la = Array.length ka and lb = Array.length kb in
    let rec walk i j =
      if i >= la || j >= lb then false
      else
        let c = Key.compare ka.(i).key kb.(j).key in
        if c = 0 then true else if c < 0 then walk (i + 1) j else walk i (j + 1)
    in
    walk 0 0
  end

let inter_keys a b =
  if a.count = 0 || b.count = 0 then []
  else begin
    let ka = (Lazy.force a.sealed).sorted in
    let kb = (Lazy.force b.sealed).sorted in
    let la = Array.length ka and lb = Array.length kb in
    let rec walk i j acc =
      if i >= la || j >= lb then List.rev acc
      else
        let c = Key.compare ka.(i).key kb.(j).key in
        if c = 0 then walk (i + 1) (j + 1) (ka.(i).key :: acc)
        else if c < 0 then walk (i + 1) j acc
        else walk i (j + 1) acc
    in
    walk 0 0 []
  end

let union earlier later =
  Array.fold_left
    (fun acc e -> add acc e.key e.op)
    earlier (Lazy.force later.sealed).ordered

let op_bytes = function
  | Insert v | Update v -> 1 + Value.encoded_bytes v
  | Delete -> 1
  | Add _ -> 1 + 8

let encoded_bytes t =
  Array.fold_left
    (fun acc e -> acc + Key.encoded_bytes e.key + op_bytes e.op)
    8 (* header: version + count *)
    (Lazy.force t.sealed).ordered

let pp_op fmt = function
  | Insert v -> Format.fprintf fmt "ins %a" Value.pp v
  | Update v -> Format.fprintf fmt "upd %a" Value.pp v
  | Delete -> Format.pp_print_string fmt "del"
  | Add d -> Format.fprintf fmt "add %+d" d

let pp fmt t =
  Format.fprintf fmt "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "; ")
       (fun fmt e -> Format.fprintf fmt "%a:%a" Key.pp e.key pp_op e.op))
    (entries t)

(** A snapshot-isolation database replica engine.

    Stands in for the paper's PostgreSQL 8.0.3: multi-version rows, eager
    row write locks with first-updater-wins and deadlock detection, writeset
    extraction, a WAL whose commit records are group-committed to a log
    disk, and the Tashkent-API extension — commit records may be flushed in
    any grouped order while transactions are {e announced} strictly by a
    supplied sequence number ([COMMIT n], paper §8.3).

    Blocking operations (lock waits, WAL flushes, page-in reads) must run in
    a fiber. All state transitions are otherwise synchronous and
    deterministic. *)

type t

type txid = int

(** How the WAL treats synchronous writes (paper §7.1). *)
type durability =
  | Synchronous  (** fsync on every commit — standalone, Base, Tashkent-API *)
  | Asynchronous
      (** all WAL synchronous writes disabled — Tashkent-MW "case 1":
          neither durability nor physical integrity survives a crash *)
  | Periodic of Sim.Time.t
      (** background syncs only — Tashkent-MW "case 2": integrity kept,
          recent commits lost *)

type config = {
  durability : durability;
  commit_record_bytes : int;
      (** WAL bytes per commit. PostgreSQL logs before/after page images
          (paper §9.2 credits part of the Tashkent-MW vs Tashkent-API gap
          to this), so the default is a page-sized 8192. *)
  page_bytes : int;
  page_read_miss : float;
      (** Probability that a logical row read must fetch a page from the
          data disk (0 for a database that fits in RAM). *)
  page_writeback_per_op : float;
      (** Expected dirty-page writebacks per modified row, performed by a
          background writer on the data disk. Use for workloads whose
          dirty pages coalesce poorly (large key spaces). *)
  background_page_writes_per_sec : float;
      (** Constant-rate background page flushing — the right model when a
          small hot page set absorbs all writes. Active once the database
          has committed something. *)
  commit_cpu : Sim.Time.t;  (** CPU bookkeeping cost of a commit *)
  remote_priority : bool;
      (** If true, writes made through {!apply_writeset} preempt
          conflicting local lock holders (the "priority tagging" some
          databases offer, §8.2); if false, conflicts queue and can
          deadlock, to be resolved by the middleware's soft recovery. *)
  gc_interval : Sim.Time.t option;
      (** Periodic vacuum of row versions older than the oldest active
          snapshot (PostgreSQL's "garbage collection to delete old
          snapshots", §8.1), additionally capped by the cluster GC floor
          once one has been gossiped (see {!set_cluster_gc_floor}). *)
  max_snapshot_age : Sim.Time.t option;
      (** Escape hatch for the GC watermark: a {e local} transaction still
          Active after this long is doomed by the vacuum pass (counted in
          {!stale_snapshots_expired}), so one stalled or leaked snapshot
          cannot pin garbage collection — or the cluster floor — forever.
          [None] disables expiry. *)
}

val default_config : config

val create :
  Sim.Engine.t ->
  rng:Sim.Rng.t ->
  log_disk:Storage.Disk.t ->
  ?data_disk:Storage.Disk.t ->
  ?cpu:Sim.Resource.t ->
  ?config:config ->
  ?name:string ->
  unit ->
  t

val name : t -> string
val config : t -> config
val engine : t -> Sim.Engine.t

val current_version : t -> int
(** Version of the newest announced snapshot. *)

val load : t -> (Key.t * Value.t) list -> unit
(** Populate initial data as part of version 0 (identical on every
    replica; no logging). *)

(** {1 Transactions} *)

type tx

type abort_reason =
  | Ww_conflict of Key.t
      (** first-updater-wins: a concurrent transaction committed a write
          to this key *)
  | Deadlock of txid list  (** the wait would close this cycle *)
  | Preempted  (** force-aborted (priority writeset or soft recovery) *)

val pp_abort_reason : Format.formatter -> abort_reason -> unit

val begin_tx : t -> tx
val tx_id : tx -> txid
val snapshot_version : tx -> int

val read : tx -> Key.t -> Value.t option
(** Snapshot read (sees the transaction's own writes). May block on a
    page-in. *)

val write : tx -> Key.t -> Writeset.op -> (unit, abort_reason) result
(** Buffer a write, taking the row lock eagerly. May block behind the
    current holder. On [Error] the transaction has been aborted and its
    locks released. *)

val writeset : tx -> Writeset.t
(** The extracted writeset so far (the paper's trigger mechanism). *)

val abort : tx -> unit
(** Roll back; idempotent, also safe on doomed transactions. *)

val commit_readonly : tx -> unit
(** Finish a transaction that wrote nothing: no version is created, no log
    record written, nothing counted. @raise Invalid_argument if the
    transaction has a non-empty writeset. *)

val is_doomed : tx -> abort_reason option
(** A transaction force-aborted while its owner fiber was elsewhere learns
    about it here (or via the [Error] of its next operation). *)

(** {1 Committing} *)

val commit_standalone : tx -> (int, abort_reason) result
(** Centralised-database commit: assigns the next version itself, makes
    the commit durable per the configured {!durability}, announces, and
    returns the new version. *)

val commit_replicated : tx -> version:int -> order:int -> (unit, abort_reason) result
(** Replicated commit: the certifier chose the global [version]; [order]
    is this database's dense announce sequence (from {!next_order}). The
    commit record is written (and grouped) immediately; the announcement
    waits for its turn. *)

val next_order : t -> int
(** Allocate the next announce sequence number ([COMMIT n]'s [n]). The
    caller must eventually commit (or {!skip_order}) every allocated
    number, in any submission order — gaps block later announcements
    (the abuse deadlock of §5.2). *)

val skip_order : t -> int -> unit
(** Release an allocated-but-unused sequence number (the transaction it
    was meant for aborted after allocation). *)

val apply_writeset :
  t -> version:int -> order:int -> Writeset.t -> (unit, abort_reason) result
(** Apply a remote transaction's writeset as a local transaction ([C4] of
    the proxy pseudo-code). Takes locks like any writer; with
    [remote_priority] it preempts conflicting holders, otherwise a
    detected deadlock aborts the application (no effects) and the caller
    must resolve the cycle and retry — with the {e same} [order], which is
    not consumed on failure (call {!skip_order} when giving up). *)

val apply_writeset_batch :
  t -> batch:(int * Writeset.t) list -> order:int -> (unit, abort_reason) result
(** Apply a run of certified writesets — [(version, writeset)] pairs — as
    one local transaction: locks are taken once over the union, the redo
    records share one sync, but each writeset's rows are installed at its
    own certified version. Keeping the versions faithful is what makes a
    later duplicate delivery of any batched writeset (e.g. a delayed
    commit reply backfilling after a certifier failover) land idempotently
    instead of double-applying — which blind images shrug off but
    commutative deltas would double count. Locking and failure behave like
    {!apply_writeset}; an empty batch consumes [order] and succeeds. *)

(** {1 Parallel apply: out-of-order install, ordered publish}

    The dependency-tracked parallel applier lets workers finish commits in
    whatever order their locks, CPU and WAL flushes allow. These variants
    install rows into the version chains immediately ({!Store.install_at})
    and log the commit record right away (so fsyncs group across workers),
    but the store's visible version advances only once every lower announce
    order has completed ({!Commit_order.complete}) — snapshot reads always
    see a gap-free prefix of the global history. Orders must be allocated
    with {!next_order} in version order; versions submitted through these
    functions must be dense (every certified version individually), which
    is what lets recovery chain-check the redo records. Do not mix with the
    serial {!commit_replicated}/{!apply_writeset} on the same instance. *)

val apply_writeset_parallel :
  t -> version:int -> order:int -> Writeset.t -> (unit, abort_reason) result
(** {!apply_writeset}, finishing through the parallel path. Deadlock
    failures leave [order] unconsumed, exactly like the serial variant. *)

val commit_replicated_parallel :
  tx -> version:int -> order:int -> (unit, abort_reason) result
(** {!commit_replicated}, finishing through the parallel path. On a doomed
    transaction the [order] is {e not} consumed: the caller must re-install
    the buffered writeset under the same order with
    {!apply_writeset_parallel}, keeping the publish chain dense. *)

val doom : t -> txid -> unit
(** Force-abort an active transaction (soft recovery / eager
    pre-certification). Its locks are released immediately; its owner
    learns via [Error Preempted] / {!is_doomed}. Unknown ids are
    ignored. *)

val active_txids : t -> txid list
val lock_holder : t -> Key.t -> txid option

(** {1 Snapshot reads for the store} *)

val read_committed : t -> ?at:int -> Key.t -> Value.t option
val store : t -> Store.t

(** {1 Crash and recovery} *)

val crash : t -> unit
(** Power-cut: volatile state (un-synced WAL tail, memory store, active
    transactions, allocated orders) is lost. *)

val recover : t -> int
(** Standard recovery (paper §7.2): rebuild the store by redoing the
    durable WAL, in version order, stopping at the first record whose
    chain predecessor is missing — parallel apply logs records out of
    version order, so a lost middle record truncates everything above it
    and recovery always yields a consistent prefix. Returns the recovered
    version. With [Asynchronous] durability this recovers an {e empty}
    database — that is why Tashkent-MW needs dumps (§7.1). *)

val restore_from_dump : t -> version:int -> Store.t -> unit
(** Tashkent-MW recovery: replace the store with a dump copy taken at
    [version]; the middleware then replays newer remote writesets. *)

val dump : t -> int * Store.t
(** [(version, copy)] of the latest announced snapshot ("DUMP DATA"). The
    time/IO cost of dumping is charged by the caller. *)

(** {1 Garbage collection (the cluster GC watermark)} *)

val oldest_active_snapshot : t -> int
(** Oldest snapshot version any live (non-doomed) transaction still reads;
    the current version when none is active. This is the replica's
    watermark report, piggybacked on certification and fetch requests. *)

val set_cluster_gc_floor : t -> int -> unit
(** Record the cluster-wide GC floor gossiped by the certifier. Monotone —
    a floor below the recorded one is ignored. The vacuum pass never prunes
    versions above [min floor local_oldest]; until the first call the
    database vacuums on local information alone (standalone behaviour). *)

val cluster_gc_floor : t -> int
(** The recorded floor (0 until {!set_cluster_gc_floor} is first called). *)

val stale_snapshots_expired : t -> int
(** Transactions doomed by the [max_snapshot_age] escape hatch. *)

(** {1 Statistics} *)

val commits : t -> int
val aborts : t -> int
val deadlocks_detected : t -> int

val backfills : t -> int
(** Commits installed below the store's current version: the reply
    overtook the remote-writeset stream after a certifier failover; see
    {!Store.backfill}. *)

val wal : t -> (int * int * Writeset.t) Storage.Wal.t
(** Exposed for fsync/group statistics. The record is
    [(version, prev, writeset)] where [prev] is the version this replica
    applied immediately before [version] — the chain recovery verifies. *)

val reset_stats : t -> unit

(** Transaction-lifecycle tracer.

    A trace id is minted at [Proxy.begin_tx] ({!fresh_id}) and threaded
    through the certify request, the Paxos proposal, the WAL fsync, the
    certifier reply and the local install/backfill. Each stage brackets its
    work with {!span}/{!finish}; the tracer timestamps both ends on the
    {e sim clock} (microseconds of virtual time, not wall time) and records
    the completed span into a bounded ring buffer.

    {2 Span taxonomy}

    Stages are free-form strings; the conventions used by the system are
    documented in DESIGN.md §10 ([txn.commit], [certify], [durability],
    [apply], [backfill], [cert.batch], [cert.durability], [wal.fsync]).

    {2 Bounds and overflow}

    The ring holds [capacity] completed spans (default 65536). When full,
    the oldest span is overwritten and {!dropped} counts it; aggregate
    per-stage histograms ({!stage_stats}) still observe every finished span,
    so percentiles stay exact even after wraparound.

    {2 Reset semantics}

    {!reset} empties the ring and zeroes the per-stage histograms, but does
    {e not} rewind the id counter — trace ids keep ascending across resets so
    spans finished after a reset never collide with pre-reset ids.

    {2 Disabled tracer}

    {!disabled} returns a no-op sink: ids are all 0, spans are not recorded
    and cost one branch on the hot path. Every component takes [?trace] and
    defaults to it, so tracing is strictly opt-in. *)

type t

type span
(** An open span, returned by {!span} and closed by {!finish}. *)

(** A completed span as stored in the ring buffer. Times are sim-clock
    instants. *)
type event = {
  id : int;  (** trace id; 0 when the span is not tied to a transaction *)
  stage : string;
  actor : string;  (** component instance, e.g. ["replica0"] or ["cert1"] *)
  started : Sim.Time.t;
  finished : Sim.Time.t;
}

(** Aggregate of one stage's finished spans; durations in µs. *)
type stage_stats = {
  count : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
}

val create : ?capacity:int -> Sim.Engine.t -> t
(** A live tracer reading the given engine's clock. [capacity] is the ring
    size in completed spans (default 65536). *)

val disabled : unit -> t
(** A sink that records nothing; see module docs. *)

val enabled : t -> bool

val fresh_id : t -> int
(** Next transaction trace id (1, 2, ...). Always 0 on a {!disabled}
    tracer. *)

val span : t -> ?id:int -> stage:string -> actor:string -> unit -> span
(** Open a span starting now. [id] defaults to 0 (not transaction-bound). *)

val finish : t -> span -> unit
(** Close a span: records the event into the ring and observes its duration
    (µs) in the stage's histogram. No-op on a {!disabled} tracer. *)

val events : t -> event list
(** Retained spans, oldest first (at most [capacity]). *)

val recorded : t -> int
(** Total spans finished since the last {!reset}, including overwritten
    ones. *)

val dropped : t -> int
(** Spans overwritten by ring wraparound since the last {!reset}. *)

val stages : t -> string list
(** Stage names seen since the last {!reset}, sorted. *)

val stage_stats : t -> string -> stage_stats option

val all_stage_stats : t -> (string * stage_stats) list
(** [(stage, stats)] for every stage, sorted by stage name. *)

val reset : t -> unit

val to_chrome_json : t -> string
(** Render the retained spans as Chrome [trace_event] JSON (the
    [chrome://tracing] / Perfetto format): one object with
    [{"displayTimeUnit":"ms","traceEvents":[...]}], spans as [ph:"X"]
    complete events with [ts]/[dur] in µs, one [pid] per actor (named via
    [process_name] metadata events) and [tid] = trace id. *)

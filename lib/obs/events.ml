open Sim

type event =
  | Request_admitted of {
      actor : string;
      part : int;
      origin : string;
      req_id : int;
      replica_version : int;
    }
  | Verdict of {
      actor : string;
      part : int;
      origin : string;
      req_id : int;
      committed : bool;
      version : int;
    }
  | Durable_ack of {
      actor : string;
      part : int;
      origin : string;
      req_id : int;
      version : int;
    }
  | Log_append of {
      actor : string;
      part : int;
      version : int;
      origin : string;
      req_id : int;
      cross : bool;
    }
  | Gc_floor of { actor : string; part : int; floor : int }
  | Prepared of { actor : string; part : int; gtx : string; vote : bool }
  | Xvote of {
      actor : string;
      part : int;
      from_part : int;
      gtx : string;
      vote : bool;
    }
  | Decision of { actor : string; part : int; gtx : string; committed : bool }
  | Ws_install of { actor : string; part : int; version : int }
  | Snapshot_advance of { actor : string; part : int; version : int }
  | Snapshot_load of { actor : string; part : int; version : int }
  | Tx_submitted of { actor : string; tx : int }
  | Tx_resolved of { actor : string; tx : int; committed : bool }
  | Node_crash of { actor : string }
  | Node_recover of { actor : string }
  | Actor_reset of { actor : string }
  | Fault_health of { healthy : bool }

let pp_event ppf = function
  | Request_admitted { actor; part; origin; req_id; replica_version } ->
      Format.fprintf ppf "admitted p%d %s (%s,%d) rv=%d" part actor origin
        req_id replica_version
  | Verdict { actor; part; origin; req_id; committed; version } ->
      Format.fprintf ppf "verdict p%d %s (%s,%d) %s v=%d" part actor origin
        req_id
        (if committed then "commit" else "abort")
        version
  | Durable_ack { actor; part; origin; req_id; version } ->
      Format.fprintf ppf "durable-ack p%d %s (%s,%d) v=%d" part actor origin
        req_id version
  | Log_append { actor; part; version; origin; req_id; cross } ->
      Format.fprintf ppf "append p%d %s v=%d (%s,%d)%s" part actor version
        origin req_id
        (if cross then " cross" else "")
  | Gc_floor { actor; part; floor } ->
      Format.fprintf ppf "gc-floor p%d %s floor=%d" part actor floor
  | Prepared { actor; part; gtx; vote } ->
      Format.fprintf ppf "prepared p%d %s %s vote=%b" part actor gtx vote
  | Xvote { actor; part; from_part; gtx; vote } ->
      Format.fprintf ppf "xvote p%d %s from p%d %s vote=%b" part actor
        from_part gtx vote
  | Decision { actor; part; gtx; committed } ->
      Format.fprintf ppf "decision p%d %s %s %s" part actor gtx
        (if committed then "commit" else "abort")
  | Ws_install { actor; part; version } ->
      Format.fprintf ppf "install p%d %s v=%d" part actor version
  | Snapshot_advance { actor; part; version } ->
      Format.fprintf ppf "snapshot-advance p%d %s v=%d" part actor version
  | Snapshot_load { actor; part; version } ->
      Format.fprintf ppf "snapshot-load p%d %s v=%d" part actor version
  | Tx_submitted { actor; tx } -> Format.fprintf ppf "submit %s #%d" actor tx
  | Tx_resolved { actor; tx; committed } ->
      Format.fprintf ppf "resolve %s #%d %s" actor tx
        (if committed then "commit" else "abort")
  | Node_crash { actor } -> Format.fprintf ppf "crash %s" actor
  | Node_recover { actor } -> Format.fprintf ppf "recover %s" actor
  | Actor_reset { actor } -> Format.fprintf ppf "reset %s" actor
  | Fault_health { healthy } ->
      Format.fprintf ppf "fault-health %s"
        (if healthy then "healthy" else "faulted")

type handler = Time.t -> event -> unit

type t = {
  on : bool;
  now : unit -> Time.t;
  mutable handlers : handler list;
  mutable emitted : int;
}

let create engine =
  { on = true; now = (fun () -> Engine.now engine); handlers = []; emitted = 0 }

let disabled () =
  { on = false; now = (fun () -> Time.zero); handlers = []; emitted = 0 }

let enabled t = t.on

let subscribe t h = t.handlers <- t.handlers @ [ h ]

let emit t ev =
  if t.on then begin
    t.emitted <- t.emitted + 1;
    let now = t.now () in
    List.iter (fun h -> h now ev) t.handlers
  end

let emitted t = t.emitted

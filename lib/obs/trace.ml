open Sim

type event = {
  id : int;
  stage : string;
  actor : string;
  started : Time.t;
  finished : Time.t;
}

type span = { sp_id : int; sp_stage : string; sp_actor : string; sp_started : Time.t }

type stage_stats = {
  count : int;
  mean_us : float;
  p50_us : float;
  p95_us : float;
  p99_us : float;
}

type t = {
  on : bool;
  now : unit -> Time.t;
  capacity : int;
  ring : event array;
  mutable next_slot : int;
  mutable total : int; (* finished spans since last reset *)
  mutable next_id : int;
  hists : (string, Stats.Histogram.t) Hashtbl.t;
}

let dummy_event = { id = 0; stage = ""; actor = ""; started = Time.zero; finished = Time.zero }
let dummy_span = { sp_id = 0; sp_stage = ""; sp_actor = ""; sp_started = Time.zero }

let create ?(capacity = 65536) engine =
  if capacity <= 0 then invalid_arg "Obs.Trace.create: capacity must be positive";
  {
    on = true;
    now = (fun () -> Engine.now engine);
    capacity;
    ring = Array.make capacity dummy_event;
    next_slot = 0;
    total = 0;
    next_id = 0;
    hists = Hashtbl.create 16;
  }

let disabled () =
  {
    on = false;
    now = (fun () -> Time.zero);
    capacity = 0;
    ring = [||];
    next_slot = 0;
    total = 0;
    next_id = 0;
    hists = Hashtbl.create 1;
  }

let enabled t = t.on

let fresh_id t =
  if not t.on then 0
  else (
    t.next_id <- t.next_id + 1;
    t.next_id)

let span t ?(id = 0) ~stage ~actor () =
  if not t.on then dummy_span
  else { sp_id = id; sp_stage = stage; sp_actor = actor; sp_started = t.now () }

let finish t sp =
  if t.on then begin
    let ev =
      {
        id = sp.sp_id;
        stage = sp.sp_stage;
        actor = sp.sp_actor;
        started = sp.sp_started;
        finished = t.now ();
      }
    in
    t.ring.(t.next_slot) <- ev;
    t.next_slot <- (t.next_slot + 1) mod t.capacity;
    t.total <- t.total + 1;
    let h =
      match Hashtbl.find_opt t.hists sp.sp_stage with
      | Some h -> h
      | None ->
          let h = Stats.Histogram.create () in
          Hashtbl.replace t.hists sp.sp_stage h;
          h
    in
    Stats.Histogram.observe h (float_of_int Time.(to_us (diff ev.finished ev.started)))
  end

let recorded t = t.total
let dropped t = if t.total > t.capacity then t.total - t.capacity else 0

let events t =
  let n = min t.total t.capacity in
  let first =
    if t.total <= t.capacity then 0 else t.next_slot (* oldest surviving slot *)
  in
  List.init n (fun i -> t.ring.((first + i) mod t.capacity))

let stages t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.hists [] |> List.sort String.compare

let stats_of_hist h =
  {
    count = Stats.Histogram.count h;
    mean_us = Stats.Histogram.mean h;
    p50_us = Stats.Histogram.percentile h 0.50;
    p95_us = Stats.Histogram.percentile h 0.95;
    p99_us = Stats.Histogram.percentile h 0.99;
  }

let stage_stats t stage = Option.map stats_of_hist (Hashtbl.find_opt t.hists stage)

let all_stage_stats t =
  List.map (fun s -> (s, stats_of_hist (Hashtbl.find t.hists s))) (stages t)

let reset t =
  t.next_slot <- 0;
  t.total <- 0;
  Hashtbl.iter (fun _ h -> Stats.Histogram.reset h) t.hists

(* --- Chrome trace_event rendering ------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_chrome_json t =
  let evs = events t in
  (* Stable pid per actor, in order of first appearance. *)
  let pids = Hashtbl.create 8 in
  let actors = ref [] in
  List.iter
    (fun ev ->
      if not (Hashtbl.mem pids ev.actor) then begin
        Hashtbl.replace pids ev.actor (Hashtbl.length pids + 1);
        actors := ev.actor :: !actors
      end)
    evs;
  let actors = List.rev !actors in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b s
  in
  List.iter
    (fun actor ->
      emit
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
           (Hashtbl.find pids actor) (json_escape actor)))
    actors;
  List.iter
    (fun ev ->
      let dur = Time.(to_us (diff ev.finished ev.started)) in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"tashkent\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d,\"args\":{\"trace_id\":%d,\"actor\":\"%s\"}}"
           (json_escape ev.stage)
           (Time.to_us ev.started)
           dur (Hashtbl.find pids ev.actor) ev.id ev.id (json_escape ev.actor)))
    evs;
  Buffer.add_string b "]}";
  Buffer.contents b

(** Typed protocol-event stream.

    Components emit one event at each protocol decision point — a certifier
    fixes a verdict, a Paxos entry is delivered and appended, a writeset is
    installed, the visible snapshot advances, a durable ack leaves, a
    cross-partition Prepared/Xvote/Decision is processed. The stream sits
    beside the latency spans in {!Trace}: spans measure {e how long} a stage
    took, events record {e what the protocol decided}, so online monitors
    ({!Monitor}) can check safety invariants per event, during the run,
    instead of only at post-hoc checkpoints.

    The disabled stream ({!disabled}) makes every [emit] a single branch, so
    performance runs pay nothing. Handlers run synchronously inside [emit]
    and must not touch the simulation (no fiber spawns, no random draws):
    an enabled stream is observationally invisible to the simulated system,
    which keeps every fixed seed bit-identical with monitors on or off.

    Identity conventions: [actor] is the emitting component's address
    (certifier id such as ["p0.cert1"], or a partition proxy address such as
    ["replica2#p1"]); [part] is the certifier-group index (0 when
    unpartitioned); [origin]/[req_id] match the certification log entry
    fields; [gtx] is the printed global transaction id. *)

type event =
  | Request_admitted of {
      actor : string;
      part : int;
      origin : string;
      req_id : int;
      replica_version : int;
    }
      (** A leader accepted a certification request into its pipeline; the
          snapshot at [replica_version] is live until the verdict. *)
  | Verdict of {
      actor : string;
      part : int;
      origin : string;
      req_id : int;
      committed : bool;
      version : int;
    }  (** The certifier's reply left: commit at [version], or abort. *)
  | Durable_ack of {
      actor : string;
      part : int;
      origin : string;
      req_id : int;
      version : int;
    }
      (** A {e commit} reply left after the entry was durably replicated —
          the commit-before-ack point the durability monitor pins. *)
  | Log_append of {
      actor : string;
      part : int;
      version : int;
      origin : string;
      req_id : int;
      cross : bool;
    }
      (** [actor] appended the delivered entry to its certification log
          ([cross] marks a cross-partition fragment). *)
  | Gc_floor of { actor : string; part : int; floor : int }
      (** [actor] truncated its log below [floor]. *)
  | Prepared of { actor : string; part : int; gtx : string; vote : bool }
      (** A Prepared record was delivered and [actor] fixed its group's
          vote for [gtx]. *)
  | Xvote of {
      actor : string;
      part : int;
      from_part : int;
      gtx : string;
      vote : bool;
    }  (** [actor] received partition [from_part]'s vote for [gtx]. *)
  | Decision of { actor : string; part : int; gtx : string; committed : bool }
      (** A Decision record was delivered: [actor]'s group applies it. *)
  | Ws_install of { actor : string; part : int; version : int }
      (** A replica installed the writeset of [version] into its store. *)
  | Snapshot_advance of { actor : string; part : int; version : int }
      (** The replica's visible snapshot version advanced to [version]. *)
  | Snapshot_load of { actor : string; part : int; version : int }
      (** The replica adopted a whole snapshot at [version] (dump restore,
          below-floor snapshot transfer): a legal version jump. *)
  | Tx_submitted of { actor : string; tx : int }
      (** Proxy [actor] accepted update transaction [tx] (a per-proxy
          sequence number) for certification. *)
  | Tx_resolved of { actor : string; tx : int; committed : bool }
      (** Transaction [tx] came back to the client: committed or aborted. *)
  | Node_crash of { actor : string }
      (** [actor] (certifier, or each partition proxy of a crashing
          replica) lost its volatile state. *)
  | Node_recover of { actor : string }
  | Actor_reset of { actor : string }
      (** [actor] abandoned its in-flight work without crashing (proxy
          pause/disconnect: client fibers are cancelled). *)
  | Fault_health of { healthy : bool }
      (** The fault injector's quiescence changed: [healthy = true] means
          every injected fault has been reverted. *)

val pp_event : Format.formatter -> event -> unit

type handler = Sim.Time.t -> event -> unit

type t

val create : Sim.Engine.t -> t
(** A live stream stamping events with the engine clock. *)

val disabled : unit -> t
(** A no-op stream: [emit] is one branch, nothing is recorded. *)

val enabled : t -> bool

val subscribe : t -> handler -> unit
(** Append a handler; handlers run synchronously inside {!emit}, in
    subscription order, and must not touch the simulation. *)

val emit : t -> event -> unit
val emitted : t -> int

open Sim

type value =
  | Counter of int
  | Gauge of float
  | Summary of { count : int; mean : float; min : float; max : float }
  | Histogram of { count : int; mean : float; p50 : float; p95 : float; p99 : float }

type metric =
  | M_counter of Stats.Counter.t
  | M_summary of Stats.Summary.t
  | M_histogram of Stats.Histogram.t
  | M_gauge of (unit -> float)

type t = {
  metrics : (string, metric) Hashtbl.t;
  mutable hooks : (unit -> unit) list; (* reverse registration order *)
}

let create () = { metrics = Hashtbl.create 64; hooks = [] }

let register t name m =
  if Hashtbl.mem t.metrics name then
    invalid_arg (Printf.sprintf "Obs.Registry: duplicate metric %S" name);
  Hashtbl.replace t.metrics name m

let counter t name =
  let c = Stats.Counter.create () in
  register t name (M_counter c);
  c

let summary t name =
  let s = Stats.Summary.create () in
  register t name (M_summary s);
  s

let histogram ?precision t name =
  let h = Stats.Histogram.create ?precision () in
  register t name (M_histogram h);
  h

let gauge t name read = register t name (M_gauge read)
let on_reset t hook = t.hooks <- hook :: t.hooks

let read = function
  | M_counter c -> Counter (Stats.Counter.value c)
  | M_gauge f -> Gauge (f ())
  | M_summary s ->
      Summary
        {
          count = Stats.Summary.count s;
          mean = Stats.Summary.mean s;
          min = Stats.Summary.min s;
          max = Stats.Summary.max s;
        }
  | M_histogram h ->
      Histogram
        {
          count = Stats.Histogram.count h;
          mean = Stats.Histogram.mean h;
          p50 = Stats.Histogram.percentile h 0.50;
          p95 = Stats.Histogram.percentile h 0.95;
          p99 = Stats.Histogram.percentile h 0.99;
        }

let snapshot t =
  Hashtbl.fold (fun name m acc -> (name, read m) :: acc) t.metrics []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let find t name = Option.map read (Hashtbl.find_opt t.metrics name)

let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> Stats.Counter.reset c
      | M_summary s -> Stats.Summary.reset s
      | M_histogram h -> Stats.Histogram.reset h
      | M_gauge _ -> ())
    t.metrics;
  List.iter (fun hook -> hook ()) (List.rev t.hooks)

let size t = Hashtbl.length t.metrics

(** Online protocol invariant monitors.

    Five always-on monitors subscribe to an {!Events} stream and check each
    event as it is emitted, during the run — so a violation that
    self-corrects before the next post-hoc checkpoint (a transiently skipped
    version, a floor that briefly passed a live snapshot) is still caught
    at the moment it happens:

    - {b durability}: every durably-acked commit keeps its (origin, req_id,
      version) identity across any later recovery's log rebuild, no other
      writeset ever takes an acked version, and no acked commit is later
      answered with an abort.
    - {b serial-order}: each certifier appends versions in contiguous
      certified order and never applies the same writeset twice; each
      replica store installs every version exactly once, and its visible
      snapshot only advances (never retreats) through the contiguous
      installed prefix — GSI's consistent-prefix rule. Dump restores and
      below-floor snapshot transfers announce themselves as
      [Snapshot_load], a legal jump.
    - {b cross-atomicity}: one global decision per cross-partition
      transaction — no group applies a Decision another group decided
      differently, group votes never diverge or flip, and no transaction
      commits over a recorded abort vote.
    - {b gc-floor}: a certifier's GC floor is monotone between crashes and
      never advances past the snapshot version of a request it has admitted
      but not yet answered (a live snapshot).
    - {b progress}: every submitted transaction resolves (commit or abort)
      within [progress_bound] of simulated time, counted from submission or
      from the last fault heal, whichever is later. Work abandoned by a
      crash or proxy reset is excused by the corresponding lifecycle event.

    Monitors are pure observers: they never touch the simulation, draw
    randomness, or mutate protocol state, so enabling them leaves every
    fixed seed bit-identical. *)

type violation = { at : Sim.Time.t; monitor : string; detail : string }

val pp_violation : Format.formatter -> violation -> unit

type t

val attach : ?progress_bound:Sim.Time.t -> ?metrics:Registry.t -> Events.t -> t
(** Subscribe the five monitors to [events]. [progress_bound] defaults to
    20 simulated seconds. When [metrics] is given, registers the
    [monitor.violations] and [monitor.events] gauges (pass each registry to
    at most one [attach]). *)

val finalize : t -> now:Sim.Time.t -> unit
(** Run the progress check one final time at the end of a run: transactions
    still unresolved after the drain are stuck for good, even though the
    event stream has gone silent. *)

val violations : t -> violation list
(** Oldest first. *)

val violation_count : t -> int
val events_seen : t -> int

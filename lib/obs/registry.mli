(** Central metrics registry.

    One registry instance is shared by every component of a cluster (proxies,
    certifiers, Paxos nodes, WALs, disks, the network, the fault injector).
    Components create their counters/summaries/histograms {e through} the
    registry — the returned handles are the ordinary [Sim.Stats] primitives,
    so hot-path cost is unchanged — and the registry remembers them by name.
    [snapshot] then reads every metric in one pass and [reset] restarts the
    measurement window for all of them, replacing the per-module
    [reset_stats] plumbing that used to live in [Cluster].

    {2 Naming}

    Metric names follow [component.instance.metric], e.g.
    [proxy.replica0.commits] or [certifier.cert1.wal.fsyncs]. Names must be
    unique within a registry; registering a duplicate raises
    [Invalid_argument]. Instance segments come from the component's network
    address / node id, so two clusters never share a registry.

    {2 Reset semantics}

    [reset] zeroes every registered counter, summary and histogram, then runs
    the [on_reset] hooks in registration order. Gauges are read-only views of
    external state and are {e not} touched by [reset]; components whose
    gauges must re-baseline on reset (e.g. the certifier's cumulative log
    bytes) install an [on_reset] hook that captures the baseline.

    {2 Thread of control}

    The registry is not itself concurrency-safe in any OS sense — like the
    rest of the simulator it is only ever touched from the single-threaded
    discrete-event engine, so no locking is needed. *)

type t

(** A point-in-time reading of one metric, as returned by {!snapshot}. *)
type value =
  | Counter of int  (** monotone count since the last {!reset} *)
  | Gauge of float  (** instantaneous reading; unaffected by {!reset} *)
  | Summary of { count : int; mean : float; min : float; max : float }
      (** Welford summary of observed samples since the last {!reset} *)
  | Histogram of { count : int; mean : float; p50 : float; p95 : float; p99 : float }
      (** latency histogram (values in µs by convention) since the last
          {!reset} *)

val create : unit -> t

val counter : t -> string -> Sim.Stats.Counter.t
(** Create and register a counter under [name]. The handle is a plain
    [Sim.Stats.Counter.t]; increments cost the same as an unregistered
    counter. @raise Invalid_argument on duplicate name. *)

val summary : t -> string -> Sim.Stats.Summary.t
(** Create and register a summary. @raise Invalid_argument on duplicate. *)

val histogram : ?precision:float -> t -> string -> Sim.Stats.Histogram.t
(** Create and register a histogram ([precision] as in
    [Sim.Stats.Histogram.create]). @raise Invalid_argument on duplicate. *)

val gauge : t -> string -> (unit -> float) -> unit
(** Register a read callback evaluated at {!snapshot} time. Use for state
    owned elsewhere (disk utilization, WAL fsync totals, queue lengths).
    Gauges are {e not} reset by {!reset}. @raise Invalid_argument on
    duplicate. *)

val on_reset : t -> (unit -> unit) -> unit
(** Register a hook run by {!reset} after all registered metrics have been
    zeroed, in registration order. Components use this to re-baseline
    windowed gauges or to reset sub-component stats they own (WAL, Paxos
    batch stats, MVCC store). *)

val snapshot : t -> (string * value) list
(** Read every metric, sorted by name. Gauge callbacks are invoked here. *)

val find : t -> string -> value option
(** Read a single metric by exact name. *)

val reset : t -> unit
(** Start a new measurement window: zero all counters/summaries/histograms,
    then run the {!on_reset} hooks. Gauges are untouched. *)

val size : t -> int
(** Number of registered metrics (including gauges). *)

open Sim

type violation = { at : Time.t; monitor : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "[%.3fs] %s: %s"
    (float_of_int (Time.to_us v.at) /. 1e6)
    v.monitor v.detail

(* Per-certifier view for the durability and gc-floor monitors. Rebuilt
   from scratch when the node crashes: recovery redelivers the Paxos log
   from the first slot, so the log view restarts at version 0 and the
   re-appends are checked against the global acked table — which is exactly
   the "acked commits survive recovery" obligation. *)
type cert_state = {
  mutable log_version : int; (* last contiguously appended version *)
  appended : (string * int, int) Hashtbl.t; (* (origin, req_id) -> version *)
  mutable floor : int;
  outstanding : (string * int, int) Hashtbl.t;
      (* admitted, unanswered requests -> replica_version (live snapshot) *)
}

(* Per-(replica, partition) proxy view for the serial-order monitor. *)
type store_state = {
  mutable base : int; (* every version <= base is installed *)
  installed : (int, unit) Hashtbl.t; (* versions > base installed so far *)
  mutable visible : int; (* last announced snapshot version *)
}

type xrecord = {
  mutable decided : bool option;
  votes : (int, bool) Hashtbl.t; (* participant part -> its fixed vote *)
}

type t = {
  events : Events.t;
  progress_bound : Time.t;
  mutable violations : violation list; (* newest first *)
  mutable n_violations : int;
  mutable n_events : int;
  (* 1. commit-durability *)
  acked : (int * string * int, int) Hashtbl.t; (* (part,origin,req) -> v *)
  acked_at : (int * int, string * int) Hashtbl.t; (* (part,v) -> key *)
  certs : (string, cert_state) Hashtbl.t; (* also feeds monitor 4 *)
  (* 2. serial order / GSI *)
  stores : (string, store_state) Hashtbl.t;
  (* 3. cross-partition atomicity *)
  xas : (string, xrecord) Hashtbl.t;
  (* 5. progress *)
  pending : (string * int, Time.t) Hashtbl.t;
  mutable healthy : bool;
  mutable last_heal : Time.t;
  mutable last_progress_check : Time.t;
}

let violationf t ~at ~monitor fmt =
  Format.kasprintf
    (fun detail ->
      t.n_violations <- t.n_violations + 1;
      t.violations <- { at; monitor; detail } :: t.violations)
    fmt

let cert_state t actor =
  match Hashtbl.find_opt t.certs actor with
  | Some s -> s
  | None ->
      let s =
        {
          log_version = 0;
          appended = Hashtbl.create 64;
          floor = 0;
          outstanding = Hashtbl.create 16;
        }
      in
      Hashtbl.replace t.certs actor s;
      s

let store_state t actor =
  match Hashtbl.find_opt t.stores actor with
  | Some s -> s
  | None ->
      let s = { base = 0; installed = Hashtbl.create 64; visible = 0 } in
      Hashtbl.replace t.stores actor s;
      s

let xrecord t gtx =
  match Hashtbl.find_opt t.xas gtx with
  | Some r -> r
  | None ->
      let r = { decided = None; votes = Hashtbl.create 4 } in
      Hashtbl.replace t.xas gtx r;
      r

(* --- 1. commit-durability --------------------------------------------- *)

let on_durable_ack t at ~part ~origin ~req_id ~version =
  let key = (part, origin, req_id) in
  (match Hashtbl.find_opt t.acked key with
  | Some v when v <> version ->
      violationf t ~at ~monitor:"durability"
        "commit (%s,%d) p%d acked at v=%d was previously acked at v=%d"
        origin req_id part version v
  | _ -> ());
  (match Hashtbl.find_opt t.acked_at (part, version) with
  | Some (o, r) when not (String.equal o origin && r = req_id) ->
      violationf t ~at ~monitor:"durability"
        "p%d v=%d acked for (%s,%d) but already acked for (%s,%d)" part
        version origin req_id o r
  | _ -> ());
  Hashtbl.replace t.acked key version;
  Hashtbl.replace t.acked_at (part, version) (origin, req_id)

let on_verdict t at ~part ~origin ~req_id ~committed ~actor =
  let cs = cert_state t actor in
  Hashtbl.remove cs.outstanding (origin, req_id);
  if (not committed) && Hashtbl.mem t.acked (part, origin, req_id) then
    violationf t ~at ~monitor:"durability"
      "commit (%s,%d) p%d was durably acked but %s later replied abort" origin
      req_id part actor

let on_log_append t at ~actor ~part ~version ~origin ~req_id =
  let cs = cert_state t actor in
  if version <> cs.log_version + 1 then
    violationf t ~at ~monitor:"serial-order"
      "%s appended v=%d after v=%d (certified order broken)" actor version
      cs.log_version;
  cs.log_version <- max cs.log_version version;
  (match Hashtbl.find_opt cs.appended (origin, req_id) with
  | Some v when v <> version ->
      violationf t ~at ~monitor:"serial-order"
        "%s appended (%s,%d) twice: v=%d and v=%d" actor origin req_id v
        version
  | _ -> ());
  Hashtbl.replace cs.appended (origin, req_id) version;
  (* The durability obligations: an acked commit keeps its version across
     any recovery's re-append, and nothing else takes that version. *)
  (match Hashtbl.find_opt t.acked (part, origin, req_id) with
  | Some v when v <> version ->
      violationf t ~at ~monitor:"durability"
        "acked commit (%s,%d) p%d re-appeared at v=%d (acked at v=%d)" origin
        req_id part version v
  | _ -> ());
  match Hashtbl.find_opt t.acked_at (part, version) with
  | Some (o, r) when not (String.equal o origin && r = req_id) ->
      violationf t ~at ~monitor:"durability"
        "p%d v=%d belongs to acked commit (%s,%d) but %s appended (%s,%d)"
        part version o r actor origin req_id
  | _ -> ()

(* --- 2. serial order / GSI -------------------------------------------- *)

let on_ws_install t at ~actor ~version =
  let ss = store_state t actor in
  if version <= ss.base || Hashtbl.mem ss.installed version then
    violationf t ~at ~monitor:"serial-order"
      "%s installed writeset v=%d twice" actor version
  else Hashtbl.replace ss.installed version ()

let on_snapshot_advance t at ~actor ~version =
  let ss = store_state t actor in
  if version < ss.visible then
    violationf t ~at ~monitor:"serial-order"
      "%s visible snapshot went backwards: v=%d after v=%d" actor version
      ss.visible
  else begin
    (* The snapshot may only expose the contiguous installed prefix. *)
    for v = max ss.visible ss.base + 1 to version do
      if v > ss.base && not (Hashtbl.mem ss.installed v) then
        violationf t ~at ~monitor:"serial-order"
          "%s snapshot advanced to v=%d over uninstalled v=%d" actor version v
    done;
    ss.visible <- version;
    (* Compact: everything below the visible horizon is settled. *)
    if version > ss.base then begin
      for v = ss.base + 1 to version do
        Hashtbl.remove ss.installed v
      done;
      ss.base <- version
    end
  end

let on_snapshot_load t ~actor ~version =
  let ss = store_state t actor in
  Hashtbl.reset ss.installed;
  ss.base <- version;
  ss.visible <- version

(* --- 3. cross-partition atomicity ------------------------------------- *)

let on_prepared t at ~part ~gtx ~vote =
  let r = xrecord t gtx in
  (match Hashtbl.find_opt r.votes part with
  | Some v when v <> vote ->
      violationf t ~at ~monitor:"cross-atomicity"
        "%s p%d fixed vote %b but the group previously voted %b" gtx part vote
        v
  | _ -> ());
  Hashtbl.replace r.votes part vote;
  match r.decided with
  | Some true when not vote ->
      violationf t ~at ~monitor:"cross-atomicity"
        "%s decided commit but p%d votes abort" gtx part
  | _ -> ()

let on_decision t at ~part ~gtx ~committed =
  let r = xrecord t gtx in
  (match r.decided with
  | Some d when d <> committed ->
      violationf t ~at ~monitor:"cross-atomicity"
        "%s decision %s at p%d conflicts with earlier decision %s" gtx
        (if committed then "commit" else "abort")
        part
        (if d then "commit" else "abort")
  | _ -> ());
  r.decided <- Some committed;
  if committed then
    Hashtbl.iter
      (fun p v ->
        if not v then
          violationf t ~at ~monitor:"cross-atomicity"
            "%s decided commit but p%d had voted abort" gtx p)
      r.votes

(* --- 4. monotone GC floor --------------------------------------------- *)

let on_gc_floor t at ~actor ~part ~floor =
  let cs = cert_state t actor in
  if floor < cs.floor then
    violationf t ~at ~monitor:"gc-floor"
      "%s p%d floor went backwards: %d after %d" actor part floor cs.floor;
  Hashtbl.iter
    (fun (origin, req_id) rv ->
      if rv < floor then
        violationf t ~at ~monitor:"gc-floor"
          "%s p%d advanced floor to %d over live snapshot rv=%d of pending \
           (%s,%d)"
          actor part floor rv origin req_id)
    cs.outstanding;
  cs.floor <- max cs.floor floor

(* --- 5. progress -------------------------------------------------------- *)

let check_progress t ~now =
  let overdue = ref [] in
  Hashtbl.iter
    (fun key submitted ->
      (* The clock starts at submission, or at the last heal if the run was
         faulted since: "eventually commits or aborts once faults heal". *)
      let since =
        if Time.(submitted < t.last_heal) then t.last_heal else submitted
      in
      if Time.(Time.add since t.progress_bound < now) then
        overdue := key :: !overdue)
    t.pending;
  List.iter
    (fun ((actor, tx) as key) ->
      let submitted = Hashtbl.find t.pending key in
      Hashtbl.remove t.pending key;
      violationf t ~at:now ~monitor:"progress"
        "%s #%d submitted at %.3fs still unresolved %.1fs after faults healed"
        actor tx
        (float_of_int (Time.to_us submitted) /. 1e6)
        (float_of_int (Time.to_us t.progress_bound) /. 1e6))
    !overdue

let maybe_check_progress t ~now =
  if t.healthy && Time.(Time.add t.last_progress_check (Time.sec 1) < now)
  then begin
    t.last_progress_check <- now;
    check_progress t ~now
  end

(* --- node lifecycle ----------------------------------------------------- *)

let drop_actor_pending t actor =
  let stale =
    Hashtbl.fold
      (fun ((a, _) as key) _ acc ->
        if String.equal a actor then key :: acc else acc)
      t.pending []
  in
  List.iter (Hashtbl.remove t.pending) stale

let on_node_crash t actor =
  (* A crashed certifier rebuilds its log by redelivery (checked against
     the acked table as it does); a crashed replica's stores are re-seeded
     by the Snapshot_load its recovery emits. Either way the old per-actor
     view is void, as is any client work the crash cancelled. *)
  Hashtbl.remove t.certs actor;
  Hashtbl.remove t.stores actor;
  drop_actor_pending t actor

let handle t at ev =
  t.n_events <- t.n_events + 1;
  (match ev with
  | Events.Request_admitted { actor; origin; req_id; replica_version; _ } ->
      let cs = cert_state t actor in
      Hashtbl.replace cs.outstanding (origin, req_id) replica_version
  | Events.Verdict { actor; part; origin; req_id; committed; _ } ->
      on_verdict t at ~part ~origin ~req_id ~committed ~actor
  | Events.Durable_ack { part; origin; req_id; version; _ } ->
      on_durable_ack t at ~part ~origin ~req_id ~version
  | Events.Log_append { actor; part; version; origin; req_id; _ } ->
      on_log_append t at ~actor ~part ~version ~origin ~req_id
  | Events.Gc_floor { actor; part; floor } -> on_gc_floor t at ~actor ~part ~floor
  | Events.Prepared { part; gtx; vote; _ } -> on_prepared t at ~part ~gtx ~vote
  | Events.Xvote _ -> ()
  | Events.Decision { part; gtx; committed; _ } ->
      on_decision t at ~part ~gtx ~committed
  | Events.Ws_install { actor; version; _ } -> on_ws_install t at ~actor ~version
  | Events.Snapshot_advance { actor; version; _ } ->
      on_snapshot_advance t at ~actor ~version
  | Events.Snapshot_load { actor; version; _ } ->
      on_snapshot_load t ~actor ~version
  | Events.Tx_submitted { actor; tx } ->
      Hashtbl.replace t.pending (actor, tx) at
  | Events.Tx_resolved { actor; tx; _ } -> Hashtbl.remove t.pending (actor, tx)
  | Events.Node_crash { actor } -> on_node_crash t actor
  | Events.Node_recover _ -> ()
  | Events.Actor_reset { actor } -> drop_actor_pending t actor
  | Events.Fault_health { healthy } ->
      if healthy && not t.healthy then t.last_heal <- at;
      t.healthy <- healthy);
  maybe_check_progress t ~now:at

let attach ?(progress_bound = Time.sec 20) ?metrics events =
  let t =
    {
      events;
      progress_bound;
      violations = [];
      n_violations = 0;
      n_events = 0;
      acked = Hashtbl.create 1024;
      acked_at = Hashtbl.create 1024;
      certs = Hashtbl.create 8;
      stores = Hashtbl.create 8;
      xas = Hashtbl.create 64;
      pending = Hashtbl.create 64;
      healthy = true;
      last_heal = Time.zero;
      last_progress_check = Time.zero;
    }
  in
  Events.subscribe events (fun at ev -> handle t at ev);
  (match metrics with
  | Some reg ->
      Registry.gauge reg "monitor.violations" (fun () ->
          float_of_int t.n_violations);
      Registry.gauge reg "monitor.events" (fun () -> float_of_int t.n_events)
  | None -> ());
  t

let finalize t ~now =
  (* End of run: the workload has drained, so anything still pending is
     stuck for good — apply the progress bound one last time even if the
     event stream went silent. *)
  if t.healthy then check_progress t ~now

let violations t = List.rev t.violations
let violation_count t = t.n_violations
let events_seen t = t.n_events

(** One measured run: build a system, warm it up, measure a steady-state
    window, and report the metrics the paper plots. *)

type workload_kind =
  | All_updates
  | Tpc_b
  | Tpc_w
  | Hotkey
  | Part_local
      (** {!Workload.Partlocal}: two-row updates bucketed by the cluster's
          key partitioner, with a [cross_ratio] fraction spanning two
          partitions — the partitioned-certification scaling workload *)

val workload_name : workload_kind -> string

type system =
  | Standalone  (** a single unreplicated database (§9.2's control) *)
  | Replicated of Tashkent.Types.mode
  | Replicated_nocert of Tashkent.Types.mode
      (** certifier certification without disk writes — the paper's
          [tashAPInoCERT] curve *)

val system_name : system -> string

type config = {
  system : system;
  io : Tashkent.Replica.io_layout;
  n_replicas : int;
  n_certifiers : int;  (** Paxos ring members {e per certifier group} *)
  n_partitions : int;
      (** certifier groups (default 1). With [> 1] the key space is
          sharded by {!Tashkent.Partitioner}, each group certifies one
          shard on its own ring/WAL/log, and clients run through
          {!Tashkent.Session} so a transaction may atomically span
          groups. [1] is bit-identical to the pre-partitioning system. *)
  hosting : Tashkent.Cluster.hosting;
      (** [Host_all] (default): every replica hosts every partition.
          [Host_modulo]: replica [i] hosts only partition
          [i mod n_partitions] — partial replication. *)
  cross_ratio : float;
      (** fraction of {!Part_local} transactions that span two partitions
          (ignored by the other workloads; default 0) *)
  clients_per_replica : int option;
      (** closed-loop client population per replica; [None] (default)
          keeps each workload profile's own default *)
  certify_cpu : Sim.Time.t option;
      (** certifier CPU per certification request; [None] (default) keeps
          {!Tashkent.Certifier.default_config}. Raising it models a
          certification-heavy regime (large writesets, saturated group) —
          the regime partitioned certification is built to relieve. *)
  part_exec_cpu : Sim.Time.t option;
      (** {!Part_local} only: per-transaction replica execution CPU;
          [None] (default) keeps the profile's PostgreSQL-calibrated
          1.65 ms. The partition-scaling benchmark lowers it so replica
          execution (which partitioning does {e not} shard) stays off the
          critical path. *)
  workload : workload_kind;
  deltas : bool;
      (** ship commutative {!Mvcc.Writeset.Add} ops where the workload
          supports them (Hotkey's hot-row bump, TPC-B's balance updates);
          off = the blind read-modify-write baseline *)
  hot_skew : float;  (** Zipf θ for the {!Hotkey} workload (default 0.99) *)
  abort_rate : float;  (** forced aborts at the certifier (§9.5) *)
  eager_precert : bool;  (** §8.2 eager pre-certification (ablation knob) *)
  group_remote_batches : bool;  (** §3 remote-writeset grouping (ablation knob) *)
  apply_workers : int;
      (** parallel applier fibers per replica (1 = the serial/concurrent
          per-mode paths; see {!Tashkent.Proxy.config.apply_workers}) *)
  gc_interval : Sim.Time.t option;
      (** replica vacuum period driven by the cluster GC watermark
          (default 30 s; [None] disables — the unbounded-growth baseline) *)
  seed : int;
  warmup : Sim.Time.t;
  measure : Sim.Time.t;
  trace : bool;
      (** record per-transaction lifecycle spans during the measured window
          (warmup spans are cleared by the post-warmup reset); populates
          [stage_latency] in the result. Off by default — the ring buffer
          bounds memory, but span recording still costs a little time. *)
  monitors : bool;
      (** attach the five online protocol monitors ({!Obs.Monitor}) for the
          whole run (warmup included); populates [monitor_violations].
          Off by default so performance baselines stay cost-free; the
          monitor-overhead benchmark flips exactly this knob. Ignored by
          [Standalone]. *)
}

val default : config

type result = {
  throughput : float;  (** requests (committed + aborted) per second *)
  goodput : float;  (** committed requests per second *)
  resp_ms : float;  (** mean response time of committed update txs *)
  p99_ms : float;  (** 99th-percentile response time of committed update txs *)
  ro_resp_ms : float;  (** mean response time of read-only txs *)
  commits : int;
  aborts : int;
  abort_rate_measured : float;
  cross_commits : int;
      (** multi-partition transactions committed atomically across
          certifier groups (0 when [n_partitions = 1]) *)
  cross_aborts : int;
  cert_ws_per_fsync : float;  (** writesets grouped per certifier-log fsync *)
  cert_accept_broadcasts : int;
      (** multi-entry Accept broadcasts sent by the leader *)
  cert_mean_accept_batch : float;
      (** mean entries per Accept broadcast (> 1 under load) *)
  db_ws_per_fsync : float;  (** commit records grouped per database-log fsync,
                                averaged over replicas *)
  artificial_conflict_pct : float;
      (** fraction of shipped remote writesets flagged as artificially
          conflicting (§5.2.1 / §9.3) *)
  cert_cpu_util : float;
      (** averaged over every certifier group's leader — with partitioned
          certification this reads as per-group load *)
  cert_disk_util : float;
  replica_cpu_util : float;
  replica_disk_util : float;
  apply_parallelism : float;
      (** mean over replicas of the parallel applier's time-weighted exec
          concurrency ({!Tashkent.Proxy.apply_parallelism}); 1.0 when
          [apply_workers = 1] *)
  apply_stalls : int;
      (** total applier items (all replicas) that waited for a conflicting
          predecessor; 0 when [apply_workers = 1] *)
  stage_latency : (string * Obs.Trace.stage_stats) list;
      (** per-stage latency aggregates over the measured window (durations
          in µs of sim time), sorted by stage name; empty unless
          [config.trace] was set (and always empty for [Standalone]) *)
  monitor_violations : string list;
      (** online monitor findings over the whole run; empty on a clean run
          or with [monitors] off *)
  monitor_events : int;  (** protocol events the monitors consumed *)
}

val run : config -> result
(** Blocking (runs the whole simulation): builds the system, warms it up
    for [warmup], resets every stat window, measures for [measure], and
    reads the results. Counters in the result are for the measured window
    only; utilizations are cumulative busy-time fractions. *)

(** One measured run: build a system, warm it up, measure a steady-state
    window, and report the metrics the paper plots. *)

type workload_kind = All_updates | Tpc_b | Tpc_w | Hotkey

val workload_name : workload_kind -> string

type system =
  | Standalone  (** a single unreplicated database (§9.2's control) *)
  | Replicated of Tashkent.Types.mode
  | Replicated_nocert of Tashkent.Types.mode
      (** certifier certification without disk writes — the paper's
          [tashAPInoCERT] curve *)

val system_name : system -> string

type config = {
  system : system;
  io : Tashkent.Replica.io_layout;
  n_replicas : int;
  n_certifiers : int;
  workload : workload_kind;
  deltas : bool;
      (** ship commutative {!Mvcc.Writeset.Add} ops where the workload
          supports them (Hotkey's hot-row bump, TPC-B's balance updates);
          off = the blind read-modify-write baseline *)
  hot_skew : float;  (** Zipf θ for the {!Hotkey} workload (default 0.99) *)
  abort_rate : float;  (** forced aborts at the certifier (§9.5) *)
  eager_precert : bool;  (** §8.2 eager pre-certification (ablation knob) *)
  group_remote_batches : bool;  (** §3 remote-writeset grouping (ablation knob) *)
  apply_workers : int;
      (** parallel applier fibers per replica (1 = the serial/concurrent
          per-mode paths; see {!Tashkent.Proxy.config.apply_workers}) *)
  gc_interval : Sim.Time.t option;
      (** replica vacuum period driven by the cluster GC watermark
          (default 30 s; [None] disables — the unbounded-growth baseline) *)
  seed : int;
  warmup : Sim.Time.t;
  measure : Sim.Time.t;
  trace : bool;
      (** record per-transaction lifecycle spans during the measured window
          (warmup spans are cleared by the post-warmup reset); populates
          [stage_latency] in the result. Off by default — the ring buffer
          bounds memory, but span recording still costs a little time. *)
}

val default : config

type result = {
  throughput : float;  (** requests (committed + aborted) per second *)
  goodput : float;  (** committed requests per second *)
  resp_ms : float;  (** mean response time of committed update txs *)
  ro_resp_ms : float;  (** mean response time of read-only txs *)
  commits : int;
  aborts : int;
  abort_rate_measured : float;
  cert_ws_per_fsync : float;  (** writesets grouped per certifier-log fsync *)
  cert_accept_broadcasts : int;
      (** multi-entry Accept broadcasts sent by the leader *)
  cert_mean_accept_batch : float;
      (** mean entries per Accept broadcast (> 1 under load) *)
  db_ws_per_fsync : float;  (** commit records grouped per database-log fsync,
                                averaged over replicas *)
  artificial_conflict_pct : float;
      (** fraction of shipped remote writesets flagged as artificially
          conflicting (§5.2.1 / §9.3) *)
  cert_cpu_util : float;
  cert_disk_util : float;
  replica_cpu_util : float;
  replica_disk_util : float;
  apply_parallelism : float;
      (** mean over replicas of the parallel applier's time-weighted exec
          concurrency ({!Tashkent.Proxy.apply_parallelism}); 1.0 when
          [apply_workers = 1] *)
  apply_stalls : int;
      (** total applier items (all replicas) that waited for a conflicting
          predecessor; 0 when [apply_workers = 1] *)
  stage_latency : (string * Obs.Trace.stage_stats) list;
      (** per-stage latency aggregates over the measured window (durations
          in µs of sim time), sorted by stage name; empty unless
          [config.trace] was set (and always empty for [Standalone]) *)
}

val run : config -> result
(** Blocking (runs the whole simulation): builds the system, warms it up
    for [warmup], resets every stat window, measures for [measure], and
    reads the results. Counters in the result are for the measured window
    only; utilizations are cumulative busy-time fractions. *)

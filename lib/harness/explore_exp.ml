open Sim

type scenario_kind = Random_schedule | Targeted_schedule
type scenario = { plan_seed : int; kind : scenario_kind }

type repro = {
  scenario : scenario;
  plan : Fault.plan;
  signature : string;
  violations : string list;
  original_len : int;
  shrink_runs : int;
}

type config = {
  base : Chaos_exp.config;
  first_seed : int;
  n_seeds : int;
  targeted : bool;
  batch : int;
  shrink : bool;
  max_shrink_runs : int;
  max_repros : int;
}

let default_config () =
  {
    base = Chaos_exp.default_config ();
    first_seed = 1;
    n_seeds = 8;
    targeted = true;
    batch = 4;
    shrink = true;
    max_shrink_runs = 48;
    max_repros = 3;
  }

type result = {
  scenarios_run : int;
  runs : int;
  clean : int;
  repros : repro list;
}

(* ------------------------------------------------------------------ *)
(* Targeted schedules *)

let targeted_plan ~seed ~duration ~n_certifiers ~n_replicas ?(n_partitions = 1)
    () =
  (* Own stream, disjoint from [Fault.random_plan]'s, so the two schedule
     families for one swept seed are independent. *)
  let rng = Rng.create (0x3C0E lxor seed) in
  let at lo hi = Time.scale duration (Rng.uniform rng ~lo ~hi) in
  let actions = ref [] in
  let add t a = actions := (t, a) :: !actions in
  let certs = List.init n_certifiers (fun i -> Fault.Cert i) in
  let any_replica () = Fault.Rep (Rng.int rng n_replicas) in
  (* Background disturbance: one replica cut off from every certifier long
     enough for client retries to pile up and its watermark report to go
     stale — the pressure that makes stale re-answers and floor races
     reachable at all. *)
  if Rng.chance rng 0.8 then begin
    let r = any_replica () in
    let t0 = at 0.15 0.45 in
    let dur =
      Rng.time_uniform rng ~lo:(Time.of_sec 1.0) ~hi:(Time.of_sec 3.0)
    in
    add t0 (Fault.Partition ([ r ], certs));
    add (Time.add t0 dur) (Fault.Heal ([ r ], certs))
  end;
  (* A handful of precise taps. At most one certifier crash per plan so a
     majority is always up (random taps must explore orderings, not
     manufacture unavailability). *)
  let crashed = ref false in
  let n_taps = 2 + Rng.int rng 3 in
  for _ = 1 to n_taps do
    let t = at 0.1 0.6 in
    match Rng.int rng (if n_partitions > 1 then 6 else 5) with
    | 0 ->
        (* Delay the decisive Paxos acceptor ack: the leader's majority
           completes late, and per-link FIFO stalls everything queued
           behind it. *)
        add t
          (Fault.Delay_msg
             {
               cls = Fault.M_paxos_accept_ok;
               src = None;
               dst = None;
               nth = 1 + Rng.int rng 32;
               extra =
                 Rng.time_uniform rng ~lo:(Time.of_ms 50.)
                   ~hi:(Time.of_ms 900.);
             })
    | 1 ->
        (* Lose a verdict on its way back: the client retries and the
           certifier re-answers from its decided table — the stale-reply
           family. *)
        add t
          (Fault.Drop_msg
             {
               cls = Fault.M_cert_reply;
               src = None;
               dst = Some (any_replica ());
               nth = 1 + Rng.int rng 48;
             })
    | 2 ->
        (* Same family, softer: the verdict arrives, but after the world
           has moved on. *)
        add t
          (Fault.Delay_msg
             {
               cls = Fault.M_cert_reply;
               src = None;
               dst = Some (any_replica ());
               nth = 1 + Rng.int rng 48;
               extra =
                 Rng.time_uniform rng ~lo:(Time.of_sec 0.8)
                   ~hi:(Time.of_sec 2.0);
             })
    | 3 ->
        add t
          (Fault.Drop_msg
             {
               cls = Fault.M_fetch_reply;
               src = None;
               dst = None;
               nth = 1 + Rng.int rng 8;
             })
    | 4 when not !crashed ->
        (* Crash a certifier at the instant it broadcasts a commit
           announcement: the entry is appended and announced, the
           announcer dies before doing anything else. *)
        crashed := true;
        let v = Rng.int rng n_certifiers in
        add t
          (Fault.Crash_on_msg
             {
               cls = Fault.M_paxos_commit;
               src = Some (Fault.Cert v);
               dst = None;
               nth = 1 + Rng.int rng 16;
               victim = Fault.Cert v;
             });
        add (Time.add t (Time.of_sec 2.5)) (Fault.Recover_certifier v);
        (* Backstop in case the tap fires after its paired recovery (both
           are no-ops on an up node). *)
        add (Time.scale duration 0.8) (Fault.Recover_certifier v)
    | 4 -> add t (Fault.Drop_burst { rate = 0.05; duration = Time.of_sec 0.5 })
    | _ ->
        add t
          (Fault.Drop_msg
             {
               cls = Fault.M_xvote;
               src = None;
               dst = None;
               nth = 1 + Rng.int rng 8;
             })
  done;
  add (Time.scale duration 0.85) Fault.Heal_all;
  List.stable_sort (fun (a, _) (b, _) -> Time.compare a b) !actions

(* ------------------------------------------------------------------ *)
(* Running schedules *)

let plan_of cfg { plan_seed; kind } =
  let b = cfg.base in
  match kind with
  | Random_schedule ->
      Fault.random_plan ~seed:plan_seed ~duration:b.duration
        ~n_certifiers:b.n_certifiers ~n_replicas:b.n_replicas
        ~n_partitions:b.n_partitions ~disk_faults:b.disk_faults
        ~fsync_stall:b.fsync_stall ()
  | Targeted_schedule ->
      targeted_plan ~seed:plan_seed ~duration:b.duration
        ~n_certifiers:b.n_certifiers ~n_replicas:b.n_replicas
        ~n_partitions:b.n_partitions ()

(* A schedule that crashes the harness outright (an assertion or
   unexpected exception deep in the model) is itself a finding — explore
   must record it and keep sweeping, not die. *)
type outcome = Finished of Chaos_exp.result | Crashed of string

let run_plan cfg plan =
  match
    Chaos_exp.run ~config:{ cfg.base with plan = Chaos_exp.Explicit plan } ()
  with
  | r -> Finished r
  | exception exn -> Crashed (Printexc.to_string exn)

(* The violation class a run reproduces: the first monitor's name, or
   "checkpoint" for the post-heal invariant assertions. Monitor findings
   print as "[1.234s] serial-order: detail". *)
let signature_of_result (r : Chaos_exp.result) =
  match (r.monitor_violations, r.violations) with
  | v :: _, _ -> (
      match String.index_opt v ']' with
      | Some i -> (
          let rest = String.sub v (i + 1) (String.length v - i - 1) in
          let rest = String.trim rest in
          match String.index_opt rest ':' with
          | Some j -> Some (String.sub rest 0 j)
          | None -> Some rest)
      | None -> Some "monitor")
  | [], _ :: _ -> Some "checkpoint"
  | [], [] -> None

let signature_of = function
  | Finished r -> signature_of_result r
  | Crashed _ -> Some "exception"

let violations_of = function
  | Finished (r : Chaos_exp.result) -> r.violations @ r.monitor_violations
  | Crashed msg -> [ "uncaught exception: " ^ msg ]

(* Run a batch of independent schedules, one domain each. Results are
   collected in input order, so batching never changes the outcome. *)
let par_map ~batch f xs =
  let batch = max 1 batch in
  let rec take n acc = function
    | x :: tl when n > 0 -> take (n - 1) (x :: acc) tl
    | tl -> (List.rev acc, tl)
  in
  let rec go acc xs =
    match xs with
    | [] -> List.concat (List.rev acc)
    | _ ->
        let chunk, rest = take batch [] xs in
        let rs =
          match chunk with
          | [ x ] -> [ f x ]
          | _ ->
              List.map Domain.join
                (List.map (fun x -> Domain.spawn (fun () -> f x)) chunk)
        in
        go (rs :: acc) rest
  in
  go [] xs

(* ------------------------------------------------------------------ *)
(* Shrinking: greedy one-action removal to a fixed point, preserving the
   violation signature so the minimal plan still reproduces the same bug
   class (not just *a* bug). Candidate removals within a round run in
   parallel batches; the earliest (lowest-index) success wins, keeping the
   result deterministic. *)

let shrink ~on_progress cfg ~signature plan ~budget =
  let runs = ref 0 in
  let rec round plan =
    let n = List.length plan in
    if n <= 1 || !runs >= budget then plan
    else begin
      on_progress
        (Printf.sprintf "shrink: %d actions, %d/%d runs used" n !runs budget);
      let rec scan i =
        if i >= n || !runs >= budget then None
        else
          let chunk = min cfg.batch (min (n - i) (budget - !runs)) in
          let idxs = List.init chunk (fun k -> i + k) in
          let cands =
            List.map
              (fun ix -> (ix, List.filteri (fun j _ -> j <> ix) plan))
              idxs
          in
          let hits =
            (* Runs inside the domains must not touch [runs]; the chunk's
               cost is added once here, in the parent. *)
            par_map ~batch:cfg.batch
              (fun (ix, cand) ->
                if signature_of (run_plan cfg cand) = Some signature then
                  Some (ix, cand)
                else None)
              cands
          in
          runs := !runs + List.length cands;
          match List.find_map Fun.id hits with
          | Some hit -> Some hit
          | None -> scan (i + chunk)
      in
      match scan 0 with Some (_, cand) -> round cand | None -> plan
    end
  in
  let minimal = round plan in
  (minimal, !runs)

(* ------------------------------------------------------------------ *)

let run ?(on_progress = fun _ -> ()) cfg =
  let scenarios =
    List.concat_map
      (fun i ->
        let s = cfg.first_seed + i in
        { plan_seed = s; kind = Random_schedule }
        :: (if cfg.targeted then [ { plan_seed = s; kind = Targeted_schedule } ]
            else []))
      (List.init (max 0 cfg.n_seeds) Fun.id)
  in
  let total_runs = ref 0 in
  let outcomes =
    par_map ~batch:cfg.batch
      (fun sc ->
        let plan = plan_of cfg sc in
        let r = run_plan cfg plan in
        (sc, plan, r))
      scenarios
  in
  total_runs := List.length outcomes;
  let violating =
    List.filter_map
      (fun (sc, plan, r) ->
        match signature_of r with
        | Some signature -> Some (sc, plan, signature, violations_of r)
        | None -> None)
      outcomes
  in
  on_progress
    (Printf.sprintf "sweep: %d schedules, %d violating"
       (List.length outcomes) (List.length violating));
  let to_shrink, overflow =
    let rec split n acc = function
      | x :: tl when n > 0 -> split (n - 1) (x :: acc) tl
      | tl -> (List.rev acc, tl)
    in
    split cfg.max_repros [] violating
  in
  if overflow <> [] then
    on_progress
      (Printf.sprintf
         "note: %d further violating schedules beyond max_repros=%d left \
          un-shrunk (reported with their full plans)"
         (List.length overflow) cfg.max_repros);
  let make_repro ~shrunk (sc, plan, signature, violations) =
    let original_len = List.length plan in
    let plan, shrink_runs, violations =
      if shrunk && cfg.shrink then begin
        let minimal, used =
          shrink ~on_progress cfg ~signature plan ~budget:cfg.max_shrink_runs
        in
        total_runs := !total_runs + used;
        (* Re-run the minimal plan once for its findings (also a guard: a
           shrink bug would surface here as a signature mismatch). *)
        let r = run_plan cfg minimal in
        incr total_runs;
        (minimal, used, violations_of r)
      end
      else (plan, 0, violations)
    in
    { scenario = sc; plan; signature; violations; original_len; shrink_runs }
  in
  let repros =
    List.map (make_repro ~shrunk:true) to_shrink
    @ List.map (make_repro ~shrunk:false) overflow
  in
  {
    scenarios_run = List.length outcomes;
    runs = !total_runs;
    clean = List.length outcomes - List.length violating;
    repros;
  }

(* ------------------------------------------------------------------ *)

let pp_scenario ppf { plan_seed; kind } =
  Format.fprintf ppf "%s seed %d"
    (match kind with
    | Random_schedule -> "random"
    | Targeted_schedule -> "targeted")
    plan_seed

let pp_repro ppf r =
  Format.fprintf ppf "@[<v>%a: %s (%d actions" pp_scenario r.scenario
    r.signature (List.length r.plan);
  if r.shrink_runs > 0 then
    Format.fprintf ppf ", shrunk from %d in %d runs" r.original_len
      r.shrink_runs;
  Format.fprintf ppf ")@,plan:";
  List.iter
    (fun (t, a) ->
      Format.fprintf ppf "@,  +%.3fs  %a" (Time.to_sec t) Fault.pp_action a)
    r.plan;
  List.iter (fun v -> Format.fprintf ppf "@,violation: %s" v) r.violations;
  Format.fprintf ppf "@]"

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>schedules explored %d (clean %d, violating %d)@,total runs %d"
    r.scenarios_run r.clean (List.length r.repros) r.runs;
  List.iter (fun rp -> Format.fprintf ppf "@,%a" pp_repro rp) r.repros;
  Format.fprintf ppf "@]"

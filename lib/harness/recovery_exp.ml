open Sim

type result = {
  baseline_tput : float;
  during_dump_tput : float;
  dump_degradation : float;
  dump_duration : Time.t;
  mw_restore_duration : Time.t;
  mw_replayed : int;
  mw_replay_duration : Time.t;
  replay_rate : float;
  db_recovery_duration : Time.t;
  db_replayed : int;
  cert_bytes_per_ws : float;
  cert_log_bytes_per_hour : float;
  cert_recovery_duration : Time.t;
  update_rate : float;
}

let build_cluster ~mode ~n_replicas ~seed ~dump_interval =
  let spec = Workload.Tpcw.profile () in
  let replica_cfg =
    {
      (Tashkent.Replica.default_config mode) with
      Tashkent.Replica.io = Tashkent.Replica.Shared_io;
      mw_recovery = Tashkent.Replica.Dump_based { interval = dump_interval };
      page_read_miss = spec.Workload.Spec.page_read_miss;
      page_writeback_per_op = spec.Workload.Spec.page_writeback_per_op;
      bg_page_writes_per_sec = spec.Workload.Spec.bg_page_writes_per_sec;
      db_size_bytes = spec.Workload.Spec.db_size_bytes;
      staleness_bound = Some (Time.sec 1);
    }
  in
  let cluster =
    Tashkent.Cluster.create
      {
        Tashkent.Cluster.mode;
        n_replicas;
        n_certifiers = 3;
        n_partitions = 1;
        hosting = Tashkent.Cluster.Host_all;
        certifier = Tashkent.Certifier.default_config;
        replica = replica_cfg;
        seed;
      }
  in
  let engine = Tashkent.Cluster.engine cluster in
  Tashkent.Cluster.load_all cluster (spec.Workload.Spec.initial_rows ~n_replicas);
  Tashkent.Cluster.settle cluster;
  let collector = Workload.Driver.Collector.create () in
  let rng = Rng.create (seed + 1) in
  List.iteri
    (fun replica_ix replica ->
      Workload.Driver.spawn_replicated_clients engine ~replica ~spec
        ~rng:(Rng.split rng) ~collector ~replica_ix ~n_replicas)
    (Tashkent.Cluster.replicas cluster);
  (cluster, engine, collector)

let run_for engine span = Engine.run ~until:(Time.add (Engine.now engine) span) engine

(* The dumper fiber sleeps its interval from replica creation (t ~ 0)
   before the dump proper begins, while the measurement clock starts
   earlier (right after warm-up + baseline). The net duration must count
   only time the dump was actually running — not the tail of that idle
   lead-in. All three arguments are absolute sim times. *)
let net_dump_duration ~dump_began ~measured_from ~finished =
  Time.diff finished (Time.max dump_began measured_from)

(* Goodput of one replica over a window. *)
let replica_window_tput cluster engine i span =
  let proxy = Tashkent.Replica.proxy (Tashkent.Cluster.replica cluster i) in
  let before = (Tashkent.Proxy.stats proxy).commits in
  run_for engine span;
  let after = (Tashkent.Proxy.stats proxy).commits in
  float_of_int (after - before) /. Time.to_sec span

let run ?(n_replicas = 15) ?(seed = 1966) () =
  (* ---- Tashkent-MW cluster: dump, crash, restore, replay; certifier. ---- *)
  let dump_start = Time.sec 15 in
  let cluster, engine, _collector =
    build_cluster ~mode:Tashkent.Types.Tashkent_mw ~n_replicas ~seed
      ~dump_interval:dump_start
  in
  let r0 = Tashkent.Cluster.replica cluster 0 in
  (* warm up, then baseline window before the dump begins *)
  run_for engine (Time.sec 5);
  let baseline_tput = replica_window_tput cluster engine 0 (Time.sec 8) in
  (* we are now inside the dump (it started at ~15 s); measure during-dump *)
  let dump_started_at = Engine.now engine in
  let during_dump_tput = replica_window_tput cluster engine 0 (Time.sec 30) in
  (* run until the dump completes *)
  let rec wait_dump limit =
    if Tashkent.Replica.dumps_taken r0 = 0 && limit > 0 then begin
      run_for engine (Time.sec 10);
      wait_dump (limit - 1)
    end
  in
  wait_dump 60;
  let dump_duration =
    net_dump_duration ~dump_began:dump_start ~measured_from:dump_started_at
      ~finished:(Engine.now engine)
  in
  (* certifier log growth during normal operation *)
  let leader =
    match Tashkent.Cluster.leader cluster with
    | Some l -> l
    | None -> failwith "recovery_exp: no leader"
  in
  let stats0 = Tashkent.Certifier.stats leader in
  let version0 = Tashkent.Certifier.system_version leader in
  let growth_window = Time.sec 30 in
  run_for engine growth_window;
  let stats1 = Tashkent.Certifier.stats leader in
  let version1 = Tashkent.Certifier.system_version leader in
  let ws_in_window = version1 - version0 in
  let bytes_in_window = stats1.log_bytes - stats0.log_bytes in
  let update_rate = float_of_int ws_in_window /. Time.to_sec growth_window in
  let cert_bytes_per_ws =
    if ws_in_window = 0 then 0. else float_of_int bytes_in_window /. float_of_int ws_in_window
  in
  let cert_log_bytes_per_hour = float_of_int bytes_in_window /. Time.to_sec growth_window *. 3600. in
  (* crash replica 0, leave it down, recover from the dump *)
  Tashkent.Replica.crash r0;
  run_for engine (Time.sec 60);
  let report = ref None in
  ignore (Engine.spawn engine (fun () -> report := Some (Tashkent.Replica.recover r0)));
  let rec wait_recover limit =
    if !report = None && limit > 0 then begin
      run_for engine (Time.sec 20);
      wait_recover (limit - 1)
    end
  in
  wait_recover 60;
  let mw_report =
    match !report with
    | Some r -> r
    | None -> failwith "recovery_exp: MW replica recovery did not finish"
  in
  (* certifier crash + recovery via state transfer *)
  let victim =
    List.find
      (fun c -> not (Tashkent.Certifier.is_leader c))
      (Tashkent.Cluster.certifiers cluster)
  in
  Tashkent.Certifier.crash victim;
  run_for engine (Time.sec 60);
  Tashkent.Certifier.recover victim;
  let cert_recover_start = Engine.now engine in
  let rec wait_cert limit =
    let caught_up =
      Tashkent.Certifier.system_version victim
      >= Tashkent.Certifier.system_version leader - 5
    in
    if (not caught_up) && limit > 0 then begin
      run_for engine (Time.of_ms 500.);
      wait_cert (limit - 1)
    end
  in
  wait_cert 240;
  let cert_recovery_duration = Time.diff (Engine.now engine) cert_recover_start in
  (* ---- Base cluster: database-internal recovery (§7.2). ---- *)
  let bcluster, bengine, _ =
    build_cluster ~mode:Tashkent.Types.Base ~n_replicas:(min n_replicas 4) ~seed:(seed + 7)
      ~dump_interval:(Time.sec 1_000_000)
  in
  run_for bengine (Time.sec 8);
  let b0 = Tashkent.Cluster.replica bcluster 0 in
  Tashkent.Replica.crash b0;
  run_for bengine (Time.sec 30);
  let breport = ref None in
  ignore (Engine.spawn bengine (fun () -> breport := Some (Tashkent.Replica.recover b0)));
  let rec wait_base limit =
    if !breport = None && limit > 0 then begin
      run_for bengine (Time.sec 5);
      wait_base (limit - 1)
    end
  in
  wait_base 60;
  let base_report =
    match !breport with
    | Some r -> r
    | None -> failwith "recovery_exp: Base replica recovery did not finish"
  in
  {
    baseline_tput;
    during_dump_tput;
    dump_degradation =
      (if baseline_tput <= 0. then 0. else 1. -. (during_dump_tput /. baseline_tput));
    dump_duration;
    mw_restore_duration = mw_report.Tashkent.Replica.restore_took;
    mw_replayed = mw_report.writesets_replayed;
    mw_replay_duration = mw_report.replay_took;
    replay_rate =
      (let secs = Time.to_sec mw_report.replay_took in
       if secs <= 0. then 0. else float_of_int mw_report.writesets_replayed /. secs);
    db_recovery_duration = base_report.restore_took;
    db_replayed = base_report.writesets_replayed;
    cert_bytes_per_ws;
    cert_log_bytes_per_hour;
    cert_recovery_duration;
    update_rate;
  }

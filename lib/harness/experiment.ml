open Sim

type workload_kind = All_updates | Tpc_b | Tpc_w | Hotkey | Part_local

let workload_name = function
  | All_updates -> "allupdates"
  | Tpc_b -> "tpc-b"
  | Tpc_w -> "tpc-w"
  | Hotkey -> "hotkey"
  | Part_local -> "partlocal"

type system =
  | Standalone
  | Replicated of Tashkent.Types.mode
  | Replicated_nocert of Tashkent.Types.mode

let system_name = function
  | Standalone -> "standalone"
  | Replicated mode -> Tashkent.Types.mode_name mode
  | Replicated_nocert mode -> Tashkent.Types.mode_name mode ^ "-nocert"

type config = {
  system : system;
  io : Tashkent.Replica.io_layout;
  n_replicas : int;
  n_certifiers : int;
  n_partitions : int;
      (* certifier groups; > 1 routes clients through Session so
         transactions may span groups *)
  hosting : Tashkent.Cluster.hosting;
  cross_ratio : float;
      (* fraction of Part_local transactions spanning two partitions *)
  clients_per_replica : int option;
      (* None = the workload profile's default population *)
  certify_cpu : Time.t option;
      (* None = Certifier.default_config.certify_cpu; raise it to model a
         certification-heavy workload (large writesets / saturated group) *)
  part_exec_cpu : Time.t option;
      (* Part_local only: per-transaction replica execution CPU (None =
         the profile's PostgreSQL-calibrated default) *)
  workload : workload_kind;
  deltas : bool;
      (* ship commutative Add ops where the workload supports them
         (Hotkey's hot-row bump, TPC-B's balance updates) *)
  hot_skew : float; (* Zipf θ for the Hotkey workload *)
  abort_rate : float;
  eager_precert : bool;
  group_remote_batches : bool;
  apply_workers : int;
  gc_interval : Time.t option;
  seed : int;
  warmup : Time.t;
  measure : Time.t;
  trace : bool;
  monitors : bool;
      (* attach the online protocol monitors (Obs.Monitor) for the whole
         run, including warmup; off by default for performance baselines *)
}

let default =
  {
    system = Replicated Tashkent.Types.Tashkent_mw;
    io = Tashkent.Replica.Shared_io;
    n_replicas = 3;
    n_certifiers = 3;
    n_partitions = 1;
    hosting = Tashkent.Cluster.Host_all;
    cross_ratio = 0.;
    clients_per_replica = None;
    certify_cpu = None;
    part_exec_cpu = None;
    workload = All_updates;
    deltas = false;
    hot_skew = 0.99;
    abort_rate = 0.;
    eager_precert = true;
    group_remote_batches = true;
    apply_workers = 1;
    gc_interval = Some (Time.sec 30);
    seed = 20060418;
    warmup = Time.sec 5;
    measure = Time.sec 20;
    trace = false;
    monitors = false;
  }

let spec_of cfg =
  let clients = cfg.clients_per_replica in
  match cfg.workload with
  | All_updates -> Workload.Allupdates.profile ?clients_per_replica:clients ()
  | Tpc_b -> Workload.Tpcb.profile ?clients_per_replica:clients ~deltas:cfg.deltas ()
  | Tpc_w -> Workload.Tpcw.profile ?clients_per_replica:clients ()
  | Hotkey ->
      Workload.Hotkey.profile ?clients_per_replica:clients ~skew:cfg.hot_skew
        ~deltas:cfg.deltas ()
  | Part_local ->
      Workload.Partlocal.profile ?clients_per_replica:clients
        ?exec_cpu:cfg.part_exec_cpu
        ~modulo_hosting:(cfg.hosting = Tashkent.Cluster.Host_modulo)
        ~partitions:cfg.n_partitions ~cross_ratio:cfg.cross_ratio ()

type result = {
  throughput : float;
  goodput : float;
  resp_ms : float;
  p99_ms : float;
  ro_resp_ms : float;
  commits : int;
  aborts : int;
  abort_rate_measured : float;
  cross_commits : int; (* multi-partition commits (0 when n_partitions = 1) *)
  cross_aborts : int;
  cert_ws_per_fsync : float;
  cert_accept_broadcasts : int;
  cert_mean_accept_batch : float;
  db_ws_per_fsync : float;
  artificial_conflict_pct : float;
  cert_cpu_util : float;
  cert_disk_util : float;
  replica_cpu_util : float;
  replica_disk_util : float;
  apply_parallelism : float;
  apply_stalls : int;
  stage_latency : (string * Obs.Trace.stage_stats) list;
  monitor_violations : string list;
  monitor_events : int;
}

let replica_config_of cfg (spec : Workload.Spec.t) mode =
  {
    (Tashkent.Replica.default_config mode) with
    Tashkent.Replica.io = cfg.io;
    (* performance runs do not take periodic dumps; recovery experiments
       configure them explicitly *)
    mw_recovery = Tashkent.Replica.Dump_based { interval = Time.sec 1_000_000 };
    eager_precert = cfg.eager_precert;
    group_remote_batches = cfg.group_remote_batches;
    page_read_miss = spec.Workload.Spec.page_read_miss;
    page_writeback_per_op = spec.Workload.Spec.page_writeback_per_op;
    bg_page_writes_per_sec = spec.Workload.Spec.bg_page_writes_per_sec;
    db_size_bytes = spec.Workload.Spec.db_size_bytes;
    staleness_bound = Some (Time.sec 1);
    apply_workers = cfg.apply_workers;
    gc_interval = cfg.gc_interval;
  }

let run_replicated cfg mode ~durable_cert =
  let spec = spec_of cfg in
  let cluster_cfg =
    {
      Tashkent.Cluster.mode;
      n_replicas = cfg.n_replicas;
      n_certifiers = (if durable_cert then cfg.n_certifiers else 1);
      n_partitions = cfg.n_partitions;
      hosting = cfg.hosting;
      certifier =
        {
          Tashkent.Certifier.default_config with
          durable = durable_cert;
          forced_abort_rate = cfg.abort_rate;
          certify_cpu =
            Option.value cfg.certify_cpu
              ~default:Tashkent.Certifier.default_config.certify_cpu;
        };
      replica = replica_config_of cfg spec mode;
      seed = cfg.seed;
    }
  in
  let engine = Engine.create () in
  let trace =
    if cfg.trace then Obs.Trace.create engine else Obs.Trace.disabled ()
  in
  let events =
    if cfg.monitors then Obs.Events.create engine else Obs.Events.disabled ()
  in
  let cluster = Tashkent.Cluster.create ~engine ~trace ~events cluster_cfg in
  let monitor =
    Obs.Monitor.attach ~metrics:(Tashkent.Cluster.metrics cluster) events
  in
  Tashkent.Cluster.load_all cluster (spec.Workload.Spec.initial_rows ~n_replicas:cfg.n_replicas);
  Tashkent.Cluster.settle cluster;
  let collector = Workload.Driver.Collector.create () in
  let rng = Rng.create (cfg.seed + 1) in
  List.iteri
    (fun replica_ix replica ->
      if cfg.n_partitions > 1 then
        Workload.Driver.spawn_session_clients engine ~replica ~spec
          ~rng:(Rng.split rng) ~collector ~replica_ix ~n_replicas:cfg.n_replicas
      else
        Workload.Driver.spawn_replicated_clients engine ~replica ~spec
          ~rng:(Rng.split rng) ~collector ~replica_ix ~n_replicas:cfg.n_replicas)
    (Tashkent.Cluster.replicas cluster);
  (* Warm up, then measure. *)
  Engine.run ~until:(Time.add (Engine.now engine) cfg.warmup) engine;
  Workload.Driver.Collector.enable collector;
  Tashkent.Cluster.reset_stats cluster;
  let measure_start = Engine.now engine in
  Engine.run ~until:(Time.add measure_start cfg.measure) engine;
  let window = Time.diff (Engine.now engine) measure_start in
  let leader_stats =
    match Tashkent.Cluster.leader cluster with
    | Some leader -> Tashkent.Certifier.stats leader
    | None -> failwith "experiment: certifier leader lost during measurement"
  in
  (* Utilization is averaged over every group's leader: with partitioned
     certification the load splits across groups, and that split is the
     measurement. *)
  let leaders = Tashkent.Cluster.leaders cluster in
  let leader_avg f =
    match leaders with
    | [] -> 0.
    | ls ->
        List.fold_left (fun a l -> a +. f (Tashkent.Certifier.stats l)) 0. ls
        /. float_of_int (List.length ls)
  in
  let replicas = Tashkent.Cluster.replicas cluster in
  let nf = float_of_int (List.length replicas) in
  let avg f = List.fold_left (fun a r -> a +. f r) 0. replicas /. nf in
  (* Per-(replica, hosted partition) proxies and databases. *)
  let hosted_proxies r =
    List.filter_map
      (fun part -> Tashkent.Replica.proxy_of r ~part)
      (Tashkent.Replica.partitions r)
  in
  let hosted_dbs r =
    List.filter_map
      (fun part -> Tashkent.Replica.db_of r ~part)
      (Tashkent.Replica.partitions r)
  in
  let proxy_sum f =
    List.fold_left
      (fun a r -> List.fold_left (fun a p -> a + f p) a (hosted_proxies r))
      0 replicas
  in
  let proxy_avg f =
    let n = ref 0 and total = ref 0. in
    List.iter
      (fun r ->
        List.iter
          (fun p ->
            incr n;
            total := !total +. f p)
          (hosted_proxies r))
      replicas;
    if !n = 0 then 0. else !total /. float_of_int !n
  in
  let db_avg f =
    let n = ref 0 and total = ref 0. in
    List.iter
      (fun r ->
        List.iter
          (fun db ->
            incr n;
            total := !total +. f db)
          (hosted_dbs r))
      replicas;
    if !n = 0 then 0. else !total /. float_of_int !n
  in
  let session_sum f =
    List.fold_left
      (fun a r -> a + f (Tashkent.Session.stats (Tashkent.Replica.session r)))
      0 replicas
  in
  let commits = Workload.Driver.Collector.committed collector in
  let aborts = Workload.Driver.Collector.aborted collector in
  let remote_shipped =
    proxy_sum (fun p -> (Tashkent.Proxy.stats p).remote_ws_applied)
  in
  {
    throughput = Workload.Driver.Collector.throughput_all collector ~window;
    goodput = Workload.Driver.Collector.goodput collector ~window;
    resp_ms = Workload.Driver.Collector.mean_response_ms collector;
    p99_ms = Workload.Driver.Collector.p99_response_ms collector;
    ro_resp_ms = Workload.Driver.Collector.mean_ro_response_ms collector;
    commits;
    aborts;
    abort_rate_measured =
      (if commits + aborts = 0 then 0.
       else float_of_int aborts /. float_of_int (commits + aborts));
    cross_commits =
      session_sum (fun (s : Tashkent.Session.stats) -> s.cross_commits);
    cross_aborts =
      session_sum (fun (s : Tashkent.Session.stats) -> s.cross_aborts);
    cert_ws_per_fsync = leader_stats.mean_group_size;
    cert_accept_broadcasts = leader_stats.accept_broadcasts;
    cert_mean_accept_batch = leader_stats.mean_accept_batch;
    db_ws_per_fsync =
      db_avg (fun db -> Storage.Wal.mean_group_size (Mvcc.Db.wal db));
    artificial_conflict_pct =
      (if remote_shipped = 0 then 0.
       else
         float_of_int leader_stats.artificial_conflicts /. float_of_int remote_shipped);
    cert_cpu_util =
      leader_avg (fun (s : Tashkent.Certifier.stats) -> s.cpu_utilization);
    cert_disk_util =
      leader_avg (fun (s : Tashkent.Certifier.stats) -> s.disk_utilization);
    replica_cpu_util =
      avg (fun r -> Resource.utilization (Tashkent.Replica.cpu r));
    replica_disk_util =
      avg (fun r -> Storage.Disk.utilization (Tashkent.Replica.log_disk r));
    apply_parallelism = proxy_avg Tashkent.Proxy.apply_parallelism;
    apply_stalls = proxy_sum (fun p -> (Tashkent.Proxy.stats p).apply_stalls);
    stage_latency = Obs.Trace.all_stage_stats trace;
    monitor_violations =
      (Obs.Monitor.finalize monitor ~now:(Engine.now engine);
       List.map
         (Format.asprintf "%a" Obs.Monitor.pp_violation)
         (Obs.Monitor.violations monitor));
    monitor_events = Obs.Monitor.events_seen monitor;
  }

let run_standalone cfg =
  let spec = spec_of cfg in
  let engine = Engine.create () in
  let rng = Rng.create cfg.seed in
  let cpu = Resource.create engine ~name:"standalone.cpu" ~capacity:1 () in
  let hdd = Storage.Disk.create engine ~rng:(Rng.split rng) ~name:"standalone.disk" () in
  let log_disk, data_disk =
    match cfg.io with
    | Tashkent.Replica.Shared_io -> (hdd, hdd)
    | Tashkent.Replica.Dedicated_io ->
        (hdd, Storage.Disk.create_ram engine ~rng:(Rng.split rng) ())
  in
  let db_config =
    {
      Mvcc.Db.default_config with
      commit_record_bytes = 8192;
      gc_interval = cfg.gc_interval;
      page_read_miss = spec.Workload.Spec.page_read_miss;
      page_writeback_per_op = spec.Workload.Spec.page_writeback_per_op;
      background_page_writes_per_sec = spec.Workload.Spec.bg_page_writes_per_sec;
    }
  in
  let db =
    Mvcc.Db.create engine ~rng:(Rng.split rng) ~log_disk ~data_disk ~cpu
      ~config:db_config ()
  in
  Mvcc.Db.load db (spec.Workload.Spec.initial_rows ~n_replicas:1);
  let collector = Workload.Driver.Collector.create () in
  Workload.Driver.spawn_standalone_clients engine ~db ~cpu ~spec ~rng:(Rng.split rng) ~collector;
  Engine.run ~until:(Time.add (Engine.now engine) cfg.warmup) engine;
  Workload.Driver.Collector.enable collector;
  let measure_start = Engine.now engine in
  Engine.run ~until:(Time.add measure_start cfg.measure) engine;
  let window = Time.diff (Engine.now engine) measure_start in
  let commits = Workload.Driver.Collector.committed collector in
  let aborts = Workload.Driver.Collector.aborted collector in
  {
    throughput = Workload.Driver.Collector.throughput_all collector ~window;
    goodput = Workload.Driver.Collector.goodput collector ~window;
    resp_ms = Workload.Driver.Collector.mean_response_ms collector;
    p99_ms = Workload.Driver.Collector.p99_response_ms collector;
    ro_resp_ms = Workload.Driver.Collector.mean_ro_response_ms collector;
    commits;
    aborts;
    abort_rate_measured =
      (if commits + aborts = 0 then 0.
       else float_of_int aborts /. float_of_int (commits + aborts));
    cross_commits = 0;
    cross_aborts = 0;
    cert_ws_per_fsync = 0.;
    cert_accept_broadcasts = 0;
    cert_mean_accept_batch = 0.;
    db_ws_per_fsync = Storage.Wal.mean_group_size (Mvcc.Db.wal db);
    artificial_conflict_pct = 0.;
    cert_cpu_util = 0.;
    cert_disk_util = 0.;
    replica_cpu_util = Resource.utilization cpu;
    replica_disk_util = Storage.Disk.utilization hdd;
    apply_parallelism = 1.0;
    apply_stalls = 0;
    stage_latency = [];
    monitor_violations = [];
    monitor_events = 0;
  }

let run cfg =
  match cfg.system with
  | Standalone -> run_standalone cfg
  | Replicated mode -> run_replicated cfg mode ~durable_cert:true
  | Replicated_nocert mode -> run_replicated cfg mode ~durable_cert:false

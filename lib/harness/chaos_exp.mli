(** Chaos experiment: TPC-B on a replicated cluster under a fault plan
    (certifier-leader crashes, partitions, loss bursts, replica outages),
    asserting the GSI safety invariants after every heal and at the end:
    no duplicated or lost certified writeset, contiguous log versions,
    certifier prefix agreement, and replica state equal to the log prefix
    ({!Tashkent.Cluster.check_log_invariants} and [check_consistency]).
    Deterministic: the same seed and plan replay bit-identically. *)

type plan_kind =
  | Scripted  (** the fixed acceptance scenario, see {!scripted_plan} *)
  | Random of int  (** seeded {!Fault.random_plan} *)

type config = {
  mode : Tashkent.Types.mode;
  n_replicas : int;
  n_certifiers : int;
  duration : Sim.Time.t;
  seed : int;  (** cluster/workload seed (the plan seed is separate) *)
  plan : plan_kind;
  collect_trace : bool;
      (** record lifecycle spans for the whole run (including fault
          windows); read them from [result.trace] *)
}

val default_config : unit -> config
(** Tashkent-MW, 3 replicas, 3 certifiers, 20 simulated seconds, the
    scripted plan. *)

type result = {
  commits : int;
  cert_aborts : int;
  local_aborts : int;
  cert_requests : int;
  cert_retries : int;  (** certify attempts beyond the first *)
  cert_failovers : int;  (** timeouts that rotated the target certifier *)
  refetches : int;
  fault : Fault.stats;
  checks : int;  (** invariant checkpoints performed *)
  violations : string list;  (** empty on a passing run *)
  ran_for : Sim.Time.t;
  trace : Obs.Trace.t;
      (** the run's tracer; disabled (no events) unless
          [config.collect_trace] was set *)
}

val scripted_plan : n_certifiers:int -> Fault.plan
(** Leader crash at 2 s (recovered at 5 s), replica0 partitioned from all
    certifiers at 8 s (healed at 10 s), a 10% drop burst at 12 s, and a
    final heal-all. *)

val run : ?config:config -> unit -> result

val pp_result : Format.formatter -> result -> unit

(** Chaos experiment: TPC-B on a replicated cluster under a fault plan
    (certifier-leader crashes, partitions, loss bursts, replica outages,
    and storage faults — fsync stalls, degraded disks, torn/corrupt WAL
    tails), asserting the GSI safety invariants after every heal and at
    the end: no duplicated or lost certified writeset, contiguous log
    versions, certifier prefix agreement, and replica state equal to the
    log prefix ({!Tashkent.Cluster.check_log_invariants} and
    [check_consistency]) — plus the {e durability} invariant: every commit
    acked durable to a proxy before a crash is still present, at its acked
    version and with its origin and request id, in the current leader's
    certified log after recovery (proxies record acks in a harness-side
    journal, {!Tashkent.Proxy.enable_commit_journal}). Deterministic: the
    same seed and plan replay bit-identically. *)

type plan_kind =
  | Scripted  (** the fixed acceptance scenario, see {!scripted_plan} *)
  | Scripted_disk
      (** the storage-fault acceptance scenario, see {!scripted_disk_plan} *)
  | Random of int  (** seeded {!Fault.random_plan} *)
  | Explicit of Fault.plan
      (** a fully spelled-out plan — shrunk explore repros and targeted
          message-tap schedules run through the same harness *)

type config = {
  mode : Tashkent.Types.mode;
  n_replicas : int;
  n_certifiers : int;
  n_partitions : int;
      (** certifier groups (default 1 — the single-group cluster,
          bit-identical to pre-partitioning runs). With [> 1] the clients
          drive {!Workload.Partlocal} through each replica's
          {!Tashkent.Session} (a third of transactions span two groups),
          the [Scripted] plan becomes {!scripted_partition_plan}, random
          plans gain a group-leader crash, and every checkpoint also
          asserts {!Tashkent.Cluster.check_cross_atomicity} plus the
          cross-commit durability witness
          ({!Tashkent.Proxy.journaled_cross_commits} against
          {!Tashkent.Certifier.x_outcome}). *)
  duration : Sim.Time.t;
  seed : int;  (** cluster/workload seed (the plan seed is separate) *)
  plan : plan_kind;
  collect_trace : bool;
      (** record lifecycle spans for the whole run (including fault
          windows); read them from [result.trace] *)
  disk_faults : bool;
      (** pass [~disk_faults:true] to {!Fault.random_plan} (no effect on
          scripted plans) *)
  fsync_stall : Sim.Time.t;
      (** per-op stall used by random disk-fault plans; the default 600 ms
          is above the certifiers' fsync deadline, forcing a
          degraded-disk failover *)
  apply_workers : int;
      (** parallel applier fibers per replica (default 1) — chaos with
          [> 1] exercises crash/recovery mid-parallel-apply *)
  deltas : bool;
      (** run TPC-B with commutative {!Mvcc.Writeset.Add} balance updates
          (default off) — chaos with deltas exercises the certification
          fast path and delta WAL replay through crashes and failovers *)
  gc_interval : Sim.Time.t option;
      (** replica vacuum period (default 5 s — short enough that log
          truncation {e and} store pruning both fire within a 20 s chaos
          run, so the invariants are asserted with GC active) *)
  max_snapshot_age : Sim.Time.t option;
      (** stale-snapshot escape hatch (default [None]); see
          {!Mvcc.Db.config.max_snapshot_age} *)
  monitors : bool;
      (** attach the five online protocol monitors ({!Obs.Monitor}) to the
          cluster's event stream (default on). Monitors are pure
          observers, so the run is bit-identical either way; disabling is
          for overhead measurement only. *)
  progress_bound : Sim.Time.t;
      (** progress-monitor deadline: how long a submitted transaction may
          stay unresolved, counted from submission or the last fault heal
          (default 5 s) *)
}

val default_config : unit -> config
(** Tashkent-MW, 3 replicas, 3 certifiers, 20 simulated seconds, the
    scripted plan. *)

type result = {
  commits : int;
  cert_aborts : int;
  local_aborts : int;
  cross_commits : int;
      (** multi-partition transactions committed atomically across
          certifier groups ({!Tashkent.Session} stats; 0 when
          [n_partitions = 1]) *)
  cross_aborts : int;
      (** multi-partition transactions aborted (atomically — no fragment
          installed) *)
  cert_requests : int;
  cert_retries : int;  (** certify attempts beyond the first *)
  cert_failovers : int;  (** timeouts that rotated the target certifier *)
  refetches : int;
  fault : Fault.stats;
  checks : int;  (** invariant checkpoints performed *)
  violations : string list;  (** empty on a passing run *)
  monitor_violations : string list;
      (** online monitor findings (formatted with their sim timestamps);
          empty on a passing run or when [config.monitors] was off *)
  monitor_events : int;  (** protocol events the monitors consumed *)
  bridge_heals : int;
      (** commit replies whose composed remotes failed to bridge the
          replica's applied prefix, forcing a fetch before the install
          ({!Tashkent.Proxy.bridge_heals}, summed over proxies). The
          stale-re-answer regression schedules assert this stayed > 0 —
          i.e. the pathological interleaving still occurs and is healed. *)
  ran_for : Sim.Time.t;
  trace : Obs.Trace.t;
      (** the run's tracer; disabled (no events) unless
          [config.collect_trace] was set *)
  durable_acked : int;
      (** commits acked durable to proxies over the run (the journal the
          durability invariant is checked against) *)
  torn_discarded : int;
      (** torn WAL records truncated by certifier recovery scans *)
  corrupt_discarded : int;
      (** checksum-failed WAL records truncated by recovery scans *)
  disk_failovers : int;  (** leader abdications forced by the disk watchdog *)
}

val scripted_plan : n_certifiers:int -> Fault.plan
(** Leader crash at 2 s (recovered at 5 s), replica0 partitioned from all
    certifiers at 8 s (healed at 10 s), a 10% drop burst at 12 s, and a
    final heal-all. *)

val scripted_partition_plan : unit -> Fault.plan
(** The partitioned acceptance scenario (used for [Scripted] runs with
    [n_partitions > 1]): group 1's leader crashed at 2 s (recovered at
    5 s), group 0's at 8 s (recovered at 10 s), a 10% drop burst at 12 s,
    and a final heal-all. One group down at a time, so every group keeps
    a Paxos majority and cross-partition transactions keep committing
    through both failovers. *)

val scripted_disk_plan : unit -> Fault.plan
(** A 600 ms fsync stall on the leader's disk at 2 s for 2 s (above the
    default fsync deadline, so the disk watchdog forces an abdication), a
    torn-tail leader crash at 6 s (recovered at 8 s), a corrupt-tail crash
    of certifier 0 at 11 s (recovered at 13 s), and a final heal-all. *)

val run : ?config:config -> unit -> result

val pp_result : Format.formatter -> result -> unit

(** Schedule exploration: sweep fault-plan seeds in parallel batches,
    inject targeted message-level reorderings (precise {!Fault.Delay_msg} /
    {!Fault.Drop_msg} / {!Fault.Crash_on_msg} taps), and shrink any
    schedule that trips an invariant checkpoint or an online protocol
    monitor down to a minimal explicit plan — the artifact that becomes a
    CI regression.

    Every explored schedule runs through {!Chaos_exp} with the monitors
    attached, so a "violation" here means exactly what it means in CI: a
    checkpoint assertion or an {!Obs.Monitor} finding. Runs are
    deterministic per (workload seed, plan); the parallel batching only
    changes wall-clock time, never results. *)

type scenario_kind =
  | Random_schedule  (** {!Fault.random_plan} over the swept seed *)
  | Targeted_schedule
      (** {!targeted_plan} over the swept seed: a background
          replica–certifier partition plus a handful of precise message
          taps (delay the decisive Paxos ack, drop the Nth certifier
          reply or cross-partition vote, crash a certifier the instant it
          announces an entry) *)

type scenario = { plan_seed : int; kind : scenario_kind }

type repro = {
  scenario : scenario;
  plan : Fault.plan;  (** minimal violating plan (shrunk when enabled) *)
  signature : string;
      (** which class of violation the plan reproduces: a monitor name
          ("serial-order", "durability", …) or ["checkpoint"] for the
          post-heal invariant assertions. Shrinking preserves the
          signature — a candidate that merely violates {e something} is
          not accepted. *)
  violations : string list;  (** findings from the minimal plan's run *)
  original_len : int;  (** actions in the un-shrunk plan *)
  shrink_runs : int;  (** chaos runs spent shrinking this repro *)
}

type config = {
  base : Chaos_exp.config;
      (** template for every explored run (mode, cluster shape, duration,
          workload seed, monitors...); its [plan] field is ignored — the
          sweep substitutes its own *)
  first_seed : int;  (** first plan seed of the sweep *)
  n_seeds : int;  (** plan seeds swept; each yields one random and
                      (with [targeted]) one targeted schedule *)
  targeted : bool;  (** also run {!targeted_plan} per seed (default on) *)
  batch : int;  (** schedules run concurrently, one domain each *)
  shrink : bool;  (** shrink violating schedules (default on) *)
  max_shrink_runs : int;  (** chaos-run budget per shrink (default 48) *)
  max_repros : int;  (** stop shrinking after this many distinct repros *)
}

val default_config : unit -> config
(** {!Chaos_exp.default_config} base, seeds 1–8, targeted schedules on,
    batch of 4, shrinking on. *)

type result = {
  scenarios_run : int;
  runs : int;  (** total chaos executions, shrinking included *)
  clean : int;  (** scenarios with no violation *)
  repros : repro list;  (** one per violating scenario, sweep order *)
}

val targeted_plan :
  seed:int ->
  duration:Sim.Time.t ->
  n_certifiers:int ->
  n_replicas:int ->
  ?n_partitions:int ->
  unit ->
  Fault.plan
(** A reproducible targeted schedule: usually a replica partitioned from
    every certifier for a 1–3 s window (retry and GC-floor pressure), then
    2–4 precise taps drawn from: delay the decisive
    {!Fault.M_paxos_accept_ok}, drop or delay the Nth certifier reply to a
    chosen replica (forcing a client retry whose re-answer may arrive
    arbitrarily stale), drop the Nth fetch reply, crash a certifier at the
    instant it broadcasts a {!Fault.M_paxos_commit} (between append and
    announce; paired with recovery), and — when partitioned — drop the Nth
    cross-partition vote. A {!Fault.Heal_all} backstop lands at
    [0.85 * duration]. The generator draws from its own stream
    ([0x3C0E lxor seed]), so it shares no randomness with
    {!Fault.random_plan}. *)

val run : ?on_progress:(string -> unit) -> config -> result
(** Blocking. Sweeps all scenarios in batches of [config.batch] domains,
    then shrinks up to [max_repros] violating schedules (candidate
    removals within a shrink round also run batched). [on_progress] gets
    one human-readable line per batch and per shrink round. *)

val pp_repro : Format.formatter -> repro -> unit
val pp_result : Format.formatter -> result -> unit

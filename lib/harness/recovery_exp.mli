(** The §9.6 recovery-time experiments: dump cost and degradation,
    restore-from-dump, database-internal recovery, writeset replay rate,
    and certifier log growth / recovery. *)

type result = {
  baseline_tput : float;  (** replica-0 goodput before the dump starts *)
  during_dump_tput : float;
  dump_degradation : float;  (** fractional throughput drop during the dump *)
  dump_duration : Sim.Time.t;
  mw_restore_duration : Sim.Time.t;  (** restore a crashed MW replica from its dump *)
  mw_replayed : int;
  mw_replay_duration : Sim.Time.t;
  replay_rate : float;  (** writesets per second during catch-up *)
  db_recovery_duration : Sim.Time.t;  (** Base internal redo (§7.2) *)
  db_replayed : int;
  cert_bytes_per_ws : float;
  cert_log_bytes_per_hour : float;  (** at the measured update rate *)
  cert_recovery_duration : Sim.Time.t;  (** state transfer after 60 s down *)
  update_rate : float;  (** system-wide certified writesets per second *)
}

val net_dump_duration :
  dump_began:Sim.Time.t ->
  measured_from:Sim.Time.t ->
  finished:Sim.Time.t ->
  Sim.Time.t
(** Dump duration net of the dumper's idle lead-in: the dump fiber sleeps
    its interval before starting, so when measurement begins before the
    dump does, the time between [measured_from] and [dump_began] must not
    count. Equals [finished - max dump_began measured_from]. *)

val run : ?n_replicas:int -> ?seed:int -> unit -> result
(** Runs a Tashkent-MW TPC-W cluster through a full dump cycle, a replica
    crash/restore/replay, a certifier crash/recovery — then a Base cluster
    for the database-internal recovery number. Takes a few hundred
    simulated seconds. *)

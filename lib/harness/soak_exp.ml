open Sim

(* Sustained-load soak: hours of simulated Zipfian delta traffic with the
   GC watermark active, sampling the growth-sensitive gauges every window.
   The point is the long-run *shape*: with the cluster floor advancing,
   store version counts and the live certified log must plateau instead of
   growing with wall-clock, and latency percentiles must stay flat — the
   regression this harness pins is exactly the unbounded-growth bug the
   watermark fixes (run with [gc_interval = None] to see the baseline
   climb). Optional periodic chaos keeps crashing the certifier leader and
   a replica throughout, with the replica outage longer than the
   certifier's watermark TTL so the floor passes the dead replica and its
   recovery must heal via snapshot transfer. *)

type config = {
  mode : Tashkent.Types.mode;
  n_replicas : int;
  n_certifiers : int;
  n_partitions : int;
      (* certifier groups; > 1 routes the Zipfian clients through Session
         (hot keys hash across every group) and spreads the periodic
         chaos' certifier crashes over the groups *)
  seed : int;
  duration : Time.t;
  window : Time.t;
  warmup_windows : int;
  gc_interval : Time.t option;
  max_snapshot_age : Time.t option;
  chaos : bool;
  chaos_period : Time.t;
  hot_keys : int;
  skew : float;
  deltas : bool;
  clients_per_replica : int;
  monitors : bool;
      (* online protocol monitors checking every event through the whole
         soak — hours of simulated time, every decision point *)
  progress_bound : Time.t;
}

let default_config () =
  {
    mode = Tashkent.Types.Tashkent_mw;
    n_replicas = 3;
    n_certifiers = 3;
    n_partitions = 1;
    seed = 2006;
    duration = Time.sec 600;
    window = Time.sec 30;
    warmup_windows = 1;
    gc_interval = Some (Time.sec 5);
    max_snapshot_age = Some (Time.sec 30);
    chaos = true;
    chaos_period = Time.sec 120;
    hot_keys = Workload.Hotkey.hot_keys_default;
    skew = 0.99;
    deltas = true;
    clients_per_replica = 10;
    monitors = true;
    progress_bound = Time.sec 10;
  }

type window_sample = {
  at : Time.t;  (* offset of the window's end from run start *)
  goodput : float;
  p95_ms : float;
  p99_ms : float;
  store_versions : int;  (* max version-chain records across up replicas *)
  cert_entries : int;  (* live slots in the leader's certified log *)
  cert_bytes : int;  (* bytes held by those live slots *)
  gc_floor : int;  (* the leader's truncation floor *)
}

type result = {
  windows : window_sample list;  (* oldest first, warmup included *)
  commits : int;
  store_pruned : int;
  cert_pruned : int;
  snapshot_installs : int;
  floor_heals : int;
  stale_expired : int;
  fault : Fault.stats option;  (* [None] when chaos was off *)
  violations : string list;
  monitor_violations : string list;
  monitor_events : int;
  ran_for : Time.t;
}

(* Periodic chaos: alternate a certifier-leader crash (5 s outage) with a
   replica crash whose 30 s outage exceeds the certifier watermark TTL —
   the floor passes the dead replica, so its recovery exercises the
   pruned-prefix snapshot transfer. Everything recovers at least 40 s
   before the run ends so the final checkpoint sees a whole cluster. *)
let soak_plan ~duration ~period ~n_replicas ~n_partitions =
  let dur = Time.to_sec duration and per = Time.to_sec period in
  let victim = n_replicas - 1 in
  let rec go k acc =
    let t = float_of_int k *. per in
    if t +. 40. > dur then List.rev acc
    else
      let events =
        if k mod 2 = 1 || n_replicas < 2 then
          if n_partitions > 1 then
            (* round-robin the certifier crash over the groups so every
               partition's ring fails over during a long soak *)
            let g = k / 2 mod n_partitions in
            [
              (Time.of_sec t, Fault.Crash_group_leader g);
              (Time.of_sec (t +. 5.), Fault.Recover_group_crashed g);
            ]
          else
            [
              (Time.of_sec t, Fault.Crash_leader);
              (Time.of_sec (t +. 5.), Fault.Recover_crashed);
            ]
        else
          [
            (Time.of_sec t, Fault.Crash_replica victim);
            (Time.of_sec (t +. 30.), Fault.Recover_replica victim);
          ]
      in
      go (k + 1) (List.rev_append events acc)
  in
  go 1 []

let run_for engine span = Engine.run ~until:(Time.add (Engine.now engine) span) engine

let median = function
  | [] -> 0.
  | xs ->
      let sorted = List.sort compare xs in
      List.nth sorted (List.length sorted / 2)

let run ?(config = default_config ()) () =
  let spec =
    Workload.Hotkey.profile ~clients_per_replica:config.clients_per_replica
      ~hot_keys:config.hot_keys ~skew:config.skew ~deltas:config.deltas ()
  in
  let engine = Engine.create () in
  let events =
    if config.monitors then Obs.Events.create engine
    else Obs.Events.disabled ()
  in
  let cluster =
    Tashkent.Cluster.create ~engine ~events
      (Tashkent.Cluster.config ~n_replicas:config.n_replicas
         ~n_certifiers:config.n_certifiers
         ~n_partitions:config.n_partitions
         ~gc_interval:config.gc_interval
         ~max_snapshot_age:config.max_snapshot_age ~seed:config.seed
         config.mode)
  in
  let monitor =
    Obs.Monitor.attach ~progress_bound:config.progress_bound
      ~metrics:(Tashkent.Cluster.metrics cluster) events
  in
  Tashkent.Cluster.load_all cluster
    (spec.Workload.Spec.initial_rows ~n_replicas:config.n_replicas);
  Tashkent.Cluster.settle cluster;
  let collector = Workload.Driver.Collector.create () in
  Workload.Driver.Collector.enable collector;
  let rng = Rng.create (config.seed + 1) in
  List.iteri
    (fun replica_ix replica ->
      if config.n_partitions > 1 then
        Workload.Driver.spawn_session_clients engine ~replica ~spec
          ~rng:(Rng.split rng) ~collector ~replica_ix
          ~n_replicas:config.n_replicas
      else
        Workload.Driver.spawn_replicated_clients engine ~replica ~spec
          ~rng:(Rng.split rng) ~collector ~replica_ix
          ~n_replicas:config.n_replicas)
    (Tashkent.Cluster.replicas cluster);
  let plan =
    if config.chaos then
      soak_plan ~duration:config.duration ~period:config.chaos_period
        ~n_replicas:config.n_replicas ~n_partitions:config.n_partitions
    else []
  in
  let replica_outages =
    List.exists (function _, Fault.Crash_replica _ -> true | _ -> false) plan
  in
  let injector = if plan = [] then None else Some (Fault.inject cluster plan) in
  let started = Engine.now engine in
  let commits = ref 0 in
  (* Leader gauges carry across an election gap, per certifier group: a
     window sampled while a group has no leader reuses that group's
     previous log shape instead of reporting a bogus zero. Live entries
     and bytes sum over groups (total retained state); the floor is the
     minimum across groups (the laggiest truncation). *)
  let groups = List.map fst (Tashkent.Cluster.certifier_groups cluster) in
  let last_log = Hashtbl.create 8 in
  let sample_leader () =
    List.fold_left
      (fun (entries, bytes, floor) part ->
        let e, b, f =
          match Tashkent.Cluster.group_leader cluster ~part with
          | None ->
              Option.value (Hashtbl.find_opt last_log part) ~default:(0, 0, 0)
          | Some lead ->
              let log = Tashkent.Certifier.log lead in
              let s =
                ( Tashkent.Cert_log.entries log,
                  Tashkent.Cert_log.bytes_live log,
                  Tashkent.Cert_log.floor log )
              in
              Hashtbl.replace last_log part s;
              s
        in
        (entries + e, bytes + b, min floor f))
      (0, 0, max_int) groups
  in
  let hosted_dbs r =
    List.filter_map
      (fun part -> Tashkent.Replica.db_of r ~part)
      (Tashkent.Replica.partitions r)
  in
  let hosted_proxies r =
    List.filter_map
      (fun part -> Tashkent.Replica.proxy_of r ~part)
      (Tashkent.Replica.partitions r)
  in
  let store_versions_max () =
    List.fold_left
      (fun acc r ->
        if Tashkent.Replica.is_up r then
          List.fold_left
            (fun acc db ->
              max acc (Mvcc.Store.version_records (Mvcc.Db.store db)))
            acc (hosted_dbs r)
        else acc)
      0
      (Tashkent.Cluster.replicas cluster)
  in
  let n_windows =
    max 1 (int_of_float (Time.to_sec config.duration /. Time.to_sec config.window))
  in
  let windows = ref [] in
  for _ = 1 to n_windows do
    run_for engine config.window;
    let cert_entries, cert_bytes, gc_floor = sample_leader () in
    commits := !commits + Workload.Driver.Collector.committed collector;
    windows :=
      {
        at = Time.diff (Engine.now engine) started;
        goodput = Workload.Driver.Collector.goodput collector ~window:config.window;
        p95_ms = Workload.Driver.Collector.p95_response_ms collector;
        p99_ms = Workload.Driver.Collector.p99_response_ms collector;
        store_versions = store_versions_max ();
        cert_entries;
        cert_bytes;
        gc_floor;
      }
      :: !windows;
    Workload.Driver.Collector.reset collector
  done;
  (* Drain outstanding faults, then the end-to-end invariant checkpoint. *)
  (match injector with
  | None -> ()
  | Some inj ->
      let rec drain limit =
        if (not (Fault.quiescent inj)) && limit > 0 then begin
          run_for engine (Time.sec 1);
          drain (limit - 1)
        end
      in
      drain 60);
  Obs.Monitor.finalize monitor ~now:(Engine.now engine);
  let violations = ref [] in
  let violate fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  (match Tashkent.Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> violate "consistency: %s" msg);
  (match Tashkent.Cluster.check_log_invariants cluster with
  | Ok () -> ()
  | Error msg -> violate "log invariants: %s" msg);
  (match Tashkent.Cluster.check_cross_atomicity cluster with
  | Ok () -> ()
  | Error msg -> violate "cross atomicity: %s" msg);
  let over_dbs f =
    List.fold_left
      (fun acc r -> List.fold_left (fun acc db -> acc + f db) acc (hosted_dbs r))
      0
      (Tashkent.Cluster.replicas cluster)
  in
  let over_proxies f =
    List.fold_left
      (fun acc r -> List.fold_left (fun acc p -> acc + f p) acc (hosted_proxies r))
      0
      (Tashkent.Cluster.replicas cluster)
  in
  let store_pruned = over_dbs (fun db -> Mvcc.Store.pruned (Mvcc.Db.store db)) in
  let cert_pruned =
    List.fold_left
      (fun acc part ->
        match Tashkent.Cluster.group_leader cluster ~part with
        | None -> acc
        | Some lead -> acc + Tashkent.Cert_log.pruned (Tashkent.Certifier.log lead))
      0 groups
  in
  let snapshot_installs = over_proxies Tashkent.Proxy.snapshot_installs in
  let floor_heals = over_proxies Tashkent.Proxy.floor_heals in
  let stale_expired = over_dbs Mvcc.Db.stale_snapshots_expired in
  (* Boundedness: compare the post-warmup early half against the late
     half. A plateau passes with room to spare; linear growth (the
     pre-watermark behaviour) makes the late-half max ~2x the early-half
     max however long the run is, so the envelope must sit strictly below
     2x — 1.5x plus an absolute slack for small fluctuating gauges. *)
  let all = List.rev !windows in
  let measured =
    List.filteri (fun i _ -> i >= config.warmup_windows) all
  in
  (if config.gc_interval <> None then begin
     if store_pruned = 0 then
       violate "store GC never pruned a version (store_pruned = 0)";
     if cert_pruned = 0 then
       violate "certified log was never truncated (cert_pruned = 0)"
   end);
  if config.chaos && replica_outages && snapshot_installs = 0 then
    violate
      "no snapshot transfer happened despite replica outages longer than \
       the watermark TTL";
  (match measured with
  | [] | [ _ ] -> ()
  | _ ->
      let n = List.length measured in
      let early = List.filteri (fun i _ -> i < n / 2) measured in
      let late = List.filteri (fun i _ -> i >= n / 2) measured in
      let maxi f ws = List.fold_left (fun acc w -> max acc (f w)) 0 ws in
      let early_versions = maxi (fun w -> w.store_versions) early in
      let late_versions = maxi (fun w -> w.store_versions) late in
      if late_versions > (3 * early_versions / 2) + 512 then
        violate "store versions grew without bound: early max %d, late max %d"
          early_versions late_versions;
      let early_bytes = maxi (fun w -> w.cert_bytes) early in
      let late_bytes = maxi (fun w -> w.cert_bytes) late in
      if late_bytes > (3 * early_bytes / 2) + 65_536 then
        violate "certified log bytes grew without bound: early max %d, late max %d"
          early_bytes late_bytes;
      (* Medians, not maxima: a chaos window legitimately spikes p99. *)
      let early_p99 = median (List.map (fun w -> w.p99_ms) early) in
      let late_p99 = median (List.map (fun w -> w.p99_ms) late) in
      if late_p99 > (3. *. early_p99) +. 5. then
        violate "p99 latency drifted: early median %.2f ms, late median %.2f ms"
          early_p99 late_p99);
  {
    windows = all;
    commits = !commits;
    store_pruned;
    cert_pruned;
    snapshot_installs;
    floor_heals;
    stale_expired;
    fault = Option.map Fault.stats injector;
    violations = List.rev !violations;
    monitor_violations =
      List.map
        (Format.asprintf "%a" Obs.Monitor.pp_violation)
        (Obs.Monitor.violations monitor);
    monitor_events = Obs.Monitor.events_seen monitor;
    ran_for = Time.diff (Engine.now engine) started;
  }

let pp_result fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt
    "%-8s %10s %9s %9s %9s %11s %11s %9s@," "t" "goodput" "p95ms" "p99ms"
    "versions" "log entries" "log bytes" "floor";
  List.iter
    (fun w ->
      Format.fprintf fmt "%-8s %10.1f %9.2f %9.2f %9d %11d %11d %9d@,"
        (Time.to_string w.at) w.goodput w.p95_ms w.p99_ms w.store_versions
        w.cert_entries w.cert_bytes w.gc_floor)
    r.windows;
  Format.fprintf fmt "commits            %d@," r.commits;
  Format.fprintf fmt "store pruned       %d@," r.store_pruned;
  Format.fprintf fmt "cert-log pruned    %d@," r.cert_pruned;
  Format.fprintf fmt "snapshot installs  %d@," r.snapshot_installs;
  Format.fprintf fmt "floor heals        %d@," r.floor_heals;
  Format.fprintf fmt "stale expired      %d@," r.stale_expired;
  (match r.fault with
  | None -> ()
  | Some f ->
      Format.fprintf fmt "faults             %d crashes, %d recoveries@,"
        f.Fault.crashes f.Fault.recoveries);
  Format.fprintf fmt "violations         %d" (List.length r.violations);
  List.iter (fun v -> Format.fprintf fmt "@,  %s" v) r.violations;
  Format.fprintf fmt "@,monitor events     %d" r.monitor_events;
  Format.fprintf fmt "@,monitor violations %d"
    (List.length r.monitor_violations);
  List.iter (fun v -> Format.fprintf fmt "@,  %s" v) r.monitor_violations;
  Format.fprintf fmt "@]"

(** Sustained-load soak harness for the GC watermark: simulated hours of
    Zipfian delta traffic (optionally under periodic leader and replica
    crashes), sampling the growth-sensitive gauges every window and
    asserting the long-run shape — row-version counts and the live
    certified log plateau instead of growing with wall-clock, latency
    percentiles stay flat after warmup, both GC paths actually fired
    ([store_pruned > 0], [cert_pruned > 0]), and a replica whose outage
    outlived the watermark TTL healed via snapshot transfer. Running with
    [gc_interval = None] reproduces the unbounded-growth baseline (the
    boundedness assertions then fail, by design). Deterministic in the
    seed. *)

type config = {
  mode : Tashkent.Types.mode;
  n_replicas : int;
  n_certifiers : int;  (** Paxos ring members per certifier group *)
  n_partitions : int;
      (** certifier groups (default 1). With [> 1] the Zipfian clients run
          through {!Tashkent.Session} (hot keys hash across every group,
          so a multi-key transaction may commit cross-partition), the
          periodic chaos round-robins its certifier crashes over the
          groups, the sampled log gauges sum over groups (floor = the
          minimum), and the final checkpoint also asserts
          {!Tashkent.Cluster.check_cross_atomicity}. *)
  seed : int;
  duration : Sim.Time.t;  (** total simulated run (default 600 s) *)
  window : Sim.Time.t;  (** sampling window (default 30 s) *)
  warmup_windows : int;
      (** leading windows excluded from the boundedness and latency
          assertions (default 1) *)
  gc_interval : Sim.Time.t option;
      (** replica vacuum period (default 5 s); [None] disables GC — the
          unbounded baseline *)
  max_snapshot_age : Sim.Time.t option;
      (** stale-snapshot escape hatch (default 30 s) *)
  chaos : bool;  (** inject the periodic fault plan (default on) *)
  chaos_period : Sim.Time.t;
      (** one fault every this often (default 120 s), alternating a 5 s
          leader crash with a 30 s replica outage — longer than the
          watermark TTL, so recovery needs a snapshot transfer *)
  hot_keys : int;
  skew : float;  (** Zipf exponent of the hot-key workload *)
  deltas : bool;  (** ship hot-row increments as commutative deltas *)
  clients_per_replica : int;
  monitors : bool;
      (** attach the five online protocol monitors ({!Obs.Monitor}) for
          the whole soak (default on); pure observers, bit-identical runs *)
  progress_bound : Sim.Time.t;
      (** progress-monitor deadline (default 10 s), counted from
          submission or the last fault heal *)
}

val default_config : unit -> config
(** Tashkent-MW, 3 replicas, 3 certifiers, 600 simulated seconds in 30 s
    windows, GC every 5 s, chaos every 120 s, Zipfian deltas. *)

type window_sample = {
  at : Sim.Time.t;  (** offset of the window's end from run start *)
  goodput : float;  (** committed transactions per second *)
  p95_ms : float;
  p99_ms : float;  (** update response percentiles within the window *)
  store_versions : int;
      (** max row-version-chain records across up replicas — the gauge
          that grows without bound when vacuuming is off *)
  cert_entries : int;
      (** live slots in the certified log, summed over group leaders *)
  cert_bytes : int;  (** bytes held by those live slots *)
  gc_floor : int;  (** the truncation floor (minimum across groups) *)
}

type result = {
  windows : window_sample list;  (** oldest first, warmup included *)
  commits : int;
  store_pruned : int;  (** row versions vacuumed, summed over replicas *)
  cert_pruned : int;  (** log entries truncated at the leader *)
  snapshot_installs : int;
      (** pruned-prefix recoveries healed by snapshot transfer *)
  floor_heals : int;
      (** below-floor livelocks broken by an eager refresh from the commit
          path (see {!Tashkent.Proxy.floor_heals}), summed over replicas *)
  stale_expired : int;  (** transactions doomed by [max_snapshot_age] *)
  fault : Fault.stats option;  (** [None] when chaos was off *)
  violations : string list;  (** empty on a passing run *)
  monitor_violations : string list;
      (** online monitor findings; empty on a passing run or with
          [monitors] off *)
  monitor_events : int;  (** protocol events the monitors consumed *)
  ran_for : Sim.Time.t;
}

val run : ?config:config -> unit -> result

val pp_result : Format.formatter -> result -> unit

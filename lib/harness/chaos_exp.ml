open Sim

(* Chaos harness: TPC-B on a replicated cluster under a fault plan, with
   the GSI safety invariants asserted after every heal/recovery point and
   at the end of the run. This is the regression net for the failover
   paths of §7: a run passes only if the cluster keeps certifying through
   leader crashes and partitions without duplicating, losing or reordering
   any certified writeset. *)

type plan_kind = Scripted | Scripted_disk | Random of int

type config = {
  mode : Tashkent.Types.mode;
  n_replicas : int;
  n_certifiers : int;
  duration : Time.t;
  seed : int;
  plan : plan_kind;
  collect_trace : bool;
  disk_faults : bool;
  fsync_stall : Time.t;
  apply_workers : int;
  deltas : bool; (* TPC-B balance updates as commutative Add ops *)
  gc_interval : Time.t option;
      (* replica vacuum period; 5 s by default so log truncation and store
         pruning are both exercised within a short chaos run *)
  max_snapshot_age : Time.t option;
}

let default_config () =
  {
    mode = Tashkent.Types.Tashkent_mw;
    n_replicas = 3;
    n_certifiers = 3;
    duration = Time.sec 20;
    seed = 1966;
    plan = Scripted;
    collect_trace = false;
    disk_faults = false;
    fsync_stall = Time.of_ms 600.;
    apply_workers = 1;
    deltas = false;
    gc_interval = Some (Time.sec 5);
    max_snapshot_age = None;
  }

type result = {
  commits : int;
  cert_aborts : int;
  local_aborts : int;
  cert_requests : int;
  cert_retries : int;
  cert_failovers : int;
  refetches : int;
  fault : Fault.stats;
  checks : int;
  violations : string list;
  ran_for : Time.t;
  trace : Obs.Trace.t;
  durable_acked : int;
  torn_discarded : int;
  corrupt_discarded : int;
  disk_failovers : int;
}

(* The acceptance scenario: a certifier-leader crash with later recovery,
   a replica partitioned away from the whole certifier group and healed,
   and a message-loss burst — each followed by an invariant checkpoint. *)
let scripted_plan ~n_certifiers =
  let certs = List.init n_certifiers (fun i -> Fault.Cert i) in
  [
    (Time.sec 2, Fault.Crash_leader);
    (Time.sec 5, Fault.Recover_crashed);
    (Time.sec 8, Fault.Partition ([ Fault.Rep 0 ], certs));
    (Time.sec 10, Fault.Heal ([ Fault.Rep 0 ], certs));
    (Time.sec 12, Fault.Drop_burst { rate = 0.1; duration = Time.sec 1 });
    (Time.of_sec 14.5, Fault.Heal_all);
  ]

(* The storage-fault acceptance scenario: a leader fsync stall long enough
   to trip the disk watchdog (degraded-disk failover), a torn-tail leader
   crash whose recovery scan must truncate the unacked record, and a
   corrupt-tail crash of a fixed certifier — each recovered, each followed
   by a checkpoint that now includes the durability invariant. *)
let scripted_disk_plan () =
  [
    ( Time.sec 2,
      Fault.Disk_stall
        { cert = None; extra = Time.of_ms 600.; duration = Time.sec 2 } );
    (Time.sec 6, Fault.Torn_crash { cert = None });
    (Time.sec 8, Fault.Recover_crashed);
    (Time.sec 11, Fault.Corrupt_tail { cert = Some 0 });
    (Time.sec 13, Fault.Recover_certifier 0);
    (Time.of_sec 15.5, Fault.Heal_all);
  ]

(* Offsets at which the plan has just healed or recovered something —
   each becomes an invariant checkpoint (after a grace period for retries
   in flight and elections to finish). *)
let checkpoints_of plan =
  List.filter_map
    (fun (time, action) ->
      match action with
      | Fault.Heal _ | Fault.Heal_all | Fault.Recover_certifier _
      | Fault.Recover_crashed | Fault.Recover_replica _ ->
          Some (Time.add time (Time.sec 2))
      | Fault.Partition _ | Fault.Drop_burst _ | Fault.Latency_spike _
      | Fault.Crash_certifier _ | Fault.Crash_leader | Fault.Crash_replica _
      | Fault.Disk_stall _ | Fault.Disk_degrade _ | Fault.Torn_crash _
      | Fault.Corrupt_tail _ ->
          None)
    plan

let run_for engine span = Engine.run ~until:(Time.add (Engine.now engine) span) engine

(* A checkpoint is only meaningful once a leader exists and its rebuilt
   log has caught back up with every up replica (a freshly elected leader
   can briefly trail while state transfer / redelivery completes). *)
let wait_checkable cluster engine =
  let deadline = Time.add (Engine.now engine) (Time.sec 10) in
  (* Highest commit version acked durable to any proxy: a freshly elected
     leader must have re-delivered at least this far before the durability
     invariant is meaningful. *)
  let max_acked () =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc (_req, v) -> max acc v)
          acc
          (Tashkent.Proxy.journaled_commits (Tashkent.Replica.proxy r)))
      0
      (Tashkent.Cluster.replicas cluster)
  in
  let ready () =
    match Tashkent.Cluster.leader cluster with
    | None -> false
    | Some lead ->
        let lv = Tashkent.Certifier.system_version lead in
        lv >= max_acked ()
        && List.for_all
             (fun r ->
               (not (Tashkent.Replica.is_up r))
               || Mvcc.Store.current_version
                    (Mvcc.Db.store (Tashkent.Replica.db r))
                  <= lv)
             (Tashkent.Cluster.replicas cluster)
  in
  let rec loop () =
    if (not (ready ())) && Time.(Engine.now engine < deadline) then begin
      run_for engine (Time.of_ms 100.);
      loop ()
    end
  in
  loop ()

(* The durability invariant (§4/§7 write-ahead discipline, end to end):
   every commit acked durable to some proxy before a crash must still be
   present — same origin, same request — at its acked version in the
   current leader's certified log after recovery. Torn/corrupt-tail
   truncation may only ever discard records that were never acked. *)
let check_durability cluster violations stamp =
  match Tashkent.Cluster.leader cluster with
  | None -> ()
  | Some lead ->
      let log = Tashkent.Certifier.log lead in
      let top = Tashkent.Cert_log.version log in
      let floor = Tashkent.Cert_log.floor log in
      List.iter
        (fun r ->
          let proxy = Tashkent.Replica.proxy r in
          let origin = Tashkent.Proxy.addr proxy in
          List.iter
            (fun (req_id, version) ->
              let present =
                version >= 1 && version <= top
                &&
                if version <= floor then
                  (* The slot was truncated behind the GC watermark; the
                     certifier's decided table (never pruned, rebuilt by
                     redelivery) is the durability witness instead. *)
                  Tashkent.Certifier.decided_version lead ~req_id
                  = Some version
                else
                  let e = Tashkent.Cert_log.get log version in
                  String.equal e.Tashkent.Types.origin origin
                  && e.Tashkent.Types.req_id = req_id
              in
              if not present then
                violations :=
                  stamp
                    (Printf.sprintf
                       "durability: commit acked to %s (req %d, version %d) \
                        missing from the certified log after recovery"
                       origin req_id version)
                  :: !violations)
            (Tashkent.Proxy.journaled_commits proxy))
        (Tashkent.Cluster.replicas cluster)

let check cluster engine violations =
  wait_checkable cluster engine;
  let stamp msg =
    Printf.sprintf "t=%s: %s" (Time.to_string (Engine.now engine)) msg
  in
  (match Tashkent.Cluster.check_log_invariants cluster with
  | Ok () -> ()
  | Error msg -> violations := stamp msg :: !violations);
  (match Tashkent.Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> violations := stamp msg :: !violations);
  check_durability cluster violations stamp

let run ?(config = default_config ()) () =
  let spec = Workload.Tpcb.profile ~deltas:config.deltas () in
  let engine = Engine.create () in
  let trace =
    if config.collect_trace then Obs.Trace.create engine else Obs.Trace.disabled ()
  in
  let cluster =
    Tashkent.Cluster.create ~engine ~trace
      (Tashkent.Cluster.config ~n_replicas:config.n_replicas
         ~n_certifiers:config.n_certifiers
         ~replica:
           {
             (Tashkent.Replica.default_config config.mode) with
             Tashkent.Replica.staleness_bound = Some (Time.sec 1);
             apply_workers = config.apply_workers;
             gc_interval = config.gc_interval;
             max_snapshot_age = config.max_snapshot_age;
           }
         ~seed:config.seed config.mode)
  in
  Tashkent.Cluster.load_all cluster
    (spec.Workload.Spec.initial_rows ~n_replicas:config.n_replicas);
  Tashkent.Cluster.settle cluster;
  List.iter
    (fun r ->
      Tashkent.Proxy.enable_commit_journal (Tashkent.Replica.proxy r))
    (Tashkent.Cluster.replicas cluster);
  let collector = Workload.Driver.Collector.create () in
  let rng = Rng.create (config.seed + 1) in
  List.iteri
    (fun replica_ix replica ->
      Workload.Driver.spawn_replicated_clients engine ~replica ~spec
        ~rng:(Rng.split rng) ~collector ~replica_ix ~n_replicas:config.n_replicas)
    (Tashkent.Cluster.replicas cluster);
  let plan =
    match config.plan with
    | Scripted -> scripted_plan ~n_certifiers:config.n_certifiers
    | Scripted_disk -> scripted_disk_plan ()
    | Random seed ->
        Fault.random_plan ~seed ~duration:config.duration
          ~n_certifiers:config.n_certifiers ~n_replicas:config.n_replicas
          ~disk_faults:config.disk_faults ~fsync_stall:config.fsync_stall ()
  in
  let started = Engine.now engine in
  let injector = Fault.inject cluster plan in
  Fault.register_metrics injector (Tashkent.Cluster.metrics cluster);
  let violations = ref [] in
  let checks = ref 0 in
  let checkpoints =
    List.sort_uniq Time.compare (checkpoints_of plan)
    |> List.filter (fun t -> Time.(t < config.duration))
  in
  List.iter
    (fun offset ->
      let due = Time.add started offset in
      let now = Engine.now engine in
      if Time.(due > now) then run_for engine (Time.diff due now);
      incr checks;
      check cluster engine violations)
    checkpoints;
  (* Run out the clock, then a final end-to-end checkpoint once the
     injector is fully quiescent. *)
  let due = Time.add started config.duration in
  let now = Engine.now engine in
  if Time.(due > now) then run_for engine (Time.diff due now);
  let rec drain limit =
    if (not (Fault.quiescent injector)) && limit > 0 then begin
      run_for engine (Time.sec 1);
      drain (limit - 1)
    end
  in
  drain 30;
  incr checks;
  check cluster engine violations;
  let sum f =
    List.fold_left
      (fun acc r -> acc + f (Tashkent.Proxy.client (Tashkent.Replica.proxy r)))
      0
      (Tashkent.Cluster.replicas cluster)
  in
  let proxy_sum f =
    List.fold_left
      (fun acc r -> acc + f (Tashkent.Proxy.stats (Tashkent.Replica.proxy r)))
      0
      (Tashkent.Cluster.replicas cluster)
  in
  let cert_sum f =
    List.fold_left
      (fun acc c -> acc + f (Tashkent.Certifier.stats c))
      0
      (Tashkent.Cluster.certifiers cluster)
  in
  {
    commits = proxy_sum (fun (s : Tashkent.Proxy.stats) -> s.commits);
    cert_aborts = proxy_sum (fun (s : Tashkent.Proxy.stats) -> s.cert_aborts);
    local_aborts = proxy_sum (fun (s : Tashkent.Proxy.stats) -> s.local_aborts);
    cert_requests = sum Tashkent.Cert_client.requests_sent;
    cert_retries = sum Tashkent.Cert_client.retries;
    cert_failovers = sum Tashkent.Cert_client.failovers;
    refetches = sum Tashkent.Cert_client.refetches;
    fault = Fault.stats injector;
    checks = !checks;
    violations = List.rev !violations;
    ran_for = Time.diff (Engine.now engine) started;
    trace;
    durable_acked =
      List.fold_left
        (fun acc r ->
          acc
          + List.length
              (Tashkent.Proxy.journaled_commits (Tashkent.Replica.proxy r)))
        0
        (Tashkent.Cluster.replicas cluster);
    torn_discarded =
      cert_sum (fun (s : Tashkent.Certifier.stats) -> s.wal_torn_discarded);
    corrupt_discarded =
      cert_sum (fun (s : Tashkent.Certifier.stats) -> s.wal_corrupt_discarded);
    disk_failovers =
      cert_sum (fun (s : Tashkent.Certifier.stats) -> s.disk_failovers);
  }

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>commits              %d@,cert aborts          %d@,local aborts         %d@,\
     cert requests        %d@,cert retries         %d@,cert failovers       %d@,\
     re-fetches           %d@,faults: %d crashes, %d recoveries, %d cuts, %d heals, \
     %d bursts, %d spikes@,disk faults: %d stalls, %d degrades, %d torn, \
     %d corrupt@,durable acked        %d@,torn discarded       %d@,\
     corrupt discarded    %d@,disk failovers       %d@,\
     invariant checks     %d@,violations           %d%a@]"
    r.commits r.cert_aborts r.local_aborts r.cert_requests r.cert_retries
    r.cert_failovers r.refetches r.fault.Fault.crashes r.fault.Fault.recoveries
    r.fault.Fault.partitions_cut r.fault.Fault.heals r.fault.Fault.drop_bursts
    r.fault.Fault.latency_spikes r.fault.Fault.disk_stalls
    r.fault.Fault.disk_degrades r.fault.Fault.torn_crashes
    r.fault.Fault.corrupt_tails r.durable_acked r.torn_discarded
    r.corrupt_discarded r.disk_failovers r.checks
    (List.length r.violations)
    (fun fmt vs -> List.iter (fun v -> Format.fprintf fmt "@,  %s" v) vs)
    r.violations

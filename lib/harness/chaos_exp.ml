open Sim

(* Chaos harness: TPC-B on a replicated cluster under a fault plan, with
   the GSI safety invariants asserted after every heal/recovery point and
   at the end of the run. This is the regression net for the failover
   paths of §7: a run passes only if the cluster keeps certifying through
   leader crashes and partitions without duplicating, losing or reordering
   any certified writeset. *)

type plan_kind =
  | Scripted
  | Scripted_disk
  | Random of int
  | Explicit of Fault.plan
      (* a fully spelled-out plan — shrunk explore repros, targeted
         message-tap schedules *)

type config = {
  mode : Tashkent.Types.mode;
  n_replicas : int;
  n_certifiers : int;
  n_partitions : int;
      (* certifier groups; > 1 routes clients through Session and adds the
         cross-partition atomicity/durability invariants to every checkpoint *)
  duration : Time.t;
  seed : int;
  plan : plan_kind;
  collect_trace : bool;
  disk_faults : bool;
  fsync_stall : Time.t;
  apply_workers : int;
  deltas : bool; (* TPC-B balance updates as commutative Add ops *)
  gc_interval : Time.t option;
      (* replica vacuum period; 5 s by default so log truncation and store
         pruning are both exercised within a short chaos run *)
  max_snapshot_age : Time.t option;
  monitors : bool;
      (* online protocol monitors (Obs.Monitor) checking every event as it
         is emitted; on by default — disabling is for overhead comparison
         only *)
  progress_bound : Time.t;
      (* how long a submitted transaction may stay unresolved (counted
         from the last fault heal) before the progress monitor flags it *)
}

let default_config () =
  {
    mode = Tashkent.Types.Tashkent_mw;
    n_replicas = 3;
    n_certifiers = 3;
    n_partitions = 1;
    duration = Time.sec 20;
    seed = 1966;
    plan = Scripted;
    collect_trace = false;
    disk_faults = false;
    fsync_stall = Time.of_ms 600.;
    apply_workers = 1;
    deltas = false;
    gc_interval = Some (Time.sec 5);
    max_snapshot_age = None;
    monitors = true;
    progress_bound = Time.sec 5;
  }

type result = {
  commits : int;
  cert_aborts : int;
  local_aborts : int;
  cross_commits : int;
      (* multi-partition transactions committed atomically (Session stats;
         0 when n_partitions = 1) *)
  cross_aborts : int;
  cert_requests : int;
  cert_retries : int;
  cert_failovers : int;
  refetches : int;
  fault : Fault.stats;
  checks : int;
  violations : string list;
  monitor_violations : string list;
      (* online monitor findings, formatted with their sim timestamps;
         empty when [config.monitors] was off *)
  monitor_events : int; (* protocol events the monitors consumed *)
  bridge_heals : int;
      (* commit replies whose remotes failed to bridge the replica's
         applied prefix and forced a pre-install fetch, summed over
         proxies — the stale-re-answer schedules regression-pin this *)
  ran_for : Time.t;
  trace : Obs.Trace.t;
  durable_acked : int;
  torn_discarded : int;
  corrupt_discarded : int;
  disk_failovers : int;
}

(* The acceptance scenario: a certifier-leader crash with later recovery,
   a replica partitioned away from the whole certifier group and healed,
   and a message-loss burst — each followed by an invariant checkpoint. *)
let scripted_plan ~n_certifiers =
  let certs = List.init n_certifiers (fun i -> Fault.Cert i) in
  [
    (Time.sec 2, Fault.Crash_leader);
    (Time.sec 5, Fault.Recover_crashed);
    (Time.sec 8, Fault.Partition ([ Fault.Rep 0 ], certs));
    (Time.sec 10, Fault.Heal ([ Fault.Rep 0 ], certs));
    (Time.sec 12, Fault.Drop_burst { rate = 0.1; duration = Time.sec 1 });
    (Time.of_sec 14.5, Fault.Heal_all);
  ]

(* The storage-fault acceptance scenario: a leader fsync stall long enough
   to trip the disk watchdog (degraded-disk failover), a torn-tail leader
   crash whose recovery scan must truncate the unacked record, and a
   corrupt-tail crash of a fixed certifier — each recovered, each followed
   by a checkpoint that now includes the durability invariant. *)
let scripted_disk_plan () =
  [
    ( Time.sec 2,
      Fault.Disk_stall
        { cert = None; extra = Time.of_ms 600.; duration = Time.sec 2 } );
    (Time.sec 6, Fault.Torn_crash { cert = None });
    (Time.sec 8, Fault.Recover_crashed);
    (Time.sec 11, Fault.Corrupt_tail { cert = Some 0 });
    (Time.sec 13, Fault.Recover_certifier 0);
    (Time.of_sec 15.5, Fault.Heal_all);
  ]

(* The partitioned acceptance scenario: crash a non-zero certifier
   group's leader while cross-partition transactions are in flight (its
   peers must re-derive the group's votes and decisions from the
   delivered log), recover it, then do the same to group 0, with a
   message-loss burst layered on top. One group is down at a time, so
   every group keeps a Paxos majority throughout. *)
let scripted_partition_plan () =
  [
    (Time.sec 2, Fault.Crash_group_leader 1);
    (Time.sec 5, Fault.Recover_group_crashed 1);
    (Time.sec 8, Fault.Crash_group_leader 0);
    (Time.sec 10, Fault.Recover_group_crashed 0);
    (Time.sec 12, Fault.Drop_burst { rate = 0.1; duration = Time.sec 1 });
    (Time.of_sec 14.5, Fault.Heal_all);
  ]

(* Offsets at which the plan has just healed or recovered something —
   each becomes an invariant checkpoint (after a grace period for retries
   in flight and elections to finish). *)
let checkpoints_of plan =
  List.filter_map
    (fun (time, action) ->
      match action with
      | Fault.Heal _ | Fault.Heal_all | Fault.Recover_certifier _
      | Fault.Recover_crashed | Fault.Recover_group_crashed _
      | Fault.Recover_replica _ ->
          Some (Time.add time (Time.sec 2))
      | Fault.Partition _ | Fault.Drop_burst _ | Fault.Latency_spike _
      | Fault.Crash_certifier _ | Fault.Crash_leader
      | Fault.Crash_group_leader _ | Fault.Crash_replica _
      | Fault.Disk_stall _ | Fault.Disk_degrade _ | Fault.Torn_crash _
      | Fault.Corrupt_tail _ | Fault.Delay_msg _ | Fault.Drop_msg _
      | Fault.Crash_on_msg _ ->
          None)
    plan

let run_for engine span = Engine.run ~until:(Time.add (Engine.now engine) span) engine

(* Every (up replica, hosted partition) pair, with that partition's
   proxy and database. *)
let hosted_pairs cluster ~part =
  List.filter_map
    (fun r ->
      match
        (Tashkent.Replica.proxy_of r ~part, Tashkent.Replica.db_of r ~part)
      with
      | Some proxy, Some db -> Some (r, proxy, db)
      | _ -> None)
    (Tashkent.Cluster.replicas cluster)

(* A checkpoint is only meaningful once every certifier group has a
   leader and each group's rebuilt log has caught back up with every up
   replica hosting its partition (a freshly elected leader can briefly
   trail while state transfer / redelivery completes). *)
let wait_checkable cluster engine =
  let deadline = Time.add (Engine.now engine) (Time.sec 10) in
  let parts = List.map fst (Tashkent.Cluster.certifier_groups cluster) in
  (* Highest commit version of this partition acked durable to any of its
     proxies — local and cross-partition acks both count: a freshly
     elected group leader must have re-delivered at least this far before
     the durability invariant is meaningful. *)
  let max_acked part =
    List.fold_left
      (fun acc (_r, proxy, _db) ->
        let acc =
          List.fold_left
            (fun acc (_req, v) -> max acc v)
            acc
            (Tashkent.Proxy.journaled_commits proxy)
        in
        List.fold_left
          (fun acc (_gtx, v) -> max acc v)
          acc
          (Tashkent.Proxy.journaled_cross_commits proxy))
      0
      (hosted_pairs cluster ~part)
  in
  let group_ready part =
    match Tashkent.Cluster.group_leader cluster ~part with
    | None -> false
    | Some lead ->
        let lv = Tashkent.Certifier.system_version lead in
        lv >= max_acked part
        && List.for_all
             (fun (r, _proxy, db) ->
               (not (Tashkent.Replica.is_up r))
               || Mvcc.Store.current_version (Mvcc.Db.store db) <= lv)
             (hosted_pairs cluster ~part)
  in
  let ready () = List.for_all group_ready parts in
  let rec loop () =
    if (not (ready ())) && Time.(Engine.now engine < deadline) then begin
      run_for engine (Time.of_ms 100.);
      loop ()
    end
  in
  loop ()

(* The durability invariant (§4/§7 write-ahead discipline, end to end):
   every commit acked durable to some proxy before a crash must still be
   present — same origin, same request — at its acked version in the
   current leader's certified log after recovery. Torn/corrupt-tail
   truncation may only ever discard records that were never acked. *)
let check_durability cluster violations stamp =
  List.iter
    (fun (part, _members) ->
      match Tashkent.Cluster.group_leader cluster ~part with
      | None -> ()
      | Some lead ->
          let log = Tashkent.Certifier.log lead in
          let top = Tashkent.Cert_log.version log in
          let floor = Tashkent.Cert_log.floor log in
          List.iter
            (fun (_r, proxy, _db) ->
              let origin = Tashkent.Proxy.addr proxy in
              List.iter
                (fun (req_id, version) ->
                  let present =
                    version >= 1 && version <= top
                    &&
                    if version <= floor then
                      (* The slot was truncated behind the GC watermark;
                         the certifier's decided table (never pruned,
                         rebuilt by redelivery) is the durability witness
                         instead. *)
                      Tashkent.Certifier.decided_version lead ~req_id
                      = Some version
                    else
                      let e = Tashkent.Cert_log.get log version in
                      String.equal e.Tashkent.Types.origin origin
                      && e.Tashkent.Types.req_id = req_id
                  in
                  if not present then
                    violations :=
                      stamp
                        (Printf.sprintf
                           "durability: commit acked to %s (req %d, \
                            version %d) missing from p%d's certified log \
                            after recovery"
                           origin req_id version part)
                      :: !violations)
                (Tashkent.Proxy.journaled_commits proxy);
              (* Cross-partition acks: the group's outcome witness (never
                 pruned, re-derived by redelivery after a crash) must
                 record the fragment committed at its acked version. *)
              List.iter
                (fun (gtx, version) ->
                  match Tashkent.Certifier.x_outcome lead ~gtx with
                  | Some (Some v) when v = version -> ()
                  | outcome ->
                      let what =
                        match outcome with
                        | None -> "unknown to"
                        | Some None -> "recorded aborted by"
                        | Some (Some v) ->
                            Printf.sprintf "recorded at version %d by" v
                      in
                      violations :=
                        stamp
                          (Printf.sprintf
                             "durability: cross-commit %s acked to %s at \
                              version %d is %s p%d's certifier after \
                              recovery"
                             (Format.asprintf "%a" Tashkent.Types.pp_gtx gtx)
                             origin version what part)
                        :: !violations)
                (Tashkent.Proxy.journaled_cross_commits proxy))
            (hosted_pairs cluster ~part))
    (Tashkent.Cluster.certifier_groups cluster)

let check cluster engine violations =
  wait_checkable cluster engine;
  let stamp msg =
    Printf.sprintf "t=%s: %s" (Time.to_string (Engine.now engine)) msg
  in
  (match Tashkent.Cluster.check_log_invariants cluster with
  | Ok () -> ()
  | Error msg -> violations := stamp msg :: !violations);
  (match Tashkent.Cluster.check_consistency cluster with
  | Ok () -> ()
  | Error msg -> violations := stamp msg :: !violations);
  (match Tashkent.Cluster.check_cross_atomicity cluster with
  | Ok () -> ()
  | Error msg -> violations := stamp msg :: !violations);
  check_durability cluster violations stamp

let run ?(config = default_config ()) () =
  let spec =
    (* Partitioned runs drive the partition-aware profile through Session
       (a third of the transactions span two certifier groups), so the
       chaos plan exercises the cross-partition commit protocol;
       single-partition runs keep the seed TPC-B workload bit-for-bit. *)
    if config.n_partitions > 1 then
      Workload.Partlocal.profile ~partitions:config.n_partitions
        ~cross_ratio:0.33 ()
    else Workload.Tpcb.profile ~deltas:config.deltas ()
  in
  let engine = Engine.create () in
  let trace =
    if config.collect_trace then Obs.Trace.create engine else Obs.Trace.disabled ()
  in
  let events =
    if config.monitors then Obs.Events.create engine
    else Obs.Events.disabled ()
  in
  let cluster =
    Tashkent.Cluster.create ~engine ~trace ~events
      (Tashkent.Cluster.config ~n_replicas:config.n_replicas
         ~n_certifiers:config.n_certifiers
         ~n_partitions:config.n_partitions
         ~replica:
           {
             (Tashkent.Replica.default_config config.mode) with
             Tashkent.Replica.staleness_bound = Some (Time.sec 1);
             apply_workers = config.apply_workers;
             gc_interval = config.gc_interval;
             max_snapshot_age = config.max_snapshot_age;
           }
         ~seed:config.seed config.mode)
  in
  let monitor =
    Obs.Monitor.attach ~progress_bound:config.progress_bound
      ~metrics:(Tashkent.Cluster.metrics cluster) events
  in
  Tashkent.Cluster.load_all cluster
    (spec.Workload.Spec.initial_rows ~n_replicas:config.n_replicas);
  Tashkent.Cluster.settle cluster;
  List.iter
    (fun r ->
      List.iter
        (fun part ->
          match Tashkent.Replica.proxy_of r ~part with
          | Some p -> Tashkent.Proxy.enable_commit_journal p
          | None -> ())
        (Tashkent.Replica.partitions r))
    (Tashkent.Cluster.replicas cluster);
  let collector = Workload.Driver.Collector.create () in
  let rng = Rng.create (config.seed + 1) in
  List.iteri
    (fun replica_ix replica ->
      if config.n_partitions > 1 then
        Workload.Driver.spawn_session_clients engine ~replica ~spec
          ~rng:(Rng.split rng) ~collector ~replica_ix
          ~n_replicas:config.n_replicas
      else
        Workload.Driver.spawn_replicated_clients engine ~replica ~spec
          ~rng:(Rng.split rng) ~collector ~replica_ix
          ~n_replicas:config.n_replicas)
    (Tashkent.Cluster.replicas cluster);
  let plan =
    match config.plan with
    | Scripted when config.n_partitions > 1 -> scripted_partition_plan ()
    | Scripted -> scripted_plan ~n_certifiers:config.n_certifiers
    | Scripted_disk -> scripted_disk_plan ()
    | Random seed ->
        Fault.random_plan ~seed ~duration:config.duration
          ~n_certifiers:config.n_certifiers ~n_replicas:config.n_replicas
          ~n_partitions:config.n_partitions ~disk_faults:config.disk_faults
          ~fsync_stall:config.fsync_stall ()
    | Explicit plan -> plan
  in
  let started = Engine.now engine in
  let injector = Fault.inject cluster plan in
  Fault.register_metrics injector (Tashkent.Cluster.metrics cluster);
  let violations = ref [] in
  let checks = ref 0 in
  let checkpoints =
    List.sort_uniq Time.compare (checkpoints_of plan)
    |> List.filter (fun t -> Time.(t < config.duration))
  in
  List.iter
    (fun offset ->
      let due = Time.add started offset in
      let now = Engine.now engine in
      if Time.(due > now) then run_for engine (Time.diff due now);
      incr checks;
      check cluster engine violations)
    checkpoints;
  (* Run out the clock, then a final end-to-end checkpoint once the
     injector is fully quiescent. *)
  let due = Time.add started config.duration in
  let now = Engine.now engine in
  if Time.(due > now) then run_for engine (Time.diff due now);
  let rec drain limit =
    if (not (Fault.quiescent injector)) && limit > 0 then begin
      run_for engine (Time.sec 1);
      drain (limit - 1)
    end
  in
  drain 30;
  incr checks;
  check cluster engine violations;
  Obs.Monitor.finalize monitor ~now:(Engine.now engine);
  let hosted_proxies r =
    List.filter_map
      (fun part -> Tashkent.Replica.proxy_of r ~part)
      (Tashkent.Replica.partitions r)
  in
  let over_proxies f =
    List.fold_left
      (fun acc r -> List.fold_left (fun acc p -> acc + f p) acc (hosted_proxies r))
      0
      (Tashkent.Cluster.replicas cluster)
  in
  let sum f = over_proxies (fun p -> f (Tashkent.Proxy.client p)) in
  let proxy_sum f = over_proxies (fun p -> f (Tashkent.Proxy.stats p)) in
  let session_sum f =
    List.fold_left
      (fun acc r -> acc + f (Tashkent.Session.stats (Tashkent.Replica.session r)))
      0
      (Tashkent.Cluster.replicas cluster)
  in
  let cert_sum f =
    List.fold_left
      (fun acc c -> acc + f (Tashkent.Certifier.stats c))
      0
      (Tashkent.Cluster.certifiers cluster)
  in
  {
    commits = proxy_sum (fun (s : Tashkent.Proxy.stats) -> s.commits);
    cert_aborts = proxy_sum (fun (s : Tashkent.Proxy.stats) -> s.cert_aborts);
    local_aborts = proxy_sum (fun (s : Tashkent.Proxy.stats) -> s.local_aborts);
    cross_commits =
      session_sum (fun (s : Tashkent.Session.stats) -> s.cross_commits);
    cross_aborts =
      session_sum (fun (s : Tashkent.Session.stats) -> s.cross_aborts);
    cert_requests = sum Tashkent.Cert_client.requests_sent;
    cert_retries = sum Tashkent.Cert_client.retries;
    cert_failovers = sum Tashkent.Cert_client.failovers;
    refetches = sum Tashkent.Cert_client.refetches;
    fault = Fault.stats injector;
    checks = !checks;
    violations = List.rev !violations;
    monitor_violations =
      List.map
        (Format.asprintf "%a" Obs.Monitor.pp_violation)
        (Obs.Monitor.violations monitor);
    monitor_events = Obs.Monitor.events_seen monitor;
    bridge_heals = over_proxies Tashkent.Proxy.bridge_heals;
    ran_for = Time.diff (Engine.now engine) started;
    trace;
    durable_acked =
      over_proxies (fun p ->
          List.length (Tashkent.Proxy.journaled_commits p)
          + List.length (Tashkent.Proxy.journaled_cross_commits p));
    torn_discarded =
      cert_sum (fun (s : Tashkent.Certifier.stats) -> s.wal_torn_discarded);
    corrupt_discarded =
      cert_sum (fun (s : Tashkent.Certifier.stats) -> s.wal_corrupt_discarded);
    disk_failovers =
      cert_sum (fun (s : Tashkent.Certifier.stats) -> s.disk_failovers);
  }

let pp_result fmt r =
  Format.fprintf fmt
    "@[<v>commits              %d@,cert aborts          %d@,local aborts         %d@,\
     cross commits        %d@,cross aborts         %d@,\
     cert requests        %d@,cert retries         %d@,cert failovers       %d@,\
     re-fetches           %d@,faults: %d crashes, %d recoveries, %d cuts, %d heals, \
     %d bursts, %d spikes@,disk faults: %d stalls, %d degrades, %d torn, \
     %d corrupt@,durable acked        %d@,torn discarded       %d@,\
     corrupt discarded    %d@,disk failovers       %d@,\
     invariant checks     %d@,violations           %d%a@,\
     monitor events       %d@,monitor violations   %d%a@,\
     bridge heals         %d@]"
    r.commits r.cert_aborts r.local_aborts r.cross_commits r.cross_aborts
    r.cert_requests r.cert_retries
    r.cert_failovers r.refetches r.fault.Fault.crashes r.fault.Fault.recoveries
    r.fault.Fault.partitions_cut r.fault.Fault.heals r.fault.Fault.drop_bursts
    r.fault.Fault.latency_spikes r.fault.Fault.disk_stalls
    r.fault.Fault.disk_degrades r.fault.Fault.torn_crashes
    r.fault.Fault.corrupt_tails r.durable_acked r.torn_discarded
    r.corrupt_discarded r.disk_failovers r.checks
    (List.length r.violations)
    (fun fmt vs -> List.iter (fun v -> Format.fprintf fmt "@,  %s" v) vs)
    r.violations r.monitor_events
    (List.length r.monitor_violations)
    (fun fmt vs -> List.iter (fun v -> Format.fprintf fmt "@,  %s" v) vs)
    r.monitor_violations r.bridge_heals

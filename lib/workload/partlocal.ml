open Sim

let rows_per_bucket = 64

let key ~replica_ix ~client ~row =
  Mvcc.Key.make ~table:"pl" ~row:(Printf.sprintf "%d.%d.%d" replica_ix client row)

(* The first [rows_per_bucket] rows of the (replica, client) keyspace that
   the cluster partitioner maps onto [part]. The scan order (row 0, 1,
   2, ...) is fixed, so the pools — and therefore the workload — are a
   pure function of (partitions, replica, client). *)
let bucket pt ~replica_ix ~client ~part =
  let rec scan row acc n =
    if n = rows_per_bucket then Array.of_list (List.rev acc)
    else
      let k = key ~replica_ix ~client ~row in
      if Tashkent.Partitioner.of_key pt k = part then
        scan (row + 1) (k :: acc) (n + 1)
      else scan (row + 1) acc n
  in
  scan 0 [] 0

let profile ?(clients_per_replica = 10) ?(exec_cpu = Time.of_ms 1.65)
    ?(modulo_hosting = false) ~partitions ?(cross_ratio = 0.) () =
  if partitions < 1 then invalid_arg "Partlocal.profile: partitions < 1";
  if cross_ratio < 0. || cross_ratio > 1. then
    invalid_arg "Partlocal.profile: cross_ratio outside [0, 1]";
  if modulo_hosting && cross_ratio > 0. then
    invalid_arg
      "Partlocal.profile: cross_ratio must be 0 under modulo hosting (a \
       replica hosting one partition cannot span two)";
  let pt = Tashkent.Partitioner.create ~parts:partitions in
  let cache = Hashtbl.create 64 in
  let pool ~replica_ix ~client ~part =
    match Hashtbl.find_opt cache (replica_ix, client, part) with
    | Some p -> p
    | None ->
        let p = bucket pt ~replica_ix ~client ~part in
        Hashtbl.add cache (replica_ix, client, part) p;
        p
  in
  {
    Spec.name =
      Printf.sprintf "partlocal.p%d.x%d" partitions
        (int_of_float ((cross_ratio *. 100.) +. 0.5));
    clients_per_replica;
    skew = 0.;
    think_time = Time.zero;
    exec_cpu = (fun _ -> exec_cpu);
    page_read_miss = 0.;
    page_writeback_per_op = 0.;
    bg_page_writes_per_sec = 12.;
    db_size_bytes = 30_000_000;
    initial_rows =
      (fun ~n_replicas ->
        List.concat
          (List.init n_replicas (fun replica_ix ->
               List.concat
                 (List.init clients_per_replica (fun client ->
                      List.concat
                        (List.init partitions (fun part ->
                             Array.to_list (pool ~replica_ix ~client ~part)
                             |> List.map (fun k -> (k, Mvcc.Value.int 0)))))))));
    new_tx =
      (fun ~rng ~client ~replica_ix ~n_replicas:_ ->
        (* Under modulo hosting the replica subscribes to exactly one
           partition, so every transaction's home is pinned to it (matching
           Cluster.Host_modulo's replica_ix mod n_partitions). *)
        let home =
          if modulo_hosting then replica_ix mod partitions
          else Rng.int rng partitions
        in
        let cross =
          (not modulo_hosting) && partitions > 1 && Rng.chance rng cross_ratio
        in
        let home_pool = pool ~replica_ix ~client ~part:home in
        let row1 = Rng.int rng rows_per_bucket in
        let k1 = home_pool.(row1) in
        let k2 =
          if cross then
            let other = (home + 1 + Rng.int rng (partitions - 1)) mod partitions in
            (pool ~replica_ix ~client ~part:other).(Rng.int rng rows_per_bucket)
          else
            home_pool.((row1 + 1 + Rng.int rng (rows_per_bucket - 1))
                       mod rows_per_bucket)
        in
        let value = Rng.int rng 1_000_000 in
        {
          Spec.kind = Spec.Update;
          run =
            (fun ctx ->
              ctx.Spec.write k1 (Mvcc.Writeset.Update (Mvcc.Value.int value));
              ctx.Spec.write k2 (Mvcc.Writeset.Update (Mvcc.Value.int (value + 1))));
        });
  }

(** Zipfian hot-key increment workload — the contended-hot-row regime
    where blind-write certification collapses and the commutative delta
    fast path is supposed to win.

    Each transaction increments one row of a small globally shared hot set
    (rank drawn from a Zipf distribution with exponent [skew]; θ = 0.99 is
    the YCSB-standard default) and updates one private per-client row.
    With [deltas] (the default) the hot increment is a
    {!Mvcc.Writeset.Add}, so concurrent transactions on the same hot row
    commute through certification and parallel apply; with
    [deltas:false] it is a read-modify-write blind write, the baseline
    whose same-row overlaps all abort (first-updater-wins). *)

val profile :
  ?clients_per_replica:int ->
  ?hot_keys:int ->
  ?skew:float ->
  ?deltas:bool ->
  unit ->
  Spec.t

val hot_key : int -> Mvcc.Key.t
(** The hot row for a Zipf rank, for tests that read back final sums. *)

val hot_keys_default : int

open Sim

let update_fraction = 0.20
let bestseller_count = 50
let bestseller_bias = 0.10

let item_key i = Mvcc.Key.make ~table:"item" ~row:(Printf.sprintf "%06d" i)
let cart_key ~replica_ix ~client = Mvcc.Key.make ~table:"cart" ~row:(Printf.sprintf "%d.%d" replica_ix client)

let order_key ~replica_ix ~client n =
  Mvcc.Key.make ~table:"order" ~row:(Printf.sprintf "%d.%d.%d" replica_ix client n)

let order_payload = String.make 180 'o'
let cart_payload = String.make 80 'c'

let profile ?(clients_per_replica = 5) ?(items = 10_000) () =
  let order_counters = Hashtbl.create 64 in
  let next_order ~replica_ix ~client =
    let key = (replica_ix, client) in
    let n = Option.value ~default:0 (Hashtbl.find_opt order_counters key) in
    Hashtbl.replace order_counters key (n + 1);
    n
  in
  let pick_item rng =
    if Rng.chance rng bestseller_bias then Rng.int rng bestseller_count
    else Rng.int rng items
  in
  {
    Spec.name = "tpcw";
    clients_per_replica;
    skew = 0.;
    think_time = Time.of_ms 100.;
    exec_cpu =
      (fun rng ->
        (* browsing-dominated CPU demand: 25–75 ms *)
        Rng.time_uniform rng ~lo:(Time.of_ms 25.) ~hi:(Time.of_ms 75.));
    page_read_miss = 0.3;
    page_writeback_per_op = 2.0;
    bg_page_writes_per_sec = 0.;
    db_size_bytes = 700_000_000;
    initial_rows =
      (fun ~n_replicas:_ ->
        List.init items (fun i -> (item_key i, Mvcc.Value.int 500)));
    new_tx =
      (fun ~rng ~client ~replica_ix ~n_replicas:_ ->
        if not (Rng.chance rng update_fraction) then
          (* Browsing: read a handful of items. *)
          let n_reads = Rng.int_in_range rng ~lo:3 ~hi:8 in
          let targets = List.init n_reads (fun _ -> pick_item rng) in
          {
            Spec.kind = Spec.Read_only;
            run = (fun ctx -> List.iter (fun i -> ignore (ctx.Spec.read (item_key i))) targets);
          }
        else if Rng.chance rng 0.5 then
          (* Shopping-cart update: private row, a couple of item reads. *)
          let reads = List.init 3 (fun _ -> pick_item rng) in
          {
            Spec.kind = Spec.Update;
            run =
              (fun ctx ->
                List.iter (fun i -> ignore (ctx.Spec.read (item_key i))) reads;
                ctx.Spec.write
                  (cart_key ~replica_ix ~client)
                  (Mvcc.Writeset.Update (Mvcc.Value.text cart_payload)));
          }
        else begin
          (* Buy confirm: order insert + stock decrement of 1–4 items. *)
          let n_items = Rng.int_in_range rng ~lo:1 ~hi:4 in
          let targets = List.init n_items (fun _ -> pick_item rng) in
          let order = next_order ~replica_ix ~client in
          {
            Spec.kind = Spec.Update;
            run =
              (fun ctx ->
                List.iter
                  (fun i ->
                    let stock =
                      match ctx.Spec.read (item_key i) with
                      | Some v -> Mvcc.Value.as_int v
                      | None -> 0
                    in
                    ctx.Spec.write (item_key i)
                      (Mvcc.Writeset.Update (Mvcc.Value.int (stock - 1))))
                  targets;
                ctx.Spec.write
                  (order_key ~replica_ix ~client order)
                  (Mvcc.Writeset.Insert (Mvcc.Value.text order_payload)));
          }
        end);
  }

(** Closed-loop clients executing a {!Spec} against either a replicated
    proxy or a standalone database, with warmup-aware measurement. *)

module Collector : sig
  type t

  val create : unit -> t

  val enable : t -> unit
  (** Start counting (call after warm-up). *)

  val disable : t -> unit
  val reset : t -> unit

  val record_commit : t -> Spec.kind -> Sim.Time.t -> unit
  (** Record a committed transaction and its response time (no-op while
      disabled). Exposed for custom drivers. *)

  val record_abort : t -> unit
  val committed : t -> int
  val update_committed : t -> int
  val aborted : t -> int

  val mean_response_ms : t -> float
  (** Mean response time of committed {e update} transactions. *)

  val mean_ro_response_ms : t -> float
  val p95_response_ms : t -> float
  val p99_response_ms : t -> float

  val goodput : t -> window:Sim.Time.t -> float
  (** Committed transactions per second over a window. *)

  val throughput_all : t -> window:Sim.Time.t -> float
  (** All finished transactions (committed + certifier-aborted) per second
      — the paper's req/sec axis counts requests served. *)
end

val spawn_replicated_clients :
  Sim.Engine.t ->
  replica:Tashkent.Replica.t ->
  spec:Spec.t ->
  rng:Sim.Rng.t ->
  collector:Collector.t ->
  replica_ix:int ->
  n_replicas:int ->
  unit
(** Spawn [spec.clients_per_replica] client fibers against the replica's
    proxy; each runs until cancelled. Fibers are registered with the
    replica (killed by a crash) and respawned after recovery. *)

val spawn_session_clients :
  Sim.Engine.t ->
  replica:Tashkent.Replica.t ->
  spec:Spec.t ->
  rng:Sim.Rng.t ->
  collector:Collector.t ->
  replica_ix:int ->
  n_replicas:int ->
  unit
(** Like {!spawn_replicated_clients}, but through the replica's
    {!Tashkent.Session} router, so a transaction may touch any hosted
    partition and commits atomically across certifier groups when its
    writes span more than one. Use this (with a partition-aware spec such
    as {!Partlocal.profile}) whenever the cluster runs with
    [n_partitions > 1]. *)

val spawn_standalone_clients :
  Sim.Engine.t ->
  db:Mvcc.Db.t ->
  cpu:Sim.Resource.t ->
  spec:Spec.t ->
  rng:Sim.Rng.t ->
  collector:Collector.t ->
  unit
(** The centralised-database control: same client loop, straight to
    {!Mvcc.Db.commit_standalone}, no middleware. *)

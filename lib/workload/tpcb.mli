(** TPC-B (§9.3): bank debit/credit transactions — read and update an
    account, update its teller and branch, insert a history row. Average
    writeset ≈ 158 bytes. Branch rows are hot, so real write–write
    conflicts (and, in Tashkent-API, artificial conflicts between remote
    writesets) occur.

    Scale: [branches_per_replica] branches per replica (the TPC-B scaling
    rule sizes branches to the offered load), [tellers_per_branch] tellers
    and [accounts_per_branch] accounts per branch. A configurable fraction
    of transactions touches a random non-home branch (the spec says 15%).

    With [deltas] (default off), the account/teller/branch balance bumps
    are shipped as commutative {!Mvcc.Writeset.Add} ops instead of
    read-then-blind-write final images, so concurrent updates of the same
    hot branch row pass the certifier's delta fast path instead of
    aborting; the history insert stays a blind write. *)

val profile :
  ?clients_per_replica:int ->
  ?branches_per_replica:int ->
  ?accounts_per_branch:int ->
  ?remote_branch_fraction:float ->
  ?deltas:bool ->
  unit ->
  Spec.t

val tellers_per_branch : int

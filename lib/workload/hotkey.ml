open Sim

(* Zipfian hot-key increment workload: the contended regime the delta
   certification fast path targets. Every transaction bumps one globally
   shared counter row drawn from a Zipf(θ) popularity distribution over a
   small hot set, plus one private row (so writesets are never empty of
   per-client state and apply work stays realistic). In [deltas] mode the
   hot bump ships as a commutative [Writeset.Add]; in blind mode it is the
   classic read-modify-write final image, which makes every pair of
   concurrent transactions on the same hot row a certification conflict. *)

let hot_key row = Mvcc.Key.make ~table:"hot" ~row:(string_of_int row)

let private_key ~replica_ix ~client row =
  Mvcc.Key.make ~table:"hk" ~row:(Printf.sprintf "%d.%d.%d" replica_ix client row)

let private_rows_per_client = 16
let hot_keys_default = 64

(* Zipf sampler over ranks 0..n-1 with exponent theta: precompute the
   cumulative distribution once, then invert a uniform draw by binary
   search. Rank i has weight 1/(i+1)^theta. *)
let zipf_cdf ~n ~theta =
  let weights = Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** theta)) in
  let total = Array.fold_left ( +. ) 0. weights in
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) /. total);
    cdf.(i) <- !acc
  done;
  (* Guard against floating-point shortfall at the top. *)
  cdf.(n - 1) <- 1.;
  cdf

let zipf_sample cdf u =
  let n = Array.length cdf in
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (n - 1)

let profile ?(clients_per_replica = 10) ?(hot_keys = hot_keys_default)
    ?(skew = 0.99) ?(deltas = true) () =
  if hot_keys < 1 then invalid_arg "Hotkey.profile: hot_keys must be >= 1";
  if skew < 0. then invalid_arg "Hotkey.profile: skew must be >= 0";
  let cdf = zipf_cdf ~n:hot_keys ~theta:skew in
  {
    Spec.name = (if deltas then "hotkey" else "hotkey-blind");
    clients_per_replica;
    skew;
    think_time = Time.zero;
    exec_cpu = (fun _ -> Time.of_ms 1.5);
    page_read_miss = 0.;
    page_writeback_per_op = 0.;
    bg_page_writes_per_sec = 0.;
    db_size_bytes = 30_000_000;
    initial_rows =
      (fun ~n_replicas ->
        let hot = List.init hot_keys (fun row -> (hot_key row, Mvcc.Value.int 0)) in
        let privates =
          List.concat
            (List.init n_replicas (fun replica_ix ->
                 List.concat
                   (List.init clients_per_replica (fun client ->
                        List.init private_rows_per_client (fun row ->
                            (private_key ~replica_ix ~client row, Mvcc.Value.int 0))))))
        in
        hot @ privates);
    new_tx =
      (fun ~rng ~client ~replica_ix ~n_replicas:_ ->
        let hot = hot_key (zipf_sample cdf (Rng.float rng)) in
        let bump = 1 + Rng.int rng 100 in
        let priv =
          private_key ~replica_ix ~client (Rng.int rng private_rows_per_client)
        in
        let priv_value = Rng.int rng 1_000_000 in
        {
          Spec.kind = Spec.Update;
          run =
            (fun ctx ->
              (if deltas then ctx.Spec.write hot (Mvcc.Writeset.Add bump)
               else
                 let current =
                   match ctx.Spec.read hot with
                   | Some v -> Mvcc.Value.as_int v
                   | None -> 0
                 in
                 ctx.Spec.write hot
                   (Mvcc.Writeset.Update (Mvcc.Value.int (current + bump))));
              ctx.Spec.write priv
                (Mvcc.Writeset.Update (Mvcc.Value.int priv_value)));
        });
  }

open Sim

let tellers_per_branch = 10

let branch_key b = Mvcc.Key.make ~table:"branch" ~row:(string_of_int b)
let teller_key b t = Mvcc.Key.make ~table:"teller" ~row:(Printf.sprintf "%d.%d" b t)

let account_key b a =
  Mvcc.Key.make ~table:"account" ~row:(Printf.sprintf "%d.%06d" b a)

let history_key ~replica_ix ~client n =
  Mvcc.Key.make ~table:"history" ~row:(Printf.sprintf "%d.%d.%d" replica_ix client n)

let history_payload = String.make 64 'h'

let profile ?(clients_per_replica = 10) ?(branches_per_replica = 10)
    ?(accounts_per_branch = 1_000) ?(remote_branch_fraction = 0.15)
    ?(deltas = false) () =
  let history_counters = Hashtbl.create 64 in
  let next_history ~replica_ix ~client =
    let key = (replica_ix, client) in
    let n = Option.value ~default:0 (Hashtbl.find_opt history_counters key) in
    Hashtbl.replace history_counters key (n + 1);
    n
  in
  {
    Spec.name = "tpcb";
    clients_per_replica;
    skew = 0.;
    think_time = Time.zero;
    exec_cpu = (fun _ -> Time.of_ms 4.0);
    page_read_miss = 0.06;
    page_writeback_per_op = 0.05;
    bg_page_writes_per_sec = 0.;
    db_size_bytes = 100_000_000;
    initial_rows =
      (fun ~n_replicas ->
        let n_branches = n_replicas * branches_per_replica in
        let branches =
          List.init n_branches (fun b -> (branch_key b, Mvcc.Value.int 0))
        in
        let tellers =
          List.concat
            (List.init n_branches (fun b ->
                 List.init tellers_per_branch (fun t ->
                     (teller_key b t, Mvcc.Value.int 0))))
        in
        let accounts =
          List.concat
            (List.init n_branches (fun b ->
                 List.init accounts_per_branch (fun a ->
                     (account_key b a, Mvcc.Value.int 1_000))))
        in
        branches @ tellers @ accounts);
    new_tx =
      (fun ~rng ~client ~replica_ix ~n_replicas ->
        (* Clients are spread over their replica's branches; a fraction of
           transactions hits a random branch anywhere in the system. *)
        let n_branches = n_replicas * branches_per_replica in
        let home = (replica_ix * branches_per_replica) + (client mod branches_per_replica) in
        let branch =
          if Rng.chance rng remote_branch_fraction then Rng.int rng n_branches else home
        in
        let teller = Rng.int rng tellers_per_branch in
        let account = Rng.int rng accounts_per_branch in
        let delta = Rng.int_in_range rng ~lo:(-99_999) ~hi:99_999 in
        let history = next_history ~replica_ix ~client in
        {
          Spec.kind = Spec.Update;
          run =
            (fun ctx ->
              let bump key =
                if deltas then
                  (* Balance updates are pure increments: ship them as
                     commutative deltas so concurrent bumps of the same
                     branch/teller row certify without conflicting. *)
                  ctx.Spec.write key (Mvcc.Writeset.Add delta)
                else
                  let current =
                    match ctx.Spec.read key with
                    | Some v -> Mvcc.Value.as_int v
                    | None -> 0
                  in
                  ctx.Spec.write key
                    (Mvcc.Writeset.Update (Mvcc.Value.int (current + delta)))
              in
              bump (account_key branch account);
              bump (teller_key branch teller);
              bump (branch_key branch);
              ctx.Spec.write
                (history_key ~replica_ix ~client history)
                (Mvcc.Writeset.Insert (Mvcc.Value.text history_payload)));
        });
  }

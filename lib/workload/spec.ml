type txctx = {
  read : Mvcc.Key.t -> Mvcc.Value.t option;
  write : Mvcc.Key.t -> Mvcc.Writeset.op -> unit;
  client_rng : Sim.Rng.t;
}

exception Tx_failed

type kind = Read_only | Update

type tx_body = { kind : kind; run : txctx -> unit }

type t = {
  name : string;
  clients_per_replica : int;
  skew : float;
  think_time : Sim.Time.t;
  exec_cpu : Sim.Rng.t -> Sim.Time.t;
  page_read_miss : float;
  page_writeback_per_op : float;
  bg_page_writes_per_sec : float;
  db_size_bytes : int;
  initial_rows : n_replicas:int -> (Mvcc.Key.t * Mvcc.Value.t) list;
  new_tx :
    rng:Sim.Rng.t -> client:int -> replica_ix:int -> n_replicas:int -> tx_body;
}

open Sim

module Collector = struct
  type t = {
    mutable enabled : bool;
    mutable n_committed : int;
    mutable n_update_committed : int;
    mutable n_aborted : int;
    update_latency : Stats.Histogram.t;
    ro_latency : Stats.Histogram.t;
  }

  let create () =
    {
      enabled = false;
      n_committed = 0;
      n_update_committed = 0;
      n_aborted = 0;
      update_latency = Stats.Histogram.create ();
      ro_latency = Stats.Histogram.create ();
    }

  let enable t = t.enabled <- true
  let disable t = t.enabled <- false

  let reset t =
    t.n_committed <- 0;
    t.n_update_committed <- 0;
    t.n_aborted <- 0;
    Stats.Histogram.reset t.update_latency;
    Stats.Histogram.reset t.ro_latency

  let record_commit t kind latency =
    if t.enabled then begin
      t.n_committed <- t.n_committed + 1;
      match kind with
      | Spec.Update ->
          t.n_update_committed <- t.n_update_committed + 1;
          Stats.Histogram.observe_time t.update_latency latency
      | Spec.Read_only -> Stats.Histogram.observe_time t.ro_latency latency
    end

  let record_abort t = if t.enabled then t.n_aborted <- t.n_aborted + 1
  let committed t = t.n_committed
  let update_committed t = t.n_update_committed
  let aborted t = t.n_aborted
  let mean_response_ms t = Stats.Histogram.mean t.update_latency /. 1_000.
  let mean_ro_response_ms t = Stats.Histogram.mean t.ro_latency /. 1_000.
  let p95_response_ms t = Stats.Histogram.percentile t.update_latency 0.95 /. 1_000.
  let p99_response_ms t = Stats.Histogram.percentile t.update_latency 0.99 /. 1_000.

  let goodput t ~window =
    let secs = Time.to_sec window in
    if secs <= 0. then 0. else float_of_int t.n_committed /. secs

  let throughput_all t ~window =
    let secs = Time.to_sec window in
    if secs <= 0. then 0. else float_of_int (t.n_committed + t.n_aborted) /. secs
end

(* Run one transaction body against executor callbacks; returns the kind on
   success, or None if the body failed locally. *)
let run_body body ~rng ~read ~write =
  let ctx =
    {
      Spec.read;
      write =
        (fun key op -> match write key op with Ok () -> () | Error _ -> raise Spec.Tx_failed);
      client_rng = rng;
    }
  in
  body.Spec.run ctx

let client_loop engine ~spec ~rng ~collector ~replica_ix ~n_replicas ~client
    ~begin_tx ~read ~write ~commit ~abort ~use_cpu =
  let rec loop () =
    if not (Time.is_zero spec.Spec.think_time) then
      Engine.sleep engine (Rng.time_exponential rng ~mean:spec.Spec.think_time);
    let body = spec.Spec.new_tx ~rng ~client ~replica_ix ~n_replicas in
    let started = Engine.now engine in
    let tx = begin_tx () in
    use_cpu (spec.Spec.exec_cpu rng);
    (match run_body body ~rng ~read:(read tx) ~write:(write tx) with
    | exception Spec.Tx_failed ->
        abort tx;
        Collector.record_abort collector
    | () -> (
        match commit tx with
        | Ok () ->
            Collector.record_commit collector body.Spec.kind
              (Time.diff (Engine.now engine) started)
        | Error _ -> Collector.record_abort collector));
    loop ()
  in
  loop ()

let spawn_replicated_clients engine ~replica ~spec ~rng ~collector ~replica_ix
    ~n_replicas =
  let module R = Tashkent.Replica in
  let module P = Tashkent.Proxy in
  let proxy = R.proxy replica in
  let spawn_one client =
    let client_rng = Rng.split rng in
    let fiber =
      Engine.spawn engine ~name:(Printf.sprintf "%s.client%d" (R.name replica) client)
        (fun () ->
          client_loop engine ~spec ~rng:client_rng ~collector ~replica_ix ~n_replicas
            ~client
            ~begin_tx:(fun () -> P.begin_tx proxy)
            ~read:(fun tx key -> P.read proxy tx key)
            ~write:(fun tx key op -> P.write proxy tx key op)
            ~commit:(fun tx ->
              match P.commit proxy tx with Ok () -> Ok () | Error e -> Error e)
            ~abort:(fun tx -> P.abort proxy tx)
            ~use_cpu:(fun cpu -> R.use_cpu replica cpu))
    in
    R.register_client replica fiber
  in
  let spawn_all () =
    for client = 0 to spec.Spec.clients_per_replica - 1 do
      spawn_one client
    done
  in
  spawn_all ();
  R.set_respawn_clients replica spawn_all

let spawn_session_clients engine ~replica ~spec ~rng ~collector ~replica_ix
    ~n_replicas =
  let module R = Tashkent.Replica in
  let module S = Tashkent.Session in
  let session = R.session replica in
  let spawn_one client =
    let client_rng = Rng.split rng in
    let fiber =
      Engine.spawn engine ~name:(Printf.sprintf "%s.client%d" (R.name replica) client)
        (fun () ->
          client_loop engine ~spec ~rng:client_rng ~collector ~replica_ix ~n_replicas
            ~client
            ~begin_tx:(fun () -> S.begin_tx session)
            ~read:(fun tx key -> S.read session tx key)
            ~write:(fun tx key op -> S.write session tx key op)
            ~commit:(fun tx ->
              match S.commit session tx with Ok () -> Ok () | Error e -> Error e)
            ~abort:(fun tx -> S.abort session tx)
            ~use_cpu:(fun cpu -> R.use_cpu replica cpu))
    in
    R.register_client replica fiber
  in
  let spawn_all () =
    for client = 0 to spec.Spec.clients_per_replica - 1 do
      spawn_one client
    done
  in
  spawn_all ();
  R.set_respawn_clients replica spawn_all

let spawn_standalone_clients engine ~db ~cpu ~spec ~rng ~collector =
  for client = 0 to spec.Spec.clients_per_replica - 1 do
    let client_rng = Rng.split rng in
    ignore
      (Engine.spawn engine ~name:(Printf.sprintf "standalone.client%d" client) (fun () ->
           client_loop engine ~spec ~rng:client_rng ~collector ~replica_ix:0
             ~n_replicas:1 ~client
             ~begin_tx:(fun () -> Mvcc.Db.begin_tx db)
             ~read:(fun tx key -> Mvcc.Db.read tx key)
             ~write:(fun tx key op -> Mvcc.Db.write tx key op)
             ~commit:(fun tx ->
               if Mvcc.Writeset.is_empty (Mvcc.Db.writeset tx) then begin
                 Mvcc.Db.commit_readonly tx;
                 Ok ()
               end
               else
                 match Mvcc.Db.commit_standalone tx with
                 | Ok _ -> Ok ()
                 | Error e -> Error e)
             ~abort:(fun tx -> Mvcc.Db.abort tx)
             ~use_cpu:(fun c -> Resource.use cpu c)))
  done

open Sim

let rows_per_client = 64

let key ~replica_ix ~client ~row =
  Mvcc.Key.make ~table:"au" ~row:(Printf.sprintf "%d.%d.%d" replica_ix client row)

let profile ?(clients_per_replica = 10) () =
  {
    Spec.name = "allupdates";
    clients_per_replica;
    skew = 0.;
    think_time = Time.zero;
    exec_cpu = (fun _ -> Time.of_ms 1.65);
    page_read_miss = 0.;
    page_writeback_per_op = 0.;
    bg_page_writes_per_sec = 12.;
    db_size_bytes = 30_000_000;
    initial_rows =
      (fun ~n_replicas ->
        List.concat
          (List.init n_replicas (fun replica_ix ->
               List.concat
                 (List.init clients_per_replica (fun client ->
                      List.init rows_per_client (fun row ->
                          (key ~replica_ix ~client ~row, Mvcc.Value.int 0)))))));
    new_tx =
      (fun ~rng ~client ~replica_ix ~n_replicas:_ ->
        let row1 = Rng.int rng rows_per_client in
        let row2 = (row1 + 1 + Rng.int rng (rows_per_client - 1)) mod rows_per_client in
        let value = Rng.int rng 1_000_000 in
        {
          Spec.kind = Spec.Update;
          run =
            (fun ctx ->
              ctx.Spec.write (key ~replica_ix ~client ~row:row1)
                (Mvcc.Writeset.Update (Mvcc.Value.int value));
              ctx.Spec.write (key ~replica_ix ~client ~row:row2)
                (Mvcc.Writeset.Update (Mvcc.Value.int (value + 1))));
        });
  }

(** AllUpdates restructured for partitioned certification: every
    transaction writes two rows, and each client owns a private pool of
    [rows_per_bucket] rows {e per key partition} (pools are carved out of
    the client's keyspace with the same FNV partitioner the cluster
    routes by, so a pool's rows certify entirely within one certifier
    group).

    Per transaction, a uniformly random {e home} partition is drawn; with
    probability [cross_ratio] the second row comes from a different
    partition — a cross-partition transaction that must commit atomically
    across two certifier groups — otherwise both rows are home-local and
    the transaction certifies with zero cross-group coordination. Like
    AllUpdates, clients never write each other's rows, so measured abort
    rates isolate the protocol (and, at [cross_ratio > 0], the
    cross-partition pin) rather than data contention.

    [cross_ratio = 0.] (the default) is the pure partition-local scaling
    workload: certified goodput should scale near-linearly with the
    number of certifier groups. *)

val profile :
  ?clients_per_replica:int ->
  ?exec_cpu:Sim.Time.t ->
  ?modulo_hosting:bool ->
  partitions:int ->
  ?cross_ratio:float ->
  unit ->
  Spec.t
(** [exec_cpu] is the per-transaction replica execution cost (default
    1.65 ms, the PostgreSQL calibration); the partition-scaling benchmark
    lowers it so the components partitioning actually shards — the
    certifier and the apply stream — sit on the critical path.

    [modulo_hosting] (default false) pins every transaction's home to
    partition [replica_ix mod partitions] and disables cross-partition
    draws, matching {!Tashkent.Cluster.Host_modulo} where each replica
    subscribes to exactly one partition.

    @raise Invalid_argument if [partitions < 1], [cross_ratio] is outside
    [[0, 1]], or [modulo_hosting] is combined with [cross_ratio > 0].
    [partitions] must equal the cluster's [n_partitions], or routing and
    pooling disagree. *)

val rows_per_bucket : int
(** Rows in each (client, partition) pool. *)

(** Workload descriptions, decoupled from what executes them (a replicated
    proxy or a standalone database). *)

(** The operations a transaction body may perform. [abort_requested] lets a
    body roll itself back (unused by the paper's benchmarks but part of a
    complete client API). *)
type txctx = {
  read : Mvcc.Key.t -> Mvcc.Value.t option;
  write : Mvcc.Key.t -> Mvcc.Writeset.op -> unit;
      (** raises {!Tx_failed} when the executor reports an abort *)
  client_rng : Sim.Rng.t;
}

exception Tx_failed

type kind = Read_only | Update

type tx_body = { kind : kind; run : txctx -> unit }

type t = {
  name : string;
  clients_per_replica : int;
  skew : float;
      (** Zipfian exponent θ of the workload's key-popularity distribution;
          0.0 for the uniform-access profiles. Purely descriptive for the
          harness — the profile's [new_tx] already bakes the skew in. *)
  think_time : Sim.Time.t;
  exec_cpu : Sim.Rng.t -> Sim.Time.t;
      (** CPU service demand of one transaction, drawn per transaction *)
  page_read_miss : float;
  page_writeback_per_op : float;
  bg_page_writes_per_sec : float;
  db_size_bytes : int;
  initial_rows : n_replicas:int -> (Mvcc.Key.t * Mvcc.Value.t) list;
  new_tx :
    rng:Sim.Rng.t -> client:int -> replica_ix:int -> n_replicas:int -> tx_body;
}

(* Command-line front end: run a single measured experiment, the recovery
   experiment, or a consistency stress check. *)

open Cmdliner

let system_conv =
  let parse = function
    | "base" -> Ok (Harness.Experiment.Replicated Tashkent.Types.Base)
    | "mw" | "tashkent-mw" -> Ok (Harness.Experiment.Replicated Tashkent.Types.Tashkent_mw)
    | "api" | "tashkent-api" ->
        Ok (Harness.Experiment.Replicated Tashkent.Types.Tashkent_api)
    | "api-nocert" ->
        Ok (Harness.Experiment.Replicated_nocert Tashkent.Types.Tashkent_api)
    | "standalone" -> Ok Harness.Experiment.Standalone
    | s -> Error (`Msg (Printf.sprintf "unknown system %S" s))
  in
  let print fmt s = Format.pp_print_string fmt (Harness.Experiment.system_name s) in
  Arg.conv (parse, print)

let workload_conv =
  let parse = function
    | "allupdates" -> Ok Harness.Experiment.All_updates
    | "tpcb" | "tpc-b" -> Ok Harness.Experiment.Tpc_b
    | "tpcw" | "tpc-w" -> Ok Harness.Experiment.Tpc_w
    | "hotkey" -> Ok Harness.Experiment.Hotkey
    | "partlocal" | "part-local" -> Ok Harness.Experiment.Part_local
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  let print fmt w = Format.pp_print_string fmt (Harness.Experiment.workload_name w) in
  Arg.conv (parse, print)

let io_conv =
  let parse = function
    | "shared" -> Ok Tashkent.Replica.Shared_io
    | "dedicated" -> Ok Tashkent.Replica.Dedicated_io
    | s -> Error (`Msg (Printf.sprintf "unknown io layout %S" s))
  in
  let print fmt = function
    | Tashkent.Replica.Shared_io -> Format.pp_print_string fmt "shared"
    | Tashkent.Replica.Dedicated_io -> Format.pp_print_string fmt "dedicated"
  in
  Arg.conv (parse, print)

let system_t =
  Arg.(
    value
    & opt system_conv (Harness.Experiment.Replicated Tashkent.Types.Tashkent_mw)
    & info [ "s"; "system" ] ~docv:"SYSTEM"
        ~doc:"System to run: base, mw, api, api-nocert, standalone.")

let workload_t =
  Arg.(
    value
    & opt workload_conv Harness.Experiment.All_updates
    & info [ "w"; "workload" ] ~docv:"WORKLOAD"
        ~doc:"allupdates, tpcb, tpcw, hotkey or partlocal.")

let io_t =
  Arg.(
    value
    & opt io_conv Tashkent.Replica.Shared_io
    & info [ "io" ] ~docv:"IO" ~doc:"Disk layout: shared or dedicated.")

let replicas_t =
  Arg.(value & opt int 3 & info [ "n"; "replicas" ] ~docv:"N" ~doc:"Database replicas.")

let certifiers_t =
  Arg.(
    value & opt int 3
    & info [ "certifiers" ] ~docv:"N"
        ~doc:"Certifier nodes (Paxos ring members per certifier group).")

let partitions_t =
  Arg.(
    value & opt int 1
    & info [ "partitions" ] ~docv:"N"
        ~doc:
          "Certifier groups. With more than one, the key space is sharded \
           by a static hash partitioner, each group certifies one shard on \
           its own Paxos ring and log, and clients run through the session \
           router so a transaction spanning groups commits atomically.")

let cross_ratio_t =
  Arg.(
    value & opt float 0.
    & info [ "cross-ratio" ] ~docv:"R"
        ~doc:
          "Fraction (0..1) of partlocal transactions that span two \
           partitions; the rest certify entirely within one certifier \
           group. Only meaningful with --workload partlocal and \
           --partitions > 1.")

let seconds_t =
  Arg.(value & opt float 10. & info [ "seconds" ] ~docv:"S" ~doc:"Measurement window.")

let abort_rate_t =
  Arg.(
    value & opt float 0. & info [ "abort-rate" ] ~docv:"R" ~doc:"Forced abort rate (0..1).")

let seed_t = Arg.(value & opt int 20060418 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let apply_workers_t =
  Arg.(
    value & opt int 1
    & info [ "apply-workers" ] ~docv:"W"
        ~doc:
          "Parallel applier fibers per replica. With more than one, \
           non-conflicting certified writesets apply concurrently behind a \
           dependency tracker; version visibility still advances in order.")

let deltas_t =
  Arg.(
    value & flag
    & info [ "deltas" ]
        ~doc:
          "Ship commutative increment (delta) ops where the workload supports \
           them (hotkey's hot-row bump, TPC-B's balance updates). Delta-delta \
           overlaps pass certification without conflicting; only a delta \
           against a blind write aborts.")

let skew_t =
  Arg.(
    value & opt float 0.99
    & info [ "skew" ] ~docv:"THETA"
        ~doc:"Zipfian exponent of the hotkey workload's key popularity.")

let gc_interval_t ~default =
  Arg.(
    value & opt float default
    & info [ "gc-interval" ] ~docv:"S"
        ~doc:
          "Replica vacuum period in seconds: old row versions below the \
           cluster GC watermark are pruned this often. 0 disables vacuuming \
           (the unbounded-growth baseline).")

let gc_interval_of_sec s = if s <= 0. then None else Some (Sim.Time.of_sec s)

let monitors_t =
  Arg.(
    value & flag
    & info [ "monitors" ]
        ~doc:
          "Attach the online protocol monitors (durability, serial order, \
           cross-partition atomicity, GC floor, progress) to the run; any \
           monitor violation is printed and makes the command exit 1.")

let no_monitors_t =
  Arg.(
    value & flag
    & info [ "no-monitors" ]
        ~doc:
          "Detach the online protocol monitors (they are on by default for \
           this command); for overhead comparison only.")

let run_cmd =
  let run system workload io n certifiers partitions cross_ratio seconds
      abort_rate seed apply_workers deltas skew gc_interval monitors =
    let cfg =
      {
        Harness.Experiment.system;
        io;
        n_replicas = n;
        n_certifiers = certifiers;
        n_partitions = partitions;
        hosting = Tashkent.Cluster.Host_all;
        cross_ratio;
        clients_per_replica = None;
        certify_cpu = None;
        part_exec_cpu = None;
        workload;
        deltas;
        hot_skew = skew;
        abort_rate;
        eager_precert = true;
        group_remote_batches = true;
        apply_workers;
        gc_interval = gc_interval_of_sec gc_interval;
        seed;
        warmup = Sim.Time.of_sec (Float.min 5. (seconds /. 2.));
        measure = Sim.Time.of_sec seconds;
        trace = false;
        monitors;
      }
    in
    let r = Harness.Experiment.run cfg in
    let open Harness.Report in
    kv "system" (Harness.Experiment.system_name system);
    kv "workload" (Harness.Experiment.workload_name workload);
    kv "replicas" (string_of_int n);
    (if partitions > 1 then begin
       kv "partitions" (string_of_int partitions);
       kv "cross-partition commits" (string_of_int r.cross_commits);
       kv "cross-partition aborts" (string_of_int r.cross_aborts)
     end);
    kv "throughput (committed+aborted req/s)" (f1 r.throughput);
    kv "goodput (committed req/s)" (f1 r.goodput);
    kv "update response time (ms)" (f1 r.resp_ms);
    kv "read-only response time (ms)" (f1 r.ro_resp_ms);
    kv "abort rate" (pct r.abort_rate_measured);
    kv "writesets per certifier fsync" (f1 r.cert_ws_per_fsync);
    kv "commit records per database fsync" (f1 r.db_ws_per_fsync);
    kv "artificial conflict rate" (pct r.artificial_conflict_pct);
    (if apply_workers > 1 then begin
       kv "mean apply parallelism" (f2 r.apply_parallelism);
       kv "apply stalls (conflicting items)" (string_of_int r.apply_stalls)
     end);
    kv "replica CPU utilization" (pct r.replica_cpu_util);
    kv "replica log-disk utilization" (pct r.replica_disk_util);
    kv "certifier CPU utilization" (pct r.cert_cpu_util);
    kv "certifier disk utilization" (pct r.cert_disk_util);
    if monitors then begin
      kv "monitor events" (string_of_int r.monitor_events);
      kv "monitor violations" (string_of_int (List.length r.monitor_violations));
      List.iter (fun v -> Printf.printf "  %s\n" v) r.monitor_violations;
      if r.monitor_violations <> [] then exit 1
    end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one measured experiment and print its metrics; with \
          --monitors, exits 1 on any online protocol-monitor violation.")
    Term.(
      const run $ system_t $ workload_t $ io_t $ replicas_t $ certifiers_t
      $ partitions_t $ cross_ratio_t $ seconds_t
      $ abort_rate_t $ seed_t $ apply_workers_t $ deltas_t $ skew_t
      $ gc_interval_t ~default:30. $ monitors_t)

let recovery_cmd =
  let run n seed =
    let r = Harness.Recovery_exp.run ~n_replicas:n ~seed () in
    let open Harness.Report in
    kv "update rate (writesets/s)" (f1 r.update_rate);
    kv "dump duration (s)" (f1 (Sim.Time.to_sec r.dump_duration));
    kv "throughput degradation during dump" (pct r.dump_degradation);
    kv "restore from dump (s)" (f1 (Sim.Time.to_sec r.mw_restore_duration));
    kv "replay rate (writesets/s)" (f1 r.replay_rate);
    kv "database-internal recovery (s)" (f1 (Sim.Time.to_sec r.db_recovery_duration));
    kv "certifier log growth (MB/hour)" (f1 (r.cert_log_bytes_per_hour /. 1.0e6));
    kv "certifier recovery after 60s down (s)"
      (f2 (Sim.Time.to_sec r.cert_recovery_duration))
  in
  Cmd.v
    (Cmd.info "recovery" ~doc:"Run the 9.6 recovery-time experiments.")
    Term.(const run $ replicas_t $ seed_t)

let consistency_cmd =
  let run n seconds seed =
    let spec = Workload.Allupdates.profile () in
    let cfg =
      Tashkent.Cluster.config ~n_replicas:n ~seed Tashkent.Types.Tashkent_api
    in
    let cluster = Tashkent.Cluster.create cfg in
    let engine = Tashkent.Cluster.engine cluster in
    Tashkent.Cluster.load_all cluster (spec.Workload.Spec.initial_rows ~n_replicas:n);
    Tashkent.Cluster.settle cluster;
    let collector = Workload.Driver.Collector.create () in
    let rng = Sim.Rng.create (seed + 1) in
    List.iteri
      (fun replica_ix replica ->
        Workload.Driver.spawn_replicated_clients engine ~replica ~spec
          ~rng:(Sim.Rng.split rng) ~collector ~replica_ix ~n_replicas:n)
      (Tashkent.Cluster.replicas cluster);
    Sim.Engine.run ~until:(Sim.Time.of_sec seconds) engine;
    match Tashkent.Cluster.check_consistency cluster with
    | Ok () ->
        Printf.printf "OK: %d commits, every replica is a consistent prefix\n"
          (Tashkent.Cluster.total_commits cluster)
    | Error msg ->
        Printf.printf "VIOLATION: %s\n" msg;
        exit 1
  in
  Cmd.v
    (Cmd.info "consistency" ~doc:"Stress the cluster and verify the GSI safety invariant.")
    Term.(const run $ replicas_t $ seconds_t $ seed_t)

let chaos_cmd =
  let run n certifiers partitions seconds seed plan_seed disk_faults
      fsync_stall_ms apply_workers deltas gc_interval no_monitors =
    let plan =
      match plan_seed with
      | None ->
          if disk_faults then Harness.Chaos_exp.Scripted_disk
          else Harness.Chaos_exp.Scripted
      | Some s -> Harness.Chaos_exp.Random s
    in
    let config =
      {
        (Harness.Chaos_exp.default_config ()) with
        n_replicas = n;
        n_certifiers = certifiers;
        n_partitions = partitions;
        duration = Sim.Time.of_sec seconds;
        seed;
        plan;
        disk_faults;
        fsync_stall = Sim.Time.of_ms fsync_stall_ms;
        apply_workers;
        deltas;
        gc_interval = gc_interval_of_sec gc_interval;
        monitors = not no_monitors;
      }
    in
    let r = Harness.Chaos_exp.run ~config () in
    Format.printf "%a@." Harness.Chaos_exp.pp_result r;
    if r.violations <> [] || r.monitor_violations <> [] then exit 1
  in
  let plan_seed_t =
    Arg.(
      value
      & opt (some int) None
      & info [ "plan-seed" ] ~docv:"SEED"
          ~doc:
            "Generate a random fault plan from this seed instead of the scripted \
             acceptance scenario.")
  in
  let seconds_t =
    Arg.(
      value & opt float 20.
      & info [ "seconds" ] ~docv:"S" ~doc:"Simulated run length (the plan spans it).")
  in
  let disk_faults_t =
    Arg.(
      value & flag
      & info [ "disk-faults" ]
          ~doc:
            "Inject storage faults too: fsync stalls, degraded disks, and \
             torn/corrupt WAL tails. With a random plan this extends it; without \
             one it selects the scripted storage-fault scenario.")
  in
  let fsync_stall_t =
    Arg.(
      value & opt float 600.
      & info [ "fsync-stall-ms" ] ~docv:"MS"
          ~doc:
            "Extra per-op disk latency injected by random-plan stalls; above the \
             certifiers' fsync deadline this forces a degraded-disk failover.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Run TPC-B under a fault plan (leader crashes, partitions, loss bursts, and \
          optionally storage faults) and verify the GSI and durability invariants \
          after every heal, with the online protocol monitors attached; exits 1 \
          on any checkpoint or monitor violation.")
    Term.(
      const run $ replicas_t $ certifiers_t $ partitions_t $ seconds_t $ seed_t
      $ plan_seed_t $ disk_faults_t $ fsync_stall_t $ apply_workers_t $ deltas_t
      $ gc_interval_t ~default:5. $ no_monitors_t)

let soak_cmd =
  let run n certifiers partitions seconds window seed gc_interval no_chaos
      chaos_period skew deltas no_monitors =
    let config =
      {
        (Harness.Soak_exp.default_config ()) with
        n_replicas = n;
        n_certifiers = certifiers;
        n_partitions = partitions;
        duration = Sim.Time.of_sec seconds;
        window = Sim.Time.of_sec window;
        seed;
        gc_interval = gc_interval_of_sec gc_interval;
        chaos = not no_chaos;
        chaos_period = Sim.Time.of_sec chaos_period;
        skew;
        deltas;
        monitors = not no_monitors;
      }
    in
    let r = Harness.Soak_exp.run ~config () in
    Format.printf "%a@." Harness.Soak_exp.pp_result r;
    if r.violations <> [] || r.monitor_violations <> [] then exit 1
  in
  let seconds_t =
    Arg.(
      value & opt float 600.
      & info [ "seconds" ] ~docv:"S" ~doc:"Simulated run length.")
  in
  let window_t =
    Arg.(
      value & opt float 30.
      & info [ "window" ] ~docv:"S" ~doc:"Gauge-sampling window.")
  in
  let no_chaos_t =
    Arg.(
      value & flag
      & info [ "no-chaos" ]
          ~doc:"Disable the periodic leader/replica crash plan.")
  in
  let chaos_period_t =
    Arg.(
      value & opt float 120.
      & info [ "chaos-period" ] ~docv:"S"
          ~doc:
            "One fault every this often, alternating a short leader crash \
             with a replica outage longer than the watermark TTL (so its \
             recovery needs a snapshot transfer).")
  in
  let deltas_t =
    Arg.(
      value & opt bool true
      & info [ "deltas" ] ~docv:"BOOL"
          ~doc:"Ship hot-row increments as commutative deltas.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run sustained Zipfian delta traffic with GC active (and periodic \
          chaos), sample version/log-growth gauges per window, and assert \
          they stay bounded and latency stays flat, with the online protocol \
          monitors attached; exits 1 on any violation.")
    Term.(
      const run $ replicas_t $ certifiers_t $ partitions_t $ seconds_t
      $ window_t $ seed_t
      $ gc_interval_t ~default:5. $ no_chaos_t $ chaos_period_t $ skew_t
      $ deltas_t $ no_monitors_t)

let explore_cmd =
  let run n certifiers partitions seconds seed first_seed n_seeds batch
      no_targeted no_shrink max_shrink_runs max_repros disk_faults =
    let config =
      {
        Harness.Explore_exp.base =
          {
            (Harness.Chaos_exp.default_config ()) with
            n_replicas = n;
            n_certifiers = certifiers;
            n_partitions = partitions;
            duration = Sim.Time.of_sec seconds;
            seed;
            disk_faults;
          };
        first_seed;
        n_seeds;
        batch;
        targeted = not no_targeted;
        shrink = not no_shrink;
        max_shrink_runs;
        max_repros;
      }
    in
    let r =
      Harness.Explore_exp.run
        ~on_progress:(fun line -> Format.printf "%s@." line)
        config
    in
    Format.printf "%a@." Harness.Explore_exp.pp_result r;
    if r.repros <> [] then exit 1
  in
  let seconds_t =
    Arg.(
      value & opt float 20.
      & info [ "seconds" ] ~docv:"S" ~doc:"Simulated length of each schedule.")
  in
  let first_seed_t =
    Arg.(
      value & opt int 1
      & info [ "first-seed" ] ~docv:"SEED" ~doc:"First plan seed of the sweep.")
  in
  let n_seeds_t =
    Arg.(
      value & opt int 8
      & info [ "seeds" ] ~docv:"N"
          ~doc:
            "Plan seeds to sweep; each yields a random schedule and (unless \
             $(b,--no-targeted)) a targeted message-tap schedule.")
  in
  let batch_t =
    Arg.(
      value & opt int 4
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Schedules run concurrently (one domain each). Batching changes \
             wall-clock time only; results are deterministic either way.")
  in
  let no_targeted_t =
    Arg.(
      value & flag
      & info [ "no-targeted" ]
          ~doc:
            "Sweep only random plans; skip the targeted schedules (precise \
             message delays/drops and announce-instant crashes).")
  in
  let no_shrink_t =
    Arg.(
      value & flag
      & info [ "no-shrink" ]
          ~doc:"Report violating schedules with their full plans, unshrunk.")
  in
  let max_shrink_runs_t =
    Arg.(
      value & opt int 48
      & info [ "max-shrink-runs" ] ~docv:"N"
          ~doc:"Chaos-run budget per shrink.")
  in
  let max_repros_t =
    Arg.(
      value & opt int 3
      & info [ "max-repros" ] ~docv:"N"
          ~doc:"Stop shrinking after this many distinct repros.")
  in
  let disk_faults_t =
    Arg.(
      value & flag
      & info [ "disk-faults" ]
          ~doc:"Extend the random schedules with storage faults.")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Sweep fault-plan seeds in parallel batches — random schedules plus \
          targeted message-level reorderings (delay the decisive Paxos ack, \
          drop the Nth certifier reply or cross-partition vote, crash a \
          certifier at its announce instant) — with the online protocol \
          monitors attached, and shrink any violating schedule to a minimal \
          explicit plan suitable as a CI regression; exits 1 if any schedule \
          violates.")
    Term.(
      const run $ replicas_t $ certifiers_t $ partitions_t $ seconds_t $ seed_t
      $ first_seed_t $ n_seeds_t $ batch_t $ no_targeted_t $ no_shrink_t
      $ max_shrink_runs_t $ max_repros_t $ disk_faults_t)

let trace_cmd =
  let mode_conv =
    let parse = function
      | "base" -> Ok Tashkent.Types.Base
      | "mw" | "tashkent-mw" -> Ok Tashkent.Types.Tashkent_mw
      | "api" | "tashkent-api" -> Ok Tashkent.Types.Tashkent_api
      | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
    in
    let print fmt m = Format.pp_print_string fmt (Tashkent.Types.mode_name m) in
    Arg.conv (parse, print)
  in
  let run mode n certifiers seconds seed output check =
    let spec = Workload.Tpcb.profile () in
    let engine = Sim.Engine.create () in
    let trace = Obs.Trace.create engine in
    let cluster =
      Tashkent.Cluster.create ~engine ~trace
        (Tashkent.Cluster.config ~n_replicas:n ~n_certifiers:certifiers ~seed mode)
    in
    Tashkent.Cluster.load_all cluster (spec.Workload.Spec.initial_rows ~n_replicas:n);
    Tashkent.Cluster.settle cluster;
    let collector = Workload.Driver.Collector.create () in
    let rng = Sim.Rng.create (seed + 1) in
    List.iteri
      (fun replica_ix replica ->
        Workload.Driver.spawn_replicated_clients engine ~replica ~spec
          ~rng:(Sim.Rng.split rng) ~collector ~replica_ix ~n_replicas:n)
      (Tashkent.Cluster.replicas cluster);
    Sim.Engine.run
      ~until:(Sim.Time.add (Sim.Engine.now engine) (Sim.Time.of_sec seconds))
      engine;
    let json = Obs.Trace.to_chrome_json trace in
    let oc = open_out output in
    output_string oc json;
    close_out oc;
    let open Harness.Report in
    kv "mode" (Tashkent.Types.mode_name mode);
    kv "spans recorded" (string_of_int (Obs.Trace.recorded trace));
    kv "spans retained" (string_of_int (List.length (Obs.Trace.events trace)));
    kv "spans dropped (ring wrap)" (string_of_int (Obs.Trace.dropped trace));
    kv "trace file" output;
    List.iter
      (fun (stage, (s : Obs.Trace.stage_stats)) ->
        kv
          (Printf.sprintf "%-16s n=%d" stage s.count)
          (Printf.sprintf "p50 %.0f µs  p95 %.0f µs  p99 %.0f µs" s.p50_us s.p95_us
             s.p99_us))
      (Obs.Trace.all_stage_stats trace);
    if check then begin
      let events = Obs.Trace.events trace in
      let problems = ref [] in
      let add fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
      if events = [] then add "no spans recorded";
      List.iter
        (fun (e : Obs.Trace.event) ->
          if Sim.Time.(e.finished < e.started) then
            add "span %s/%d finishes before it starts" e.stage e.id)
        events;
      let stages = Obs.Trace.stages trace in
      List.iter
        (fun required ->
          if not (List.mem required stages) then add "missing stage %S" required)
        [ "txn.commit"; "certify"; "durability" ];
      if not (String.length json > 0 && json.[0] = '{') then
        add "trace JSON does not start with an object";
      match List.rev !problems with
      | [] -> print_endline "trace check OK"
      | ps ->
          List.iter (fun p -> Printf.printf "trace check FAILED: %s\n" p) ps;
          exit 1
    end
  in
  let mode_t =
    Arg.(
      value
      & opt mode_conv Tashkent.Types.Tashkent_mw
      & info [ "m"; "mode" ] ~docv:"MODE" ~doc:"base, mw or api.")
  in
  let seconds_t =
    Arg.(
      value & opt float 5.
      & info [ "seconds" ] ~docv:"S" ~doc:"Simulated run length to trace.")
  in
  let output_t =
    Arg.(
      value & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Where to write the Chrome trace_event JSON.")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the recorded trace (spans present, sim-clock ordering, key \
             lifecycle stages) and exit 1 on failure.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run TPC-B with the transaction-lifecycle tracer on, write Chrome \
          trace_event JSON (load in chrome://tracing or Perfetto), and print \
          per-stage latency percentiles.")
    Term.(
      const run $ mode_t $ replicas_t $ certifiers_t $ seconds_t $ seed_t $ output_t
      $ check_t)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "tashkent-cli" ~version:"1.0.0"
             ~doc:"Tashkent (EuroSys 2006) reproduction toolkit")
          [
            run_cmd;
            recovery_cmd;
            consistency_cmd;
            chaos_cmd;
            soak_cmd;
            explore_cmd;
            trace_cmd;
          ]))

(* Partitioned certification: the key partitioner, the per-replica
   session router, cross-partition atomic commit/abort, equivalence of a
   1-partition cluster with the legacy path, and partial replication
   (Host_modulo) consistency. *)

open Sim
open Tashkent

let k table row = Mvcc.Key.make ~table ~row
let vi n = Mvcc.Value.int n
let upd n = Mvcc.Writeset.Update (vi n)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Partitioner units *)

let test_partitioner_stable () =
  let p4 = Partitioner.create ~parts:4 in
  let key = k "item" "42" in
  check_int "same key, same partition" (Partitioner.of_key p4 key)
    (Partitioner.of_key p4 key);
  (* The map is a function of the key bytes only: a fresh partitioner
     agrees with the first. *)
  check_int "fresh partitioner agrees"
    (Partitioner.of_key p4 key)
    (Partitioner.of_key (Partitioner.create ~parts:4) key);
  let p1 = Partitioner.create ~parts:1 in
  check_int "one partition maps everything to 0" 0 (Partitioner.of_key p1 key);
  for i = 0 to 199 do
    let part = Partitioner.of_key p4 (k "item" (string_of_int i)) in
    check_bool "in range" true (part >= 0 && part < 4)
  done;
  (* All four partitions are actually populated by a small row range. *)
  let seen = Array.make 4 false in
  for i = 0 to 199 do
    seen.(Partitioner.of_key p4 (k "item" (string_of_int i))) <- true
  done;
  Array.iteri (fun i hit -> check_bool (Printf.sprintf "p%d hit" i) true hit) seen

let test_partitioner_split () =
  let p = Partitioner.create ~parts:3 in
  let ws =
    Mvcc.Writeset.of_list
      (List.init 30 (fun i -> (k "item" (string_of_int i), upd i)))
  in
  let frags = Partitioner.split p ws in
  (* Fragments are disjoint, partition-pure, and together carry every
     entry of the original writeset. *)
  let total = List.fold_left (fun acc (_, f) -> acc + Mvcc.Writeset.cardinal f) 0 frags in
  check_int "no entry lost or duplicated" (Mvcc.Writeset.cardinal ws) total;
  List.iter
    (fun (part, frag) ->
      Mvcc.Writeset.iter_keys frag (fun key ->
          check_int "entry routed to its own partition" part (Partitioner.of_key p key)))
    frags;
  (* parts = 1 splits to the identity. *)
  match Partitioner.split (Partitioner.create ~parts:1) ws with
  | [ (0, same) ] -> check_int "identity" (Mvcc.Writeset.cardinal ws) (Mvcc.Writeset.cardinal same)
  | _ -> Alcotest.fail "parts=1 must yield a single fragment for partition 0"

(* ------------------------------------------------------------------ *)
(* Cluster helpers *)

(* A row from [item] that lives in [part] under a [parts]-way split. *)
let key_in ~parts part =
  let p = Partitioner.create ~parts in
  let rec find i =
    if i > 10_000 then failwith "no row found for partition"
    else
      let key = k "item" (string_of_int i) in
      if Partitioner.of_key p key = part then key else find (i + 1)
  in
  find 0

(* Distinct rows of one partition. *)
let keys_in ~parts part n =
  let p = Partitioner.create ~parts in
  let rec collect i acc remaining =
    if remaining = 0 then List.rev acc
    else
      let key = k "item" (string_of_int i) in
      if Partitioner.of_key p key = part then collect (i + 1) (key :: acc) (remaining - 1)
      else collect (i + 1) acc remaining
  in
  collect 0 [] n

let quick_replica mode =
  {
    (Replica.default_config mode) with
    Replica.exec_cpu = Time.us 200;
    staleness_bound = Some (Time.of_ms 200.);
  }

let make_cluster ?(mode = Types.Tashkent_mw) ?(n_replicas = 2) ?(n_partitions = 2)
    ?(hosting = Cluster.Host_all) ?(seed = 7) () =
  let cfg =
    {
      Cluster.mode;
      n_replicas;
      n_certifiers = 3;
      n_partitions;
      hosting;
      certifier = Certifier.default_config;
      replica = quick_replica mode;
      seed;
    }
  in
  let c = Cluster.create cfg in
  let rows =
    List.init 64 (fun i -> (k "item" (string_of_int i), vi 0))
  in
  Cluster.load_all c rows;
  Cluster.settle c;
  c

let run_for c span =
  Engine.run ~until:(Time.add (Engine.now (Cluster.engine c)) span) (Cluster.engine c)

(* Run one transaction through replica [i]'s session; store the outcome. *)
let submit_session_tx c i ~writes outcome =
  let r = Cluster.replica c i in
  let s = Replica.session r in
  ignore
    (Engine.spawn (Cluster.engine c) ~name:"client" (fun () ->
         let tx = Session.begin_tx s in
         Replica.use_cpu r (Replica.config r).Replica.exec_cpu;
         let rec go = function
           | [] -> outcome := Some (Session.commit s tx)
           | (key, v) :: rest -> (
               match Session.write s tx key (upd v) with
               | Error f ->
                   Session.abort s tx;
                   outcome := Some (Error f)
               | Ok () -> go rest)
         in
         go writes))

let expect_commit msg = function
  | Some (Ok ()) -> ()
  | Some (Error f) ->
      Alcotest.fail (Format.asprintf "%s: failed: %a" msg Proxy.pp_failure f)
  | None -> Alcotest.fail (msg ^ ": transaction never finished")

let expect_cert_abort msg = function
  | Some (Error (Proxy.Cert_abort _)) -> ()
  | Some (Ok ()) -> Alcotest.fail (msg ^ ": committed, expected a certification abort")
  | Some (Error f) ->
      Alcotest.fail (Format.asprintf "%s: wrong failure: %a" msg Proxy.pp_failure f)
  | None -> Alcotest.fail (msg ^ ": transaction never finished")

let check_all_invariants c =
  (match Cluster.check_consistency c with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("inconsistent: " ^ m));
  (match Cluster.check_log_invariants c with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("log invariants: " ^ m));
  match Cluster.check_cross_atomicity c with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("cross atomicity: " ^ m)

let committed_value c i key =
  let r = Cluster.replica c i in
  let part = Partitioner.of_key (Cluster.partitioner c) key in
  match Replica.db_of r ~part with
  | None -> Alcotest.fail (Replica.name r ^ " does not host the key's partition")
  | Some db -> (
      match Mvcc.Db.read_committed db key with
      | Some v -> Mvcc.Value.as_int v
      | None -> -1)

(* ------------------------------------------------------------------ *)
(* Single-partition equivalence with the legacy path *)

let test_one_partition_matches_legacy () =
  (* The same seed must produce the same history whether transactions go
     through Session (partition-aware) or straight at the proxy (legacy):
     with one partition the session is a transparent shim. *)
  let history via =
    let c = make_cluster ~n_partitions:1 ~n_replicas:2 ~seed:11 () in
    let outcomes = List.init 8 (fun _ -> ref None) in
    List.iteri
      (fun n o ->
        let i = n mod 2 in
        let key = k "item" (string_of_int (n mod 4)) in
        match via with
        | `Session -> submit_session_tx c i ~writes:[ (key, 100 + n) ] o
        | `Proxy ->
            let r = Cluster.replica c i in
            let p = Replica.proxy r in
            ignore
              (Engine.spawn (Cluster.engine c) ~name:"client" (fun () ->
                   let tx = Proxy.begin_tx p in
                   Replica.use_cpu r (Replica.config r).Replica.exec_cpu;
                   match Proxy.write p tx key (upd (100 + n)) with
                   | Error f ->
                       Proxy.abort p tx;
                       o := Some (Error f)
                   | Ok () -> o := Some (Proxy.commit p tx))))
      outcomes;
    run_for c (Time.sec 3);
    check_all_invariants c;
    let final = List.init 4 (fun n -> committed_value c 0 (k "item" (string_of_int n))) in
    let oks =
      List.length
        (List.filter (fun o -> match !o with Some (Ok ()) -> true | _ -> false) outcomes)
    in
    (oks, final, Cluster.total_commits c)
  in
  let s_oks, s_final, s_total = history `Session
  and p_oks, p_final, p_total = history `Proxy in
  check_int "same commit count" p_oks s_oks;
  check_int "same cluster total" p_total s_total;
  List.iteri
    (fun n (a, b) -> check_int (Printf.sprintf "same final value %d" n) a b)
    (List.combine p_final s_final)

(* ------------------------------------------------------------------ *)
(* Cross-partition commit and abort *)

let test_cross_partition_commit () =
  let c = make_cluster () in
  let ka = key_in ~parts:2 0 and kb = key_in ~parts:2 1 in
  let o = ref None in
  submit_session_tx c 0 ~writes:[ (ka, 7); (kb, 8) ] o;
  run_for c (Time.sec 3);
  expect_commit "cross tx" !o;
  (* Both fragments installed, on every replica (staleness bound). *)
  List.iteri
    (fun i _ ->
      check_int (Printf.sprintf "replica%d p0 value" i) 7 (committed_value c i ka);
      check_int (Printf.sprintf "replica%d p1 value" i) 8 (committed_value c i kb))
    (Cluster.replicas c);
  (* Both groups hold a committed outcome witness and an xa-stamped entry. *)
  let stats =
    List.concat_map (fun (_, g) -> List.map Certifier.stats g) (Cluster.certifier_groups c)
  in
  check_bool "prepared records delivered" true
    (List.exists (fun (s : Certifier.stats) -> s.xprepares > 0) stats);
  check_bool "fragments committed" true
    (List.exists (fun (s : Certifier.stats) -> s.xcommits > 0) stats);
  let session_stats = Session.stats (Replica.session (Cluster.replica c 0)) in
  check_int "session counted one cross commit" 1 session_stats.Session.cross_commits;
  check_all_invariants c

let test_cross_partition_atomic_abort () =
  let c = make_cluster () in
  let ka = key_in ~parts:2 0 and kb = key_in ~parts:2 1 in
  (* First settle a committed value in both partitions. *)
  let o0 = ref None in
  submit_session_tx c 0 ~writes:[ (ka, 1); (kb, 1) ] o0;
  run_for c (Time.sec 2);
  expect_commit "setup tx" !o0;
  (* Two concurrent sessions race on partition 0's key while also writing
     partition 1: certification must abort one in BOTH partitions. *)
  let o1 = ref None and o2 = ref None in
  let kb2 = List.nth (keys_in ~parts:2 1 2) 1 in
  submit_session_tx c 0 ~writes:[ (ka, 10); (kb, 10) ] o1;
  submit_session_tx c 1 ~writes:[ (ka, 20); (kb2, 20) ] o2;
  run_for c (Time.sec 3);
  let outcomes = [ !o1; !o2 ] in
  let oks = List.filter (function Some (Ok ()) -> true | _ -> false) outcomes in
  let aborts =
    List.filter (function Some (Error (Proxy.Cert_abort _)) -> true | _ -> false) outcomes
  in
  check_int "exactly one winner" 1 (List.length oks);
  check_int "exactly one certification abort" 1 (List.length aborts);
  (* The loser's partition-1 fragment must NOT have committed: the value
     of its partition-1 key is whatever the winner (or setup) wrote. *)
  (if !o1 = None then Alcotest.fail "tx1 never finished");
  (match (!o1, !o2) with
  | Some (Ok ()), _ ->
      check_int "winner's p0 write" 10 (committed_value c 0 ka);
      check_int "winner's p1 write" 10 (committed_value c 0 kb);
      check_int "loser's p1 key untouched" 0 (committed_value c 0 kb2)
  | _, Some (Ok ()) ->
      check_int "winner's p0 write" 20 (committed_value c 0 ka);
      check_int "winner's p1 write" 20 (committed_value c 0 kb2);
      check_int "loser's p1 key untouched" 1 (committed_value c 0 kb)
  | _ -> Alcotest.fail "no transaction won the race");
  check_all_invariants c

let test_cross_partition_vs_local_conflict () =
  (* A cross-partition transaction racing a partition-local one on the
     same key: exactly one commits, and if the cross one loses, none of
     its fragments land. *)
  let c = make_cluster ~seed:13 () in
  let ka = key_in ~parts:2 0 and kb = key_in ~parts:2 1 in
  let ox = ref None and ol = ref None in
  submit_session_tx c 0 ~writes:[ (ka, 30); (kb, 30) ] ox;
  submit_session_tx c 1 ~writes:[ (ka, 40) ] ol;
  run_for c (Time.sec 3);
  let ok o = match !o with Some (Ok ()) -> true | _ -> false in
  check_int "exactly one winner" 1
    (List.length (List.filter Fun.id [ ok ox; ok ol ]));
  if ok ol then begin
    check_int "local winner's value" 40 (committed_value c 0 ka);
    check_int "cross loser left p1 untouched" 0 (committed_value c 0 kb)
  end
  else begin
    check_int "cross winner p0" 30 (committed_value c 0 ka);
    check_int "cross winner p1" 30 (committed_value c 0 kb)
  end;
  check_all_invariants c

(* ------------------------------------------------------------------ *)
(* Crash-tolerance of the cross-partition protocol *)

let test_cross_atomicity_under_group_crash () =
  (* Sustained cross-partition traffic while one group's leader
     crash-stops and later recovers: every acknowledged cross commit must
     stay atomic, and the logs must heal to the usual invariants. *)
  let c = make_cluster ~seed:21 () in
  let engine = Cluster.engine c in
  let keys0 = keys_in ~parts:2 0 8 and keys1 = keys_in ~parts:2 1 8 in
  let outcomes = ref [] in
  let spawn_client i =
    let r = Cluster.replica c i in
    let s = Replica.session r in
    ignore
      (Engine.spawn engine ~name:(Printf.sprintf "xclient%d" i) (fun () ->
           for n = 0 to 39 do
             let o = ref None in
             outcomes := o :: !outcomes;
             let ka = List.nth keys0 ((n + i) mod 8)
             and kb = List.nth keys1 ((n + (3 * i)) mod 8) in
             let tx = Session.begin_tx s in
             Replica.use_cpu r (Replica.config r).Replica.exec_cpu;
             (match Session.write s tx ka (upd n) with
             | Error f -> Session.abort s tx; o := Some (Error f)
             | Ok () -> (
                 match Session.write s tx kb (upd n) with
                 | Error f -> Session.abort s tx; o := Some (Error f)
                 | Ok () -> o := Some (Session.commit s tx)));
             Engine.sleep engine (Time.of_ms 40.)
           done))
  in
  spawn_client 0;
  spawn_client 1;
  (* Crash group 1's leader mid-run; recover it two seconds later. *)
  Engine.schedule_after engine (Time.of_ms 500.) (fun () ->
      match Cluster.group_leader c ~part:1 with
      | Some cert -> Certifier.crash cert
      | None -> ());
  let crashed () =
    List.filter (fun cert -> not (Certifier.is_up cert)) (Cluster.group c ~part:1)
  in
  Engine.schedule_after engine (Time.sec 2) (fun () ->
      List.iter Certifier.recover (crashed ()));
  run_for c (Time.sec 8);
  (* Liveness: the surviving majority keeps certifying. *)
  let finished =
    List.length (List.filter (fun o -> !o <> None) !outcomes)
  in
  check_bool "most transactions finished" true (finished >= 60);
  let committed =
    List.length
      (List.filter (fun o -> match !o with Some (Ok ()) -> true | _ -> false) !outcomes)
  in
  check_bool "commits continued despite the crash" true (committed >= 20);
  check_all_invariants c

(* ------------------------------------------------------------------ *)
(* Partial replication *)

let test_host_modulo_partition_local () =
  (* Two partitions, two replicas, each hosting exactly one partition.
     Replica i only ever touches its own partition; every replica's data
     must match its group's log, and neither replica ever stores the
     other partition's rows. *)
  let c = make_cluster ~hosting:Cluster.Host_modulo ~seed:5 () in
  let outcomes = List.init 12 (fun _ -> ref None) in
  List.iteri
    (fun n o ->
      let i = n mod 2 in
      let key = List.nth (keys_in ~parts:2 i 6) (n / 2) in
      submit_session_tx c i ~writes:[ (key, 200 + n) ] o)
    outcomes;
  run_for c (Time.sec 3);
  List.iteri (fun n o -> expect_commit (Printf.sprintf "tx%d" n) !o) outcomes;
  (* Hosting is really partial. *)
  List.iteri
    (fun i r ->
      Alcotest.(check (list int))
        (Printf.sprintf "replica%d subscriptions" i)
        [ i mod 2 ] (Replica.partitions r))
    (Cluster.replicas c);
  check_all_invariants c

let suites =
  [
    ( "partition.unit",
      [
        Alcotest.test_case "partitioner stable map" `Quick test_partitioner_stable;
        Alcotest.test_case "writeset split" `Quick test_partitioner_split;
      ] );
    ( "partition.cluster",
      [
        Alcotest.test_case "1 partition matches legacy path" `Quick
          test_one_partition_matches_legacy;
        Alcotest.test_case "cross-partition commit" `Quick test_cross_partition_commit;
        Alcotest.test_case "cross-partition atomic abort" `Quick
          test_cross_partition_atomic_abort;
        Alcotest.test_case "cross vs local conflict" `Quick
          test_cross_partition_vs_local_conflict;
        Alcotest.test_case "atomicity under group crash" `Quick
          test_cross_atomicity_under_group_crash;
        Alcotest.test_case "Host_modulo partial replication" `Quick
          test_host_modulo_partition_local;
      ] );
  ]

(* Tests of the batched certification pipeline: batch formation at the
   certify fiber, intra-batch conflict detection against the overlay, and
   retry idempotency across a leadership change. *)

open Sim
open Tashkent

let k row = Mvcc.Key.make ~table:"t" ~row
let upd n = Mvcc.Writeset.Update (Mvcc.Value.int n)
let ws1 row n = Mvcc.Writeset.singleton (k row) (upd n)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type cluster = {
  engine : Engine.t;
  net : Types.message Net.Network.t;
  certs : (string * Certifier.t) list;
  client_mb : Types.message Mailbox.t;
}

(* A bare certifier group (no replicas/proxies) on a ZERO-JITTER network:
   equal-size messages sent at the same instant arrive at the same instant,
   so the pump drains all of them into the certify fiber's work queue
   before its zero-delay wakeup runs — the batch forms deterministically. *)
let make_certs ?(n = 3) ?(seed = 11) () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let config =
    { Net.Network.default_lan with latency_lo = Time.us 50; latency_hi = Time.us 50 }
  in
  let net = Net.Network.create engine ~rng:(Rng.split rng) ~config () in
  let env =
    Env.make ~engine ~rng ~net ~metrics:(Obs.Registry.create ())
      ~trace:(Obs.Trace.disabled ()) ()
  in
  let ids = List.init n (fun i -> Printf.sprintf "c%d" i) in
  let certs =
    List.map
      (fun id ->
        (id, Certifier.create env ~id ~peers:(List.filter (fun p -> p <> id) ids) ()))
      ids
  in
  let client_mb = Net.Network.register net "client" in
  { engine; net; certs; client_mb }

let run_for c span = Engine.run ~until:(Time.add (Engine.now c.engine) span) c.engine

let the_leader c =
  match
    List.filter (fun (_, ct) -> Certifier.is_up ct && Certifier.is_leader ct) c.certs
  with
  | [ pair ] -> pair
  | [] -> Alcotest.fail "no certifier leader"
  | _ -> Alcotest.fail "multiple certifier leaders"

let request c ~dst ~req_id ~row ~value ~at_version =
  let msg =
    Types.Cert_request
      {
        req_id;
        trace_id = 0;
        replica = "client";
        start_version = at_version;
        replica_version = at_version;
        oldest_snapshot = at_version;
        writeset = ws1 row value;
      }
  in
  Net.Network.send c.net ~src:"client" ~dst ~size:(Types.message_bytes msg) msg

let drain_replies c =
  let rec loop acc =
    match Mailbox.try_recv c.client_mb with
    | Some (Types.Cert_reply r) -> loop (r :: acc)
    | Some _ -> loop acc
    | None -> List.rev acc
  in
  loop []

(* k requests sent at the same instant form ONE certification batch: one
   multi-entry Accept broadcast, one WAL batch-append, and (absent other
   traffic) one fsync on the leader's log for the whole batch. *)
let test_one_broadcast_per_batch () =
  let c = make_certs () in
  run_for c (Time.sec 2);
  let leader_id, leader = the_leader c in
  Certifier.reset_stats leader;
  let kreq = 8 in
  for i = 1 to kreq do
    request c ~dst:leader_id ~req_id:i ~row:(Printf.sprintf "a%d" i) ~value:i
      ~at_version:0
  done;
  run_for c (Time.sec 1);
  let replies = drain_replies c in
  check_int "every request answered" kreq (List.length replies);
  List.iter
    (fun (r : Types.cert_reply) ->
      check_bool "committed" true (r.decision = Types.Commit))
    replies;
  let versions = List.sort compare (List.map (fun (r : Types.cert_reply) -> r.commit_version) replies) in
  Alcotest.(check (list int)) "contiguous versions" (List.init kreq (fun i -> i + 1)) versions;
  let stats = Certifier.stats leader in
  check_int "one certification round" 1 stats.cert_batches;
  Alcotest.(check (float 0.01)) "whole batch in one round" (float_of_int kreq)
    stats.mean_cert_batch;
  check_int "one Accept broadcast" 1 stats.accept_broadcasts;
  Alcotest.(check (float 0.01)) "all entries in that broadcast" (float_of_int kreq)
    stats.mean_accept_batch;
  check_int "one fsync on the leader log" 1 stats.log_fsyncs;
  Alcotest.(check (float 0.01)) "writesets per fsync = batch" (float_of_int kreq)
    stats.mean_group_size

(* Two same-instant requests writing the same key: the first is accepted
   into the overlay, the second must abort against it (the log alone cannot
   see the conflict — the first entry is not delivered yet). *)
let test_intra_batch_conflict_aborts_later () =
  let c = make_certs () in
  run_for c (Time.sec 2);
  let leader_id, leader = the_leader c in
  Certifier.reset_stats leader;
  request c ~dst:leader_id ~req_id:1 ~row:"x" ~value:1 ~at_version:0;
  request c ~dst:leader_id ~req_id:2 ~row:"x" ~value:2 ~at_version:0;
  request c ~dst:leader_id ~req_id:3 ~row:"y" ~value:3 ~at_version:0;
  run_for c (Time.sec 1);
  let replies = drain_replies c in
  check_int "every request answered" 3 (List.length replies);
  let by_id id = List.find (fun (r : Types.cert_reply) -> r.req_id = id) replies in
  check_bool "first writer commits" true ((by_id 1).decision = Types.Commit);
  check_bool "second writer aborts on the in-flight conflict" true
    ((by_id 2).decision = Types.Abort Types.Ww_conflict);
  check_bool "disjoint key commits" true ((by_id 3).decision = Types.Commit);
  let stats = Certifier.stats leader in
  check_int "one ww abort" 1 stats.aborts_ww;
  check_int "two commits" 2 stats.commits;
  check_int "log holds the two committed entries" 2 (Certifier.system_version leader)

(* A request committed under the old leader and retried at the new one
   must get the SAME version back, without growing the log: the decided
   map is rebuilt on every node by delivery. *)
let test_retry_after_leadership_change () =
  let c = make_certs ~n:3 () in
  run_for c (Time.sec 2);
  let leader_id, leader = the_leader c in
  request c ~dst:leader_id ~req_id:42 ~row:"x" ~value:1 ~at_version:0;
  run_for c (Time.sec 1);
  (match drain_replies c with
  | [ r ] ->
      check_bool "committed" true (r.decision = Types.Commit);
      check_int "version 1" 1 r.commit_version
  | rs -> Alcotest.fail (Printf.sprintf "expected one reply, got %d" (List.length rs)));
  Certifier.crash leader;
  run_for c (Time.sec 3);
  let new_leader_id, new_leader = the_leader c in
  check_bool "a different node leads" true (new_leader_id <> leader_id);
  check_int "delivered entry survives on the new leader" 1
    (Certifier.system_version new_leader);
  (* The proxy would retry with the identical request after the redirect. *)
  request c ~dst:new_leader_id ~req_id:42 ~row:"x" ~value:1 ~at_version:0;
  run_for c (Time.sec 1);
  (match drain_replies c with
  | [ r ] ->
      check_bool "retry commits" true (r.decision = Types.Commit);
      check_int "same version as the original decision" 1 r.commit_version
  | rs -> Alcotest.fail (Printf.sprintf "expected one reply, got %d" (List.length rs)));
  check_int "no duplicate log entry" 1 (Certifier.system_version new_leader)

let suites =
  [
    ( "core.batching",
      [
        Alcotest.test_case "one Accept broadcast per batch" `Quick
          test_one_broadcast_per_batch;
        Alcotest.test_case "intra-batch ww conflict aborts the later" `Quick
          test_intra_batch_conflict_aborts_later;
        Alcotest.test_case "retry after leadership change is idempotent" `Quick
          test_retry_after_leadership_change;
      ] );
  ]

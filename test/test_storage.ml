(* Tests for the disk, WAL and dump-store models. *)

open Sim

let fixed_disk_config =
  {
    Storage.Disk.fsync_lo = Time.of_ms 8.;
    fsync_hi = Time.of_ms 8.;
    position_lo = Time.of_ms 5.;
    position_hi = Time.of_ms 5.;
    bandwidth_bytes_per_sec = 1_000_000_000.;
  }

let make_disk e = Storage.Disk.create e ~rng:(Rng.create 3) ~config:fixed_disk_config ()

let test_disk_fsync_latency () =
  let e = Engine.create () in
  let disk = make_disk e in
  let _ =
    Engine.spawn e (fun () ->
        Storage.Disk.fsync disk ~bytes:100;
        Alcotest.(check int) "one fsync took 8ms" 8_000 (Time.to_us (Engine.now e)))
  in
  Engine.run e;
  Alcotest.(check int) "fsync counted" 1 (Storage.Disk.fsyncs disk)

let test_disk_fifo_contention () =
  (* Two fsyncs and a page read share the channel: strictly serial. *)
  let e = Engine.create () in
  let disk = make_disk e in
  let done_at = ref [] in
  let op name f = ignore (Engine.spawn e (fun () -> f (); done_at := (name, Time.to_ms (Engine.now e)) :: !done_at)) in
  op "f1" (fun () -> Storage.Disk.fsync disk ~bytes:0);
  op "r" (fun () -> Storage.Disk.read disk ~bytes:0);
  op "f2" (fun () -> Storage.Disk.fsync disk ~bytes:0);
  Engine.run e;
  (match List.rev !done_at with
  | [ ("f1", t1); ("r", t2); ("f2", t3) ] ->
      Alcotest.(check (float 0.01)) "first" 8. t1;
      Alcotest.(check (float 0.01)) "second" 13. t2;
      Alcotest.(check (float 0.01)) "third" 21. t3
  | _ -> Alcotest.fail "expected FIFO order");
  Alcotest.(check int) "reads" 1 (Storage.Disk.reads disk)

let test_disk_transfer_component () =
  let e = Engine.create () in
  let config = { fixed_disk_config with bandwidth_bytes_per_sec = 1_000_000. } in
  let disk = Storage.Disk.create e ~rng:(Rng.create 1) ~config () in
  let _ =
    Engine.spawn e (fun () ->
        (* 1 MB at 1 MB/s = 1 s, plus 8 ms latency *)
        Storage.Disk.fsync disk ~bytes:1_000_000)
  in
  Engine.run e;
  Alcotest.(check int) "latency+transfer" 1_008_000 (Time.to_us (Engine.now e));
  Alcotest.(check int) "bytes accounted" 1_000_000 (Storage.Disk.bytes_synced disk)

let test_ramdisk_is_fast () =
  let e = Engine.create () in
  let disk = Storage.Disk.create_ram e ~rng:(Rng.create 1) () in
  Alcotest.(check bool) "is_ram" true (Storage.Disk.is_ram disk);
  let _ =
    Engine.spawn e (fun () ->
        for _ = 1 to 100 do
          Storage.Disk.fsync disk ~bytes:100
        done)
  in
  Engine.run e;
  Alcotest.(check bool) "100 fsyncs under 1ms" true Time.(Engine.now e < Time.of_ms 1.)

(* ------------------------------------------------------------------ *)
(* Disk fault injection *)

let test_disk_stall () =
  let e = Engine.create () in
  let disk = make_disk e in
  Storage.Disk.set_stall disk ~extra:(Time.of_ms 100.);
  let _ =
    Engine.spawn e (fun () ->
        Storage.Disk.fsync disk ~bytes:0;
        Alcotest.(check int) "8ms + 100ms stall" 108_000 (Time.to_us (Engine.now e));
        Storage.Disk.clear_stall disk;
        Storage.Disk.fsync disk ~bytes:0;
        Alcotest.(check int) "back to 8ms" 116_000 (Time.to_us (Engine.now e)))
  in
  Engine.run e;
  Alcotest.(check bool) "stall cleared" false (Storage.Disk.stalled disk);
  Alcotest.(check int) "one stalled fsync" 1 (Storage.Disk.fsync_stalls disk)

let test_disk_degrade () =
  let e = Engine.create () in
  let disk = make_disk e in
  Storage.Disk.set_degrade disk ~factor:3.;
  let _ =
    Engine.spawn e (fun () ->
        Storage.Disk.fsync disk ~bytes:0;
        Alcotest.(check int) "3x the 8ms fsync" 24_000 (Time.to_us (Engine.now e));
        Storage.Disk.clear_degrade disk;
        Storage.Disk.fsync disk ~bytes:0;
        Alcotest.(check int) "healthy again" 32_000 (Time.to_us (Engine.now e)))
  in
  Engine.run e;
  Alcotest.(check (float 0.001)) "factor cleared" 1.0
    (Storage.Disk.degrade_factor disk)

let test_disk_io_errors () =
  let e = Engine.create () in
  let disk = make_disk e in
  Storage.Disk.set_write_error_rate disk 1.0;
  let _ =
    Engine.spawn e (fun () ->
        Storage.Disk.fsync disk ~bytes:0;
        (* one failed attempt burns a full op time before the retry *)
        Alcotest.(check int) "double cost" 16_000 (Time.to_us (Engine.now e)))
  in
  Engine.run e;
  Alcotest.(check int) "error counted" 1 (Storage.Disk.io_errors disk);
  Storage.Disk.reset_stats disk;
  Alcotest.(check int) "fault counters survive reset" 1
    (Storage.Disk.io_errors disk)

(* ------------------------------------------------------------------ *)
(* WAL group commit *)

let make_wal ?synchronous e =
  let disk = make_disk e in
  (Storage.Wal.create e ~disk ?synchronous (), disk)

let test_wal_single_append_sync () =
  let e = Engine.create () in
  let wal, disk = make_wal e in
  let _ =
    Engine.spawn e (fun () ->
        let lsn = Storage.Wal.append_and_sync wal ~bytes:54 "w1" in
        Alcotest.(check int) "lsn" 1 lsn;
        Alcotest.(check int) "durable" 1 (Storage.Wal.durable_lsn wal))
  in
  Engine.run e;
  Alcotest.(check int) "one fsync" 1 (Storage.Disk.fsyncs disk)

let test_wal_group_commit () =
  (* 10 concurrent committers, all appending at t=0: the first flush covers
     everyone appended before the fsync started. *)
  let e = Engine.create () in
  let wal, disk = make_wal e in
  let done_count = ref 0 in
  for i = 1 to 10 do
    ignore
      (Engine.spawn e (fun () ->
           ignore (Storage.Wal.append_and_sync wal ~bytes:54 (string_of_int i));
           incr done_count))
  done;
  Engine.run e;
  Alcotest.(check int) "all committed" 10 !done_count;
  Alcotest.(check int) "single grouped fsync" 1 (Storage.Disk.fsyncs disk);
  Alcotest.(check (float 0.01)) "group size 10" 10. (Storage.Wal.mean_group_size wal)

let test_wal_two_waves () =
  (* A second wave arriving during the first fsync shares the *next* fsync. *)
  let e = Engine.create () in
  let wal, disk = make_wal e in
  for i = 1 to 3 do
    ignore (Engine.spawn e (fun () -> ignore (Storage.Wal.append_and_sync wal ~bytes:10 (string_of_int i))))
  done;
  Engine.schedule e ~at:(Time.of_ms 2.) (fun () ->
      for i = 4 to 8 do
        ignore
          (Engine.spawn e (fun () ->
               ignore (Storage.Wal.append_and_sync wal ~bytes:10 (string_of_int i))))
      done);
  Engine.run e;
  Alcotest.(check int) "two fsyncs" 2 (Storage.Disk.fsyncs disk);
  Alcotest.(check int) "all durable" 8 (Storage.Wal.durable_lsn wal);
  Alcotest.(check int) "records synced" 8 (Storage.Wal.records_synced wal)

let test_wal_async_mode () =
  let e = Engine.create () in
  let wal, disk = make_wal ~synchronous:false e in
  let _ =
    Engine.spawn e (fun () ->
        ignore (Storage.Wal.append_and_sync wal ~bytes:54 "volatile");
        Alcotest.(check int) "returned instantly" 0 (Time.to_us (Engine.now e)))
  in
  Engine.run e;
  Alcotest.(check int) "no fsync issued" 0 (Storage.Disk.fsyncs disk);
  Alcotest.(check int) "nothing durable" 0 (Storage.Wal.durable_lsn wal)

let test_wal_crash_loses_tail () =
  let e = Engine.create () in
  let wal, _disk = make_wal e in
  let _ =
    Engine.spawn e (fun () ->
        ignore (Storage.Wal.append_and_sync wal ~bytes:10 "a");
        ignore (Storage.Wal.append wal ~bytes:10 "b");
        ignore (Storage.Wal.append wal ~bytes:10 "c"))
  in
  Engine.run e;
  Alcotest.(check int) "lsn 3" 3 (Storage.Wal.last_lsn wal);
  let lost = Storage.Wal.crash wal in
  Alcotest.(check int) "two lost" 2 lost;
  Alcotest.(check int) "durable prefix survives" 1 (Storage.Wal.last_lsn wal);
  Alcotest.(check (list string)) "redo stream" [ "a" ] (Storage.Wal.records_from wal 0)

let test_wal_records_from () =
  let e = Engine.create () in
  let wal, _ = make_wal e in
  let _ =
    Engine.spawn e (fun () ->
        List.iter (fun r -> ignore (Storage.Wal.append wal ~bytes:1 r)) [ "a"; "b"; "c"; "d" ];
        Storage.Wal.sync wal)
  in
  Engine.run e;
  Alcotest.(check (list string)) "suffix from 2" [ "c"; "d" ] (Storage.Wal.records_from wal 2);
  Alcotest.(check (list string)) "empty suffix" [] (Storage.Wal.records_from wal 4);
  Alcotest.(check (list string)) "whole log" [ "a"; "b"; "c"; "d" ]
    (Storage.Wal.records_from wal 0)

let test_wal_sync_idempotent () =
  let e = Engine.create () in
  let wal, disk = make_wal e in
  let _ =
    Engine.spawn e (fun () ->
        ignore (Storage.Wal.append_and_sync wal ~bytes:5 "a");
        Storage.Wal.sync wal;
        Storage.Wal.sync wal)
  in
  Engine.run e;
  Alcotest.(check int) "no extra fsyncs when durable" 1 (Storage.Disk.fsyncs disk)

(* ------------------------------------------------------------------ *)
(* WAL torn/corrupt tails and the checksum recovery scan *)

let test_wal_torn_crash_truncates () =
  let e = Engine.create () in
  let wal, _ = make_wal e in
  let _ =
    Engine.spawn e (fun () ->
        ignore (Storage.Wal.append_and_sync wal ~bytes:10 "a");
        ignore (Storage.Wal.append wal ~bytes:10 "b");
        ignore (Storage.Wal.append wal ~bytes:10 "c"))
  in
  Engine.run e;
  let lost = Storage.Wal.crash ~torn:true wal in
  Alcotest.(check int) "b and c lost" 2 lost;
  (* the torn slot is unreadable even before the scan runs *)
  Alcotest.(check (list string)) "redo stops at durable prefix" [ "a" ]
    (Storage.Wal.records_from wal 0);
  let records, scan = Storage.Wal.recover wal in
  Alcotest.(check (list string)) "intact prefix replayed" [ "a" ] records;
  Alcotest.(check int) "verified" 1 scan.Storage.Wal.verified;
  Alcotest.(check int) "one torn discarded" 1 scan.Storage.Wal.torn;
  Alcotest.(check int) "no corrupt" 0 scan.Storage.Wal.corrupt;
  Alcotest.(check int) "log truncated" 1 (Storage.Wal.last_lsn wal);
  Alcotest.(check int) "cumulative torn count" 1 (Storage.Wal.torn_discarded wal)

let test_wal_torn_position_sweep () =
  (* A crash can tear the final record at any byte offset; the scan must
     classify and truncate it identically at every position. *)
  let bytes = 10 in
  for torn_bytes = 0 to bytes - 1 do
    let e = Engine.create () in
    let wal, _ = make_wal e in
    let _ =
      Engine.spawn e (fun () ->
          ignore (Storage.Wal.append_and_sync wal ~bytes "a");
          ignore (Storage.Wal.append wal ~bytes "b"))
    in
    Engine.run e;
    ignore (Storage.Wal.crash ~torn:true ~torn_bytes wal);
    let records, scan = Storage.Wal.recover wal in
    Alcotest.(check (list string))
      (Printf.sprintf "prefix intact at torn offset %d" torn_bytes)
      [ "a" ] records;
    Alcotest.(check int) "one torn" 1 scan.Storage.Wal.torn;
    Alcotest.(check int) "no corrupt" 0 scan.Storage.Wal.corrupt;
    Alcotest.(check int) "verified prefix" 1 scan.Storage.Wal.verified;
    Alcotest.(check int) "truncated to prefix" 1 (Storage.Wal.last_lsn wal)
  done

let test_wal_corrupt_tail () =
  let e = Engine.create () in
  let wal, _ = make_wal e in
  let _ =
    Engine.spawn e (fun () ->
        ignore (Storage.Wal.append_and_sync wal ~bytes:10 "a");
        ignore (Storage.Wal.append_and_sync wal ~bytes:10 "b"))
  in
  Engine.run e;
  Alcotest.(check bool) "tail corrupted" true (Storage.Wal.corrupt_tail wal);
  (* redo refuses to read past the corrupt record even without a scan *)
  Alcotest.(check (list string)) "redo stops before corrupt record" [ "a" ]
    (Storage.Wal.records_from wal 0);
  let records, scan = Storage.Wal.recover wal in
  Alcotest.(check (list string)) "verified prefix" [ "a" ] records;
  Alcotest.(check int) "one corrupt discarded" 1 scan.Storage.Wal.corrupt;
  Alcotest.(check int) "durable rolled back" 1 (Storage.Wal.durable_lsn wal);
  Alcotest.(check int) "cumulative corrupt count" 1
    (Storage.Wal.corrupt_discarded wal);
  Alcotest.(check bool) "empty log has nothing to corrupt" false
    (Storage.Wal.corrupt_tail (fst (make_wal (Engine.create ()))))

let test_wal_crash_races_inflight_fsync () =
  (* A crash while an fsync is in flight invalidates that flush: when the
     writer fiber completes it must NOT mark its captured target durable —
     that would resurrect truncated pre-crash slots (or post-crash appends
     that were never synced) as readable. *)
  let e = Engine.create () in
  let wal, _ = make_wal e in
  ignore
    (Engine.spawn e (fun () ->
         ignore (Storage.Wal.append_and_sync wal ~bytes:10 "a")));
  (* stop mid-fsync: the device's fixed latency is 8 ms *)
  Engine.run ~until:(Time.of_ms 4.) e;
  Alcotest.(check bool) "flush in flight" true
    (Storage.Wal.flushing_since wal <> None);
  ignore (Storage.Wal.crash wal);
  (* appends racing the doomed flush *)
  ignore (Storage.Wal.append_batch wal ~bytes_of:(fun _ -> 10) [ "d"; "e" ]);
  Engine.run e;
  Alcotest.(check int) "stale flush not marked durable" 0
    (Storage.Wal.durable_lsn wal);
  Alcotest.(check (list string)) "nothing resurrected" []
    (Storage.Wal.records_from wal 0);
  (* the log still works: a fresh sync makes the new tail durable *)
  ignore (Engine.spawn e (fun () -> Storage.Wal.sync wal));
  Engine.run e;
  Alcotest.(check int) "new tail durable" 2 (Storage.Wal.durable_lsn wal);
  Alcotest.(check (list string)) "redo is the new tail" [ "d"; "e" ]
    (Storage.Wal.records_from wal 0)

(* ------------------------------------------------------------------ *)
(* Dump store *)

let test_dump_keeps_two () =
  let store = Storage.Dump_store.create () in
  Storage.Dump_store.put store ~version:10 ~bytes:100 "v10";
  Storage.Dump_store.put store ~version:20 ~bytes:100 "v20";
  Storage.Dump_store.put store ~version:30 ~bytes:100 "v30";
  Alcotest.(check int) "keeps two" 2 (Storage.Dump_store.count store);
  match Storage.Dump_store.latest store with
  | Some (30, _, "v30") -> ()
  | _ -> Alcotest.fail "expected newest copy"

let test_dump_fallback_on_corruption () =
  let store = Storage.Dump_store.create () in
  Storage.Dump_store.put store ~version:10 ~bytes:100 "v10";
  Storage.Dump_store.put store ~version:20 ~bytes:100 "v20";
  Storage.Dump_store.invalidate_latest store;
  (match Storage.Dump_store.latest store with
  | Some (10, _, "v10") -> ()
  | _ -> Alcotest.fail "expected fallback to previous copy");
  Alcotest.(check bool) "empty store has no dump" true
    (Storage.Dump_store.latest (Storage.Dump_store.create ()) = None)


(* Property: after any interleaving of appends and syncs followed by a
   crash, the surviving records are exactly a prefix of what was appended,
   at least as long as the last completed sync. *)
let prop_wal_durable_prefix =
  QCheck.Test.make ~name:"wal survives crash as an appended prefix" ~count:60
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let e = Engine.create () in
      let rng = Rng.create seed in
      let disk = Storage.Disk.create e ~rng:(Rng.split rng) () in
      let wal = Storage.Wal.create e ~disk () in
      let appended = ref [] in
      let synced_upto = ref 0 in
      ignore
        (Engine.spawn e (fun () ->
             for i = 1 to 30 do
               appended := i :: !appended;
               if Rng.chance rng 0.5 then begin
                 ignore (Storage.Wal.append_and_sync wal ~bytes:10 i);
                 synced_upto := i
               end
               else ignore (Storage.Wal.append wal ~bytes:10 i);
               Engine.sleep e (Sim.Time.of_ms (Rng.uniform rng ~lo:0. ~hi:5.))
             done));
      Engine.run ~until:(Sim.Time.sec 5) e;
      ignore (Storage.Wal.crash wal);
      let survived = Storage.Wal.records_from wal 0 in
      let all = List.rev !appended in
      let rec is_prefix p l =
        match (p, l) with
        | [], _ -> true
        | x :: p', y :: l' -> x = y && is_prefix p' l'
        | _ -> false
      in
      is_prefix survived all && List.length survived >= !synced_upto)

let suites =
  [
    ( "storage.disk",
      [
        Alcotest.test_case "fsync latency" `Quick test_disk_fsync_latency;
        Alcotest.test_case "fifo contention" `Quick test_disk_fifo_contention;
        Alcotest.test_case "transfer component" `Quick test_disk_transfer_component;
        Alcotest.test_case "ramdisk fast" `Quick test_ramdisk_is_fast;
        Alcotest.test_case "stall adds latency" `Quick test_disk_stall;
        Alcotest.test_case "degrade multiplies latency" `Quick test_disk_degrade;
        Alcotest.test_case "transient io errors" `Quick test_disk_io_errors;
      ] );
    ( "storage.wal",
      [
        Alcotest.test_case "single append+sync" `Quick test_wal_single_append_sync;
        Alcotest.test_case "group commit batches" `Quick test_wal_group_commit;
        Alcotest.test_case "two waves two fsyncs" `Quick test_wal_two_waves;
        Alcotest.test_case "asynchronous mode" `Quick test_wal_async_mode;
        Alcotest.test_case "crash loses volatile tail" `Quick test_wal_crash_loses_tail;
        Alcotest.test_case "records_from" `Quick test_wal_records_from;
        Alcotest.test_case "sync idempotent" `Quick test_wal_sync_idempotent;
        Alcotest.test_case "torn crash truncates" `Quick test_wal_torn_crash_truncates;
        Alcotest.test_case "torn position sweep" `Quick test_wal_torn_position_sweep;
        Alcotest.test_case "corrupt tail" `Quick test_wal_corrupt_tail;
        Alcotest.test_case "crash races in-flight fsync" `Quick
          test_wal_crash_races_inflight_fsync;
        QCheck_alcotest.to_alcotest prop_wal_durable_prefix;
      ] );
    ( "storage.dump_store",
      [
        Alcotest.test_case "keeps last two" `Quick test_dump_keeps_two;
        Alcotest.test_case "fallback on corruption" `Quick test_dump_fallback_on_corruption;
      ] );
  ]

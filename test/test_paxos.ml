(* Tests for the Paxos-replicated log used by the certifier group. *)

open Sim

type cluster = {
  engine : Engine.t;
  net : string Paxos.Node.message Net.Network.t;
  nodes : (string * string Paxos.Node.t) list;
  delivered : (string, (int * string) list ref) Hashtbl.t;
}

let node_ids n = List.init n (fun i -> Printf.sprintf "c%d" i)

let make_cluster ?(n = 3) ?(seed = 1) () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let net = Net.Network.create engine ~rng:(Rng.split rng) () in
  let ids = node_ids n in
  let delivered = Hashtbl.create n in
  let nodes =
    List.map
      (fun id ->
        let mb = Net.Network.register net id in
        let disk = Storage.Disk.create engine ~rng:(Rng.split rng) ~name:(id ^ ".disk") () in
        let log = ref [] in
        Hashtbl.replace delivered id log;
        let send ~dst msg =
          Net.Network.send net ~src:id ~dst
            ~size:(Paxos.Node.message_bytes String.length msg)
            msg
        in
        let node =
          Paxos.Node.create engine ~rng:(Rng.split rng) ~id
            ~peers:(List.filter (fun p -> p <> id) ids)
            ~disk ~send
            ~on_deliver:(fun slot v -> log := (slot, v) :: !log)
            ()
        in
        ignore
          (Engine.spawn engine ~name:(id ^ ".pump") (fun () ->
               let rec loop () =
                 Paxos.Node.handle node (Mailbox.recv mb);
                 loop ()
               in
               loop ()));
        (id, node))
      ids
  in
  { engine; net; nodes; delivered }

let run_for c span = Engine.run ~until:(Time.add (Engine.now c.engine) span) c.engine

let leaders c =
  List.filter_map
    (fun (id, node) ->
      if Paxos.Node.is_up node && Paxos.Node.is_leader node then Some id else None)
    c.nodes

let the_leader c =
  match leaders c with
  | [ id ] -> (id, List.assoc id c.nodes)
  | [] -> Alcotest.fail "no leader elected"
  | _ -> Alcotest.fail "multiple leaders claim the same moment"

let log_of c id = List.rev !(Hashtbl.find c.delivered id)

let propose_ok c value =
  let _, leader = the_leader c in
  Alcotest.(check bool) ("propose " ^ value) true (Paxos.Node.propose leader value)

let test_leader_election () =
  let c = make_cluster () in
  run_for c (Time.sec 2);
  let ls = leaders c in
  Alcotest.(check int) "exactly one leader" 1 (List.length ls);
  (* all nodes agree on the hint *)
  List.iter
    (fun (_, node) ->
      Alcotest.(check (option string)) "hint" (Some (List.hd ls)) (Paxos.Node.leader_hint node))
    c.nodes

let test_replication_basic () =
  let c = make_cluster () in
  run_for c (Time.sec 2);
  propose_ok c "a";
  propose_ok c "b";
  propose_ok c "c";
  run_for c (Time.sec 2);
  List.iter
    (fun (id, _) ->
      Alcotest.(check (list (pair int string)))
        (id ^ " delivered all in order")
        [ (1, "a"); (2, "b"); (3, "c") ]
        (log_of c id))
    c.nodes

let test_propose_on_follower_rejected () =
  let c = make_cluster () in
  run_for c (Time.sec 2);
  let leader_id, _ = the_leader c in
  let follower =
    snd (List.find (fun (id, _) -> id <> leader_id) c.nodes)
  in
  Alcotest.(check bool) "follower refuses" false (Paxos.Node.propose follower "x")

let test_leader_crash_failover () =
  let c = make_cluster () in
  run_for c (Time.sec 2);
  propose_ok c "a";
  run_for c (Time.sec 1);
  let old_leader_id, old_leader = the_leader c in
  Paxos.Node.crash old_leader;
  run_for c (Time.sec 3);
  let new_leader_id, _ = the_leader c in
  Alcotest.(check bool) "different node leads" true (new_leader_id <> old_leader_id);
  propose_ok c "b";
  run_for c (Time.sec 1);
  List.iter
    (fun (id, node) ->
      if Paxos.Node.is_up node then
        Alcotest.(check (list (pair int string)))
          (id ^ " consistent after failover")
          [ (1, "a"); (2, "b") ]
          (List.filter (fun (_, v) -> v = "a" || v = "b") (log_of c id)))
    c.nodes

let test_crash_recover_catches_up () =
  let c = make_cluster () in
  run_for c (Time.sec 2);
  propose_ok c "a";
  run_for c (Time.sec 1);
  (* crash a follower, commit more, recover it *)
  let leader_id, _ = the_leader c in
  let fid, follower = List.find (fun (id, _) -> id <> leader_id) c.nodes in
  Paxos.Node.crash follower;
  propose_ok c "b";
  propose_ok c "c";
  run_for c (Time.sec 1);
  (* deliveries before the crash are forgotten with the volatile state *)
  (Hashtbl.find c.delivered fid) := [];
  Paxos.Node.recover follower;
  run_for c (Time.sec 3);
  Alcotest.(check (list (pair int string)))
    "recovered node replays the full chosen log"
    [ (1, "a"); (2, "b"); (3, "c") ]
    (log_of c fid)

let test_minority_partition_blocks_commit () =
  let c = make_cluster () in
  run_for c (Time.sec 2);
  let leader_id, leader = the_leader c in
  (* cut the leader off from both followers *)
  List.iter
    (fun (id, _) -> if id <> leader_id then Net.Network.partition c.net leader_id id)
    c.nodes;
  let before = Paxos.Node.commit_index leader in
  ignore (Paxos.Node.propose leader "lost?");
  run_for c (Time.sec 1);
  Alcotest.(check int) "isolated leader cannot commit" before
    (Paxos.Node.commit_index leader);
  (* the majority side elects its own leader and can make progress *)
  let majority_leaders = List.filter (fun id -> id <> leader_id) (leaders c) in
  Alcotest.(check bool) "majority elected a leader" true (majority_leaders <> []);
  (* heal: the old leader steps down and learns the new history *)
  List.iter
    (fun (id, _) -> if id <> leader_id then Net.Network.heal c.net leader_id id)
    c.nodes;
  let new_leader = snd (the_leader { c with nodes = List.filter (fun (id, _) -> id <> leader_id) c.nodes }) in
  ignore (Paxos.Node.propose new_leader "x");
  run_for c (Time.sec 3);
  Alcotest.(check int) "exactly one leader after heal" 1 (List.length (leaders c));
  let logs =
    List.map (fun (id, _) -> List.map snd (log_of c id)) c.nodes
  in
  List.iter
    (fun log -> Alcotest.(check bool) "x chosen everywhere" true (List.mem "x" log))
    logs

let test_single_node_cluster () =
  let c = make_cluster ~n:1 () in
  run_for c (Time.sec 1);
  propose_ok c "solo";
  run_for c (Time.sec 1);
  Alcotest.(check (list (pair int string))) "delivered" [ (1, "solo") ] (log_of c "c0")

let test_leader_disk_groups_fsyncs () =
  (* Many concurrent proposals at the same instant: the leader's WAL groups
     their accepted-records into very few fsyncs. *)
  let c = make_cluster () in
  run_for c (Time.sec 2);
  let _, leader = the_leader c in
  let wal = Paxos.Node.wal leader in
  Storage.Wal.reset_stats wal;
  for i = 1 to 30 do
    ignore (Paxos.Node.propose leader (Printf.sprintf "v%d" i))
  done;
  run_for c (Time.sec 2);
  Alcotest.(check int) "30 records" 30 (Storage.Wal.records_synced wal);
  Alcotest.(check bool) "few fsyncs" true (Storage.Wal.sync_count wal <= 3);
  Alcotest.(check bool) "mean group size >= 10" true (Storage.Wal.mean_group_size wal >= 10.)

let test_propose_batch_one_broadcast () =
  let c = make_cluster () in
  run_for c (Time.sec 2);
  let _, leader = the_leader c in
  let wal = Paxos.Node.wal leader in
  Storage.Wal.reset_stats wal;
  Paxos.Node.reset_batch_stats leader;
  Alcotest.(check bool) "batch accepted" true
    (Paxos.Node.propose_batch leader [ "a"; "b"; "c"; "d" ]);
  run_for c (Time.sec 1);
  Alcotest.(check int) "one Accept broadcast" 1 (Paxos.Node.accept_broadcasts leader);
  Alcotest.(check (float 0.01)) "four entries in it" 4.
    (Paxos.Node.mean_accept_batch leader);
  Alcotest.(check int) "one WAL batch append" 1 (Storage.Wal.batch_appends wal);
  Alcotest.(check int) "one fsync for the whole batch" 1 (Storage.Wal.sync_count wal);
  List.iter
    (fun (id, _) ->
      Alcotest.(check (list (pair int string)))
        (id ^ " delivered in order")
        [ (1, "a"); (2, "b"); (3, "c"); (4, "d") ]
        (log_of c id))
    c.nodes;
  (* the empty batch is a leadership probe, not a broadcast *)
  Alcotest.(check bool) "empty batch ok" true (Paxos.Node.propose_batch leader []);
  Alcotest.(check int) "no extra broadcast" 1 (Paxos.Node.accept_broadcasts leader)

let test_duplicate_accept_ok_not_double_counted () =
  let c = make_cluster ~n:5 () in
  run_for c (Time.sec 2);
  let leader_id, leader = the_leader c in
  (* Isolate the leader so no real acks arrive; majority is 3, and the
     self-ack provides 1. *)
  List.iter
    (fun (id, _) -> if id <> leader_id then Net.Network.partition c.net leader_id id)
    c.nodes;
  let slot = Paxos.Node.commit_index leader + 1 in
  let ballot = Paxos.Node.current_ballot leader in
  Alcotest.(check bool) "proposed" true (Paxos.Node.propose leader "v");
  (* Let the self-accept's fsync land, staying under any election timeout. *)
  run_for c (Time.of_ms 30.);
  Alcotest.(check int) "self-ack alone does not commit" 0
    (Paxos.Node.commit_index leader);
  let followers = List.filter (fun (id, _) -> id <> leader_id) c.nodes in
  let f1 = fst (List.nth followers 0) and f2 = fst (List.nth followers 1) in
  let fake from = Paxos.Node.Accept_ok { ballot; from; slots = [ slot ] } in
  Paxos.Node.handle leader (fake f1);
  Paxos.Node.handle leader (fake f1);
  Alcotest.(check int) "duplicate ack from one peer counts once" 0
    (Paxos.Node.commit_index leader);
  Paxos.Node.handle leader (fake f2);
  Alcotest.(check int) "a distinct third ack commits" slot
    (Paxos.Node.commit_index leader)

let test_abdicate_moves_leadership () =
  let c = make_cluster () in
  run_for c (Time.sec 2);
  propose_ok c "a";
  run_for c (Time.sec 1);
  let old_id, old_leader = the_leader c in
  Paxos.Node.abdicate old_leader ~backoff:(Time.sec 10);
  Alcotest.(check bool) "stepped down at once" false
    (Paxos.Node.is_leader old_leader);
  run_for c (Time.sec 3);
  let new_id, _ = the_leader c in
  Alcotest.(check bool) "a different node leads" true (new_id <> old_id);
  propose_ok c "b";
  run_for c (Time.sec 1);
  List.iter
    (fun (id, _) ->
      Alcotest.(check (list (pair int string)))
        (id ^ " consistent after abdication")
        [ (1, "a"); (2, "b") ]
        (List.filter (fun (_, v) -> v = "a" || v = "b") (log_of c id)))
    c.nodes

let test_torn_accepted_never_replayed () =
  (* A record still being flushed when the node died was never acked to
     anyone, so the recovery scan must discard it rather than replay it.
     Single-node cluster: the torn copy is the only copy. *)
  let c = make_cluster ~n:1 () in
  run_for c (Time.sec 1);
  let _, node = the_leader c in
  Alcotest.(check bool) "proposed" true (Paxos.Node.propose node "doomed");
  (* run just long enough for the self-accept to append and start its
     fsync (>= 6 ms on the default disk), then crash mid-write *)
  run_for c (Time.of_ms 1.);
  Paxos.Node.crash ~wal_fault:Paxos.Node.Torn_tail node;
  (Hashtbl.find c.delivered "c0") := [];
  Paxos.Node.recover node;
  Alcotest.(check int) "torn record discarded by the scan" 1
    (Storage.Wal.torn_discarded (Paxos.Node.wal node));
  run_for c (Time.sec 2);
  Alcotest.(check (list (pair int string))) "never replayed" [] (log_of c "c0");
  propose_ok c "next";
  run_for c (Time.sec 1);
  Alcotest.(check (list (pair int string)))
    "slot reused cleanly" [ (1, "next") ] (log_of c "c0")

let test_corrupt_tail_cannot_unpromise () =
  (* After a quiet election the newest durable record is a promise.
     Corrupting it must not make the acceptor forget the ballot it
     promised: promises are double-written, so the checksum scan still
     replays the surviving copy. *)
  let c = make_cluster () in
  run_for c (Time.sec 2);
  let leader_id, _ = the_leader c in
  let fid, follower = List.find (fun (id, _) -> id <> leader_id) c.nodes in
  let ballot_before = Paxos.Node.current_ballot follower in
  Alcotest.(check bool) "a real promise was made" true
    Paxos.Ballot.(Paxos.Ballot.initial < ballot_before);
  Paxos.Node.crash ~wal_fault:Paxos.Node.Corrupt_tail follower;
  (Hashtbl.find c.delivered fid) := [];
  Paxos.Node.recover follower;
  Alcotest.(check int) "corrupt record discarded by the scan" 1
    (Storage.Wal.corrupt_discarded (Paxos.Node.wal follower));
  Alcotest.(check bool) "promise survives via its second copy" true
    Paxos.Ballot.(Paxos.Node.current_ballot follower >= ballot_before);
  run_for c (Time.sec 3);
  propose_ok c "a";
  run_for c (Time.sec 1);
  List.iter
    (fun (id, node) ->
      if Paxos.Node.is_up node then
        Alcotest.(check (list (pair int string)))
          (id ^ " consistent after corrupt-tail recovery")
          [ (1, "a") ]
          (List.filter (fun (_, v) -> v = "a") (log_of c id)))
    c.nodes

(* Property: under random crash/recover churn of followers, delivered logs
   on live nodes are always prefix-consistent. *)
let prop_prefix_consistency =
  QCheck.Test.make ~name:"paxos logs are prefix consistent under churn" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let c = make_cluster ~seed () in
      let rng = Rng.create (seed + 77) in
      run_for c (Time.sec 2);
      let ok = ref true in
      for round = 1 to 6 do
        (match leaders c with
        | [ id ] ->
            let leader = List.assoc id c.nodes in
            for i = 1 to 3 do
              ignore (Paxos.Node.propose leader (Printf.sprintf "r%d-%d" round i))
            done
        | _ -> ());
        (* randomly crash or recover one node *)
        let victim_id, victim = List.nth c.nodes (Rng.int rng (List.length c.nodes)) in
        if Paxos.Node.is_up victim then begin
          if Rng.chance rng 0.4 then begin
            Paxos.Node.crash victim;
            (Hashtbl.find c.delivered victim_id) := []
          end
        end
        else Paxos.Node.recover victim;
        run_for c (Time.sec 2)
      done;
      (* recover everyone and settle *)
      List.iter
        (fun (_, node) -> if not (Paxos.Node.is_up node) then Paxos.Node.recover node)
        c.nodes;
      run_for c (Time.sec 5);
      let is_prefix a b =
        let rec loop = function
          | [], _ -> true
          | _, [] -> false
          | x :: xs, y :: ys -> x = y && loop (xs, ys)
        in
        loop (a, b)
      in
      let logs = List.map (fun (id, _) -> log_of c id) c.nodes in
      List.iter
        (fun a ->
          List.iter (fun b -> if not (is_prefix a b || is_prefix b a) then ok := false) logs)
        logs;
      !ok)

let suites =
  [
    ( "paxos.ballot",
      [
        Alcotest.test_case "ordering" `Quick (fun () ->
            let a = Paxos.Ballot.make ~round:1 ~node:"b" in
            let b = Paxos.Ballot.make ~round:1 ~node:"c" in
            let c' = Paxos.Ballot.make ~round:2 ~node:"a" in
            Alcotest.(check bool) "same round, node breaks tie" true Paxos.Ballot.(a < b);
            Alcotest.(check bool) "higher round wins" true Paxos.Ballot.(b < c');
            Alcotest.(check bool) "next is greater" true
              Paxos.Ballot.(a < Paxos.Ballot.next a ~node:"a");
            Alcotest.(check bool) "initial smallest" true Paxos.Ballot.(Paxos.Ballot.initial < a));
      ] );
    ( "paxos.node",
      [
        Alcotest.test_case "leader election" `Quick test_leader_election;
        Alcotest.test_case "replication in order" `Quick test_replication_basic;
        Alcotest.test_case "follower refuses proposals" `Quick
          test_propose_on_follower_rejected;
        Alcotest.test_case "leader crash failover" `Quick test_leader_crash_failover;
        Alcotest.test_case "crash/recover catches up" `Quick test_crash_recover_catches_up;
        Alcotest.test_case "minority partition blocks commit" `Quick
          test_minority_partition_blocks_commit;
        Alcotest.test_case "single-node cluster" `Quick test_single_node_cluster;
        Alcotest.test_case "leader disk groups fsyncs" `Quick test_leader_disk_groups_fsyncs;
        Alcotest.test_case "propose_batch: one broadcast, one fsync" `Quick
          test_propose_batch_one_broadcast;
        Alcotest.test_case "duplicate Accept_ok cannot reach majority" `Quick
          test_duplicate_accept_ok_not_double_counted;
        Alcotest.test_case "abdicate moves leadership" `Quick
          test_abdicate_moves_leadership;
        Alcotest.test_case "torn Accepted never replayed" `Quick
          test_torn_accepted_never_replayed;
        Alcotest.test_case "corrupt tail cannot un-promise" `Quick
          test_corrupt_tail_cannot_unpromise;
      ]
      @ [ QCheck_alcotest.to_alcotest prop_prefix_consistency ] );
  ]

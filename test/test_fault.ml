(* Regression tests for the fault-injection subsystem and the failover
   paths it flushed out: req-id-routed fetches (stale and concurrent
   replies), redirect handling for unknown leaders, endpoint restart after
   unregister, bounded certify backoff under a full partition, and the
   chaos experiment as a smoke test. *)

open Sim
open Tashkent

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Deterministic fast LAN so timing assertions are exact. *)
let fast_config =
  {
    Net.Network.latency_lo = Time.us 50;
    latency_hi = Time.us 50;
    bandwidth_bytes_per_sec = 1e9;
  }

let make_net () =
  let e = Engine.create () in
  let net = Net.Network.create e ~rng:(Rng.create 3) ~config:fast_config () in
  (e, net)

(* A client endpoint: registers [my_addr] and pumps every arriving message
   into [Cert_client.handle], as the proxy's dispatcher does. *)
let make_client e net ~certifiers =
  let mbox = Net.Network.register net "r0" in
  let client =
    Cert_client.create e ~net ~my_addr:"r0" ~certifiers ~timeout:(Time.of_ms 5.)
      ~backoff_base:(Time.of_ms 1.) ~backoff_cap:(Time.of_ms 4.) ~req_id_base:100 ()
  in
  ignore
    (Engine.spawn e ~name:"dispatcher" (fun () ->
         while true do
           Cert_client.handle client (Mailbox.recv mbox)
         done));
  client

(* ------------------------------------------------------------------ *)
(* Fetch routing *)

let test_stale_fetch_reply_discarded () =
  (* The reply to a timed-out fetch arrives AFTER its successor was issued:
     it must be discarded, not handed to the retry's waiter. *)
  let e, net = make_net () in
  let cert = Net.Network.register net "cert0" in
  let client = make_client e net ~certifiers:[ "cert0" ] in
  let seen = ref 0 in
  ignore
    (Engine.spawn e ~name:"fake-cert" (fun () ->
         while true do
           match Mailbox.recv cert with
           | Types.Fetch_request freq ->
               incr seen;
               let reply n =
                 Net.Network.send net ~src:"cert0" ~dst:"r0"
                   (Types.Fetch_reply
                      {
                        fetch_req_id = freq.fetch_req_id;
                        fetch_remotes = [];
                        certifier_version = n;
                        fetch_gc_floor = 0;
                        fetch_snapshot = None;
                      })
               in
               if !seen = 1 then
                 (* Answer the first attempt well past its timeout, while
                    the retry is already pending. *)
                 Engine.schedule_after e (Time.of_ms 8.) (fun () -> reply 111)
               else reply 222
           | _ -> ()
         done));
  let result = ref None in
  ignore
    (Engine.spawn e ~name:"fetcher" (fun () ->
         result := Cert_client.fetch client ~replica:"r0" ~from_version:0 ~oldest_snapshot:0));
  Engine.run e;
  (match !result with
  | Some r -> check_int "retry's reply wins" 222 r.Types.certifier_version
  | None -> Alcotest.fail "fetch returned None");
  check_int "one refetch" 1 (Cert_client.refetches client)

let test_concurrent_fetches_routed_independently () =
  (* Two outstanding fetches; the certifier answers them in reverse order.
     Each waiter must receive its own reply (a single-slot waiter would
     cross them). *)
  let e, net = make_net () in
  let cert = Net.Network.register net "cert0" in
  let client = make_client e net ~certifiers:[ "cert0" ] in
  let held = ref [] in
  ignore
    (Engine.spawn e ~name:"fake-cert" (fun () ->
         while true do
           (match Mailbox.recv cert with
           | Types.Fetch_request freq -> held := freq :: !held
           | _ -> ());
           if List.length !held = 2 then
             (* [held] is newest-first: replying in this order reverses
                arrival order. *)
             List.iter
               (fun (freq : Types.fetch_request) ->
                 Net.Network.send net ~src:"cert0" ~dst:"r0"
                   (Types.Fetch_reply
                      {
                        fetch_req_id = freq.fetch_req_id;
                        fetch_remotes = [];
                        certifier_version = freq.from_version + 1;
                        fetch_gc_floor = 0;
                        fetch_snapshot = None;
                      }))
               !held
         done));
  let ra = ref None and rb = ref None in
  ignore
    (Engine.spawn e (fun () ->
         ra := Cert_client.fetch client ~replica:"r0" ~from_version:10 ~oldest_snapshot:0));
  ignore
    (Engine.spawn e (fun () ->
         rb := Cert_client.fetch client ~replica:"r0" ~from_version:20 ~oldest_snapshot:0));
  Engine.run e;
  (match (!ra, !rb) with
  | Some a, Some b ->
      check_int "fetch A got A's reply" 11 a.Types.certifier_version;
      check_int "fetch B got B's reply" 21 b.Types.certifier_version
  | _ -> Alcotest.fail "a concurrent fetch returned None")

(* ------------------------------------------------------------------ *)
(* Certify retry paths *)

let test_redirect_to_unknown_leader_falls_back () =
  (* A redirect naming a certifier outside the configured group must fall
     back to round-robin probing instead of sending into the void. *)
  let e, net = make_net () in
  let c0 = Net.Network.register net "cert0" in
  let c1 = Net.Network.register net "cert1" in
  let client = make_client e net ~certifiers:[ "cert0"; "cert1" ] in
  ignore
    (Engine.spawn e ~name:"cert0" (fun () ->
         while true do
           match Mailbox.recv c0 with
           | Types.Cert_request req ->
               Net.Network.send net ~src:"cert0" ~dst:"r0"
                 (Types.Cert_redirect { req_id = req.req_id; leader = Some "ghost" })
           | _ -> ()
         done));
  ignore
    (Engine.spawn e ~name:"cert1" (fun () ->
         while true do
           match Mailbox.recv c1 with
           | Types.Cert_request req ->
               Net.Network.send net ~src:"cert1" ~dst:"r0"
                 (Types.Cert_reply
                    {
                      req_id = req.req_id;
                      decision = Types.Commit;
                      commit_version = 7;
                      gc_floor = 0;
                      remotes = [];
                    })
           | _ -> ()
         done));
  let reply = ref None in
  ignore
    (Engine.spawn e (fun () ->
         let ws = Mvcc.Writeset.singleton (Mvcc.Key.make ~table:"t" ~row:"a")
             (Mvcc.Writeset.Update (Mvcc.Value.int 1)) in
         reply := Some (Cert_client.certify client ~start_version:0 ~replica_version:0 ~oldest_snapshot:0 ws)));
  Engine.run e;
  (match !reply with
  | Some r ->
      check_bool "committed" true (r.Types.decision = Types.Commit);
      check_int "at cert1's version" 7 r.Types.commit_version
  | None -> Alcotest.fail "certify never returned");
  check_bool "went through a retry" true (Cert_client.retries client >= 1)

let test_bounded_backoff_under_full_partition () =
  (* With every certifier unreachable the client must probe at a decaying
     rate (capped exponential backoff), not spin at the timeout interval —
     and still commit promptly once healed. *)
  let cfg =
    {
      Cluster.mode = Types.Tashkent_mw;
      n_replicas = 1;
      n_certifiers = 3;
      n_partitions = 1;
      hosting = Cluster.Host_all;
      certifier = Certifier.default_config;
      replica = Replica.default_config Types.Tashkent_mw;
      seed = 5;
    }
  in
  let c = Cluster.create cfg in
  let e = Cluster.engine c in
  let key = Mvcc.Key.make ~table:"t" ~row:"a" in
  Cluster.load_all c [ (key, Mvcc.Value.int 0) ];
  Cluster.settle c;
  let r = Cluster.replica c 0 in
  let p = Replica.proxy r in
  let net = Cluster.network c in
  List.iter
    (fun cert -> Net.Network.partition net (Proxy.addr p) cert)
    (Cluster.certifier_ids c);
  let outcome = ref None in
  ignore
    (Engine.spawn e ~name:"client" (fun () ->
         let tx = Proxy.begin_tx p in
         match Proxy.write p tx key (Mvcc.Writeset.Update (Mvcc.Value.int 9)) with
         | Error _ -> Alcotest.fail "local write failed"
         | Ok () -> outcome := Some (Proxy.commit p tx)));
  let run_for span = Engine.run ~until:(Time.add (Engine.now e) span) e in
  run_for (Time.sec 20);
  check_bool "still blocked while partitioned" true (!outcome = None);
  let attempts = 1 + Cert_client.retries (Proxy.client p) in
  check_bool
    (Printf.sprintf "probed at least thrice (%d)" attempts)
    true (attempts >= 3);
  (* A fixed 500 ms retry interval would make ~40 attempts in 20 s. *)
  check_bool
    (Printf.sprintf "backoff kept attempts bounded (%d)" attempts)
    true
    (attempts < 25);
  List.iter
    (fun cert -> Net.Network.heal net (Proxy.addr p) cert)
    (Cluster.certifier_ids c);
  run_for (Time.sec 5);
  (match !outcome with
  | Some (Ok ()) -> ()
  | Some (Error f) ->
      Alcotest.fail (Format.asprintf "commit failed after heal: %a" Proxy.pp_failure f)
  | None -> Alcotest.fail "commit never completed after heal");
  match Cluster.check_consistency c with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Endpoint restart *)

let test_restart_after_unregister_purges_floors () =
  (* A message in flight on a slowed link sets that link's FIFO floor far
     in the future. Unregistering the destination must purge the floor so
     a restarted endpoint gets fresh deliveries promptly. *)
  let e, net = make_net () in
  let b = Net.Network.register net "b" in
  Net.Network.slow_link net "a" "b" ~extra:(Time.sec 10);
  Net.Network.send net ~src:"a" ~dst:"b" 1;
  (* crash: the in-flight message will be dropped on arrival *)
  Net.Network.unregister net "b";
  Net.Network.restore_link net "a" "b";
  Net.Network.reattach net "b" b;
  let got = ref None in
  let at = ref Time.zero in
  ignore
    (Engine.spawn e (fun () ->
         got := Some (Mailbox.recv b);
         at := Engine.now e));
  Net.Network.send net ~src:"a" ~dst:"b" 2;
  Engine.run e;
  check_int "fresh message delivered" 2 (Option.value ~default:0 !got);
  check_bool "not stuck behind the stale floor" true Time.(!at < Time.sec 1)

(* ------------------------------------------------------------------ *)
(* Degraded-disk failover *)

let test_fsync_stall_forces_abdication () =
  (* A leader whose fsyncs exceed the configured deadline must step down so
     a healthy-disk certifier can lead. Needs live commit traffic: only a
     stuck in-flight flush trips the watchdog. *)
  let cfg =
    {
      Cluster.mode = Types.Tashkent_mw;
      n_replicas = 1;
      n_certifiers = 3;
      n_partitions = 1;
      hosting = Cluster.Host_all;
      certifier = Certifier.default_config;
      replica = Replica.default_config Types.Tashkent_mw;
      seed = 5;
    }
  in
  let c = Cluster.create cfg in
  let e = Cluster.engine c in
  let key = Mvcc.Key.make ~table:"t" ~row:"a" in
  Cluster.load_all c [ (key, Mvcc.Value.int 0) ];
  Cluster.settle c;
  let p = Replica.proxy (Cluster.replica c 0) in
  ignore
    (Engine.spawn e ~name:"committer" (fun () ->
         let n = ref 0 in
         while true do
           incr n;
           let tx = Proxy.begin_tx p in
           (match Proxy.write p tx key (Mvcc.Writeset.Update (Mvcc.Value.int !n)) with
           | Ok () -> ignore (Proxy.commit p tx)
           | Error _ -> Proxy.abort p tx);
           Engine.sleep e (Time.of_ms 20.)
         done));
  let run_for span = Engine.run ~until:(Time.add (Engine.now e) span) e in
  run_for (Time.sec 2);
  let old_leader =
    match Cluster.leader c with
    | Some l -> l
    | None -> Alcotest.fail "no leader before the stall"
  in
  Storage.Disk.set_stall (Certifier.disk old_leader) ~extra:(Time.of_ms 600.);
  run_for (Time.sec 3);
  check_bool "watchdog forced an abdication" true
    (Certifier.disk_failovers old_leader >= 1);
  check_bool "stalled leader stepped down" false (Certifier.is_leader old_leader);
  Storage.Disk.clear_stall (Certifier.disk old_leader);
  run_for (Time.sec 3);
  (match Cluster.leader c with
  | Some l ->
      check_bool "a healthy certifier leads" true (Certifier.id l <> Certifier.id old_leader)
  | None -> Alcotest.fail "no leader after the failover");
  (* the failover is visible in the metrics registry *)
  (match
     Obs.Registry.find (Cluster.metrics c)
       ("certifier." ^ Certifier.id old_leader ^ ".disk.failovers")
   with
  | Some (Obs.Registry.Gauge v) ->
      check_bool "disk.failovers gauge nonzero" true (v >= 1.)
  | _ -> Alcotest.fail "disk.failovers gauge missing");
  (match
     Obs.Registry.find (Cluster.metrics c)
       ("certifier." ^ Certifier.id old_leader ^ ".disk.fsync_stalls")
   with
  | Some (Obs.Registry.Gauge v) ->
      check_bool "disk.fsync_stalls gauge nonzero" true (v >= 1.)
  | _ -> Alcotest.fail "disk.fsync_stalls gauge missing");
  match Cluster.check_consistency c with
  | Ok () -> ()
  | Error m -> Alcotest.fail m

(* ------------------------------------------------------------------ *)
(* Chaos smoke *)

let chaos_ok name (r : Harness.Chaos_exp.result) =
  List.iter (fun v -> Printf.printf "%s violation: %s\n" name v) r.violations;
  List.iter
    (fun v -> Printf.printf "%s monitor violation: %s\n" name v)
    r.monitor_violations;
  check_int (name ^ ": no invariant violations") 0 (List.length r.violations);
  check_int (name ^ ": no monitor violations") 0
    (List.length r.monitor_violations);
  check_bool (name ^ ": monitors consumed events") true (r.monitor_events > 0);
  check_bool (name ^ ": made progress") true (r.commits > 1000);
  check_bool (name ^ ": checkpoints ran") true (r.checks >= 3);
  check_bool (name ^ ": faults actually fired") true (r.fault.Fault.crashes >= 1)

let test_chaos_scripted () = chaos_ok "scripted" (Harness.Chaos_exp.run ())

let test_chaos_random () =
  let config =
    { (Harness.Chaos_exp.default_config ()) with plan = Harness.Chaos_exp.Random 1 }
  in
  chaos_ok "random-1" (Harness.Chaos_exp.run ~config ())

let test_chaos_scripted_disk () =
  let config =
    { (Harness.Chaos_exp.default_config ()) with plan = Harness.Chaos_exp.Scripted_disk }
  in
  let r = Harness.Chaos_exp.run ~config () in
  chaos_ok "scripted-disk" r;
  check_bool "durable acks journaled" true (r.durable_acked > 100);
  check_bool "disk failover triggered" true (r.disk_failovers >= 1);
  check_bool "torn record discarded" true (r.torn_discarded >= 1);
  check_bool "corrupt record discarded" true (r.corrupt_discarded >= 1);
  check_int "torn crash fired" 1 r.fault.Fault.torn_crashes;
  check_int "corrupt-tail crash fired" 1 r.fault.Fault.corrupt_tails;
  check_int "stall fired" 1 r.fault.Fault.disk_stalls

let test_chaos_random_disk () =
  let config =
    {
      (Harness.Chaos_exp.default_config ()) with
      plan = Harness.Chaos_exp.Random 7;
      disk_faults = true;
    }
  in
  let r = Harness.Chaos_exp.run ~config () in
  chaos_ok "random-disk-7" r;
  check_bool "torn record discarded" true (r.torn_discarded >= 1);
  check_bool "disk faults fired" true
    (r.fault.Fault.disk_stalls >= 1
    && r.fault.Fault.disk_degrades >= 1
    && r.fault.Fault.torn_crashes >= 1
    && r.fault.Fault.corrupt_tails >= 1)

let test_chaos_parallel_apply_disk () =
  (* Disk faults with four applier workers per replica: crashes land in the
     middle of parallel applies, so recovery must come back to a consistent
     prefix despite out-of-order WAL records (the chain-checked redo scan). *)
  let config =
    {
      (Harness.Chaos_exp.default_config ()) with
      plan = Harness.Chaos_exp.Random 7;
      disk_faults = true;
      apply_workers = 4;
    }
  in
  let r = Harness.Chaos_exp.run ~config () in
  chaos_ok "parallel-apply-disk-7" r;
  check_bool "disk faults fired" true
    (r.fault.Fault.disk_stalls >= 1 && r.fault.Fault.torn_crashes >= 1)

let test_chaos_random_disk_renumber () =
  (* Regression for the version re-stamping of inherited entries: this seed
     makes a leader die with proposed-but-unacked entries while a later
     entry survives on the followers, so the new leader no-ops the gap and
     the survivor must be renumbered at apply time. *)
  let config =
    {
      (Harness.Chaos_exp.default_config ()) with
      plan = Harness.Chaos_exp.Random 13;
      disk_faults = true;
    }
  in
  chaos_ok "random-disk-13" (Harness.Chaos_exp.run ~config ())

(* ------------------------------------------------------------------ *)
(* Plan generation and pretty-printing *)

let test_random_plan_deterministic () =
  let gen ?(n_partitions = 1) ?(disk_faults = false) seed =
    Fault.random_plan ~seed ~duration:(Time.sec 20) ~n_certifiers:3
      ~n_replicas:3 ~n_partitions ~disk_faults ()
  in
  check_bool "same seed, same plan" true (gen 5 = gen 5);
  check_bool "same seed, same partitioned plan" true
    (gen ~n_partitions:2 5 = gen ~n_partitions:2 5);
  check_bool "same seed, same disk plan" true
    (gen ~disk_faults:true 5 = gen ~disk_faults:true 5);
  check_bool "different seeds diverge" true (gen 5 <> gen 6);
  check_bool "non-empty" true (List.length (gen 5) >= 4);
  (* The generator promises every fault healed by a final backstop. *)
  check_bool "heal-all backstop present" true
    (List.exists (fun (_, a) -> a = Fault.Heal_all) (gen 5))

let test_pp_action_golden () =
  (* One case per action variant: the printed plan is the repro artifact
     explore emits, so its format is pinned. *)
  let cases =
    [
      ( Fault.Partition ([ Fault.Rep 0 ], [ Fault.Cert 0; Fault.Cert 1 ]),
        "partition {replica0} | {cert0 cert1}" );
      ( Fault.Heal ([ Fault.Rep 0 ], [ Fault.Cert 0; Fault.Cert 1 ]),
        "heal {replica0} | {cert0 cert1}" );
      (Fault.Heal_all, "heal-all");
      ( Fault.Drop_burst { rate = 0.1; duration = Time.sec 2 },
        "drop-burst 0.10 for 2.000s" );
      ( Fault.Latency_spike
          {
            a = Fault.Cert 0;
            b = Fault.Rep 1;
            extra = Time.of_ms 5.;
            duration = Time.sec 1;
          },
        "latency-spike cert0-replica1 +5.000ms for 1.000s" );
      (Fault.Crash_certifier 2, "crash cert2");
      (Fault.Recover_certifier 2, "recover cert2");
      (Fault.Crash_leader, "crash leader");
      (Fault.Recover_crashed, "recover crashed leader");
      (Fault.Crash_group_leader 1, "crash p1 leader");
      (Fault.Recover_group_crashed 1, "recover crashed p1 leader");
      (Fault.Crash_replica 0, "crash replica0");
      (Fault.Recover_replica 0, "recover replica0");
      ( Fault.Disk_stall
          { cert = None; extra = Time.of_ms 600.; duration = Time.sec 2 },
        "disk-stall leader +600.000ms for 2.000s" );
      ( Fault.Disk_degrade { cert = Some 1; factor = 4.; duration = Time.sec 1 },
        "disk-degrade cert1 x4.0 for 1.000s" );
      (Fault.Torn_crash { cert = None }, "torn-crash leader");
      (Fault.Corrupt_tail { cert = Some 0 }, "corrupt-tail cert0");
      ( Fault.Delay_msg
          {
            cls = Fault.M_paxos_accept_ok;
            src = None;
            dst = Some (Fault.Cert 1);
            nth = 3;
            extra = Time.of_ms 250.;
          },
        "delay-msg paxos-accept-ok#3 *->cert1 +250.000ms" );
      ( Fault.Drop_msg
          { cls = Fault.M_xvote; src = Some (Fault.Cert 0); dst = None; nth = 2 },
        "drop-msg xvote#2 cert0->*" );
      ( Fault.Crash_on_msg
          {
            cls = Fault.M_paxos_commit;
            src = Some (Fault.Cert 1);
            dst = None;
            nth = 1;
            victim = Fault.Cert 1;
          },
        "crash-on-msg paxos-commit#1 cert1->* kill cert1" );
    ]
  in
  List.iter
    (fun (action, expected) ->
      Alcotest.(check string)
        expected expected
        (Format.asprintf "%a" Fault.pp_action action))
    cases;
  (* Every message class has a distinct printed name (tap rules in a repro
     plan must be unambiguous). *)
  let classes =
    [
      Fault.M_cert_request;
      Fault.M_cert_reply;
      Fault.M_fetch_reply;
      Fault.M_xcert_request;
      Fault.M_xvote;
      Fault.M_paxos_prepare;
      Fault.M_paxos_accept;
      Fault.M_paxos_accept_ok;
      Fault.M_paxos_commit;
      Fault.M_paxos_heartbeat;
    ]
  in
  let names = List.map Fault.msg_class_name classes in
  check_int "distinct class names" (List.length classes)
    (List.length (List.sort_uniq compare names))

let test_orphaned_crash_recover_noop () =
  (* A shrunk plan may keep a crash or recover whose partner was edited
     out; the injector must treat a double crash / spurious recover as a
     no-op (not a crashed-node miscount or a network reattach error). *)
  let plan =
    [
      (Time.of_sec 1.0, Fault.Recover_replica 1);
      (Time.of_sec 1.5, Fault.Recover_certifier 0);
      (Time.of_sec 2.0, Fault.Crash_replica 1);
      (Time.of_sec 2.5, Fault.Crash_replica 1);
      (Time.of_sec 4.0, Fault.Recover_replica 1);
      (Time.of_sec 5.0, Fault.Heal_all);
    ]
  in
  let config =
    {
      (Harness.Chaos_exp.default_config ()) with
      plan = Harness.Chaos_exp.Explicit plan;
      duration = Time.sec 10;
    }
  in
  let r = Harness.Chaos_exp.run ~config () in
  check_int "no invariant violations" 0 (List.length r.violations);
  check_int "no monitor violations" 0 (List.length r.monitor_violations);
  check_int "one crash counted" 1 r.fault.Fault.crashes;
  check_int "one recovery counted" 1 r.fault.Fault.recoveries

let suites =
  [
    ( "fault.failover",
      [
        Alcotest.test_case "stale fetch reply discarded" `Quick
          test_stale_fetch_reply_discarded;
        Alcotest.test_case "concurrent fetches routed" `Quick
          test_concurrent_fetches_routed_independently;
        Alcotest.test_case "redirect to unknown leader" `Quick
          test_redirect_to_unknown_leader_falls_back;
        Alcotest.test_case "bounded backoff under partition" `Quick
          test_bounded_backoff_under_full_partition;
        Alcotest.test_case "restart after unregister" `Quick
          test_restart_after_unregister_purges_floors;
        Alcotest.test_case "fsync stall forces abdication" `Quick
          test_fsync_stall_forces_abdication;
      ] );
    ( "fault.chaos",
      [
        Alcotest.test_case "scripted plan" `Quick test_chaos_scripted;
        Alcotest.test_case "random plan (seed 1)" `Quick test_chaos_random;
        Alcotest.test_case "scripted disk-fault plan" `Quick test_chaos_scripted_disk;
        Alcotest.test_case "random disk-fault plan (seed 7)" `Quick
          test_chaos_random_disk;
        Alcotest.test_case "inherited-entry renumbering (seed 13)" `Quick
          test_chaos_random_disk_renumber;
        Alcotest.test_case "parallel apply under disk faults" `Quick
          test_chaos_parallel_apply_disk;
      ] );
    ( "fault.plan",
      [
        Alcotest.test_case "random_plan is deterministic" `Quick
          test_random_plan_deterministic;
        Alcotest.test_case "pp_action golden (every variant)" `Quick
          test_pp_action_golden;
        Alcotest.test_case "orphaned crash/recover are no-ops" `Quick
          test_orphaned_crash_recover_noop;
      ] );
  ]

(* Tests for the experiment harness: each system configuration runs and
   reports sane, paper-shaped metrics. These use short windows, so they
   assert robust orderings rather than point values. *)

let check_bool = Alcotest.(check bool)

let quick_cfg system workload n =
  {
    Harness.Experiment.default with
    Harness.Experiment.system;
    workload;
    n_replicas = n;
    warmup = Sim.Time.sec 2;
    measure = Sim.Time.sec 4;
  }

let test_each_system_runs () =
  List.iter
    (fun system ->
      let r = Harness.Experiment.run (quick_cfg system Harness.Experiment.All_updates 2) in
      check_bool
        (Harness.Experiment.system_name system ^ " produces throughput")
        true (r.goodput > 10.);
      check_bool "response time positive" true (r.resp_ms > 0.))
    [
      Harness.Experiment.Standalone;
      Harness.Experiment.Replicated Tashkent.Types.Base;
      Harness.Experiment.Replicated Tashkent.Types.Tashkent_mw;
      Harness.Experiment.Replicated Tashkent.Types.Tashkent_api;
      Harness.Experiment.Replicated_nocert Tashkent.Types.Tashkent_api;
    ]

let test_headline_ordering () =
  (* The paper's core claim at any non-trivial replica count: both Tashkent
     systems clearly beat Base on AllUpdates. *)
  let run system =
    (Harness.Experiment.run (quick_cfg system Harness.Experiment.All_updates 6)).goodput
  in
  let base = run (Harness.Experiment.Replicated Tashkent.Types.Base) in
  let mw = run (Harness.Experiment.Replicated Tashkent.Types.Tashkent_mw) in
  let api = run (Harness.Experiment.Replicated Tashkent.Types.Tashkent_api) in
  check_bool
    (Printf.sprintf "mw (%.0f) > 2x base (%.0f)" mw base)
    true (mw > 2. *. base);
  check_bool (Printf.sprintf "api (%.0f) > 1.5x base (%.0f)" api base) true
    (api > 1.5 *. base);
  check_bool "mw >= api" true (mw >= api)

let test_base_serial_commit_ceiling () =
  (* Base's replicas commit serially: ~50-60 local commits/s/replica. *)
  let r =
    Harness.Experiment.run
      (quick_cfg (Harness.Experiment.Replicated Tashkent.Types.Base)
         Harness.Experiment.All_updates 4)
  in
  let per_replica = r.goodput /. 4. in
  check_bool
    (Printf.sprintf "base %.0f/replica within [30, 75]" per_replica)
    true
    (per_replica > 30. && per_replica < 75.)

let test_forced_abort_rate_respected () =
  let cfg =
    {
      (quick_cfg (Harness.Experiment.Replicated Tashkent.Types.Tashkent_mw)
         Harness.Experiment.All_updates 3)
      with
      Harness.Experiment.abort_rate = 0.3;
    }
  in
  let r = Harness.Experiment.run cfg in
  check_bool
    (Printf.sprintf "measured abort rate %.2f near 0.3" r.abort_rate_measured)
    true
    (r.abort_rate_measured > 0.22 && r.abort_rate_measured < 0.38);
  check_bool "goodput < throughput" true (r.goodput < r.throughput)

let test_grouping_ablation_direction () =
  let with_grouping grouping =
    Harness.Experiment.run
      {
        (quick_cfg (Harness.Experiment.Replicated Tashkent.Types.Base)
           Harness.Experiment.All_updates 4)
        with
        Harness.Experiment.group_remote_batches = grouping;
      }
  in
  let grouped = with_grouping true and naive = with_grouping false in
  check_bool
    (Printf.sprintf "grouping helps (%.0f vs %.0f)" grouped.goodput naive.goodput)
    true
    (grouped.goodput > naive.goodput)

let test_dedicated_io_not_worse () =
  let run io =
    Harness.Experiment.run
      {
        (quick_cfg (Harness.Experiment.Replicated Tashkent.Types.Tashkent_api)
           Harness.Experiment.All_updates 4)
        with
        Harness.Experiment.io;
      }
  in
  let shared = run Tashkent.Replica.Shared_io in
  let dedicated = run Tashkent.Replica.Dedicated_io in
  check_bool "dedicated >= 0.9x shared" true (dedicated.goodput >= 0.9 *. shared.goodput)

let test_certifier_group_size_free () =
  (* Replicating the certifier for availability costs ~nothing in
     throughput (fsyncs happen in parallel, majority = leader + 1). *)
  let run n_certifiers =
    Harness.Experiment.run
      {
        (quick_cfg (Harness.Experiment.Replicated Tashkent.Types.Tashkent_mw)
           Harness.Experiment.All_updates 4)
        with
        Harness.Experiment.n_certifiers;
      }
  in
  let one = run 1 and three = run 3 in
  check_bool
    (Printf.sprintf "3 certifiers within 15%% of 1 (%.0f vs %.0f)" three.goodput one.goodput)
    true
    (three.goodput > 0.85 *. one.goodput)

let test_net_dump_duration () =
  let ms = Sim.Time.of_ms in
  (* measurement started before the dump began: the idle lead-in between
     13.2 s and 15 s must not count toward the dump *)
  Alcotest.(check int) "lead-in subtracted"
    (Sim.Time.to_us (ms 85_000.))
    (Sim.Time.to_us
       (Harness.Recovery_exp.net_dump_duration ~dump_began:(ms 15_000.)
          ~measured_from:(ms 13_200.) ~finished:(ms 100_000.)));
  (* measurement started after the dump began: plain difference *)
  Alcotest.(check int) "no lead-in to subtract"
    (Sim.Time.to_us (ms 80_000.))
    (Sim.Time.to_us
       (Harness.Recovery_exp.net_dump_duration ~dump_began:(ms 15_000.)
          ~measured_from:(ms 20_000.) ~finished:(ms 100_000.)))

let test_recovery_experiment_smoke () =
  let r = Harness.Recovery_exp.run ~n_replicas:4 ~seed:77 () in
  check_bool "dump took minutes" true Sim.Time.(r.dump_duration > Sim.Time.sec 60);
  check_bool "restore took ~2 minutes" true
    Sim.Time.(r.mw_restore_duration > Sim.Time.sec 60);
  (* degradation is load-dependent and noisy in this short smoke window at
     small n; just require a sane fraction (the full-size measurement is the
     bench's `recovery` section, which lands near the paper's 13%) *)
  check_bool "degradation is a sane fraction" true
    (r.dump_degradation > -0.5 && r.dump_degradation < 0.9);
  check_bool "db recovery seconds" true
    Sim.Time.(
      r.db_recovery_duration >= Sim.Time.sec 2 && r.db_recovery_duration <= Sim.Time.sec 5);
  check_bool "replay happened" true (r.mw_replayed > 0);
  check_bool "cert log grows" true (r.cert_log_bytes_per_hour > 0.);
  check_bool "cert recovery fast" true Sim.Time.(r.cert_recovery_duration < Sim.Time.sec 10)

let test_soak_smoke () =
  (* A compressed soak (fixed seed, 2 simulated minutes, one leader crash
     and one 30 s replica outage): both GC paths must fire, growth must
     stay bounded, latency flat, the pruned-prefix recovery must heal via
     snapshot transfer, and all of it with zero invariant violations. The
     full-length run is `tashkent-cli soak` / the bench's `soak` section. *)
  let config =
    {
      (Harness.Soak_exp.default_config ()) with
      Harness.Soak_exp.duration = Sim.Time.sec 150;
      window = Sim.Time.sec 15;
      chaos_period = Sim.Time.sec 45;
    }
  in
  let r = Harness.Soak_exp.run ~config () in
  Alcotest.(check (list string)) "no violations" [] r.violations;
  check_bool "traffic flowed" true (r.commits > 1_000);
  check_bool "store GC pruned" true (r.store_pruned > 0);
  check_bool "cert log truncated" true (r.cert_pruned > 0);
  check_bool "pruned-prefix recovery used a snapshot" true
    (r.snapshot_installs > 0);
  (* every sampled window keeps the version count and live log small
     multiples of the steady-state working set *)
  List.iter
    (fun (w : Harness.Soak_exp.window_sample) ->
      check_bool "store versions bounded" true (w.store_versions < 20_000);
      check_bool "live log bytes bounded" true (w.cert_bytes < 4_000_000))
    r.windows

let test_soak_no_gc_baseline_grows () =
  (* The control: with vacuuming off the version count must climb with
     wall-clock — this is the unbounded growth the watermark exists to
     fix, and it keeps the soak's boundedness assertions honest. *)
  let config =
    {
      (Harness.Soak_exp.default_config ()) with
      Harness.Soak_exp.duration = Sim.Time.sec 120;
      window = Sim.Time.sec 30;
      gc_interval = None;
      chaos = false;
    }
  in
  let r = Harness.Soak_exp.run ~config () in
  (* The certifier still truncates its log — that side is driven by the
     watermark stamps, not the replica vacuum knob — but no replica may
     prune a row version. *)
  check_bool "no store version pruned without GC" true (r.store_pruned = 0);
  check_bool "the boundedness assertions catch the growth" true
    (r.violations <> []);
  match r.windows with
  | first :: rest ->
      let last = List.nth rest (List.length rest - 1) in
      check_bool "version count climbs monotonically with the clock" true
        (last.Harness.Soak_exp.store_versions
        > 2 * first.Harness.Soak_exp.store_versions)
  | [] -> Alcotest.fail "no windows sampled"

let test_report_table_renders () =
  let t = Harness.Report.table ~columns:[ "a"; "bbbb" ] in
  Harness.Report.row t [ "1"; "2" ];
  Harness.Report.row t [ "333"; "4" ];
  (* smoke: must not raise on ragged/odd input *)
  Harness.Report.print t;
  Harness.Report.kv "key" "value";
  Harness.Report.paper_vs ~what:"x" ~paper:"1" ~measured:"2";
  Alcotest.(check string) "f1" "1.2" (Harness.Report.f1 1.25);
  Alcotest.(check string) "pct" "50%" (Harness.Report.pct 0.5)

(* ------------------------------------------------------------------ *)
(* Schedule exploration *)

let test_targeted_plan_deterministic () =
  let gen ?(n_partitions = 1) seed =
    Harness.Explore_exp.targeted_plan ~seed ~duration:(Sim.Time.sec 20)
      ~n_certifiers:3 ~n_replicas:3 ~n_partitions ()
  in
  check_bool "same seed, same plan" true (gen 3 = gen 3);
  check_bool "different seeds diverge" true (gen 3 <> gen 4);
  check_bool "heal-all backstop" true
    (List.exists (fun (_, a) -> a = Fault.Heal_all) (gen 3));
  (* Every generated plan carries at least one precise message tap. *)
  let has_tap plan =
    List.exists
      (fun (_, a) ->
        match a with
        | Fault.Delay_msg _ | Fault.Drop_msg _ | Fault.Crash_on_msg _ -> true
        | _ -> false)
      plan
  in
  List.iter
    (fun s -> check_bool "tap present" true (has_tap (gen s)))
    [ 1; 2; 3; 4; 5 ];
  (* Any certifier crashed by a tap has a recovery scheduled after it. *)
  List.iter
    (fun s ->
      List.iter
        (fun (t, a) ->
          match a with
          | Fault.Crash_on_msg { victim = Fault.Cert v; _ } ->
              check_bool "paired recovery" true
                (List.exists
                   (fun (t', a') ->
                     a' = Fault.Recover_certifier v && Sim.Time.(t < t'))
                   (gen s))
          | _ -> ())
        (gen s))
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_explore_smoke () =
  (* A small sweep over a healthy model: every schedule must come back
     clean (each run also exercises the five online monitors). *)
  let cfg =
    {
      (Harness.Explore_exp.default_config ()) with
      Harness.Explore_exp.base =
        {
          (Harness.Chaos_exp.default_config ()) with
          duration = Sim.Time.sec 10;
          seed = 20060418;
        };
      first_seed = 1;
      n_seeds = 2;
      batch = 2;
    }
  in
  let r = Harness.Explore_exp.run cfg in
  List.iter
    (fun rp ->
      Format.printf "explore repro: %a@." Harness.Explore_exp.pp_repro rp)
    r.repros;
  Alcotest.(check int) "scenarios" 4 r.scenarios_run;
  Alcotest.(check int) "no repros" 0 (List.length r.repros);
  Alcotest.(check int) "all clean" 4 r.clean

let test_seed11_stale_reanswer_regression () =
  (* Named regression, found by `tashkent-cli explore` (random schedule,
     plan seed 11, workload seed 20060418) and shrunk to one action: a
     bare leader crash at 4.131 s. The failover re-answers a retried,
     already-decided commit; meanwhile the GC floor has passed the
     requesting replica's stale watermark, so the re-answer's composed
     remotes cannot bridge the replica's applied prefix — before the fix
     the proxy installed the commit over the truncated hole and the
     serial-order monitor flagged the snapshot advancing across the
     missing versions. The proxy now detects the unbridged reply and
     fetches (a snapshot transfer) before installing: the run must be
     clean AND the heal must actually fire, proving the schedule still
     reaches the pathological interleaving. *)
  let config =
    {
      (Harness.Chaos_exp.default_config ()) with
      seed = 20060418;
      plan =
        Harness.Chaos_exp.Explicit
          [ (Sim.Time.of_ms 4131., Fault.Crash_leader) ];
    }
  in
  let r = Harness.Chaos_exp.run ~config () in
  List.iter (Printf.printf "seed11 violation: %s\n") r.violations;
  List.iter (Printf.printf "seed11 monitor violation: %s\n") r.monitor_violations;
  Alcotest.(check int) "no invariant violations" 0 (List.length r.violations);
  Alcotest.(check int) "no monitor violations" 0
    (List.length r.monitor_violations);
  check_bool "bridge heal fired" true (r.bridge_heals >= 1);
  check_bool "made progress" true (r.commits > 1000)

let suites =
  [
    ( "harness.experiment",
      [
        Alcotest.test_case "every system runs" `Quick test_each_system_runs;
        Alcotest.test_case "headline ordering (mw > api > base)" `Quick
          test_headline_ordering;
        Alcotest.test_case "base serial-commit ceiling" `Quick
          test_base_serial_commit_ceiling;
        Alcotest.test_case "forced abort knob respected" `Quick
          test_forced_abort_rate_respected;
        Alcotest.test_case "grouping ablation direction" `Quick
          test_grouping_ablation_direction;
        Alcotest.test_case "dedicated io not worse" `Quick test_dedicated_io_not_worse;
        Alcotest.test_case "certifier replication is cheap" `Quick
          test_certifier_group_size_free;
      ] );
    ( "harness.recovery",
      [
        Alcotest.test_case "net dump duration" `Quick test_net_dump_duration;
        Alcotest.test_case "recovery experiment smoke" `Slow
          test_recovery_experiment_smoke;
      ] );
    ( "harness.soak",
      [
        Alcotest.test_case "soak smoke (GC bounded, chaos clean)" `Slow
          test_soak_smoke;
        Alcotest.test_case "no-GC baseline grows unbounded" `Slow
          test_soak_no_gc_baseline_grows;
      ] );
    ( "harness.explore",
      [
        Alcotest.test_case "targeted plan is deterministic" `Quick
          test_targeted_plan_deterministic;
        Alcotest.test_case "explore smoke (healthy model sweeps clean)" `Slow
          test_explore_smoke;
        Alcotest.test_case "seed-11 stale re-answer over truncated hole" `Quick
          test_seed11_stale_reanswer_regression;
      ] );
    ( "harness.report",
      [ Alcotest.test_case "table rendering" `Quick test_report_table_renders ] );
  ]

(* End-to-end tests of the replication middleware: certification log,
   certifier group, proxy behaviour, the three system modes, fault
   tolerance and the prefix-consistency safety invariant. *)

open Sim
open Tashkent

let k table row = Mvcc.Key.make ~table ~row
let vi n = Mvcc.Value.int n
let upd n = Mvcc.Writeset.Update (vi n)
let ws1 key n = Mvcc.Writeset.singleton key (upd n)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Cert_log *)

let entry version origin req_id ws =
  { Types.version; origin; req_id; ws; gc_floor = 0; xa = None }

let test_cert_log_append_and_certify () =
  let log = Cert_log.create () in
  Cert_log.append log (entry 1 "r0" 1 (ws1 (k "t" "a") 1));
  Cert_log.append log (entry 2 "r1" 2 (ws1 (k "t" "b") 2));
  Cert_log.append log (entry 3 "r0" 3 (ws1 (k "t" "a") 3));
  check_int "version" 3 (Cert_log.version log);
  (* conflicting writeset started at version 0 *)
  Alcotest.(check (option int)) "conflict newest" (Some 3)
    (Cert_log.certify log (ws1 (k "t" "a") 9) ~start_version:0);
  Alcotest.(check (option int)) "no conflict after 3" None
    (Cert_log.certify log (ws1 (k "t" "a") 9) ~start_version:3);
  Alcotest.(check (option int)) "disjoint key passes" None
    (Cert_log.certify log (ws1 (k "t" "zz") 9) ~start_version:0);
  (* dense version check *)
  match Cert_log.append log (entry 5 "r0" 9 (ws1 (k "t" "c") 1)) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "gap in versions must be rejected"

let test_cert_log_entries_between () =
  let log = Cert_log.create () in
  for v = 1 to 5 do
    Cert_log.append log (entry v "r0" v (ws1 (k "t" (string_of_int v)) v))
  done;
  let versions lo hi =
    List.map (fun (e : Types.entry) -> e.version) (Cert_log.entries_between log ~lo ~hi)
  in
  Alcotest.(check (list int)) "window (2,4]" [ 3; 4 ] (versions 2 4);
  Alcotest.(check (list int)) "clamped hi" [ 5 ] (versions 4 99);
  Alcotest.(check (list int)) "empty window" [] (versions 5 5)

let test_cert_log_back_certify () =
  let log = Cert_log.create () in
  Cert_log.append log (entry 1 "r0" 1 (ws1 (k "t" "x") 1));
  Cert_log.append log (entry 2 "r1" 2 (ws1 (k "t" "y") 2));
  Cert_log.append log (entry 3 "r2" 3 (ws1 (k "t" "x") 3));
  (* entry 3 conflicts with entry 1 when checked back to version 0 *)
  Alcotest.(check (option int)) "finds older conflict" (Some 1)
    (Cert_log.back_certify log ~version:3 ~down_to:0);
  (* entry 2 is conflict-free all the way down *)
  Alcotest.(check (option int)) "no conflict" None
    (Cert_log.back_certify log ~version:2 ~down_to:0);
  let scans = Cert_log.back_certifications log in
  (* repeating the same check is memoised *)
  ignore (Cert_log.back_certify log ~version:2 ~down_to:0);
  check_int "memoised" scans (Cert_log.back_certifications log)

let test_cert_log_delta_fast_path () =
  let add key d = Mvcc.Writeset.singleton key (Mvcc.Writeset.Add d) in
  let log = Cert_log.create () in
  Cert_log.append log (entry 1 "r0" 1 (add (k "t" "a") 1));
  Cert_log.append log (entry 2 "r1" 2 (add (k "t" "a") 2));
  (* delta vs committed deltas: both overlaps are skipped, no conflict *)
  let skips0 = Cert_log.delta_overlaps log in
  Alcotest.(check (option int)) "delta certifies over deltas" None
    (Cert_log.certify log (add (k "t" "a") 5) ~start_version:0);
  check_bool "fast-path skips counted" true (Cert_log.delta_overlaps log > skips0);
  (* a blind write of the same key conflicts with the committed deltas *)
  Alcotest.(check (option int)) "blind write conflicts" (Some 2)
    (Cert_log.certify log (ws1 (k "t" "a") 9) ~start_version:0);
  (* and a delta conflicts with a committed blind write below the deltas *)
  Cert_log.append log (entry 3 "r0" 3 (ws1 (k "t" "a") 9));
  Cert_log.append log (entry 4 "r1" 4 (add (k "t" "a") 1));
  Alcotest.(check (option int)) "delta finds the blind write under a delta" (Some 3)
    (Cert_log.certify log (add (k "t" "a") 5) ~start_version:0);
  Alcotest.(check (option int)) "delta started after the blind write passes" None
    (Cert_log.certify log (add (k "t" "a") 5) ~start_version:3)

let test_cert_log_truncation () =
  let log = Cert_log.create () in
  for v = 1 to 10 do
    Cert_log.append log (entry v "r0" v (ws1 (k "t" (string_of_int v)) v))
  done;
  let bytes_before = Cert_log.bytes_total log in
  Cert_log.truncate log ~upto:6;
  check_int "floor" 6 (Cert_log.floor log);
  check_int "live entries" 4 (Cert_log.entries log);
  check_int "version arithmetic intact" 10 (Cert_log.version log);
  check_int "pruned counted" 6 (Cert_log.pruned log);
  check_bool "live bytes shrank" true (Cert_log.bytes_live log < bytes_before);
  check_int "cumulative bytes kept" bytes_before (Cert_log.bytes_total log);
  (* idempotent, and a stale (lower) floor is a no-op *)
  Cert_log.truncate log ~upto:6;
  Cert_log.truncate log ~upto:3;
  check_int "idempotent floor" 6 (Cert_log.floor log);
  check_int "idempotent pruned" 6 (Cert_log.pruned log);
  (* below-floor slots are unreachable, never served stale *)
  check_bool "get_opt below the floor" true (Cert_log.get_opt log 6 = None);
  (match Cert_log.get log 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "get below the floor must raise");
  (* no certification scan reaches below the floor: a key written only in
     the truncated prefix no longer conflicts (the certifier answers
     too-old start versions before ever scanning) *)
  Alcotest.(check (option int)) "pre-floor writer invisible" None
    (Cert_log.certify log (ws1 (k "t" "4") 99) ~start_version:0);
  Alcotest.(check (option int)) "live writer still found" (Some 8)
    (Cert_log.certify log (ws1 (k "t" "8") 99) ~start_version:0);
  Alcotest.(check (option int)) "back_certify below the floor" None
    (Cert_log.back_certify log ~version:4 ~down_to:0);
  check_int "entries_between clamps at the floor" 4
    (List.length (Cert_log.entries_between log ~lo:0 ~hi:10));
  (* appending continues the same version arithmetic *)
  Cert_log.append log (entry 11 "r1" 11 (ws1 (k "t" "11") 11));
  check_int "append after truncate" 11 (Cert_log.version log);
  check_int "five live" 5 (Cert_log.entries log);
  (* the folded base answers below-floor state *)
  check_bool "truncated write folded into the base" true
    (List.exists
       (fun (key, v) -> Mvcc.Key.equal key (k "t" "4") && v = Some (vi 4))
       (Cert_log.base_rows log));
  check_int "per-origin truncation ledger" 6
    (Cert_log.truncated_for_origin log "r0")

let test_cert_log_truncate_folds_deletes () =
  let log = Cert_log.create () in
  Cert_log.append log (entry 1 "r0" 1 (ws1 (k "t" "a") 1));
  Cert_log.append log
    (entry 2 "r0" 2 (Mvcc.Writeset.singleton (k "t" "a") Mvcc.Writeset.Delete));
  Cert_log.append log (entry 3 "r0" 3 (ws1 (k "t" "b") 3));
  Cert_log.truncate log ~upto:3;
  check_int "everything truncated" 0 (Cert_log.entries log);
  let base = Cert_log.base_rows log in
  check_bool "deleted key reads None in the base" true
    (List.exists (fun (key, v) -> Mvcc.Key.equal key (k "t" "a") && v = None) base);
  check_bool "live key folded" true
    (List.exists
       (fun (key, v) -> Mvcc.Key.equal key (k "t" "b") && v = Some (vi 3))
       base);
  (* a floor beyond the head clamps instead of inventing versions *)
  Cert_log.truncate log ~upto:99;
  check_int "clamped to the head" 3 (Cert_log.floor log);
  Cert_log.append log (entry 4 "r0" 4 (ws1 (k "t" "c") 4));
  check_int "append after clamped truncate" 4 (Cert_log.version log)

let test_overlay_delta_fast_path () =
  let add key d = Mvcc.Writeset.singleton key (Mvcc.Writeset.Add d) in
  let o = Overlay.create () in
  Overlay.add o (entry 5 "r0" 1 (add (k "t" "a") 1));
  Alcotest.(check (option int)) "delta passes an uncertified delta" None
    (Overlay.conflict o (add (k "t" "a") 2) ~start_version:0);
  check_bool "skip counted" true (Overlay.delta_overlaps o > 0);
  Alcotest.(check (option int)) "blind write conflicts with it" (Some 5)
    (Overlay.conflict o (ws1 (k "t" "a") 9) ~start_version:0);
  Overlay.add o (entry 6 "r1" 2 (ws1 (k "t" "b") 9));
  Alcotest.(check (option int)) "delta conflicts with an uncertified blind write"
    (Some 6)
    (Overlay.conflict o (add (k "t" "b") 2) ~start_version:0)

(* ------------------------------------------------------------------ *)
(* Cluster helpers *)

let quick_replica mode =
  {
    (Replica.default_config mode) with
    Replica.exec_cpu = Time.us 200;
    staleness_bound = Some (Time.of_ms 200.);
  }

let make_cluster ?(mode = Types.Base) ?(n_replicas = 3) ?(n_certifiers = 3) ?(seed = 7)
    ?(certifier = Certifier.default_config) ?replica () =
  let replica = Option.value ~default:(quick_replica mode) replica in
  let cfg =
    { Cluster.mode; n_replicas; n_certifiers; n_partitions = 1;
      hosting = Cluster.Host_all; certifier; replica; seed }
  in
  let c = Cluster.create cfg in
  Cluster.load_all c
    [ (k "t" "a", vi 0); (k "t" "b", vi 0); (k "t" "c", vi 0); (k "t" "d", vi 0) ];
  Cluster.settle c;
  c

let run_for c span =
  Engine.run ~until:(Time.add (Engine.now (Cluster.engine c)) span) (Cluster.engine c)

(* Run one update transaction on replica [i]; store the outcome. *)
let submit_tx c i ~key ~value outcome =
  let r = Cluster.replica c i in
  let p = Replica.proxy r in
  ignore
    (Engine.spawn (Cluster.engine c) ~name:"client" (fun () ->
         let tx = Proxy.begin_tx p in
         Replica.use_cpu r (Replica.config r).Replica.exec_cpu;
         match Proxy.write p tx key (upd value) with
         | Error f ->
             Proxy.abort p tx;
             outcome := Some (Error f)
         | Ok () -> outcome := Some (Proxy.commit p tx)))

let expect_commit msg = function
  | Some (Ok ()) -> ()
  | Some (Error f) -> Alcotest.fail (Format.asprintf "%s: failed: %a" msg Proxy.pp_failure f)
  | None -> Alcotest.fail (msg ^ ": transaction never finished")

let check_consistent c =
  match Cluster.check_consistency c with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("inconsistent: " ^ msg)

(* ------------------------------------------------------------------ *)
(* End-to-end per mode *)

let test_mode_replicates mode () =
  let c = make_cluster ~mode () in
  let o1 = ref None and o2 = ref None and o3 = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:10 o1;
  submit_tx c 1 ~key:(k "t" "b") ~value:20 o2;
  submit_tx c 2 ~key:(k "t" "c") ~value:30 o3;
  run_for c (Time.sec 3);
  expect_commit "tx1" !o1;
  expect_commit "tx2" !o2;
  expect_commit "tx3" !o3;
  (* staleness bound has propagated everything everywhere *)
  List.iter
    (fun r ->
      let db = Replica.db r in
      let got key =
        match Mvcc.Db.read_committed db key with
        | Some v -> Mvcc.Value.as_int v
        | None -> -1
      in
      check_int (Replica.name r ^ " a") 10 (got (k "t" "a"));
      check_int (Replica.name r ^ " b") 20 (got (k "t" "b"));
      check_int (Replica.name r ^ " c") 30 (got (k "t" "c")))
    (Cluster.replicas c);
  check_consistent c

let test_conflict_aborts_one () =
  let c = make_cluster () in
  let o1 = ref None and o2 = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:1 o1;
  submit_tx c 1 ~key:(k "t" "a") ~value:2 o2;
  run_for c (Time.sec 3);
  let commits =
    List.length
      (List.filter (fun o -> match !o with Some (Ok ()) -> true | _ -> false) [ o1; o2 ])
  in
  let cert_aborts =
    List.length
      (List.filter
         (fun o ->
           match !o with
           | Some (Error (Proxy.Cert_abort Types.Ww_conflict)) -> true
           | _ -> false)
         [ o1; o2 ])
  in
  check_int "one committed" 1 commits;
  check_int "one certification abort" 1 cert_aborts;
  check_consistent c

let test_sequential_same_key_both_commit () =
  (* Non-concurrent writers to the same key never conflict. *)
  let c = make_cluster () in
  let o1 = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:1 o1;
  run_for c (Time.sec 2);
  expect_commit "first" !o1;
  let o2 = ref None in
  submit_tx c 1 ~key:(k "t" "a") ~value:2 o2;
  run_for c (Time.sec 2);
  expect_commit "second" !o2;
  check_consistent c

let test_read_only_never_blocks () =
  let c = make_cluster () in
  let p = Replica.proxy (Cluster.replica c 0) in
  let elapsed = ref Time.zero in
  ignore
    (Engine.spawn (Cluster.engine c) (fun () ->
         let started = Engine.now (Cluster.engine c) in
         let tx = Proxy.begin_tx p in
         ignore (Proxy.read p tx (k "t" "a"));
         (match Proxy.commit p tx with
         | Ok () -> ()
         | Error _ -> Alcotest.fail "read-only transactions always commit");
         elapsed := Time.diff (Engine.now (Cluster.engine c)) started));
  run_for c (Time.sec 1);
  check_bool "no certifier round-trip" true Time.(!elapsed < Time.of_ms 1.);
  check_int "counted as read-only" 1 (Proxy.stats p).Proxy.read_only_commits

let test_snapshot_reads_at_replica () =
  (* A transaction reads its snapshot even while newer versions land. *)
  let c = make_cluster () in
  let p0 = Replica.proxy (Cluster.replica c 0) in
  let observed = ref (-1) in
  ignore
    (Engine.spawn (Cluster.engine c) (fun () ->
         let tx = Proxy.begin_tx p0 in
         ignore (Proxy.read p0 tx (k "t" "a"));
         Engine.sleep (Cluster.engine c) (Time.sec 1);
         (match Proxy.read p0 tx (k "t" "a") with
         | Some v -> observed := Mvcc.Value.as_int v
         | None -> ());
         Proxy.abort p0 tx));
  let o = ref None in
  submit_tx c 1 ~key:(k "t" "a") ~value:99 o;
  run_for c (Time.sec 3);
  expect_commit "writer" !o;
  check_int "snapshot unchanged" 0 !observed

let test_api_artificial_conflict_serialized () =
  (* Two sequential commits to the same key on replica 1 produce remote
     writesets that artificially conflict at replica 0 (Tashkent-API). *)
  let c = make_cluster ~mode:Types.Tashkent_api () in
  (* Disable the refresher on replica 0? Not needed: the conflict info
     travels with fetch replies too. Make replica 1 commit twice, then have
     replica 0 commit once so the reply carries both remotes. *)
  let o1 = ref None and o2 = ref None in
  submit_tx c 1 ~key:(k "t" "a") ~value:1 o1;
  run_for c (Time.of_ms 300.);
  submit_tx c 1 ~key:(k "t" "a") ~value:2 o2;
  run_for c (Time.of_ms 300.);
  expect_commit "first" !o1;
  expect_commit "second" !o2;
  let o3 = ref None in
  submit_tx c 0 ~key:(k "t" "b") ~value:3 o3;
  run_for c (Time.sec 2);
  expect_commit "third" !o3;
  check_consistent c;
  let applied = (Proxy.stats (Replica.proxy (Cluster.replica c 0))).Proxy.remote_ws_applied in
  check_bool "replica0 applied both remotes" true (applied >= 2)

let test_certifier_leader_crash_progress () =
  let c = make_cluster () in
  let o1 = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:1 o1;
  run_for c (Time.sec 2);
  expect_commit "before crash" !o1;
  (match Cluster.leader c with
  | Some leader -> Certifier.crash leader
  | None -> Alcotest.fail "no leader");
  (* new transactions keep committing after failover (retries) *)
  let o2 = ref None in
  submit_tx c 1 ~key:(k "t" "b") ~value:2 o2;
  run_for c (Time.sec 5);
  expect_commit "after failover" !o2;
  check_consistent c

let test_certifier_recover_rejoins () =
  let c = make_cluster () in
  let victim = List.hd (Cluster.certifiers c) in
  Certifier.crash victim;
  let o = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:5 o;
  run_for c (Time.sec 4);
  expect_commit "with one certifier down" !o;
  Certifier.recover victim;
  run_for c (Time.sec 4);
  (* the recovered certifier catches up on the log via state transfer *)
  check_int "log caught up" (Certifier.system_version victim)
    (match Cluster.leader c with
    | Some l -> Certifier.system_version l
    | None -> -1)

let test_replica_crash_recover_base () =
  let c = make_cluster ~mode:Types.Base () in
  let o1 = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:7 o1;
  run_for c (Time.sec 2);
  expect_commit "committed before crash" !o1;
  let r0 = Cluster.replica c 0 in
  Replica.crash r0;
  (* other replicas continue *)
  let o2 = ref None in
  submit_tx c 1 ~key:(k "t" "b") ~value:8 o2;
  run_for c (Time.sec 2);
  expect_commit "progress while down" !o2;
  let report = ref None in
  ignore
    (Engine.spawn (Cluster.engine c) (fun () -> report := Some (Replica.recover r0)));
  run_for c (Time.sec 10);
  (match !report with
  | Some rep ->
      check_bool "restored own commit from WAL" true (rep.Replica.restored_version >= 1);
      check_bool "replayed missed writesets" true (rep.Replica.writesets_replayed >= 1)
  | None -> Alcotest.fail "recovery did not finish");
  check_consistent c;
  (* no committed transaction was lost *)
  let got key =
    match Mvcc.Db.read_committed (Replica.db r0) key with
    | Some v -> Mvcc.Value.as_int v
    | None -> -1
  in
  check_int "own commit survived" 7 (got (k "t" "a"));
  check_int "missed commit replayed" 8 (got (k "t" "b"))

let test_replica_crash_recover_mw_dump () =
  let replica =
    {
      (quick_replica Types.Tashkent_mw) with
      Replica.mw_recovery = Replica.Dump_based { interval = Time.sec 2 };
      db_size_bytes = 1_000_000;
    }
  in
  let c = make_cluster ~mode:Types.Tashkent_mw ~replica () in
  let o1 = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:7 o1;
  run_for c (Time.sec 3);
  expect_commit "committed" !o1;
  (* wait for a dump to be taken *)
  run_for c (Time.sec 3);
  let r0 = Cluster.replica c 0 in
  check_bool "dump taken" true (Replica.dumps_taken r0 >= 1);
  let o2 = ref None in
  submit_tx c 1 ~key:(k "t" "b") ~value:9 o2;
  run_for c (Time.sec 2);
  expect_commit "second" !o2;
  Replica.crash r0;
  let report = ref None in
  ignore
    (Engine.spawn (Cluster.engine c) (fun () -> report := Some (Replica.recover r0)));
  run_for c (Time.sec 30);
  (match !report with
  | Some _ -> ()
  | None -> Alcotest.fail "recovery did not finish");
  check_consistent c;
  let got key =
    match Mvcc.Db.read_committed (Replica.db r0) key with
    | Some v -> Mvcc.Value.as_int v
    | None -> -1
  in
  check_int "pre-crash commit survives (durability in middleware)" 7 (got (k "t" "a"));
  check_int "missed commit replayed" 9 (got (k "t" "b"))

let test_replica_crash_recover_mw_integrity_kept () =
  let replica =
    {
      (quick_replica Types.Tashkent_mw) with
      Replica.mw_recovery = Replica.Integrity_kept { wal_sync_interval = Time.of_ms 100. };
    }
  in
  let c = make_cluster ~mode:Types.Tashkent_mw ~replica () in
  let o1 = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:7 o1;
  run_for c (Time.sec 2);
  expect_commit "committed" !o1;
  run_for c (Time.sec 1);
  let r0 = Cluster.replica c 0 in
  Replica.crash r0;
  let report = ref None in
  ignore
    (Engine.spawn (Cluster.engine c) (fun () -> report := Some (Replica.recover r0)));
  run_for c (Time.sec 10);
  check_consistent c;
  check_int "commit recovered from synced WAL prefix" 7
    (match Mvcc.Db.read_committed (Replica.db r0) (k "t" "a") with
    | Some v -> Mvcc.Value.as_int v
    | None -> -1)

let test_staleness_bound_refreshes_idle_replica () =
  let c = make_cluster () in
  let o = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:42 o;
  run_for c (Time.sec 2);
  expect_commit "writer" !o;
  (* replica 2 received nothing directly; the refresher must pull it *)
  run_for c (Time.sec 2);
  let r2 = Cluster.replica c 2 in
  check_int "idle replica caught up" 42
    (match Mvcc.Db.read_committed (Replica.db r2) (k "t" "a") with
    | Some v -> Mvcc.Value.as_int v
    | None -> -1);
  check_bool "used a fetch" true ((Proxy.stats (Replica.proxy r2)).Proxy.refreshes >= 1)

let test_forced_abort_rate () =
  let certifier = { Certifier.default_config with forced_abort_rate = 1.0 } in
  let c = make_cluster ~certifier () in
  let o = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:1 o;
  run_for c (Time.sec 2);
  (match !o with
  | Some (Error (Proxy.Cert_abort Types.Forced)) -> ()
  | _ -> Alcotest.fail "expected forced abort");
  check_consistent c


let test_partitioned_replica_retries_until_heal () =
  let c = make_cluster () in
  let net = Cluster.network c in
  let r0 = Replica.name (Cluster.replica c 0) in
  List.iter (fun cert -> Net.Network.partition net r0 cert) (Cluster.certifier_ids c);
  let o = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:1 o;
  run_for c (Time.sec 2);
  check_bool "commit stuck while partitioned" true (!o = None);
  List.iter (fun cert -> Net.Network.heal net r0 cert) (Cluster.certifier_ids c);
  run_for c (Time.sec 3);
  expect_commit "commits after heal" !o;
  check_consistent c

let test_local_certification_promotes_start () =
  let c = make_cluster () in
  let p0 = Replica.proxy (Cluster.replica c 0) in
  (* Client A opens a transaction, then B commits while A is still open; by
     A's commit time the database is ahead of A's start version, so the
     proxy promotes A's effective start (6.2). *)
  ignore
    (Engine.spawn (Cluster.engine c) (fun () ->
         let txa = Proxy.begin_tx p0 in
         ignore (Proxy.write p0 txa (k "t" "c") (upd 1));
         Engine.sleep (Cluster.engine c) (Time.sec 1);
         match Proxy.commit p0 txa with
         | Ok () -> ()
         | Error f -> Alcotest.fail (Format.asprintf "A failed: %a" Proxy.pp_failure f)));
  let ob = ref None in
  submit_tx c 0 ~key:(k "t" "b") ~value:2 ob;
  run_for c (Time.sec 3);
  expect_commit "B" !ob;
  check_bool "a start-version promotion happened" true
    ((Proxy.stats p0).Proxy.local_cert_promotions >= 1);
  check_consistent c

let test_consistency_checker_detects_corruption () =
  let c = make_cluster () in
  let o = ref None in
  submit_tx c 0 ~key:(k "t" "a") ~value:5 o;
  run_for c (Time.sec 2);
  expect_commit "setup" !o;
  check_consistent c;
  (* corrupt replica 1 behind the middleware's back *)
  let store = Mvcc.Db.store (Replica.db (Cluster.replica c 1)) in
  Mvcc.Store.install store
    ~version:(Mvcc.Store.current_version store + 1)
    (ws1 (k "t" "a") 666);
  match Cluster.check_consistency c with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "checker must flag a corrupted replica"

(* ------------------------------------------------------------------ *)
(* Parallel apply: config validation and serial-equivalence seed sweep *)

let string_contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_cluster_config_validation () =
  let expect_invalid name cfg =
    match Cluster.create cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
  in
  expect_invalid "zero replicas" (Cluster.config ~n_replicas:0 Types.Base);
  expect_invalid "even certifiers" (Cluster.config ~n_certifiers:2 Types.Base);
  expect_invalid "zero apply workers" (Cluster.config ~apply_workers:0 Types.Base);
  expect_invalid "negative exec_cpu"
    (Cluster.config
       ~replica:{ (quick_replica Types.Base) with Replica.exec_cpu = Time.us (-5) }
       Types.Base);
  expect_invalid "negative gc_interval"
    (Cluster.config ~gc_interval:(Some (Time.us (-1))) Types.Base);
  expect_invalid "negative max_snapshot_age"
    (Cluster.config ~max_snapshot_age:(Some (Time.us (-1))) Types.Base);
  expect_invalid "negative watermark_ttl"
    (Cluster.config
       ~certifier:{ Certifier.default_config with watermark_ttl = Time.us (-1) }
       Types.Base);
  (* several problems are reported in one message naming each of them *)
  match Cluster.create (Cluster.config ~n_replicas:0 ~apply_workers:0 Types.Base) with
  | exception Invalid_argument msg ->
      check_bool "message names both problems" true
        (string_contains msg "n_replicas" && string_contains msg "apply_workers")
  | _ -> Alcotest.fail "expected Invalid_argument"

(* Run a fixed conflict-free workload (each client owns one key, committing
   serially) and return (total commits, sorted final key values). With no
   conflicts the outcome is timing-independent, so the parallel applier must
   reproduce the serial applier's result exactly. *)
let parallel_equiv_run ~seed ~apply_workers =
  let replica =
    {
      (quick_replica Types.Tashkent_mw) with
      Replica.apply_workers;
      apply_cpu_per_ws = Time.us 300;
    }
  in
  let c = Cluster.create (Cluster.config ~n_replicas:3 ~replica ~seed Types.Tashkent_mw) in
  let n_clients = 2 and n_txs = 4 in
  let key_name i j = Printf.sprintf "r%dc%d" i j in
  let rows =
    List.concat
      (List.init 3 (fun i ->
           List.init n_clients (fun j -> (k "t" (key_name i j), vi 0))))
  in
  Cluster.load_all c rows;
  Cluster.settle c;
  let engine = Cluster.engine c in
  let failures = ref 0 in
  List.iteri
    (fun i r ->
      let p = Replica.proxy r in
      for j = 0 to n_clients - 1 do
        let key = k "t" (key_name i j) in
        ignore
          (Engine.spawn engine ~name:"client" (fun () ->
               for t = 1 to n_txs do
                 let tx = Proxy.begin_tx p in
                 Replica.use_cpu r (Replica.config r).Replica.exec_cpu;
                 match Proxy.write p tx key (upd t) with
                 | Error _ ->
                     Proxy.abort p tx;
                     incr failures
                 | Ok () -> (
                     match Proxy.commit p tx with Ok () -> () | Error _ -> incr failures)
               done))
      done)
    (Cluster.replicas c);
  run_for c (Time.sec 10);
  check_int "workload finished cleanly" 0 !failures;
  check_consistent c;
  let finals =
    List.sort compare
      (List.map
         (fun (key, _) ->
           ( Mvcc.Key.to_string key,
             match Mvcc.Db.read_committed (Replica.db (Cluster.replica c 0)) key with
             | Some v -> Mvcc.Value.as_int v
             | None -> -1 ))
         rows)
  in
  (Cluster.total_commits c, finals)

let test_parallel_apply_matches_serial () =
  List.iter
    (fun seed ->
      let commits1, finals1 = parallel_equiv_run ~seed ~apply_workers:1 in
      let commits4, finals4 = parallel_equiv_run ~seed ~apply_workers:4 in
      check_int (Printf.sprintf "seed %d: every tx committed" seed) 24 commits1;
      check_int (Printf.sprintf "seed %d: same commits" seed) commits1 commits4;
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "seed %d: same final values" seed)
        finals1 finals4)
    [ 3; 11; 42 ]

(* Hot-key delta traffic: every replica's clients increment the same two hot
   rows with commutative deltas. Certification passes every writeset (the
   delta fast path), remote deltas commute around local delta holders instead
   of preempting them, and the symbolic store folds the increments in any
   install order — so every transaction commits and the final sums are
   timing-independent. The parallel applier must reproduce the serial
   applier's commit count and final values exactly, per seed. *)
let hotkey_equiv_run ~seed ~apply_workers =
  let replica =
    {
      (quick_replica Types.Tashkent_mw) with
      Replica.apply_workers;
      apply_cpu_per_ws = Time.us 300;
    }
  in
  let c =
    Cluster.create (Cluster.config ~n_replicas:3 ~replica ~seed Types.Tashkent_mw)
  in
  let hot_keys = [ k "hot" "0"; k "hot" "1" ] in
  Cluster.load_all c (List.map (fun key -> (key, vi 0)) hot_keys);
  Cluster.settle c;
  let engine = Cluster.engine c in
  let failures = ref 0 in
  let n_txs = 4 in
  List.iteri
    (fun i r ->
      let p = Replica.proxy r in
      List.iteri
        (fun j key ->
          ignore
            (Engine.spawn engine ~name:"client" (fun () ->
                 for t = 1 to n_txs do
                   let tx = Proxy.begin_tx p in
                   Replica.use_cpu r (Replica.config r).Replica.exec_cpu;
                   match
                     Proxy.write p tx key (Mvcc.Writeset.Add ((100 * i) + (10 * j) + t))
                   with
                   | Error _ ->
                       Proxy.abort p tx;
                       incr failures
                   | Ok () -> (
                       match Proxy.commit p tx with Ok () -> () | Error _ -> incr failures)
                 done)))
        hot_keys)
    (Cluster.replicas c);
  run_for c (Time.sec 10);
  check_int "every hot-key delta committed" 0 !failures;
  check_consistent c;
  let finals =
    List.map
      (fun key ->
        match Mvcc.Db.read_committed (Replica.db (Cluster.replica c 0)) key with
        | Some v -> Mvcc.Value.as_int v
        | None -> -1)
      hot_keys
  in
  (Cluster.total_commits c, finals)

let test_hotkey_deltas_match_across_workers () =
  List.iter
    (fun seed ->
      let commits1, finals1 = hotkey_equiv_run ~seed ~apply_workers:1 in
      let commits4, finals4 = hotkey_equiv_run ~seed ~apply_workers:4 in
      check_int (Printf.sprintf "seed %d: every tx committed" seed) 24 commits1;
      check_int (Printf.sprintf "seed %d: same commits" seed) commits1 commits4;
      Alcotest.(check (list int))
        (Printf.sprintf "seed %d: same final sums" seed)
        finals1 finals4)
    [ 3; 11; 42 ]

(* Property: random non-conflicting and conflicting traffic across random
   modes keeps every replica a consistent prefix, and conflicting
   concurrent writers never both commit. *)
let prop_prefix_consistency_under_traffic =
  QCheck.Test.make ~name:"replicas stay prefix-consistent under traffic" ~count:10
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, mode_ix) ->
      let mode =
        match mode_ix with
        | 0 -> Types.Base
        | 1 -> Types.Tashkent_mw
        | _ -> Types.Tashkent_api
      in
      let c = make_cluster ~mode ~seed () in
      let rng = Rng.create (seed + 13) in
      let outcomes = ref [] in
      for _round = 1 to 8 do
        let n = 1 + Rng.int rng 4 in
        for _ = 1 to n do
          let o = ref None in
          outcomes := o :: !outcomes;
          let key = k "t" (Rng.pick rng [| "a"; "b"; "c"; "d" |]) in
          submit_tx c (Rng.int rng 3) ~key ~value:(Rng.int rng 1000) o
        done;
        run_for c (Time.of_ms 400.)
      done;
      run_for c (Time.sec 3);
      let finished =
        List.for_all (fun o -> !o <> None) !outcomes
      in
      finished && Cluster.check_consistency c = Ok ())

let suites =
  [
    ( "core.cert_log",
      [
        Alcotest.test_case "append and certify" `Quick test_cert_log_append_and_certify;
        Alcotest.test_case "entries_between" `Quick test_cert_log_entries_between;
        Alcotest.test_case "back-certification memoised" `Quick test_cert_log_back_certify;
        Alcotest.test_case "delta fast path" `Quick test_cert_log_delta_fast_path;
        Alcotest.test_case "overlay delta fast path" `Quick test_overlay_delta_fast_path;
        Alcotest.test_case "truncation" `Quick test_cert_log_truncation;
        Alcotest.test_case "truncation folds deletes" `Quick
          test_cert_log_truncate_folds_deletes;
      ] );
    ( "core.end_to_end",
      [
        Alcotest.test_case "base replicates" `Quick (test_mode_replicates Types.Base);
        Alcotest.test_case "tashkent-mw replicates" `Quick
          (test_mode_replicates Types.Tashkent_mw);
        Alcotest.test_case "tashkent-api replicates" `Quick
          (test_mode_replicates Types.Tashkent_api);
        Alcotest.test_case "concurrent conflict aborts exactly one" `Quick
          test_conflict_aborts_one;
        Alcotest.test_case "sequential writers both commit" `Quick
          test_sequential_same_key_both_commit;
        Alcotest.test_case "read-only commits locally" `Quick test_read_only_never_blocks;
        Alcotest.test_case "snapshot stability at replica" `Quick
          test_snapshot_reads_at_replica;
        Alcotest.test_case "api applies conflicting remotes correctly" `Quick
          test_api_artificial_conflict_serialized;
        Alcotest.test_case "forced aborts (9.5 knob)" `Quick test_forced_abort_rate;
        Alcotest.test_case "staleness bound refreshes idle replica" `Quick
          test_staleness_bound_refreshes_idle_replica;
        Alcotest.test_case "consistency checker detects corruption" `Quick
          test_consistency_checker_detects_corruption;
        Alcotest.test_case "partitioned replica retries until heal" `Quick
          test_partitioned_replica_retries_until_heal;
        Alcotest.test_case "local certification promotes start version" `Quick
          test_local_certification_promotes_start;
      ] );
    ( "core.fault_tolerance",
      [
        Alcotest.test_case "certifier leader crash: progress" `Quick
          test_certifier_leader_crash_progress;
        Alcotest.test_case "certifier recovery: state transfer" `Quick
          test_certifier_recover_rejoins;
        Alcotest.test_case "replica crash/recover (base)" `Quick
          test_replica_crash_recover_base;
        Alcotest.test_case "replica crash/recover (mw, dumps)" `Quick
          test_replica_crash_recover_mw_dump;
        Alcotest.test_case "replica crash/recover (mw, integrity kept)" `Quick
          test_replica_crash_recover_mw_integrity_kept;
      ]
      @ [ QCheck_alcotest.to_alcotest prop_prefix_consistency_under_traffic ] );
    ( "core.parallel_apply",
      [
        Alcotest.test_case "config validation" `Quick test_cluster_config_validation;
        Alcotest.test_case "seed sweep matches serial applier" `Quick
          test_parallel_apply_matches_serial;
        Alcotest.test_case "hot-key deltas match across worker counts" `Quick
          test_hotkey_deltas_match_across_workers;
      ] );
  ]
